#include "fs/purge.hpp"

#include <algorithm>
#include <vector>

namespace spider::fs {

PurgeReport run_purge(FsNamespace& ns, sim::SimTime now,
                      const PurgePolicy& policy) {
  PurgeReport report;
  const sim::SimTime window =
      static_cast<sim::SimTime>(policy.window_days * static_cast<double>(sim::kDay));
  const sim::SimTime cutoff = now - window;

  const double mds_before = ns.mds().accounted_load();
  std::vector<FileId> victims;
  ns.for_each_file([&](const FileRecord& rec) {
    ++report.scanned;
    if (rec.project == policy.exempt_project) return;
    const sim::SimTime last_touch =
        std::max(rec.atime, std::max(rec.mtime, rec.ctime));
    if (last_touch < cutoff) victims.push_back(rec.id);
  });
  for (FileId id : victims) {
    const FileRecord& rec = ns.file(id);
    const Bytes size = rec.size;
    const sim::SimTime last_touch =
        std::max(rec.atime, std::max(rec.mtime, rec.ctime));
    if (ns.unlink(id, now)) {
      ++report.purged;
      report.freed += size;
      report.min_purged_age_s =
          std::min(report.min_purged_age_s, sim::to_seconds(now - last_touch));
    }
  }
  report.mds_ops = ns.mds().accounted_load() - mds_before;
  return report;
}

void schedule_daily_purge(sim::Simulator& sim, FsNamespace& ns,
                          const PurgePolicy& policy, int days,
                          double hour_of_day, std::vector<PurgeReport>* reports) {
  const auto start_day = sim.now() / sim::kDay;
  for (int d = 0; d < days; ++d) {
    const sim::SimTime when =
        (start_day + 1 + d) * sim::kDay +
        static_cast<sim::SimTime>(hour_of_day * static_cast<double>(sim::kHour));
    sim.schedule_at(when, [&sim, &ns, policy, reports] {
      const auto report = run_purge(ns, sim.now(), policy);
      if (reports) reports->push_back(report);
    });
  }
}

}  // namespace spider::fs
