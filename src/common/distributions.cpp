#include "common/distributions.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spider {

Pareto::Pareto(double shape_alpha, double scale_xm)
    : alpha_(shape_alpha), xm_(scale_xm) {
  if (alpha_ <= 0.0 || xm_ <= 0.0) {
    throw std::invalid_argument("Pareto requires alpha > 0 and x_m > 0");
  }
}

double Pareto::sample(Rng& rng) const {
  // Inverse transform: x = x_m / U^(1/alpha).
  const double u = 1.0 - rng.uniform();  // in (0, 1]
  return xm_ / std::pow(u, 1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

BoundedPareto::BoundedPareto(double shape_alpha, double lo, double hi)
    : alpha_(shape_alpha), lo_(lo), hi_(hi) {
  if (alpha_ <= 0.0 || lo_ <= 0.0 || hi_ <= lo_) {
    throw std::invalid_argument("BoundedPareto requires alpha > 0, 0 < lo < hi");
  }
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse transform of the truncated CDF.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return std::min(std::max(x, lo_), hi_);
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma_ < 0.0) throw std::invalid_argument("LogNormal requires sigma >= 0");
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf requires n > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DiscreteMixture::DiscreteMixture(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("DiscreteMixture requires weights");
  double acc = 0.0;
  cdf_.reserve(weights.size());
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("DiscreteMixture weights must be >= 0");
    acc += w;
    cdf_.push_back(acc);
  }
  if (acc <= 0.0) throw std::invalid_argument("DiscreteMixture weights must sum > 0");
  for (auto& c : cdf_) c /= acc;
}

std::size_t DiscreteMixture::sample(Rng& rng) const {
  const double u = rng.uniform();
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double DiscreteMixture::probability(std::size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

Empirical::Empirical(std::vector<double> values) : values_(std::move(values)) {
  if (values_.empty()) throw std::invalid_argument("Empirical requires values");
}

double Empirical::sample(Rng& rng) const {
  return values_[rng.uniform_index(values_.size())];
}

}  // namespace spider
