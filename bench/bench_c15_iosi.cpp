// C15 (Section VI-B): IOSI — identifying an application's I/O signature
// from server-side throughput logs alone.
//
// Paper: "IOSI characterizes per-application I/O behavior from the
// server-side I/O throughput logs. We determined application I/O
// signatures by observing multiple runs and identifying the common I/O
// pattern across those runs... at no cost to the user and without taxing
// the storage subsystem."
//
// Method: run an S3D-like periodic application inside a noisy center (DES),
// record the aggregate server-side bandwidth per 10 s bin over several
// runs, and let IOSI recover the period/burst signature.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "tools/iosi.hpp"
#include "workload/s3d.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(
      core::scaled_config(core::spider2_config(), 0.1), rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  workload::S3dParams app;
  app.ranks = 1024;
  app.bytes_per_rank = 64_MiB;
  app.output_interval_s = 600.0;
  const workload::S3dWorkload s3d(app);

  bench::banner("C15: IOSI signature extraction from server-side logs "
                "(S3D-like app, period 600 s, inside background noise)");

  const double duration_s = 3600.0;
  const double bin_s = 5.0;
  std::vector<std::vector<double>> run_logs;
  for (int run = 0; run < 5; ++run) {
    sim::Simulator sim;
    core::ScenarioRunner runner(center, sim);
    Rng run_rng(100 + run);
    // The application's periodic output bursts.
    for (const auto& burst : s3d.generate(duration_s, run_rng)) {
      runner.submit_burst(burst,
                          [&](std::size_t f) { return f % center.total_osts(); },
                          nullptr, 16);
    }
    // Background noise: other users' sporadic medium-size bursts.
    double t = 20.0;
    while (t < duration_s) {
      workload::IoBurst noise;
      noise.start = sim::from_seconds(t);
      noise.clients = 64 + run_rng.uniform_index(64);
      noise.bytes_per_client = 128_MiB;
      runner.submit_burst(noise,
                          [&](std::size_t f) {
                            return (f * 7 + 3) % center.total_osts();
                          },
                          nullptr, 16, 50000);
      t += 40.0 + run_rng.uniform(0.0, 80.0);
    }
    std::vector<double> log;
    runner.record_throughput(bin_s, duration_s, &log);
    sim.run();
    run_logs.push_back(std::move(log));
  }

  const auto sig = tools::extract_signature(run_logs, bin_s);
  Table table;
  table.set_columns({"metric", "ground truth", "IOSI estimate"});
  table.add_row({std::string("period (s)"), 600.0, sig.period_s});
  table.add_row({std::string("burst volume (GiB)"),
                 to_gib(s3d.bytes_per_output()),
                 sig.burst_bytes / (1024.0 * 1024.0 * 1024.0)});
  table.add_row({std::string("confidence"), 1.0, sig.confidence});
  table.print(std::cout);
  std::cout << "bursts observed across runs: " << sig.bursts_seen << "\n\n";

  bench::ShapeChecker checker;
  checker.check(sig.found, "IOSI finds a signature");
  checker.check(std::abs(sig.period_s - 600.0) < 60.0,
                "recovered period within 10% of the application's 600 s");
  checker.check(sig.confidence >= 0.6,
                "majority of runs agree on the period");
  const double truth = static_cast<double>(s3d.bytes_per_output());
  checker.check(sig.burst_bytes > 0.4 * truth && sig.burst_bytes < 2.0 * truth,
                "burst volume recovered to the right order");
  return checker.exit_code();
}
