#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace spider {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  // Validate BEFORE deriving width_: with bins == 0 the old initializer-list
  // division executed 1/0.0 before the check could throw.
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("LinearHistogram requires bins > 0, hi > lo");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void LinearHistogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  // In-range by construction; the clamp only guards float edge cases where
  // (x - lo_) / width_ rounds up to bins().
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += weight;
}

double LinearHistogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double LinearHistogram::fraction_between(double lo_bound, double hi_bound) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = bin_center(i);
    if (c >= lo_bound && c < hi_bound) acc += counts_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

Log2Histogram::Log2Histogram(int min_exp, int max_exp) : min_exp_(min_exp) {
  if (max_exp <= min_exp) {
    throw std::invalid_argument("Log2Histogram requires max_exp > min_exp");
  }
  counts_.assign(static_cast<std::size_t>(max_exp - min_exp), 0);
}

int Log2Histogram::clamped_bin_index(double x) const {
  if (x <= 0.0) return 0;
  const int exp = static_cast<int>(std::floor(std::log2(x)));
  return std::clamp(exp - min_exp_, 0, static_cast<int>(counts_.size()) - 1);
}

void Log2Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  // x <= 0 has no binary exponent; treat it as underflow rather than folding
  // it into the lowest bin (which misreported zero-size requests as 2^min).
  if (x <= 0.0) {
    underflow_ += weight;
    return;
  }
  const int exp = static_cast<int>(std::floor(std::log2(x)));
  if (exp < min_exp_) {
    underflow_ += weight;
    return;
  }
  if (exp >= min_exp_ + static_cast<int>(counts_.size())) {
    overflow_ += weight;
    return;
  }
  counts_[static_cast<std::size_t>(exp - min_exp_)] += weight;
}

std::uint64_t Log2Histogram::count_for_exp(int exp) const {
  const int idx = exp - min_exp_;
  if (idx < 0 || idx >= static_cast<int>(counts_.size())) return 0;
  return counts_[static_cast<std::size_t>(idx)];
}

double Log2Histogram::fraction_below(double threshold) const {
  if (total_ == 0) return 0.0;
  const int limit = clamped_bin_index(threshold);
  std::uint64_t acc = underflow_;  // underflow is below every bin
  for (int i = 0; i < limit; ++i) acc += counts_[static_cast<std::size_t>(i)];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  if (underflow_ > 0) {
    os << "[-inf, 2^" << min_exp_ << "): " << underflow_ << "\n";
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int exp = min_exp_ + static_cast<int>(i);
    os << "[2^" << exp << ", 2^" << exp + 1 << "): " << counts_[i] << "\n";
  }
  if (overflow_ > 0) {
    os << "[2^" << max_exp() << ", inf): " << overflow_ << "\n";
  }
  return os.str();
}

}  // namespace spider
