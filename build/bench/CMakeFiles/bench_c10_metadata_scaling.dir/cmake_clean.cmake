file(REMOVE_RECURSE
  "CMakeFiles/bench_c10_metadata_scaling.dir/bench_c10_metadata_scaling.cpp.o"
  "CMakeFiles/bench_c10_metadata_scaling.dir/bench_c10_metadata_scaling.cpp.o.d"
  "bench_c10_metadata_scaling"
  "bench_c10_metadata_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c10_metadata_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
