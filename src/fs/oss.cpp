#include "fs/oss.hpp"

#include <algorithm>

namespace spider::fs {

Oss::Oss(std::uint32_t id, OssParams params, std::size_t ib_leaf)
    : id_(id), params_(params), ib_leaf_(ib_leaf) {}

Bandwidth Oss::node_bw() const { return std::min(params_.net_bw, params_.cpu_bw); }

Bandwidth Oss::delivered_bw(block::IoMode mode, block::IoDir dir,
                            Bytes request_size) const {
  double ost_side = 0.0;
  for (const Ost* o : osts_) ost_side += o->bandwidth(mode, dir, request_size);
  return std::min(ost_side, node_bw());
}

}  // namespace spider::fs
