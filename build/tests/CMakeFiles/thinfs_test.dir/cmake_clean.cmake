file(REMOVE_RECURSE
  "CMakeFiles/thinfs_test.dir/thinfs_test.cpp.o"
  "CMakeFiles/thinfs_test.dir/thinfs_test.cpp.o.d"
  "thinfs_test"
  "thinfs_test.pdb"
  "thinfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
