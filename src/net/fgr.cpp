#include "net/fgr.hpp"

#include <limits>
#include <stdexcept>

namespace spider::net {

FgrPolicy::FgrPolicy(const Torus3D& torus, std::vector<PlacedRouter> routers,
                     std::size_t leaf_switches)
    : torus_(torus), routers_(std::move(routers)), by_leaf_(leaf_switches) {
  if (routers_.empty()) throw std::invalid_argument("FgrPolicy: no routers");
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    if (routers_[i].ib_leaf >= leaf_switches) {
      throw std::out_of_range("FgrPolicy: router leaf out of range");
    }
    by_leaf_[routers_[i].ib_leaf].push_back(i);
  }
}

const std::vector<std::size_t>& FgrPolicy::routers_for_leaf(std::size_t leaf) const {
  return by_leaf_.at(leaf);
}

std::size_t FgrPolicy::select_fgr(int client_node, std::size_t dest_leaf) const {
  const auto& candidates = by_leaf_.at(dest_leaf);
  if (candidates.empty()) {
    // No router serves this leaf directly; fall back to nearest overall
    // (traffic will cross the core, as on a real mis-wired system).
    return select_nearest(client_node);
  }
  std::size_t best = candidates.front();
  int best_hops = std::numeric_limits<int>::max();
  for (std::size_t idx : candidates) {
    const int h = torus_.hop_count(client_node, routers_[idx].node);
    if (h < best_hops) {
      best_hops = h;
      best = idx;
    }
  }
  return best;
}

std::size_t FgrPolicy::select_round_robin(std::uint64_t counter) const {
  return static_cast<std::size_t>(counter % routers_.size());
}

std::size_t FgrPolicy::select_nearest(int client_node) const {
  std::size_t best = 0;
  int best_hops = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    const int h = torus_.hop_count(client_node, routers_[i].node);
    if (h < best_hops) {
      best_hops = h;
      best = i;
    }
  }
  return best;
}

}  // namespace spider::net
