#include "infra/config_mgmt.hpp"

#include <algorithm>
#include <set>

namespace spider::infra {

void ConfigSpec::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
  ++version_;
}

const std::string* ConfigSpec::get(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::size_t ManagedNode::drift_against(const ConfigSpec& spec) const {
  std::size_t drift = 0;
  for (const auto& [key, value] : spec.all()) {
    auto it = state_.find(key);
    if (it == state_.end() || it->second != value) ++drift;
  }
  return drift;
}

std::size_t ManagedNode::apply(const ConfigSpec& spec) {
  std::size_t changed = 0;
  for (const auto& [key, value] : spec.all()) {
    auto it = state_.find(key);
    if (it == state_.end() || it->second != value) {
      state_[key] = value;
      ++changed;
    }
  }
  return changed;
}

void ManagedNode::mutate(const std::string& key, const std::string& value) {
  state_[key] = value;
}

ConfigManager::ConfigManager(std::string fleet_name, std::size_t nodes)
    : fleet_name_(std::move(fleet_name)) {
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.emplace_back(static_cast<std::uint32_t>(i));
  }
}

DriftReport ConfigManager::audit() const {
  DriftReport report;
  report.nodes_audited = nodes_.size();
  for (const auto& node : nodes_) {
    const std::size_t drift = node.drift_against(spec_);
    if (drift > 0) {
      ++report.drifted_nodes;
      report.drifted_entries += drift;
    }
  }
  return report;
}

std::size_t ConfigManager::converge() {
  std::size_t changed = 0;
  for (auto& node : nodes_) changed += node.apply(spec_);
  return changed;
}

RolloutResult ConfigManager::staged_rollout(const ConfigSpec& next,
                                            double canary_fraction,
                                            double failure_prob, Rng& rng) {
  RolloutResult result;
  const auto canaries = std::max<std::size_t>(
      1, static_cast<std::size_t>(canary_fraction *
                                  static_cast<double>(nodes_.size())));
  result.canary_nodes = canaries;
  bool canary_failed = false;
  for (std::size_t i = 0; i < canaries; ++i) {
    nodes_[i].apply(next);
    if (rng.chance(failure_prob)) {
      canary_failed = true;
      break;
    }
  }
  if (canary_failed) {
    // Roll the canaries back to the current spec; the fleet never saw the
    // bad change.
    for (std::size_t i = 0; i < canaries; ++i) nodes_[i].apply(spec_);
    result.rolled_back = true;
    return result;
  }
  spec_ = next;
  result.converged_nodes = nodes_.size();
  converge();
  result.success = true;
  return result;
}

CentralizationComparison compare_centralization(std::size_t fleets,
                                                std::size_t edits_per_year,
                                                double miss_prob, Rng& rng) {
  CentralizationComparison cmp;
  cmp.specs_centralized = 1;
  cmp.specs_separate = fleets;
  cmp.edits_centralized = static_cast<double>(edits_per_year);
  cmp.edits_separate = static_cast<double>(edits_per_year * fleets);

  // Separate instances: each change must be copied into every fleet's
  // spec; with probability miss_prob a fleet is forgotten and its spec
  // permanently diverges on that entry.
  std::vector<std::set<std::size_t>> missing(fleets);
  for (std::size_t edit = 0; edit < edits_per_year; ++edit) {
    for (std::size_t f = 0; f < fleets; ++f) {
      if (rng.chance(miss_prob)) missing[f].insert(edit);
    }
  }
  std::set<std::size_t> inconsistent;
  for (const auto& m : missing) inconsistent.insert(m.begin(), m.end());
  cmp.inconsistent_entries = inconsistent.size();
  return cmp;
}

}  // namespace spider::infra
