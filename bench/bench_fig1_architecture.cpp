// Figure 1: "Integration of Spider PFS and OLCF infrastructure."
//
// The paper's architecture diagram, regenerated from the live center
// model: compute platforms funneling through LNET routers onto SION's
// leaf/core fabric, into OSS nodes, controller pairs, and the SSU fleet,
// with the per-layer counts and capacities annotated. Shape checks assert
// the rendered inventory is the model's actual inventory.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(core::spider2_config(), rng);
  const auto& cfg = center.config();
  const auto prof = center.layer_profile(block::IoMode::kSequential,
                                         block::IoDir::kWrite);

  bench::banner("Figure 1: Spider II / OLCF integration architecture");

  std::ostringstream d;
  auto line = [&d](const std::string& s) { d << s << "\n"; };
  auto gb = [](double bw) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(0) << to_gbps(bw);
    return os.str();
  };
  line("  +--------------------- compute platforms ----------------------+");
  line("  |  Titan: " + std::to_string(cfg.clients) + " clients on a " +
       std::to_string(cfg.torus.x) + "x" + std::to_string(cfg.torus.y) + "x" +
       std::to_string(cfg.torus.z) + " Gemini 3D torus                 |");
  line("  |  (+ analysis / visualization / data-transfer clusters)       |");
  line("  +------------------------------+--------------------------------+");
  line("                                 | " +
       std::to_string(center.fgr().num_routers()) +
       " LNET I/O routers (" + gb(prof.routers) + " GB/s)");
  line("  +------------------------------v--------------------------------+");
  line("  |  SION InfiniBand SAN: " +
       std::to_string(cfg.fabric.leaf_switches) + " leaf + " +
       std::to_string(cfg.fabric.core_switches) +
       " core switches (FGR keeps bulk I/O on-leaf) |");
  line("  +------------------------------+--------------------------------+");
  line("                                 | " + std::to_string(center.num_oss()) +
       " OSS (" + gb(prof.oss) + " GB/s)");
  line("  +------------------------------v--------------------------------+");
  line("  |  " + std::to_string(center.num_ssus()) +
       " SSUs: controller pairs (" + gb(prof.controllers) +
       " GB/s) over " + std::to_string(center.total_osts()) +
       " RAID-6 OSTs      |");
  line("  |  " + std::to_string(center.num_ssus() *
                                cfg.ssu.raid_groups * 10) +
       " disks -> " + std::to_string(static_cast<int>(
                          to_pb(center.filesystem().capacity()))) +
       " PB in " + std::to_string(cfg.namespaces) +
       " namespaces (atlas1, atlas2)               |");
  line("  +----------------------------------------------------------------+");
  line("   monitoring plane: Nagios checks | DDN poller | Lustre health");
  line("   provisioning:     GeDI diskless images + BCFG2 config management");
  std::cout << d.str() << "\n";
  std::cout << "end-to-end sequential write ceiling: " << gb(prof.end_to_end)
            << " GB/s (paper: >1 TB/s)\n\n";

  bench::ShapeChecker checker;
  checker.check(cfg.clients == 18688 && center.fgr().num_routers() == 440,
                "compute side matches the paper (18,688 clients, 440 routers)");
  checker.check(center.num_ssus() == 36 && center.total_osts() == 2016 &&
                    center.num_oss() == 288,
                "storage side matches the paper (36 SSUs, 2,016 OSTs, 288 OSS)");
  checker.check(cfg.namespaces == 2 &&
                    to_pb(center.filesystem().capacity()) > 32.0,
                "two namespaces over 32+ PB");
  checker.check(prof.end_to_end > 1.0 * kTBps,
                "the integrated stack clears 1 TB/s");
  return checker.exit_code();
}
