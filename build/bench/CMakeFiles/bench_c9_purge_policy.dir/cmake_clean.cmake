file(REMOVE_RECURSE
  "CMakeFiles/bench_c9_purge_policy.dir/bench_c9_purge_policy.cpp.o"
  "CMakeFiles/bench_c9_purge_policy.dir/bench_c9_purge_policy.cpp.o.d"
  "bench_c9_purge_policy"
  "bench_c9_purge_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c9_purge_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
