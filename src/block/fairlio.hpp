// fair-lio: the OLCF block-level benchmark (Section III-B).
//
// The real tool uses Linux AIO to keep a configurable number of requests in
// flight against raw devices, sweeping request size, queue depth, read/write
// mix, and sequential/random mode. This driver reproduces that parameter
// space against the Disk and Raid6Group models with a closed-loop
// queue-depth simulation, producing bandwidth, IOPS, and latency statistics.
// Vendors ran exactly these sweeps to respond to the Spider II RFP; the
// slow-disk culling workflow (Lesson 13) keys on the same outputs.
#pragma once

#include <cstdint>

#include "block/disk.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace spider::block {

struct FairLioConfig {
  Bytes request_size = 1_MiB;
  unsigned queue_depth = 16;
  /// Fraction of requests that are writes; the remainder are reads.
  double write_fraction = 1.0;
  IoMode mode = IoMode::kSequential;
  /// Simulated test duration.
  double duration_s = 10.0;
};

struct FairLioResult {
  Bandwidth bandwidth = 0.0;  ///< delivered bytes/second
  double iops = 0.0;
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
  std::uint64_t requests = 0;
};

/// Closed-loop run against a single disk. Higher queue depth lets the drive
/// reorder (elevator) random requests, recovering some positioning time.
FairLioResult run_fairlio(const Disk& disk, const FairLioConfig& cfg, Rng& rng);

/// Closed-loop run against a RAID group: requests are striped, so the
/// slowest member paces every request (full-stripe granularity).
FairLioResult run_fairlio(const Raid6Group& group, const FairLioConfig& cfg,
                          Rng& rng);

}  // namespace spider::block
