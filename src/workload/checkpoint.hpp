// Checkpoint/restart workload: the bandwidth-bound writer.
//
// Section II: "large-scale simulations running on Titan often consume a
// large percentage of the available I/O bandwidth ... These write-heavy
// checkpoint/restart workloads can create tens or even hundreds of
// thousands of files and generate many terabytes of data in a single
// checkpoint." The 1 TB/s design point itself came from checkpointing 75%
// of Titan's 600 TB memory in 6 minutes (Section III-A).
#pragma once

#include <cstdint>
#include <vector>

#include "block/disk.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/time.hpp"

namespace spider::workload {

/// One synchronized burst of I/O from many clients.
struct IoBurst {
  sim::SimTime start = 0;
  std::uint32_t clients = 0;
  Bytes bytes_per_client = 0;
  Bytes request_size = 1_MiB;
  block::IoDir dir = block::IoDir::kWrite;
  std::uint32_t files_per_client = 1;
};

struct CheckpointParams {
  std::uint32_t clients = 18688;
  /// Aggregate memory image to dump each checkpoint.
  Bytes memory_bytes = 600_TB;
  /// Fraction of memory checkpointed (the design point used 75%).
  double checkpoint_fraction = 0.75;
  /// Mean interval between checkpoints.
  double period_s = 3600.0;
  /// Relative jitter on the period (apps drift).
  double period_jitter = 0.05;
  Bytes request_size = 1_MiB;
  std::uint32_t files_per_client = 1;
};

class CheckpointWorkload {
 public:
  explicit CheckpointWorkload(const CheckpointParams& params);

  const CheckpointParams& params() const { return params_; }
  Bytes bytes_per_checkpoint() const;
  Bytes bytes_per_client() const;

  /// Bandwidth needed to finish one checkpoint in `window_s` seconds —
  /// the paper's sizing rule (75% of 600 TB in 360 s -> 1.25 TB/s; with
  /// the SOW's rounding, "1 TB/s").
  Bandwidth required_bandwidth(double window_s) const;

  /// Burst schedule over `duration_s`.
  std::vector<IoBurst> generate(double duration_s, Rng& rng) const;

 private:
  CheckpointParams params_;
};

}  // namespace spider::workload
