// Fixture for spiderlint rule L4 (replay-site).
//
// Linted as if it lived under src/: a bare schedule() call that carries no
// scheduling site (std::source_location / site hash) fires, and so does a
// fault-injection entry point whose parameter list takes an Injection or
// FaultPlan payload but no site parameter.
namespace fixture {

struct Queue {
  void schedule(long when, int id, int site);
};

inline void arm(Queue& q) {
  q.schedule(100, 1);
}

struct Injection {};
struct FaultPlan {};

struct Injector {
  // Siteless injection entry points: both fire.
  void inject(const Injection& injection);
  void arm(const FaultPlan& plan);
  // Carrying the site (source_location or hash) keeps them clean.
  void inject(const Injection& injection, unsigned long long site);
  void arm(const FaultPlan& plan, int loc);
};

}  // namespace fixture
