file(REMOVE_RECURSE
  "CMakeFiles/bench_g1_generations.dir/bench_g1_generations.cpp.o"
  "CMakeFiles/bench_g1_generations.dir/bench_g1_generations.cpp.o.d"
  "bench_g1_generations"
  "bench_g1_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_g1_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
