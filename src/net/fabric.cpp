#include "net/fabric.hpp"

#include <stdexcept>

namespace spider::net {

IbFabric::IbFabric(const FabricParams& params) : params_(params) {
  if (params_.leaf_switches == 0 || params_.core_switches == 0) {
    throw std::invalid_argument("IbFabric: need at least one leaf and core switch");
  }
}

std::size_t IbFabric::leaf_of_oss(std::size_t oss_index, std::size_t total_oss) const {
  // Block assignment: consecutive OSS share a leaf, mirroring how SSU
  // cabling groups servers (total_oss / leaves servers per leaf).
  const std::size_t per_leaf =
      (total_oss + params_.leaf_switches - 1) / params_.leaf_switches;
  return per_leaf == 0 ? 0 : (oss_index / per_leaf) % params_.leaf_switches;
}

IbFabric::PathInfo IbFabric::path(std::size_t src_leaf, std::size_t dst_leaf) const {
  if (src_leaf >= params_.leaf_switches || dst_leaf >= params_.leaf_switches) {
    throw std::out_of_range("IbFabric::path: leaf out of range");
  }
  PathInfo info;
  info.src_leaf = src_leaf;
  info.dst_leaf = dst_leaf;
  info.crosses_core = src_leaf != dst_leaf;
  info.core_index = (src_leaf * 31 + dst_leaf * 17) % params_.core_switches;
  return info;
}

}  // namespace spider::net
