// spiderlint baseline: grandfathered findings that the gate tolerates.
//
// A baseline file is line-oriented; blank lines and `#` comments are
// ignored. Each entry is four `::`-separated fields:
//
//   RULE :: file-suffix :: message :: reason
//
// Matching is line-number independent (refactors above a grandfathered
// finding must not churn the baseline): a finding matches an entry when the
// rule id is equal, the finding's path ends with the file-suffix on a `/`
// boundary, and the message is exactly equal. The reason field is for
// humans — policy (docs/static-analysis.md) requires one per entry — and
// never participates in matching.
#pragma once

#include <string>
#include <vector>

#include "tools/lint/report.hpp"

namespace spider::lint {

struct BaselineEntry {
  std::string rule;
  std::string file;     ///< path suffix, e.g. "src/core/center.hpp"
  std::string message;  ///< exact finding message
  std::string reason;   ///< human justification (not matched)
};

/// Parse baseline text. Malformed lines are reported in `errors`
/// (1-based line numbers) and skipped.
std::vector<BaselineEntry> parse_baseline(std::string_view text,
                                          std::vector<std::string>& errors);

/// True when `finding` matches `entry` (rule + path-suffix + message).
bool baseline_matches(const BaselineEntry& entry, const Finding& finding);

/// Remove findings covered by the baseline from `report`. Returns the
/// entries that matched nothing (stale — candidates for deletion).
std::vector<BaselineEntry> apply_baseline(
    LintReport& report, const std::vector<BaselineEntry>& entries);

/// Render the report's findings as baseline entries (reason field
/// "justify-me", to be hand-edited before check-in).
std::string render_baseline(const LintReport& report);

/// Rewrite baseline text with the `stale` entries' lines removed (matched
/// by rule + file + message; the reason never participates). Comments,
/// blank lines, malformed lines, and live entries are preserved verbatim,
/// so a prune touches exactly the dead lines. `pruned` reports how many
/// lines were dropped.
std::string prune_baseline_text(std::string_view text,
                                const std::vector<BaselineEntry>& stale,
                                std::size_t& pruned);

}  // namespace spider::lint
