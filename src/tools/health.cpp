#include "tools/health.hpp"

#include <algorithm>
#include <map>

namespace spider::tools {

void HealthMonitor::ingest(HealthEvent ev) { events_.push_back(std::move(ev)); }

std::vector<Incident> HealthMonitor::coalesce(sim::SimTime window) const {
  std::vector<HealthEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const HealthEvent& a, const HealthEvent& b) {
                     return a.time < b.time;
                   });
  // Open incident per component.
  std::map<std::string, Incident> open;
  std::vector<Incident> done;
  auto flush = [&done](Incident& inc) { done.push_back(std::move(inc)); };
  for (const auto& ev : sorted) {
    auto it = open.find(ev.component);
    if (it != open.end() && ev.time - it->second.last > window) {
      flush(it->second);
      open.erase(it);
      it = open.end();
    }
    if (it == open.end()) {
      Incident inc;
      inc.first = inc.last = ev.time;
      inc.component = ev.component;
      it = open.emplace(ev.component, std::move(inc)).first;
    }
    Incident& inc = it->second;
    inc.last = ev.time;
    if (ev.source == EventSource::kHardware) inc.hardware_related = true;
    if (static_cast<int>(ev.severity) > static_cast<int>(inc.worst)) {
      inc.worst = ev.severity;
    }
    inc.events.push_back(ev);
  }
  for (auto& [component, inc] : open) flush(inc);
  std::sort(done.begin(), done.end(),
            [](const Incident& a, const Incident& b) { return a.first < b.first; });
  return done;
}

void CheckScheduler::add_check(Check check) { checks_.push_back(std::move(check)); }

CheckScheduler::Report CheckScheduler::run_all() const {
  Report report;
  for (const auto& check : checks_) {
    const CheckResult result = check.probe();
    switch (result.status) {
      case CheckStatus::kOk: ++report.ok; break;
      case CheckStatus::kWarning: ++report.warning; break;
      case CheckStatus::kCritical: ++report.critical; break;
    }
    if (result.status != CheckStatus::kOk) {
      report.failing.emplace_back(check.name, result);
    }
  }
  return report;
}

void DdnPoller::record(ControllerSample sample) {
  samples_.push_back(sample);
  while (samples_.size() > retention_) samples_.pop_front();
}

Bandwidth DdnPoller::mean_write_bw(std::uint32_t controller, sim::SimTime since) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.controller == controller && s.time >= since) {
      acc += s.write_bw;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

Bandwidth DdnPoller::mean_read_bw(std::uint32_t controller, sim::SimTime since) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.controller == controller && s.time >= since) {
      acc += s.read_bw;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

Bandwidth DdnPoller::peak_total_bw(sim::SimTime since) const {
  // Peak of per-timestamp totals.
  std::map<sim::SimTime, double> totals;
  for (const auto& s : samples_) {
    if (s.time >= since) totals[s.time] += s.read_bw + s.write_bw;
  }
  double peak = 0.0;
  for (const auto& [t, v] : totals) peak = std::max(peak, v);
  return peak;
}

}  // namespace spider::tools
