# Empty compiler generated dependencies file for bench_c16_interference.
# This may be replaced when dependencies are built.
