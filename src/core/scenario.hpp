// ScenarioRunner: dynamic (DES) experiments against the center model.
//
// Where the steady-state solver answers "what does saturation look like",
// scenarios answer time-dependent questions: how long a checkpoint burst
// takes under contention, what happens to analytics latency while one runs
// (Lessons 1-2), what server-side throughput logs look like (IOSI input),
// and how libPIO placement changes a job's delivered bandwidth.
//
// Fidelity note: scenario networks exclude per-torus-link resources by
// default (router/OSS/controller/OST contention dominates the questions
// asked here); client-side placement quality still applies through the
// per-flow rate cap. Bursts group several clients into one flow
// (client_grouping) to keep event counts proportional to bursts, not
// clients — documented scale handling per DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/center.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "workload/checkpoint.hpp"
#include "workload/pattern.hpp"

namespace spider::core {

struct BurstOutcome {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  Bytes bytes = 0;
  Bandwidth achieved_bw = 0.0;
};

class ScenarioRunner {
 public:
  ScenarioRunner(CenterModel& center, sim::Simulator& sim,
                 bool include_torus_links = false);

  sim::Simulator& simulator() { return sim_; }
  sim::FlowNetwork& network() { return net_; }
  const ResourceMap& map() const { return map_; }
  CenterModel& center() { return center_; }

  /// Chooses the (global) OST for a flow/request index. For bursts the
  /// index is the flow index (0..ceil(clients/grouping)-1), so a simple
  /// `i % total_osts` spreads a burst evenly regardless of grouping.
  using OstChooser = std::function<std::size_t(std::size_t index)>;

  /// Submit a collective burst. Writers are grouped `client_grouping` per
  /// flow; client ids start at `client_base`. `done` fires when the last
  /// flow completes.
  void submit_burst(const workload::IoBurst& burst, OstChooser ost_of,
                    std::function<void(BurstOutcome)> done,
                    std::size_t client_grouping = 16,
                    std::size_t client_base = 0);

  /// Submit individual requests (analytics streams); completion latencies
  /// land in `latencies_s` in completion order.
  void submit_requests(std::vector<workload::IoRequest> requests,
                       OstChooser ost_of, std::vector<double>* latencies_s,
                       std::size_t client_base = 0);

  /// Record the network's aggregate rate every `bin_s` for `duration_s`
  /// into `out` (the server-side throughput log IOSI consumes).
  void record_throughput(double bin_s, double duration_s,
                         std::vector<double>* out);

 private:
  CenterModel& center_;
  sim::Simulator& sim_;
  sim::FlowNetwork net_;
  ResourceMap map_;
};

}  // namespace spider::core
