// spiderlint self-tests: each rule fires on its fixture at the exact line,
// suppressions silence it, and both renderers carry the findings.
//
// Fixtures live in tests/lint_fixtures/ (outside src/, so the in-tree lint
// gate never sees them); classification is forced per fixture the same way
// the CLI's --treat-as does it.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/lint.hpp"
#include "tools/lint/report.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/scan.hpp"

namespace spider::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(SPIDER_LINT_FIXTURES_DIR) + "/" + name;
}

LintReport lint_fixture(const std::string& name, FileClass cls) {
  LintOptions opts;
  opts.forced_class = cls;
  std::vector<std::string> errors;
  LintReport report = lint_paths({fixture(name)}, opts, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return report;
}

constexpr FileClass kSimCritical{.in_src = true, .sim_critical = true};
constexpr FileClass kSrc{.in_src = true};
constexpr FileClass kSrcHeader{.in_src = true, .is_header = true};

TEST(SpiderLint, L1FiresOnDeclarationAndIteration) {
  const LintReport r =
      lint_fixture("l1_unordered_iteration.cpp", kSimCritical);
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "L1");
  EXPECT_EQ(r.findings[0].line, 10u);  // unordered_map member declaration
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_EQ(r.findings[1].rule, "L1");
  EXPECT_EQ(r.findings[1].line, 14u);  // range-for over the tracked member
  EXPECT_NE(r.findings[1].message.find("flows_"), std::string::npos);
}

TEST(SpiderLint, L2FiresOnAmbientRandomness) {
  const LintReport r = lint_fixture("l2_nondet_source.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_EQ(r.findings[0].line, 9u);  // std::random_device rd;
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("random_device"), std::string::npos);
}

TEST(SpiderLint, L3FiresOnUnitBearingDoubleInHeader) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L3");
  EXPECT_EQ(r.findings[0].line, 10u);  // double transfer_bytes
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
  EXPECT_NE(r.findings[0].message.find("transfer_bytes"), std::string::npos);
}

TEST(SpiderLint, L3NeedsHeaderScope) {
  // The same file linted as a non-header translation unit stays quiet:
  // L3 is a public-interface rule.
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrc);
  EXPECT_TRUE(r.clean());
}

TEST(SpiderLint, L4FiresOnSitelessSchedule) {
  const LintReport r = lint_fixture("l4_missing_site.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].rule, "L4");
  EXPECT_EQ(r.findings[0].line, 14u);  // q.schedule(100, 1);
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  // Fault-plan entry points must declare a replay-site parameter too.
  EXPECT_EQ(r.findings[1].line, 22u);  // inject(const Injection&)
  EXPECT_NE(r.findings[1].message.find("inject"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 23u);  // arm(const FaultPlan&)
  EXPECT_NE(r.findings[2].message.find("arm"), std::string::npos);
}

TEST(SpiderLint, SuppressionsSilenceEveryScopedRule) {
  // The file is linted under every class at once: unordered_map + a
  // unit-bearing double are both present, both justified.
  const LintReport r = lint_fixture(
      "suppressed_ok.cpp",
      FileClass{.in_src = true, .sim_critical = true, .is_header = true});
  EXPECT_TRUE(r.clean()) << render_text(r, /*fix_hints=*/false);
}

TEST(SpiderLint, DisabledRulesDoNotRun) {
  LintOptions opts;
  opts.forced_class = kSimCritical;
  opts.rules.l1 = false;
  std::vector<std::string> errors;
  const LintReport r =
      lint_paths({fixture("l1_unordered_iteration.cpp")}, opts, errors);
  EXPECT_TRUE(r.clean());
}

TEST(SpiderLint, TextReportCarriesFileLineRule) {
  const LintReport r =
      lint_fixture("l1_unordered_iteration.cpp", kSimCritical);
  const std::string text = render_text(r, /*fix_hints=*/false);
  EXPECT_NE(
      text.find("l1_unordered_iteration.cpp:10:8: error: [L1]"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("2 findings (2 errors, 0 warnings)"), std::string::npos)
      << text;
}

TEST(SpiderLint, TextReportHintsOnRequest) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  const std::string plain = render_text(r, /*fix_hints=*/false);
  const std::string hinted = render_text(r, /*fix_hints=*/true);
  EXPECT_EQ(plain.find("units.hpp vocabulary"), std::string::npos);
  EXPECT_NE(hinted.find("units.hpp vocabulary"), std::string::npos) << hinted;
}

TEST(SpiderLint, JsonReportCarriesFindings) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\": {\"error\": 0, \"warning\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rule\": \"L3\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"column\": 3"), std::string::npos) << json;
}

TEST(SpiderLint, RuleTableIsComplete) {
  ASSERT_EQ(rules().size(), 4u);
  const char* ids[] = {"L1", "L2", "L3", "L4"};
  for (const char* id : ids) {
    const RuleInfo* info = rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_FALSE(info->name.empty());
    EXPECT_FALSE(info->suppression.empty());
    EXPECT_FALSE(info->hint.empty());
  }
  EXPECT_EQ(rule("L9"), nullptr);
}

TEST(SpiderLint, CollectSourcesIsSortedAndDeduplicated) {
  std::vector<std::string> errors;
  const std::vector<std::string> once =
      collect_sources({SPIDER_LINT_FIXTURES_DIR}, errors);
  const std::vector<std::string> twice = collect_sources(
      {SPIDER_LINT_FIXTURES_DIR, fixture("l2_nondet_source.cpp")}, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(once.size(), 5u) << "fixture census drifted";
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(std::is_sorted(once.begin(), once.end()));
}

}  // namespace
}  // namespace spider::lint
