#include "tools/capacity_planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/stats.hpp"

namespace spider::tools {

NamespacePlan plan_namespaces(std::span<const ProjectRequirement> projects,
                              std::size_t namespaces) {
  if (namespaces == 0) throw std::invalid_argument("plan_namespaces: need >= 1");
  NamespacePlan plan;
  plan.assignment.assign(projects.size(), 0);
  plan.capacity_per_ns.assign(namespaces, 0);
  plan.bandwidth_per_ns.assign(namespaces, 0.0);
  if (projects.empty()) return plan;

  Bytes total_cap = 0;
  double total_bw = 0.0;
  for (const auto& p : projects) {
    total_cap += p.capacity;
    total_bw += p.bandwidth;
  }
  const double cap_norm = total_cap > 0 ? static_cast<double>(total_cap) : 1.0;
  const double bw_norm = total_bw > 0.0 ? total_bw : 1.0;

  // Largest dominant demand first.
  std::vector<std::size_t> order(projects.size());
  std::iota(order.begin(), order.end(), 0);
  auto dominant = [&](std::size_t i) {
    return std::max(static_cast<double>(projects[i].capacity) / cap_norm,
                    projects[i].bandwidth / bw_norm);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return dominant(a) > dominant(b); });

  for (std::size_t i : order) {
    // Least combined normalized load wins.
    std::size_t best_ns = 0;
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t n = 0; n < namespaces; ++n) {
      const double load =
          static_cast<double>(plan.capacity_per_ns[n]) / cap_norm +
          plan.bandwidth_per_ns[n] / bw_norm;
      if (load < best_load) {
        best_load = load;
        best_ns = n;
      }
    }
    plan.assignment[i] = best_ns;
    plan.capacity_per_ns[best_ns] += projects[i].capacity;
    plan.bandwidth_per_ns[best_ns] += projects[i].bandwidth;
  }

  std::vector<double> caps(namespaces), bws(namespaces);
  for (std::size_t n = 0; n < namespaces; ++n) {
    caps[n] = static_cast<double>(plan.capacity_per_ns[n]);
    bws[n] = plan.bandwidth_per_ns[n];
  }
  plan.capacity_imbalance = imbalance_of(caps);
  plan.bandwidth_imbalance = imbalance_of(bws);
  return plan;
}

Bytes capacity_target_from_memory(Bytes aggregate_memory, double multiple) {
  return static_cast<Bytes>(static_cast<double>(aggregate_memory) * multiple);
}

Bytes capacity_target_from_usage(Bytes expected_usage, double headroom) {
  return static_cast<Bytes>(static_cast<double>(expected_usage) * (1.0 + headroom));
}

CostComparison compare_acquisition_cost(std::span<const double> platform_costs,
                                        const CostModel& model) {
  CostComparison cmp;
  double flagship = 0.0;
  for (double c : platform_costs) flagship = std::max(flagship, c);
  for (double c : platform_costs) {
    cmp.exclusive_total += c * model.exclusive_pfs_fraction;
  }
  // Exclusive islands additionally need the data-movement cluster.
  cmp.exclusive_total += flagship * model.movement_infra_fraction;
  cmp.datacentric_total = flagship * model.datacentric_pfs_fraction +
                          static_cast<double>(platform_costs.size()) *
                              flagship * model.attach_fraction;
  if (cmp.exclusive_total > 0.0) {
    cmp.savings_fraction =
        (cmp.exclusive_total - cmp.datacentric_total) / cmp.exclusive_total;
  }
  return cmp;
}

}  // namespace spider::tools
