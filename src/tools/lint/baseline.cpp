#include "tools/lint/baseline.hpp"

#include <algorithm>
#include <sstream>

namespace spider::lint {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(std::string_view text,
                                          std::vector<std::string>& errors) {
  std::vector<BaselineEntry> entries;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string line = trim(text.substr(start, nl - start));
    start = nl + 1;
    ++lineno;
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (fields.size() < 3) {
      const std::size_t sep = line.find(" :: ", pos);
      if (sep == std::string::npos) break;
      fields.push_back(trim(std::string_view(line).substr(pos, sep - pos)));
      pos = sep + 4;
    }
    fields.push_back(trim(std::string_view(line).substr(pos)));
    if (fields.size() != 4 || fields[0].empty() || fields[1].empty() ||
        fields[2].empty()) {
      errors.push_back("baseline line " + std::to_string(lineno) +
                       ": expected 'RULE :: file :: message :: reason'");
      continue;
    }
    entries.push_back(
        BaselineEntry{fields[0], fields[1], fields[2], fields[3]});
  }
  return entries;
}

bool baseline_matches(const BaselineEntry& entry, const Finding& finding) {
  if (entry.rule != finding.rule) return false;
  if (entry.message != finding.message) return false;
  const std::string& path = finding.file;
  if (path.size() < entry.file.size()) return false;
  if (!path.ends_with(entry.file)) return false;
  const std::size_t at = path.size() - entry.file.size();
  return at == 0 || path[at - 1] == '/';
}

std::vector<BaselineEntry> apply_baseline(
    LintReport& report, const std::vector<BaselineEntry>& entries) {
  std::vector<bool> used(entries.size(), false);
  auto covered = [&](const Finding& f) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (baseline_matches(entries[i], f)) {
        used[i] = true;
        return true;
      }
    }
    return false;
  };
  report.findings.erase(
      std::remove_if(report.findings.begin(), report.findings.end(), covered),
      report.findings.end());

  std::vector<BaselineEntry> stale;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!used[i]) stale.push_back(entries[i]);
  }
  return stale;
}

std::string render_baseline(const LintReport& report) {
  std::ostringstream out;
  out << "# spiderlint baseline — grandfathered findings.\n"
      << "# RULE :: file :: message :: reason (one-line justification)\n";
  for (const Finding& f : report.findings) {
    // Strip everything up to the repo-root component so the suffix is
    // stable across checkouts: keep from the last src/tests/bench on.
    std::string path = f.file;
    for (std::string_view root : {"/src/", "/tests/", "/bench/"}) {
      const std::size_t at = path.rfind(root);
      if (at != std::string::npos) {
        path = path.substr(at + 1);
        break;
      }
    }
    out << f.rule << " :: " << path << " :: " << f.message
        << " :: justify-me\n";
  }
  return out.str();
}

std::string prune_baseline_text(std::string_view text,
                                const std::vector<BaselineEntry>& stale,
                                std::size_t& pruned) {
  pruned = 0;
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    const bool had_newline = nl != std::string_view::npos;
    if (!had_newline) nl = text.size();
    const std::string_view raw = text.substr(start, nl - start);
    start = nl + 1;

    // Re-parse this one line; anything that is not a well-formed entry
    // (comments, blanks, malformed lines) is preserved verbatim.
    std::vector<std::string> errors;
    const std::vector<BaselineEntry> parsed = parse_baseline(raw, errors);
    bool drop = false;
    if (parsed.size() == 1) {
      for (const BaselineEntry& s : stale) {
        if (parsed[0].rule == s.rule && parsed[0].file == s.file &&
            parsed[0].message == s.message) {
          drop = true;
          break;
        }
      }
    }
    if (drop) {
      ++pruned;
      continue;
    }
    out.append(raw);
    if (had_newline) out.push_back('\n');
  }
  return out;
}

}  // namespace spider::lint
