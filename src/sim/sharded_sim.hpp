// Sharded parallel discrete-event engine with conservative epoch barriers.
//
// The serial Simulator is a single event stream; simulating the full Spider
// II center (20,160 disks, ~27K clients) at 4x-16x scale needs the event
// space decomposed along the same failure/routing domains the paper's
// operations use — SSUs, namespaces, FGR zones. ShardedSimulator partitions
// events into per-shard `Simulator`s (one EventQueue, clock, and dense
// EventId sequence each) and runs them in lockstep epochs:
//
//   epoch k covers [e_k, e_k + lookahead); every shard executes its local
//   events inside the window, then all shards arrive at a barrier and the
//   cross-shard mailboxes drain into the target queues.
//
// The lookahead is the minimum cross-shard latency — a message sent during
// an epoch cannot be due before the epoch ends, so shards never need to
// roll back (classic conservative PDES; the torus/fabric models in src/net/
// know the latency floors, see net/lookahead.hpp). Epochs skip dead time:
// each round starts at the earliest pending event across all shards, so an
// idle stretch costs one barrier, not lookahead-sized busywork.
//
// Determinism is by construction, to the same bar spiderfault --jobs=N set:
//   * Each shard is a serial Simulator, so its local (time, id, site)
//     stream is reproducible regardless of which pool worker ran it.
//   * Mailboxes drain single-threaded at the barrier in canonical
//     (destination, source shard, FIFO) order, so target-local EventIds
//     never depend on lane interleaving.
//   * Epoch boundaries derive only from event times, the lookahead, and
//     the horizon — not from the shard count — so running the same
//     assignment on engines with more (empty) shards, or with any number
//     of workers, produces a byte-identical merged stream. Changing the
//     *assignment* moves events between queues and legitimately changes
//     the stream (pinned by the metamorphic tests).
//
// Worker mapping: shard s runs on lane s % lanes; lane 0 is the calling
// thread and each helper lane is pinned to one shared_pool() worker
// (ThreadPool::submit_to), so a shard's state stays cache-warm on the same
// OS thread across every epoch of a run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::sim {

using ShardId = std::uint32_t;

/// Assignment of named simulation domains (an Ssu, an FsNamespace, a
/// FlowNetwork zone) to shards. Domains are dense indices so scenarios can
/// address them in O(1); names are optional labels for diagnostics and
/// name-based lookup. Reassigning domains changes which shard's queue their
/// events land in — and therefore the merged replay stream — while the
/// *shard count* of the engine does not (see the header comment).
class ShardMap {
 public:
  /// `domains` domains spread round-robin over `shards` shards
  /// (domain i -> shard i % shards). Both must be >= 1.
  ShardMap(std::size_t domains, std::size_t shards);

  std::size_t domains() const { return assign_.size(); }
  std::size_t shards() const { return shards_; }

  ShardId shard_of(std::size_t domain) const;
  void reassign(std::size_t domain, ShardId shard);

  /// Optional diagnostic label ("ssu-17", "namespace-atlas2", "fgr-zone-3").
  void label(std::size_t domain, std::string name);
  const std::string& name_of(std::size_t domain) const;
  /// Domain index for a label, or npos when unknown.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(std::string_view name) const;

 private:
  std::vector<ShardId> assign_;
  std::vector<std::string> names_;
  std::size_t shards_ = 1;
};

struct ShardedConfig {
  /// Conservative minimum cross-shard latency (must be > 0). Cross-shard
  /// messages sent during an epoch must land at or after the epoch's end;
  /// net/lookahead.hpp derives safe values from the torus/fabric models.
  SimTime lookahead = kMillisecond;
  /// Max concurrent lanes (caller + pinned pool workers). 0 = auto (one
  /// lane per shared_pool() worker plus the caller); 1 = serial execution
  /// on the calling thread. The merged stream is identical either way.
  std::size_t workers = 0;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(std::size_t shards, ShardedConfig cfg = {});

  std::size_t shards() const { return shards_.size(); }
  SimTime lookahead() const { return cfg_.lookahead; }

  /// The shard's serial engine, for scheduling local events and reading its
  /// clock. Scheduling directly on a shard is only safe from that shard's
  /// own events (or before/after run()); everything crossing shards must go
  /// through schedule_cross.
  Simulator& shard(ShardId s);
  const Simulator& shard(ShardId s) const;

  /// Send an event from shard `from` to shard `to`, due at absolute time
  /// `when`. Buffered in the (from, to) mailbox and transferred into the
  /// target queue at the next epoch barrier, in canonical (destination,
  /// source shard, FIFO) order. `when` must respect the lookahead contract:
  /// at or after the current epoch's end. A violation throws
  /// std::logic_error naming the shard pair, both times, and the call site
  /// — the sharded-engine form of schedule_at's past-time diagnostic.
  /// Same-shard sends (from == to) are legal and still barrier-deferred, so
  /// the stream stays independent of how domains map onto shards.
  void schedule_cross(ShardId from, ShardId to, SimTime when, EventFn fn,
                      std::source_location loc = std::source_location::current());

  /// Run all shards in lockstep epochs until every queue and mailbox drains
  /// or `until` is passed. Horizon semantics match Simulator::run: events
  /// with time <= `until` execute, and with a finite `until` every shard
  /// clock lands exactly on it. Returns the number of events executed
  /// across all shards. Rethrows the first exception any shard raised
  /// (after the epoch's lanes quiesce).
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// First time at which a cross-shard message may currently land — the end
  /// of the epoch being executed (or of the last one run). 0 before the
  /// first epoch, so setup code can mail freely.
  SimTime epoch_end() const { return epoch_end_; }

  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t cross_messages() const {
    return cross_messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t executed_events() const;
  bool idle() const;

 private:
  struct CrossMsg {
    SimTime when = 0;
    EventFn fn;
    std::uint64_t site = 0;
  };

  /// Transfer buffered mailbox messages into target queues, canonically
  /// ordered. Single-threaded: only called between epochs.
  void drain_mailboxes();
  /// Execute every shard up to the inclusive horizon `h`, in parallel when
  /// configured. Returns events executed; rethrows the first lane error.
  std::uint64_t run_epoch(SimTime h);

  // unique_ptr: shard addresses must be stable — lanes hold references
  // while the vector's buffer would otherwise move on growth. Each element
  // is owned by its shard's lane during an epoch; only the single-threaded
  // barrier code may reach across (spiderlint L9 enforces the closure side
  // of this contract).
  std::vector<std::unique_ptr<Simulator>> shards_ SPIDER_SHARD_OWNED(shard);
  /// Cross-shard mailbox (from * S + to): appended by the sending shard's
  /// events via schedule_cross, drained single-threaded at the barrier.
  std::vector<std::vector<CrossMsg>> outbox_ SPIDER_SHARD_OWNED(barrier);
  ShardedConfig cfg_;
  SimTime epoch_end_ = 0;
  std::uint64_t epochs_ = 0;
  // Atomic: bumped by whichever lane is executing the sending shard's
  // events, concurrently across lanes. The total is lane-order independent,
  // so the stat stays deterministic; relaxed is enough for a counter read
  // only after run() returns.
  std::atomic<std::uint64_t> cross_messages_{0};
};

/// Replay observer fan-in: one ReplayRecorder per shard, merged into the
/// canonical stream ordered by (when, shard, id). Within a shard, records
/// are already sorted by (when, id) — the dispatch order of a serial
/// Simulator — so the merge is well-defined and, like the engine itself,
/// independent of worker count and (empty-)shard count.
class ShardedReplay {
 public:
  /// Attaches a recorder to every shard, replacing prior observers. Must
  /// outlive the engine's runs.
  explicit ShardedReplay(ShardedSimulator& engine);

  struct Record {
    SimTime when = 0;
    ShardId shard = 0;
    EventId id = 0;
    std::uint64_t site = 0;

    bool operator==(const Record&) const = default;
  };

  /// The canonical merged stream.
  std::vector<Record> merged() const;
  /// FNV-1a over (when, shard, id, site) of the merged stream.
  std::uint64_t merged_hash() const;
  /// Site-free variant over (when, shard, id) — line-number independent,
  /// like tools::stream_hash.
  std::uint64_t stream_hash() const;
  /// The merged stream folded exactly as a serial ReplayRecorder folds
  /// (when, id, site). When one shard carries all events (e.g. a serial
  /// workload hosted on shard 0), this equals the serial Simulator run's
  /// event_hash byte-for-byte.
  std::uint64_t serial_equivalent_hash() const;

  const ReplayRecorder& recorder(ShardId s) const { return *recorders_[s]; }
  std::size_t events_recorded() const;

 private:
  // unique_ptr: the simulator's observer is a non-owning FunctionRef bound
  // to each recorder, so recorder addresses must be stable.
  std::vector<std::unique_ptr<ReplayRecorder>> recorders_;
};

}  // namespace spider::sim
