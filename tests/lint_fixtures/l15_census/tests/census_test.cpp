// Fixture for spiderlint rule L15: the test-mention side of the census.
// Naming kGood and kBound here clears their "no test mention" gap;
// kHalfWired and kUnbound are deliberately absent.
#include "fs/kinds.hpp"

namespace fixture {

void exercises_the_wired_kinds() {
  (void)FindingKind::kGood;
  (void)FaultKind::kBound;
}

}  // namespace fixture
