// spiderfsck breach-proof and determinism tests.
//
// Two bars are pinned here:
//   1. Breach-proofing: for every finding kind, a seeded corruption is
//      detected by a dry run, repaired by one repairing pass, and the
//      repaired tree re-checks clean — with every campaign oracle passing
//      again on the repaired state (the inject -> detect -> fsck ->
//      re-run-oracles loop from docs/fsck.md).
//   2. Determinism: the findings list, report JSON, and repaired-state hash
//      are invariant across worker counts (--jobs 1/2/4/8), shard counts,
//      and shard-assignment permutations — parallel fsck output is
//      byte-identical to serial.
//
// The DISABLED_UnrepairedCorruptTreeMustFail test is registered separately
// in tests/CMakeLists.txt with WILL_FAIL: it asserts a corrupt tree checks
// clean, which must fail — pinning that the detectors actually detect (a
// fsck that reports clean on damage would pass every other test here).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/faultplan.hpp"
#include "tools/faultcli/campaign.hpp"
#include "tools/spiderfsck/fsck.hpp"

namespace {

using namespace spider;

// A quiet campaign: background workload and oracle sweeps, no injections.
// Corruption comes from inject_corruption, not the fault plan, so every
// oracle violation observed post-repair is the fsck stage's fault. The
// horizon is long enough for purge sweeps to unlink files (the campaign
// purge window is ~173s), so the op log holds both create and unlink
// records for the journal-facing injections to chew on.
sim::FaultPlan quiet_plan() {
  return sim::parse_fault_plan(R"(
name = "fsck-quiet"
horizon_s = 420
)");
}

constexpr tools::FindingKind kCampaignKinds[] = {
    tools::FindingKind::kBadRecordId,
    tools::FindingKind::kDanglingStripe,
    tools::FindingKind::kJournalMissingCreate,
    tools::FindingKind::kJournalMissingUnlink,
    tools::FindingKind::kJournalGhostUnlink,
    tools::FindingKind::kLiveCountDrift,
    tools::FindingKind::kCreateCountDrift,
    tools::FindingKind::kOrphanObjects,
    tools::FindingKind::kLostObjects,
};

bool has_kind(const tools::FsckReport& report, tools::FindingKind kind) {
  for (const tools::Finding& f : report.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

TEST(FsckBreach, EveryKindIsDetectedRepairedAndOraclesPassAgain) {
  for (const tools::FindingKind kind : kCampaignKinds) {
    SCOPED_TRACE(std::string(tools::finding_kind_name(kind)));
    tools::FaultCampaign campaign(quiet_plan(), 2014);
    const tools::RunVerdict verdict = campaign.run();
    ASSERT_TRUE(verdict.clean()) << tools::verdict_json(verdict);

    Rng rng(7 + static_cast<std::uint64_t>(kind));
    const std::string damage =
        tools::inject_corruption(campaign.fsck_target(), kind, rng);
    ASSERT_FALSE(damage.empty());

    // Detect: a dry run names the injected kind and reports dirty.
    const tools::FsckReport dry =
        tools::run_fsck(campaign.fsck_target(), tools::FsckOptions{});
    EXPECT_FALSE(dry.clean()) << damage;
    EXPECT_TRUE(has_kind(dry, kind))
        << damage << "\n" << tools::fsck_report_json(dry);

    // Repair: one pass converges and all six oracles pass on the repaired
    // state (PR-3 oracle suite re-run via recheck_now()).
    const tools::FaultCampaign::FsckOutcome out = campaign.fsck_and_reverify();
    EXPECT_FALSE(out.report.clean());
    EXPECT_GT(out.report.repairs_applied, 0u);
    EXPECT_TRUE(out.converged) << tools::fsck_report_json(out.report);
    EXPECT_TRUE(out.post_violations.empty())
        << sim::violations_json(out.post_violations);
    EXPECT_TRUE(out.post_clean());
  }
}

TEST(FsckBreach, DneLoadDriftIsDetectedAndRepaired) {
  // The campaign cluster models a single-MDS namespace; the DNE facet is
  // exercised on the synthetic cluster instead.
  tools::SyntheticFs fs = tools::make_synthetic_fs();
  Rng rng(99);
  const std::string damage = tools::inject_corruption(
      fs.target(), tools::FindingKind::kDneLoadDrift, rng);
  ASSERT_FALSE(damage.empty());
  const tools::FsckReport dry = tools::run_fsck(fs.target());
  EXPECT_TRUE(has_kind(dry, tools::FindingKind::kDneLoadDrift));

  tools::FsckOptions repair;
  repair.repair = true;
  EXPECT_FALSE(tools::run_fsck(fs.target(), repair).clean());
  EXPECT_TRUE(tools::run_fsck(fs.target()).clean());
}

TEST(FsckBreach, CleanTreesProduceNoFindings) {
  tools::SyntheticFs fs = tools::make_synthetic_fs();
  const tools::FsckReport report = tools::run_fsck(fs.target());
  EXPECT_TRUE(report.clean()) << tools::fsck_report_json(report);
  EXPECT_EQ(report.slots_scanned, fs.ns->slot_count());
  EXPECT_EQ(report.live_files, fs.ns->live_files());

  tools::FaultCampaign campaign(quiet_plan(), 2014);
  campaign.run();
  const tools::FsckReport campaign_report =
      tools::run_fsck(campaign.fsck_target());
  EXPECT_TRUE(campaign_report.clean())
      << tools::fsck_report_json(campaign_report);
}

// WILL_FAIL pin (see tests/CMakeLists.txt): a corrupt, unrepaired tree must
// NOT check clean. If a detector regresses into reporting clean, this test
// starts passing and the WILL_FAIL registration fails the build.
TEST(FsckBreach, DISABLED_UnrepairedCorruptTreeMustFail) {
  tools::SyntheticFs fs = tools::make_synthetic_fs();
  Rng rng(13);
  for (const tools::FindingKind kind : kCampaignKinds) {
    tools::inject_corruption(fs.target(), kind, rng);
  }
  const tools::FsckReport report = tools::run_fsck(fs.target());
  EXPECT_TRUE(report.clean()) << "corrupt tree correctly detected as dirty:\n"
                              << tools::fsck_report_json(report);
}

// --- determinism / metamorphic ---------------------------------------------

/// One deterministically corrupted synthetic tree (fresh copy per call —
/// repairs mutate, so every configuration must start from identical state).
tools::SyntheticFs corrupted_fs() {
  tools::SyntheticFs fs = tools::make_synthetic_fs();
  Rng rng(4242);
  for (const tools::FindingKind kind : kCampaignKinds) {
    tools::inject_corruption(fs.target(), kind, rng);
  }
  Rng dne_rng(4243);
  tools::inject_corruption(fs.target(), tools::FindingKind::kDneLoadDrift,
                           dne_rng);
  return fs;
}

TEST(FsckDeterminism, FindingsInvariantAcrossJobs) {
  tools::SyntheticFs fs = corrupted_fs();
  const tools::FsckReport serial = tools::run_fsck(fs.target());
  ASSERT_FALSE(serial.clean());
  const std::string serial_json = tools::fsck_report_json(serial);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    tools::FsckOptions options;
    options.jobs = jobs;
    const tools::FsckReport report = tools::run_fsck(fs.target(), options);
    EXPECT_EQ(report.findings_hash, serial.findings_hash) << "jobs=" << jobs;
    EXPECT_EQ(tools::fsck_report_json(report), serial_json) << "jobs=" << jobs;
  }
}

TEST(FsckDeterminism, FindingsInvariantAcrossShardAssignment) {
  tools::SyntheticFs fs = corrupted_fs();
  const std::string serial_json =
      tools::fsck_report_json(tools::run_fsck(fs.target()));
  for (const std::size_t shards : {1u, 2u, 5u, 8u, 13u}) {
    for (const tools::ShardAssignment assignment :
         {tools::ShardAssignment::kContiguous,
          tools::ShardAssignment::kStrided}) {
      tools::FsckOptions options;
      options.jobs = 4;
      options.shards = shards;
      options.assignment = assignment;
      const tools::FsckReport report = tools::run_fsck(fs.target(), options);
      EXPECT_EQ(tools::fsck_report_json(report), serial_json)
          << "shards=" << shards << " strided="
          << (assignment == tools::ShardAssignment::kStrided);
    }
  }
}

TEST(FsckDeterminism, RepairedStateHashMatchesSerialAtAnyFanout) {
  // Reference: serial repair.
  tools::SyntheticFs reference = corrupted_fs();
  tools::FsckOptions serial;
  serial.repair = true;
  const tools::FsckReport serial_report =
      tools::run_fsck(reference.target(), serial);
  ASSERT_TRUE(tools::run_fsck(reference.target()).clean());

  for (const std::size_t jobs : {2u, 4u, 8u}) {
    for (const tools::ShardAssignment assignment :
         {tools::ShardAssignment::kContiguous,
          tools::ShardAssignment::kStrided}) {
      tools::SyntheticFs fs = corrupted_fs();
      tools::FsckOptions options;
      options.repair = true;
      options.jobs = jobs;
      options.shards = 5;
      options.assignment = assignment;
      const tools::FsckReport report = tools::run_fsck(fs.target(), options);
      EXPECT_EQ(report.state_hash, serial_report.state_hash)
          << "jobs=" << jobs;
      EXPECT_EQ(tools::fsck_state_hash(fs.target()),
                tools::fsck_state_hash(reference.target()))
          << "jobs=" << jobs;
      EXPECT_TRUE(tools::run_fsck(fs.target()).clean()) << "jobs=" << jobs;
    }
  }
}

TEST(FsckDeterminism, CampaignFsckStageIsJobInvariant) {
  // The spiderfault --fsck path: verdict JSON (repair section included) is
  // identical whether the fsck scan runs serial or fanned out.
  tools::FsckOptions serial_fsck;
  const tools::RunVerdict serial =
      tools::run_campaign_checked(quiet_plan(), 2014, {}, serial_fsck);
  ASSERT_TRUE(serial.repair.ran);
  EXPECT_TRUE(serial.repair.post_clean);
  tools::FsckOptions fanned_fsck;
  fanned_fsck.jobs = 8;
  const tools::RunVerdict fanned =
      tools::run_campaign_checked(quiet_plan(), 2014, {}, fanned_fsck);
  EXPECT_EQ(tools::verdict_json(serial), tools::verdict_json(fanned));
}

// --- journal-cursor replay (fs/recovery) ------------------------------------

TEST(FsckJournal, RepairAdvancesCommittedCursorOverBackfilledTail) {
  tools::SyntheticFs fs = tools::make_synthetic_fs();
  const std::uint64_t committed_before = fs.journal->committed();
  Rng rng(5);
  ASSERT_FALSE(tools::inject_corruption(
                   fs.target(), tools::FindingKind::kJournalMissingCreate, rng)
                   .empty());
  tools::FsckOptions repair;
  repair.repair = true;
  const tools::FsckReport report = tools::run_fsck(fs.target(), repair);
  EXPECT_TRUE(has_kind(report, tools::FindingKind::kJournalMissingCreate));
  // The backfilled create landed past the old cursor and the cursor replay
  // folded it into the durable prefix.
  EXPECT_GT(report.journal_replayed, 0u);
  EXPECT_EQ(fs.journal->committed(), fs.journal->last_txid());
  EXPECT_GE(fs.journal->committed(), committed_before);
  EXPECT_TRUE(tools::run_fsck(fs.target()).clean());
}

}  // namespace
