// Metadata server model (single MDS per namespace; optional DNE).
//
// Section IV-C: "Lustre supports a single metadata server per namespace.
// This limitation cannot sustain the necessary rate of concurrent file
// system metadata operations for the OLCF user workloads" — the reason
// Spider was split into multiple namespaces, and why the paper recommends
// using DNE (Lustre 2.4 Distributed Namespace) *and* multiple namespaces
// concurrently. The model is an M/M/c-style queueing abstraction: a
// capacity in weighted ops/sec, per-op-class costs, and latency that blows
// up as offered load approaches capacity.
//
// Per the user best practices (Section VII), stat() on a striped file must
// consult every OST holding data, so its cost scales with stripe count —
// the reason small files should use stripe count 1.
#pragma once

#include <cstdint>

namespace spider::fs {

enum class MetaOp { kCreate, kStat, kUnlink, kLookup, kSetattr };

struct MdsParams {
  /// Weighted metadata ops/sec of one MDT (getattr-class unit cost).
  double base_ops_per_sec = 20e3;
  /// DNE shards (metadata targets); 1 = classic single MDS.
  std::size_t dne_shards = 1;
  /// DNE scaling efficiency per extra shard (cross-shard ops cost some).
  double dne_efficiency = 0.85;
  /// Relative cost per op class, in getattr units.
  double create_cost = 2.5;
  double stat_cost = 1.0;
  double unlink_cost = 2.0;
  double lookup_cost = 0.6;
  double setattr_cost = 1.2;
  /// Extra stat cost per data-holding OST beyond the first (glimpse RPCs).
  double stat_per_stripe_cost = 0.35;
};

/// Latency multiplier reported at saturation: the M/M/1 waiting time is
/// unbounded as rho -> 1, so the model pins "saturated" at three decades
/// above the bare service time instead of returning infinity.
inline constexpr double kSaturatedLatencyFactor = 1000.0;

class Mds {
 public:
  explicit Mds(const MdsParams& params = {});

  const MdsParams& params() const { return params_; }

  /// Aggregate capacity in weighted ops/sec across DNE shards.
  double capacity_ops() const;

  /// Weighted cost of one op (stat cost grows with stripe count).
  double op_cost(MetaOp op, std::uint32_t stripe_count = 1) const;

  /// Record an op (telemetry used by LustreDU comparisons and monitoring).
  void account(MetaOp op, std::uint32_t stripe_count = 1);
  double accounted_load() const { return accounted_; }
  std::uint64_t ops_seen() const { return ops_seen_; }
  void reset_accounting();

  /// Stall the server (fault injection): while stalled, throughput is 0 and
  /// latency saturates. Accounting still records offered ops (they queue).
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }

  /// Throughput achieved under an offered weighted load (ops-units/sec):
  /// min(offered, capacity); 0 while stalled.
  double throughput(double offered) const;

  /// Mean response time under offered weighted load, seconds. M/M/1-style:
  /// service 1/mu, waiting grows as rho/(1-rho); saturates to a large value
  /// at/over capacity rather than infinity.
  double mean_latency_s(double offered) const;

 private:
  MdsParams params_;
  double accounted_ = 0.0;
  std::uint64_t ops_seen_ = 0;
  bool stalled_ = false;
};

}  // namespace spider::fs
