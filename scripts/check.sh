#!/usr/bin/env bash
# Correctness gate: lint + sanitized builds + deterministic-replay
# verification.
#
# Stage 0 runs the static-analysis pass (spiderlint, plus clang-tidy when
# installed — see docs/static-analysis.md) and proves spiderlint --jobs
# emits bytes identical to the serial run; it is the cheapest stage, so it
# goes first. Then the address and undefined sanitizer presets build and run
# the full test suite, and finally the deterministic-replay test runs twice
# in fresh processes and the replay hashes are diffed — proving the
# simulation core is reproducible across process boundaries, not just
# within one. A fault-campaign smoke stage then replays the plans/ smoke
# scenarios under ASan and diffs the JSON verdicts the same way, a
# parallel-campaign stage proves spiderfault --jobs=8 emits bytes identical
# to the serial run, a sharded-engine stage proves --shards=1/2/8 does too
# (docs/parallel-engine.md), a fsck stage runs the corrupt -> detect ->
# repair -> re-verify loop under ASan (spiderfsck at --jobs 1/2/4/8 plus
# spiderfault --fsck over the smoke plans, docs/fsck.md), a changelog-churn
# stage runs the billion-file churn -> crash -> replay -> oracle loop under
# ASan (spiderfault --churn, docs/metadata-changelog.md), and a bench-smoke
# stage runs the engine throughput loops against the checked-in baselines
# (scripts/bench.sh --smoke).
#
# Usage: scripts/check.sh [build-root]   (default: build-check/)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_ROOT="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# The lint stage is load-bearing: a missing spiderlint binary must fail the
# gate loudly, never silently degrade into a lint-free run.
echo "=== [lint] spiderlint + clang-tidy ==="
BUILD_DIR="${BUILD_ROOT}/lint" scripts/lint.sh
if [ ! -x "${BUILD_ROOT}/lint/tools/spiderlint" ]; then
  echo "FATAL: lint stage finished without a spiderlint binary at" \
       "${BUILD_ROOT}/lint/tools/spiderlint — the gate cannot vouch for" \
       "this tree" >&2
  exit 2
fi

# Parallel-lint determinism: the per-file pass and the whole-program index
# fan out over the shared pool, but findings merge in canonical path order,
# so stdout must be byte-identical at every --jobs count — the same
# guarantee the fsck and campaign stages prove for their tools.
LINT_BIN="${BUILD_ROOT}/lint/tools/spiderlint"
echo "=== spiderlint --jobs determinism (1/2/4/8 vs serial) ==="
for LINT_JOBS in 1 2 4 8; do
  "${LINT_BIN}" --jobs="${LINT_JOBS}" --format=json src tests bench \
      > "${BUILD_ROOT}/lint_jobs${LINT_JOBS}.json" || true
  if ! diff "${BUILD_ROOT}/lint_jobs1.json" \
            "${BUILD_ROOT}/lint_jobs${LINT_JOBS}.json"; then
    echo "FAIL: spiderlint --jobs=${LINT_JOBS} diverged from serial" >&2
    exit 1
  fi
done

run_preset() {
  local preset="$1"
  local dir="${BUILD_ROOT}/${preset}"
  echo "=== [${preset}] configure + build ==="
  cmake -B "${dir}" -S . -DSPIDER_SANITIZE="${preset}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${preset}] ctest (label: sanitized) ==="
  ctest --test-dir "${dir}" -L sanitized --output-on-failure -j "${JOBS}"
}

run_preset address
run_preset undefined

# Cross-process replay determinism: the replay test prints a
# "replay-hash: ..." line; two fresh processes must print the same value.
# This catches cross-process nondeterminism (ASLR-dependent hashing,
# uninitialized reads) that in-process same-seed comparison cannot see.
REPLAY_BIN="${BUILD_ROOT}/address/tests/replay_test"
echo "=== cross-process replay determinism ==="
"${REPLAY_BIN}" --gtest_filter='Replay.SameSeedRunsAreBitIdentical' \
    | tee "${BUILD_ROOT}/replay_run1.log"
"${REPLAY_BIN}" --gtest_filter='Replay.SameSeedRunsAreBitIdentical' \
    | tee "${BUILD_ROOT}/replay_run2.log"
if ! diff <(grep '^replay-hash:' "${BUILD_ROOT}/replay_run1.log") \
          <(grep '^replay-hash:' "${BUILD_ROOT}/replay_run2.log"); then
  echo "FAIL: replay hashes diverged across processes" >&2
  exit 1
fi
if ! grep -q '^replay-hash:' "${BUILD_ROOT}/replay_run1.log"; then
  echo "FAIL: replay test emitted no hash line" >&2
  exit 1
fi

# Fault-campaign smoke: the ASan-built spiderfault runs the three smoke
# plans under two seeds each, twice in fresh processes, and the full JSON
# verdict streams (replay hashes included) must be byte-identical — the
# campaign engine's cross-process determinism guarantee from
# docs/fault-injection.md. Every run must also come back oracle-clean.
FAULT_BIN="${BUILD_ROOT}/address/tools/spiderfault"
echo "=== fault-campaign smoke (3 plans x 2 seeds, ASan) ==="
"${FAULT_BIN}" --seeds=2 \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    | tee "${BUILD_ROOT}/faults_run1.jsonl"
"${FAULT_BIN}" --seeds=2 \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    > "${BUILD_ROOT}/faults_run2.jsonl"
if ! diff "${BUILD_ROOT}/faults_run1.jsonl" "${BUILD_ROOT}/faults_run2.jsonl"
then
  echo "FAIL: fault-campaign verdicts diverged across processes" >&2
  exit 1
fi
if grep -q '"clean": false' "${BUILD_ROOT}/faults_run1.jsonl"; then
  echo "FAIL: fault-campaign smoke found oracle violations" >&2
  exit 1
fi

# Parallel-campaign determinism: --jobs=N buffers verdicts and emits them in
# enumeration order, so its stdout must be byte-identical to the serial run
# — including mutation fan-out, which exercises the job-list enumeration.
echo "=== parallel fault campaigns (--jobs=8 vs serial, ASan) ==="
"${FAULT_BIN}" --seeds=2 --mutations=3 \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    > "${BUILD_ROOT}/faults_serial.jsonl"
"${FAULT_BIN}" --seeds=2 --mutations=3 --jobs=8 \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    > "${BUILD_ROOT}/faults_jobs8.jsonl"
if ! diff "${BUILD_ROOT}/faults_serial.jsonl" \
          "${BUILD_ROOT}/faults_jobs8.jsonl"; then
  echo "FAIL: spiderfault --jobs=8 output diverged from the serial run" >&2
  exit 1
fi

# Sharded-engine determinism: the same campaigns hosted on the epoch engine
# (docs/parallel-engine.md) must emit bytes identical to the serial
# Simulator at every shard count — the barrier/mailbox machinery is
# invisible in the verdicts, replay hashes included.
echo "=== sharded fault campaigns (--shards=1/2/8 vs serial, ASan) ==="
for SHARDS in 1 2 8; do
  "${FAULT_BIN}" --seeds=2 --shards="${SHARDS}" \
      plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
      plans/smoke_netstorm.fplan \
      > "${BUILD_ROOT}/faults_shards${SHARDS}.jsonl"
done
"${FAULT_BIN}" --seeds=2 \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    > "${BUILD_ROOT}/faults_shards_serial.jsonl"
for SHARDS in 1 2 8; do
  if ! diff "${BUILD_ROOT}/faults_shards_serial.jsonl" \
            "${BUILD_ROOT}/faults_shards${SHARDS}.jsonl"; then
    echo "FAIL: spiderfault --shards=${SHARDS} diverged from the serial run" >&2
    exit 1
  fi
done

# Corrupt -> fsck -> oracle loop under ASan (docs/fsck.md): spiderfsck must
# flag a seeded-corrupt tree (dry run exits 1), repair it in one pass (exit
# 0), and emit byte-identical JSON at every --jobs fan-out; spiderfault
# --fsck then runs the repair stage after every plans/ campaign and each
# verdict's repair section must report post_repair_clean — with the
# --fsck-jobs=8 output byte-identical to serial.
FSCK_BIN="${BUILD_ROOT}/address/tools/spiderfsck"
echo "=== fsck corrupt/repair loop (ASan) ==="
if "${FSCK_BIN}" --corrupt=10 --dry-run --json \
    > "${BUILD_ROOT}/fsck_dry.json" 2>/dev/null; then
  echo "FAIL: spiderfsck --dry-run reported a corrupt tree clean" >&2
  exit 1
fi
if ! "${FSCK_BIN}" --corrupt=10 --json \
    > "${BUILD_ROOT}/fsck_repair.json" 2>/dev/null; then
  echo "FAIL: spiderfsck repair did not converge on the corrupt tree" >&2
  exit 1
fi
for FSCK_JOBS in 1 2 4 8; do
  "${FSCK_BIN}" --corrupt=10 --dry-run --json --jobs="${FSCK_JOBS}" \
      > "${BUILD_ROOT}/fsck_jobs${FSCK_JOBS}.json" 2>/dev/null || true
  if ! diff "${BUILD_ROOT}/fsck_jobs1.json" \
            "${BUILD_ROOT}/fsck_jobs${FSCK_JOBS}.json"; then
    echo "FAIL: spiderfsck --jobs=${FSCK_JOBS} diverged from serial" >&2
    exit 1
  fi
done
echo "=== campaign fsck stage (spiderfault --fsck, ASan) ==="
"${FAULT_BIN}" --fsck \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    > "${BUILD_ROOT}/faults_fsck.jsonl"
"${FAULT_BIN}" --fsck --fsck-jobs=8 \
    plans/smoke_rebuild.fplan plans/smoke_failover.fplan \
    plans/smoke_netstorm.fplan \
    > "${BUILD_ROOT}/faults_fsck_jobs8.jsonl"
if ! diff "${BUILD_ROOT}/faults_fsck.jsonl" \
          "${BUILD_ROOT}/faults_fsck_jobs8.jsonl"; then
  echo "FAIL: spiderfault --fsck-jobs=8 diverged from the serial fsck" >&2
  exit 1
fi
if grep -q '"post_repair_clean": false' "${BUILD_ROOT}/faults_fsck.jsonl" \
    || ! grep -q '"post_repair_clean": true' \
         "${BUILD_ROOT}/faults_fsck.jsonl"; then
  echo "FAIL: a campaign's repaired state re-checked dirty" >&2
  exit 1
fi

# Changelog churn -> crash -> replay -> oracle loop under ASan
# (docs/metadata-changelog.md): DNE namespaces churn over the sharded
# engine while the incremental purge engine and LustreDU answer from the
# changelog; the consistency oracle audits every epoch barrier and the
# verdict proves the query paths took zero namespace walks. Two fresh
# processes must emit byte-identical verdicts, and the acceptance run
# must clear a billion logical files. The crash variant truncates the
# committed log mid-run and must detect the rewound cursor and resync.
echo "=== changelog churn -> crash -> replay -> oracle (ASan) ==="
"${FAULT_BIN}" --churn --churn-min-logical=1000000000 \
    | tee "${BUILD_ROOT}/churn_run1.json"
"${FAULT_BIN}" --churn --churn-min-logical=1000000000 \
    > "${BUILD_ROOT}/churn_run2.json"
if ! diff "${BUILD_ROOT}/churn_run1.json" "${BUILD_ROOT}/churn_run2.json"
then
  echo "FAIL: churn verdicts diverged across processes" >&2
  exit 1
fi
if ! grep -q '"ok": true' "${BUILD_ROOT}/churn_run1.json"; then
  echo "FAIL: changelog churn run was not oracle-clean at 1e9 files" >&2
  exit 1
fi
if ! grep -q '"query_walks": 0' "${BUILD_ROOT}/churn_run1.json"; then
  echo "FAIL: a changelog-era query path walked the namespace" >&2
  exit 1
fi
"${FAULT_BIN}" --churn --churn-crash \
    > "${BUILD_ROOT}/churn_crash.json"
if ! grep -q '"crash_detected": true' "${BUILD_ROOT}/churn_crash.json" \
    || ! grep -q '"ok": true' "${BUILD_ROOT}/churn_crash.json"; then
  echo "FAIL: churn crash variant did not detect + resync cleanly" >&2
  exit 1
fi

# Engine throughput smoke: seconds-long loops, shape-checked against
# ci/bench-baseline-engine.json (0.60x floor). Catches engine-level perf
# collapses — an accidental per-event allocation, a serialized pool — not
# single-digit drift; see docs/performance.md.
echo "=== bench smoke (engine throughput vs baseline) ==="
scripts/bench.sh --smoke "${BUILD_ROOT}/bench"

echo "OK: sanitized suites passed, replay hashes and fault verdicts stable," \
     "parallel and sharded campaigns deterministic, fsck repairs converged," \
     "changelog churn oracle-clean at 1e9 logical files," \
     "bench smoke within baseline"
