file(REMOVE_RECURSE
  "CMakeFiles/bench_c14_scalable_tools.dir/bench_c14_scalable_tools.cpp.o"
  "CMakeFiles/bench_c14_scalable_tools.dir/bench_c14_scalable_tools.cpp.o.d"
  "bench_c14_scalable_tools"
  "bench_c14_scalable_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c14_scalable_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
