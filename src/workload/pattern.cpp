#include "workload/pattern.hpp"

#include <cmath>
#include <stdexcept>

#include "common/distributions.hpp"

namespace spider::workload {

RequestSizeModel::RequestSizeModel(const WorkloadMixParams& mix) : mix_(mix) {
  if (mix_.small_fraction < 0.0 || mix_.small_fraction > 1.0) {
    throw std::invalid_argument("small_fraction must be in [0,1]");
  }
  if (mix_.small_lo >= mix_.small_hi || mix_.large_max_mb == 0) {
    throw std::invalid_argument("bad size-mode bounds");
  }
}

Bytes RequestSizeModel::sample(Rng& rng) const {
  if (rng.chance(mix_.small_fraction)) {
    // Small mode: log-uniform between the bounds (heavier near the bottom,
    // as the trace study showed for sub-16 KB metadata-ish requests).
    const double lo = std::log2(static_cast<double>(mix_.small_lo));
    const double hi = std::log2(static_cast<double>(mix_.small_hi));
    return static_cast<Bytes>(std::exp2(rng.uniform(lo, hi)));
  }
  // Large mode: exact multiples of 1 MB, Zipf-weighted toward 1 MB.
  const Zipf zipf(mix_.large_max_mb, mix_.large_zipf_s);
  const std::size_t k = zipf.sample(rng) + 1;
  return static_cast<Bytes>(k) * 1_MB;
}

block::IoDir sample_dir(const WorkloadMixParams& mix, Rng& rng) {
  return rng.chance(mix.write_fraction) ? block::IoDir::kWrite
                                        : block::IoDir::kRead;
}

}  // namespace spider::workload
