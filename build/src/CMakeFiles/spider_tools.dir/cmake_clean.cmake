file(REMOVE_RECURSE
  "CMakeFiles/spider_tools.dir/tools/capacity_planner.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/capacity_planner.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/health.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/health.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/iosi.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/iosi.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/libpio.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/libpio.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/lustredu.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/lustredu.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/ptools.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/ptools.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/release_testing.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/release_testing.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/rfp.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/rfp.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/scheduler.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/scheduler.cpp.o.d"
  "CMakeFiles/spider_tools.dir/tools/slowdisk.cpp.o"
  "CMakeFiles/spider_tools.dir/tools/slowdisk.cpp.o.d"
  "libspider_tools.a"
  "libspider_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
