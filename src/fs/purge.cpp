#include "fs/purge.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace spider::fs {

std::string purge_report_json(const PurgeReport& report) {
  std::ostringstream os;
  os << "{\"scanned\":" << report.scanned << ",\"purged\":" << report.purged
     << ",\"freed\":" << report.freed << ",\"mds_ops\":" << report.mds_ops
     << ",\"min_purged_age_s\":";
  if (report.has_min_age()) {
    os << report.min_purged_age_s;
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

PurgeReport run_purge(FsNamespace& ns, sim::SimTime now,
                      const PurgePolicy& policy) {
  PurgeReport report;
  const sim::SimTime window =
      static_cast<sim::SimTime>(policy.window_days * static_cast<double>(sim::kDay));
  const sim::SimTime cutoff = now - window;

  const double mds_before = ns.mds().accounted_load();
  std::vector<FileId> victims;
  ns.for_each_file([&](const FileRecord& rec) {
    ++report.scanned;
    if (rec.project == policy.exempt_project) return;
    const sim::SimTime last_touch =
        std::max(rec.atime, std::max(rec.mtime, rec.ctime));
    if (last_touch < cutoff) victims.push_back(rec.id);
  });
  for (FileId id : victims) {
    const FileRecord& rec = ns.file(id);
    const Bytes size = rec.size;
    const sim::SimTime last_touch =
        std::max(rec.atime, std::max(rec.mtime, rec.ctime));
    if (ns.unlink(id, now)) {
      ++report.purged;
      report.freed += size;
      report.min_purged_age_s =
          std::min(report.min_purged_age_s, sim::to_seconds(now - last_touch));
    }
  }
  report.mds_ops = ns.mds().accounted_load() - mds_before;
  return report;
}

void schedule_daily_purge(sim::Simulator& sim, FsNamespace& ns,
                          const PurgePolicy& policy, int days,
                          double hour_of_day, std::vector<PurgeReport>* reports) {
  const auto start_day = sim.now() / sim::kDay;
  for (int d = 0; d < days; ++d) {
    const sim::SimTime when =
        (start_day + 1 + d) * sim::kDay +
        static_cast<sim::SimTime>(hour_of_day * static_cast<double>(sim::kHour));
    sim.schedule_at(when, [&sim, &ns, policy, reports] {
      const auto report = run_purge(ns, sim.now(), policy);
      if (reports) reports->push_back(report);
    });
  }
}

// --- incremental purge (changelog consumer) ---------------------------------

PurgeRules rules_from_policy(const PurgePolicy& policy) {
  PurgeRules rules;
  rules.classes.push_back(PurgeClass{policy.window_days, 0, UINT32_MAX});
  rules.exempt_project = policy.exempt_project;
  return rules;
}

PurgeEngine::PurgeEngine(FsNamespace& ns, const OpLog& log, PurgeRules rules)
    : ns_(ns), log_(log), rules_(std::move(rules)) {}

ConsumeResult PurgeEngine::poll() {
  return cursor_.consume(log_, [this](const OpRecord& rec) { apply(rec); });
}

void PurgeEngine::apply(const OpRecord& rec) {
  switch (rec.kind) {
    case OpKind::kCreate: {
      Tracked& t = files_[rec.file];
      t.project = rec.project;
      t.size = rec.size;
      t.last_touch = rec.at;
      by_age_.insert({rec.at, rec.file});
      break;
    }
    case OpKind::kUnlink:
      drop(rec.file);
      break;
    case OpKind::kSetattr:
      touch(rec.file, rec.at);
      break;
    case OpKind::kResize: {
      const auto it = files_.find(rec.file);
      if (it == files_.end()) break;
      it->second.size = rec.size;
      touch(rec.file, rec.at);
      break;
    }
    case OpKind::kSetProject: {
      const auto it = files_.find(rec.file);
      if (it == files_.end()) break;
      it->second.project = rec.project;
      touch(rec.file, rec.at);
      break;
    }
  }
}

void PurgeEngine::touch(std::uint64_t file, std::int64_t at) {
  const auto it = files_.find(file);
  if (it == files_.end()) return;
  if (at <= it->second.last_touch) return;  // records replay in txid order
  by_age_.erase({it->second.last_touch, file});
  it->second.last_touch = at;
  by_age_.insert({at, file});
}

void PurgeEngine::drop(std::uint64_t file) {
  const auto it = files_.find(file);
  if (it == files_.end()) return;  // already swept locally; record is the echo
  by_age_.erase({it->second.last_touch, file});
  files_.erase(it);
}

PurgeReport PurgeEngine::sweep(sim::SimTime now) {
  PurgeReport report;
  if (rules_.classes.empty()) return report;
  const double mds_before = ns_.mds().accounted_load();

  // Only files older than the loosest (smallest) class window can match
  // any class, so the candidate set is a prefix of the age index.
  double min_window_days = rules_.classes.front().window_days;
  for (const PurgeClass& c : rules_.classes) {
    min_window_days = std::min(min_window_days, c.window_days);
  }
  const sim::SimTime loosest_cutoff =
      now - static_cast<sim::SimTime>(min_window_days *
                                      static_cast<double>(sim::kDay));

  std::vector<std::pair<std::int64_t, std::uint64_t>> victims;
  for (const auto& [last_touch, file] : by_age_) {
    if (last_touch >= loosest_cutoff) break;
    ++report.scanned;
    const Tracked& t = files_.at(file);
    if (t.project == rules_.exempt_project) continue;
    bool eligible = false;
    for (const PurgeClass& c : rules_.classes) {
      const sim::SimTime cutoff =
          now - static_cast<sim::SimTime>(c.window_days *
                                          static_cast<double>(sim::kDay));
      if (last_touch >= cutoff) continue;
      if (t.size < c.min_size) continue;
      if (c.project != UINT32_MAX && t.project != c.project) continue;
      eligible = true;
      break;
    }
    if (eligible) victims.push_back({last_touch, file});
  }

  for (const auto& [last_touch, file] : victims) {
    const auto it = files_.find(file);
    if (it == files_.end()) continue;
    const Bytes size = it->second.size;
    // The unlink lands in the attached changelog like any other mutation;
    // our own next poll() sees it as a harmless echo (drop() of a file
    // already dropped below).
    if (ns_.unlink(file, now)) {
      ++report.purged;
      report.freed += size;
      report.min_purged_age_s =
          std::min(report.min_purged_age_s, sim::to_seconds(now - last_touch));
    }
    // Either way the table entry is stale now — a failed unlink means the
    // namespace no longer knows the id, and the log will reconcile us.
    by_age_.erase({last_touch, file});
    files_.erase(file);
  }

  report.mds_ops = ns_.mds().accounted_load() - mds_before;
  return report;
}

ConsumeResult PurgeEngine::rebuild() {
  files_.clear();
  by_age_.clear();
  cursor_.reset();
  return poll();
}

}  // namespace spider::fs
