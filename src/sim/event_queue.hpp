// Cancellable discrete-event queue, allocation-free on the hot path.
//
// A binary heap keyed on (time, id) gives deterministic FIFO ordering for
// simultaneous events. Callbacks live in a slot slab — a vector of fixed
// slots recycled through an intrusive free list — instead of the old
// unordered_map<EventId, Pending>, so schedule/cancel/pop never hash and
// (for captures within sim::Task's 48-byte inline buffer) never touch the
// heap allocator. Staleness is generation-checked: every heap entry carries
// its slot index, and the slot remembers which EventId currently owns it, so
// a recycled slot can never satisfy a stale entry.
//
// cancel(id) resolves id -> slot through a paged direct-index (ids are
// issued densely, so id -> slot is an array lookup inside a 1024-entry
// page); fully dead pages are freed and the page window's dead prefix is
// trimmed, which keeps index memory proportional to the *span* of live ids,
// not the total ever scheduled. Cancellation stays lazy for the heap entry
// but eager for the callback: cancel() destroys the stored Task immediately
// (captured state is released right away) and stale heap entries are skipped
// at pop time; when stale entries outnumber live ones the heap is compacted
// in place, bounding memory under cancel-heavy flow rescheduling.
//
// Each event additionally carries a `site` hash identifying the scheduling
// call site; the replay harness (sim/replay.hpp) folds it into the event
// stream hash so divergent runs are localized to the first mismatching
// (time, id, site) triple. EventIds are issued 1, 2, 3, ... exactly as
// before the slab rewrite — replay stream hashes over (time, id, site) are
// byte-identical across the two engines (pinned by the golden traces).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace spider::sim {

using EventId = std::uint64_t;
using EventFn = Task;

class EventQueue {
 public:
  /// An event popped for execution.
  struct Fired {
    SimTime when = 0;
    EventId id = 0;
    std::uint64_t site = 0;  ///< hash of the scheduling call site
    EventFn fn;
  };

  /// Schedule fn at absolute time `when`. Returns an id usable with cancel().
  /// `site` is an opaque call-site hash recorded for replay (0 if untracked).
  EventId schedule(SimTime when, EventFn fn, std::uint64_t site = 0);

  /// Cancel a pending event. The callback is destroyed immediately; the heap
  /// entry is dropped lazily (or at the next compaction). Cancelling an
  /// already-fired or unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  /// Heap entries currently held, including cancelled-but-not-yet-dropped
  /// ones. Exposed so tests can bound memory under cancel-heavy load.
  std::size_t heap_size() const { return heap_.size(); }
  /// Heap storage currently reserved. Exposed so tests can pin the
  /// compaction policy: oscillating cancel churn must not realloc-thrash.
  std::size_t heap_capacity() const { return heap_.capacity(); }

  /// Earliest pending event time; only valid when !empty().
  SimTime next_time() const;

  /// Pop the earliest event. Only valid when !empty().
  Fired pop();

 private:
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  struct Entry {
    SimTime when;
    EventId id;
    std::uint32_t slot;  ///< slab index; validated against Slot::id at pop
  };

  /// One slab cell. `id` is the generation check: 0 when free, otherwise the
  /// event currently occupying the slot — a stale heap entry whose id no
  /// longer matches is skipped without ever touching the callback.
  struct Slot {
    EventFn fn;
    EventId id = 0;
    std::uint64_t site = 0;
    std::uint32_t next_free = kNullSlot;
  };

  // id -> slot direct index, paged so dead ranges can be released. Page p
  // covers ids [p << kPageBits, (p + 1) << kPageBits).
  static constexpr std::size_t kPageBits = 10;
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;
  static constexpr std::size_t kPageMask = kPageSize - 1;
  struct IdPage {
    std::uint32_t slot[kPageSize];
    std::uint32_t live = 0;
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.id > b.id;
  }

  bool entry_live(const Entry& e) const {
    return slots_[e.slot].id == e.id;
  }

  /// Pointer to the index cell for `id`, or nullptr when the id was never
  /// issued or its page has already been released (everything in it dead).
  std::uint32_t* index_cell(EventId id);
  /// Mark `id` dead in the index; free its page when nothing in the page is
  /// live anymore and trim the dead prefix of the page window.
  void release_id(EventId id);
  /// Return the slot for a finished/cancelled event to the free list.
  void release_slot(std::uint32_t s);

  void drop_cancelled() const;
  /// Drop every stale heap entry and re-heapify. Called when stale entries
  /// outnumber live ones, so total work stays amortized O(log n) per event.
  void compact();

  mutable std::vector<Entry> heap_;  // min-heap via `later` comparator
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNullSlot;
  std::deque<std::unique_ptr<IdPage>> pages_;  // window [base_page_, ...)
  std::uint64_t base_page_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace spider::sim
