file(REMOVE_RECURSE
  "CMakeFiles/bench_a9_scale_testing.dir/bench_a9_scale_testing.cpp.o"
  "CMakeFiles/bench_a9_scale_testing.dir/bench_a9_scale_testing.cpp.o.d"
  "bench_a9_scale_testing"
  "bench_a9_scale_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_scale_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
