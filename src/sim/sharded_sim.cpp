#include "sim/sharded_sim.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"

namespace spider::sim {

namespace {

constexpr SimTime kInfiniteHorizon = std::numeric_limits<SimTime>::max();

std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// --- ShardMap ---------------------------------------------------------------

ShardMap::ShardMap(std::size_t domains, std::size_t shards) : shards_(shards) {
  if (domains == 0) throw std::invalid_argument("ShardMap: domains must be >= 1");
  if (shards == 0) throw std::invalid_argument("ShardMap: shards must be >= 1");
  assign_.resize(domains);
  names_.resize(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    assign_[d] = static_cast<ShardId>(d % shards);
  }
}

ShardId ShardMap::shard_of(std::size_t domain) const {
  if (domain >= assign_.size()) {
    throw std::out_of_range("ShardMap::shard_of: unknown domain");
  }
  return assign_[domain];
}

void ShardMap::reassign(std::size_t domain, ShardId shard) {
  if (domain >= assign_.size()) {
    throw std::out_of_range("ShardMap::reassign: unknown domain");
  }
  if (shard >= shards_) {
    throw std::out_of_range("ShardMap::reassign: shard out of range");
  }
  assign_[domain] = shard;
}

void ShardMap::label(std::size_t domain, std::string name) {
  if (domain >= names_.size()) {
    throw std::out_of_range("ShardMap::label: unknown domain");
  }
  names_[domain] = std::move(name);
}

const std::string& ShardMap::name_of(std::size_t domain) const {
  if (domain >= names_.size()) {
    throw std::out_of_range("ShardMap::name_of: unknown domain");
  }
  return names_[domain];
}

std::size_t ShardMap::find(std::string_view name) const {
  for (std::size_t d = 0; d < names_.size(); ++d) {
    if (names_[d] == name) return d;
  }
  return npos;
}

// --- ShardedSimulator -------------------------------------------------------

ShardedSimulator::ShardedSimulator(std::size_t shards, ShardedConfig cfg)
    : cfg_(cfg) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  }
  if (cfg_.lookahead <= 0) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be positive");
  }
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  outbox_.resize(shards * shards);
}

Simulator& ShardedSimulator::shard(ShardId s) {
  if (s >= shards_.size()) {
    throw std::out_of_range("ShardedSimulator::shard: index out of range");
  }
  return *shards_[s];
}

const Simulator& ShardedSimulator::shard(ShardId s) const {
  if (s >= shards_.size()) {
    throw std::out_of_range("ShardedSimulator::shard: index out of range");
  }
  return *shards_[s];
}

void ShardedSimulator::schedule_cross(ShardId from, ShardId to, SimTime when,
                                      EventFn fn, std::source_location loc) {
  const std::size_t s = shards_.size();
  if (from >= s || to >= s) {
    throw std::out_of_range("schedule_cross: shard index out of range");
  }
  if (when < epoch_end_) {
    // The sharded form of schedule_at's past-time diagnostic: a message due
    // before the barrier could land behind another shard's clock, which is
    // exactly the causality violation the lookahead contract rules out.
    std::ostringstream msg;
    msg << "schedule_cross: lookahead contract breach from shard " << from
        << " to shard " << to << " (when=" << when
        << "ns, current epoch ends at " << epoch_end_
        << "ns, lookahead=" << cfg_.lookahead << "ns; scheduled from "
        << source_basename(loc.file_name()) << ":" << loc.line() << ")";
    throw std::logic_error(msg.str());
  }
  // Only the lane currently executing shard `from` (or the caller outside a
  // run) touches this cell, so the mailbox write needs no lock.
  outbox_[from * s + to].push_back(CrossMsg{when, std::move(fn), site_hash(loc)});
  cross_messages_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedSimulator::drain_mailboxes() {
  const std::size_t s = shards_.size();
  // Canonical (destination, source shard, FIFO) order: target-local
  // EventIds depend only on this order, never on which lane finished first.
  for (std::size_t to = 0; to < s; ++to) {
    for (std::size_t from = 0; from < s; ++from) {
      std::vector<CrossMsg>& box = outbox_[from * s + to];
      for (CrossMsg& msg : box) {
        shards_[to]->schedule_sited(msg.when, std::move(msg.fn), msg.site);
      }
      box.clear();
    }
  }
}

std::uint64_t ShardedSimulator::run_epoch(SimTime h) {
  const std::size_t s = shards_.size();
  ThreadPool& pool = shared_pool();
  std::size_t lanes = cfg_.workers == 0 ? pool.size() + 1 : cfg_.workers;
  lanes = std::min({lanes, s, pool.size() + 1});
  // Serial path: explicit request, nothing to parallelize, or a nested call
  // from a pool worker (blocking on pinned lanes from inside the pool could
  // starve — run inline, which is deterministic anyway).
  if (lanes <= 1 || pool.on_worker_thread()) {
    std::uint64_t ran = 0;
    for (const auto& sh : shards_) ran += sh->run(h);
    return ran;
  }

  std::vector<std::uint64_t> lane_ran(lanes, 0);
  auto run_lane = [&](std::size_t lane) {
    std::uint64_t ran = 0;
    for (std::size_t i = lane; i < s; i += lanes) ran += shards_[i]->run(h);
    lane_ran[lane] = ran;
  };

  // Per-epoch barrier over just these lanes. wait_idle() would also wait on
  // unrelated shared-pool work; a private latch does not.
  std::mutex mu;
  std::condition_variable done;
  std::size_t left = lanes - 1;
  std::exception_ptr first_error;
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    // Pin lane -> worker so the same shards hit the same OS thread (and its
    // warm cache) on every epoch of the run.
    pool.submit_to((lane - 1) % pool.size(), [&, lane] {
      std::exception_ptr err;
      try {
        run_lane(lane);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lock(mu);
      if (err && !first_error) first_error = err;
      if (--left == 0) done.notify_all();
    });
  }

  std::exception_ptr caller_error;
  try {
    run_lane(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  {
    std::unique_lock lock(mu);
    done.wait(lock, [&] { return left == 0; });
    if (!caller_error && first_error) caller_error = first_error;
  }
  if (caller_error) std::rethrow_exception(caller_error);

  std::uint64_t ran = 0;
  for (const std::uint64_t r : lane_ran) ran += r;
  return ran;
}

std::uint64_t ShardedSimulator::run(SimTime until) {
  std::uint64_t ran = 0;
  for (;;) {
    // Land messages queued before this round (setup code or the previous
    // epoch) so they count toward the next-event scan.
    drain_mailboxes();
    SimTime next = kInfiniteHorizon;
    for (const auto& sh : shards_) next = std::min(next, sh->next_event_time());
    if (next == kInfiniteHorizon || next > until) break;
    // Conservative epoch [next, next + lookahead): every event inside is
    // causally closed — a cross message sent from within cannot be due
    // before the window ends. Starting at `next` skips dead time.
    const SimTime epoch_end =
        next > kInfiniteHorizon - cfg_.lookahead ? kInfiniteHorizon
                                                 : next + cfg_.lookahead;
    const SimTime horizon = std::min(epoch_end - 1, until);
    epoch_end_ = horizon + 1;
    ran += run_epoch(horizon);
    ++epochs_;
  }
  // Uniform horizon semantics, mirroring Simulator::run: a finite `until`
  // lands every shard clock exactly on it, idle shards included.
  if (until != kInfiniteHorizon) {
    for (const auto& sh : shards_) sh->run(until);
  }
  return ran;
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->executed_events();
  return total;
}

bool ShardedSimulator::idle() const {
  for (const auto& sh : shards_) {
    if (!sh->idle()) return false;
  }
  for (const auto& box : outbox_) {
    if (!box.empty()) return false;
  }
  return true;
}

// --- ShardedReplay ----------------------------------------------------------

ShardedReplay::ShardedReplay(ShardedSimulator& engine) {
  recorders_.reserve(engine.shards());
  for (std::size_t s = 0; s < engine.shards(); ++s) {
    recorders_.push_back(std::make_unique<ReplayRecorder>());
    recorders_.back()->attach(engine.shard(static_cast<ShardId>(s)));
  }
}

std::vector<ShardedReplay::Record> ShardedReplay::merged() const {
  std::vector<Record> out;
  out.reserve(events_recorded());
  for (std::size_t s = 0; s < recorders_.size(); ++s) {
    for (const ReplayRecorder::Record& r : recorders_[s]->records()) {
      out.push_back(Record{r.when, static_cast<ShardId>(s), r.id, r.site});
    }
  }
  // Each shard's slice is already (when, id)-sorted — serial dispatch order
  // — so this sort is a k-way merge into the canonical (when, shard, id)
  // order. stable_sort is not needed: the key is unique per record.
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.id < b.id;
  });
  return out;
}

std::uint64_t ShardedReplay::merged_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const Record& r : merged()) {
    h = fnv64(h, static_cast<std::uint64_t>(r.when));
    h = fnv64(h, r.shard);
    h = fnv64(h, r.id);
    h = fnv64(h, r.site);
  }
  return h;
}

std::uint64_t ShardedReplay::stream_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const Record& r : merged()) {
    h = fnv64(h, static_cast<std::uint64_t>(r.when));
    h = fnv64(h, r.shard);
    h = fnv64(h, r.id);
  }
  return h;
}

std::uint64_t ShardedReplay::serial_equivalent_hash() const {
  ReplayRecorder serial_form;
  for (const Record& r : merged()) serial_form.on_event(r.when, r.id, r.site);
  return serial_form.event_hash();
}

std::size_t ShardedReplay::events_recorded() const {
  std::size_t n = 0;
  for (const auto& r : recorders_) n += r->events_recorded();
  return n;
}

}  // namespace spider::sim
