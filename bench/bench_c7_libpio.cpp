// C7 (Section VI-A): libPIO balanced data placement.
//
// Paper: "Experimental results at-scale on Titan demonstrate that the I/O
// performance can be improved by more than 70% on a per-job basis using
// synthetic benchmarks", and integrating libPIO with S3D (~30 changed
// lines) yielded "up to 24% improvement in POSIX file I/O bandwidth" in a
// noisy production environment.
//
// Method: load the center with background traffic concentrated on part of
// the fleet (production is never uniform), then run a job whose writers
// are placed either by the default round-robin start (load-blind) or by
// libPIO from the live load snapshot, and compare the job's max-min
// aggregate.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "tools/libpio.hpp"
#include "workload/ior.hpp"

namespace {

using namespace spider;

/// Add background flows loading a fraction of the OSTs heavily.
void add_background(core::CenterModel& center, double loaded_fraction,
                    std::size_t flows_per_ost, Rng& rng) {
  auto& solver = center.solver();
  const std::size_t n = center.total_osts();
  const auto hot = static_cast<std::size_t>(loaded_fraction * static_cast<double>(n));
  for (std::size_t o = 0; o < hot; ++o) {
    for (std::size_t f = 0; f < flows_per_ost; ++f) {
      auto df = center.make_flow(center.steady_map(),
                                 /*client=*/rng.uniform_index(10000), o,
                                 block::IoDir::kWrite,
                                 block::IoMode::kSequential, 1_MiB);
      solver.add_flow(std::move(df.path), df.rate_cap);
    }
  }
}

/// Run a job with explicit OST placement; returns the job's aggregate.
double run_job(core::CenterModel& center,
               const std::vector<tools::PlacementSuggestion>& placement,
               double background_fraction, std::size_t background_flows,
               Rng& rng) {
  center.reset_flows();
  Rng bg_rng = rng.fork(1);
  add_background(center, background_fraction, background_flows, bg_rng);
  auto& solver = center.solver();
  const std::size_t first_job_flow = solver.flows();
  for (std::size_t w = 0; w < placement.size(); ++w) {
    auto df = center.make_flow(center.steady_map(), 20000 + w,
                               placement[w].ost, block::IoDir::kWrite,
                               block::IoMode::kSequential, 1_MiB);
    solver.add_flow(std::move(df.path), df.rate_cap);
  }
  solver.solve();
  double job_bw = 0.0;
  for (std::size_t f = first_job_flow; f < solver.flows(); ++f) {
    job_bw += solver.flow_rate(f);
  }
  return job_bw;
}

}  // namespace

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(
      core::scaled_config(core::spider2_config(), 0.25), rng);
  center.set_target_namespace(SIZE_MAX);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);

  tools::LibPio pio(center.storage_topology());
  const std::size_t writers = center.total_osts() / 4;

  bench::banner("C7: libPIO load-aware placement vs default placement");

  // Build the load snapshot libPIO would read from the monitoring plane:
  // solve the background alone once.
  center.reset_flows();
  Rng bg_rng = rng.fork(1);
  add_background(center, 0.5, 6, bg_rng);
  center.solver().solve();
  const auto loads = center.loads_from_solver();

  Table table;
  table.set_columns({"scenario", "placement", "job GB/s", "gain %"});

  // The load-blind baseline depends on where Lustre's round-robin cursor
  // happens to start; average it over several job launches (the paper's
  // per-job gains are against typical, not lucky, placements).
  auto mean_default_job = [&](double background_fraction,
                              std::size_t background_flows, std::uint64_t seed) {
    double acc = 0.0;
    const int launches = 8;
    for (int i = 0; i < launches; ++i) {
      Rng def_rng(seed + static_cast<std::uint64_t>(i));
      const auto placement = pio.place_default(writers, def_rng);
      acc += run_job(center, placement, background_fraction, background_flows,
                     rng);
    }
    return acc / launches;
  };

  // Synthetic benchmark scenario: heavy skewed background (half the fleet
  // saturated by other jobs).
  const auto aware_half = pio.place_job(writers, loads);
  const double synth_default = mean_default_job(0.5, 6, 7);
  const double synth_aware = run_job(center, aware_half, 0.5, 6, rng);
  const double synth_gain = 100.0 * (synth_aware / synth_default - 1.0);
  table.add_row({std::string("synthetic, heavy contention"),
                 std::string("default"), to_gbps(synth_default), 0.0});
  table.add_row({std::string("synthetic, heavy contention"),
                 std::string("libPIO"), to_gbps(synth_aware), synth_gain});

  // S3D-like production scenario: milder, broader noise.
  center.reset_flows();
  Rng bg2 = rng.fork(2);
  add_background(center, 0.35, 3, bg2);
  center.solver().solve();
  const auto mild_loads = center.loads_from_solver();
  const auto aware_mild = pio.place_job(writers, mild_loads);
  const double s3d_default = mean_default_job(0.35, 3, 8);
  const double s3d_aware = run_job(center, aware_mild, 0.35, 3, rng);
  const double s3d_gain = 100.0 * (s3d_aware / s3d_default - 1.0);
  table.add_row({std::string("S3D-like, production noise"),
                 std::string("default"), to_gbps(s3d_default), 0.0});
  table.add_row({std::string("S3D-like, production noise"),
                 std::string("libPIO"), to_gbps(s3d_aware), s3d_gain});
  table.print(std::cout);
  std::cout << "\npaper: >70% per-job gain (synthetic, at scale); "
               "up to 24% for S3D in production noise\n\n";

  bench::ShapeChecker checker;
  checker.check(synth_gain > 50.0,
                "synthetic per-job gain above 50% (paper: >70%)");
  checker.check(s3d_gain > 10.0,
                "S3D-like gain is double-digit (paper: up to 24%)");
  checker.check(s3d_gain < synth_gain,
                "production gain smaller than clean synthetic gain");
  return checker.exit_code();
}
