// L5 fixture: true positive — cycle_a and cycle_b include each other.
// Same layer, so neither edge is "upward", but the file graph must stay
// acyclic.
#pragma once

#include "sim/cycle_b.hpp"

namespace fixture {
struct CycleA {};
}  // namespace fixture
