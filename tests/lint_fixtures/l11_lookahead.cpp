// Fixture for spiderlint rule L11 (lookahead-provenance).
//
// The `when` argument of schedule_cross must trace to the lookahead
// vocabulary (net/lookahead.hpp names, epoch_end, ...): a bare numeric
// delay has no provable relation to the conservative contract, and one
// below the torus hop floor (105 ns) is a certain breach. The derived
// delays and the symbolic pass-through are engineered false positives.
namespace fixture {

inline constexpr long kTorusHopLatency = 105;
inline constexpr long kCrossZoneLookahead = 1000;

struct Engine {
  void schedule_cross(unsigned from, unsigned to, long when, int payload);
};

struct Driver {
  void drive(long now) {
    // Derived from the lookahead vocabulary. Must NOT be flagged.
    engine_.schedule_cross(0, 1, now + kTorusHopLatency, 1);
    engine_.schedule_cross(0, 1, now + 2 * kCrossZoneLookahead, 2);
    // Symbolic time from upstream: provenance is the caller's. Must NOT be
    // flagged.
    engine_.schedule_cross(0, 1, now, 3);
    // Bare constant delay: unprovable against the contract. Flagged.
    engine_.schedule_cross(0, 1, now + 500, 4);  // L11
    // Constant below the torus hop floor: a certain breach. Flagged.
    engine_.schedule_cross(0, 1, now + 64, 5);  // L11
  }
  Engine engine_;
};

}  // namespace fixture
