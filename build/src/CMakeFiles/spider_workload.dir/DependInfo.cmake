
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/analytics.cpp" "src/CMakeFiles/spider_workload.dir/workload/analytics.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/analytics.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/CMakeFiles/spider_workload.dir/workload/arrivals.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/arrivals.cpp.o.d"
  "/root/repo/src/workload/characterize.cpp" "src/CMakeFiles/spider_workload.dir/workload/characterize.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/characterize.cpp.o.d"
  "/root/repo/src/workload/checkpoint.cpp" "src/CMakeFiles/spider_workload.dir/workload/checkpoint.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/checkpoint.cpp.o.d"
  "/root/repo/src/workload/ior.cpp" "src/CMakeFiles/spider_workload.dir/workload/ior.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/ior.cpp.o.d"
  "/root/repo/src/workload/mixed.cpp" "src/CMakeFiles/spider_workload.dir/workload/mixed.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/mixed.cpp.o.d"
  "/root/repo/src/workload/pattern.cpp" "src/CMakeFiles/spider_workload.dir/workload/pattern.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/pattern.cpp.o.d"
  "/root/repo/src/workload/s3d.cpp" "src/CMakeFiles/spider_workload.dir/workload/s3d.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/s3d.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/spider_workload.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/spider_workload.dir/workload/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
