// SION: the center-wide InfiniBand storage area network.
//
// Spider II's fabric is decentralized: 36 leaf switches and multiple core
// switches (Section V-B). Lustre servers (OSS) and LNET routers plug into
// leaves; traffic between different leaves crosses the core. FGR's whole
// point is to pick router/server pairs on the *same* leaf so the core is
// never crossed for bulk I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace spider::net {

struct FabricParams {
  std::size_t leaf_switches = 36;
  std::size_t core_switches = 4;
  /// FDR InfiniBand port (56 Gb/s ≈ 6.8 GB/s raw; ~6.0 effective).
  Bandwidth port_bw = 6.0 * kGBps;
  /// Leaf switch aggregate crossbar capacity.
  Bandwidth leaf_bw = 80.0 * kGBps;
  /// Per-core-switch capacity for inter-leaf traffic. Deliberately thin:
  /// Spider II's fabric is "decentralized" (Section V-B) — bulk I/O is
  /// supposed to stay on the leaf its OSS lives on (that is FGR's job),
  /// and the core is sized for management and residual traffic only.
  Bandwidth core_bw = 40.0 * kGBps;
};

/// Static description of the SAN: who is attached where, and which switch
/// resources a path crosses. Capacities become solver resources in the
/// center model.
class IbFabric {
 public:
  explicit IbFabric(const FabricParams& params);

  const FabricParams& params() const { return params_; }
  std::size_t leaves() const { return params_.leaf_switches; }

  /// Deterministic leaf assignment for an OSS index (round-robin).
  std::size_t leaf_of_oss(std::size_t oss_index, std::size_t total_oss) const;

  /// Leaf switches crossed by a router-side to server-side path:
  /// {leaf} when same leaf; {leaf_a, leaf_b} plus core when different.
  struct PathInfo {
    std::size_t src_leaf;
    std::size_t dst_leaf;
    bool crosses_core;
    /// Core switch used when crossing (hashed from the leaf pair).
    std::size_t core_index;
  };
  PathInfo path(std::size_t src_leaf, std::size_t dst_leaf) const;

 private:
  FabricParams params_;
};

}  // namespace spider::net
