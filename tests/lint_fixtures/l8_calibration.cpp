// Fixture for spiderlint rule L8 (calibration-constant provenance).
//
// Linted as if it lived in src/{block,fs,net}. The bare 1e3 in a function
// body fires; the constexpr named constant, the hex mask, the unit-literal
// suffix, and the config-struct default member initializer are engineered
// false positives.
namespace fixture {

// Single line: L8's constexpr exemption is per-line by design.
inline constexpr unsigned long long operator""_KiB(unsigned long long v) { return v * 1024ULL; }

double to_ms(double seconds) { return seconds * 1e3; }  // L8: bare 1e3

double day_fraction(double seconds) {
  constexpr double kSecondsPerDay = 86400.0;  // named: not flagged
  return seconds / kSecondsPerDay;
}

unsigned masked(unsigned v) {
  const unsigned mask = 0xFFFF;  // hex: not calibration
  return v & mask;
}

unsigned long long chunk() {
  return 1024_KiB;  // unit literal carries its own provenance
}

struct DiskConfig {
  // Default member initializers are the named-parameter table itself.
  double iops = 250000.0;
};

}  // namespace fixture
