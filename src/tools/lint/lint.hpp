// spiderlint driver: collect sources, pair headers, run the rules.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tools/lint/report.hpp"
#include "tools/lint/rules.hpp"

namespace spider::lint {

/// Driver options.
struct LintOptions {
  RuleSet rules;
  /// When set, overrides path-based classification for every file (used to
  /// lint fixture files that live outside src/).
  std::optional<FileClass> forced_class;
  /// Worker count for the per-file pass and the global index build over
  /// the shared pool (0 = one per hardware thread). Findings are merged in
  /// canonical path order, so output is byte-identical at any job count.
  std::size_t jobs = 1;
  /// When non-empty, only findings in matching files are *reported*
  /// (exact path or path-suffix at a '/' boundary, like baseline entries).
  /// The index — and therefore the cross-TU rules — is still built from
  /// every input file: scripts/lint.sh --changed lints the full tree and
  /// filters the report, because L13-L16 are unsound on a partial index.
  std::vector<std::string> report_only;
};

/// Expand paths (files or directories) into a sorted, deduplicated list of
/// C++ sources (.cpp/.cc/.hpp/.h/.hh). Directories recurse. Unreadable
/// paths are reported in `errors`.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths,
                                         std::vector<std::string>& errors);

/// Lint one already-scanned file.
std::vector<Finding> lint_scanned(const SourceFile& file,
                                  const LintOptions& opts,
                                  const SourceFile* paired_header = nullptr);

/// Lint files on disk. For each .cpp a sibling header with the same stem is
/// scanned to seed L1's identifier tracking. Unreadable files are reported
/// in `errors`.
LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& opts,
                      std::vector<std::string>& errors);

}  // namespace spider::lint
