// spiderlint CLI — determinism & unit-safety static analysis for spiderpfs.
//
// Usage: spiderlint [options] <path>...
//   --format=text|json|sarif  output format (default text)
//   --fix-hints          include fix-it hints and a per-rule digest (text)
//   --rules=L1,L3        run only the listed rules (default: all)
//   --baseline=FILE      drop findings grandfathered in FILE
//                        (RULE :: file :: message :: reason, line-number
//                        independent); stale entries are warned to stderr
//   --write-baseline     print the run's findings in baseline format and
//                        exit (reasons left as 'justify-me' for editing)
//   --prune-baseline     rewrite the --baseline file in place with the
//                        stale entries removed (comments and live entries
//                        survive verbatim)
//   --stale=warn|error   what a stale baseline entry does to the exit code
//                        (default warn; CI runs error so fixed findings
//                        must be deleted from the baseline, not hoarded)
//   --stats              print `spiderlint-stats: files=N findings=N
//                        jobs=N wall_ms=N scan_ms=N rules_ms=N
//                        global_ms=N` to stderr (CI surfaces it in the job
//                        summary)
//   --jobs=N             fan the per-file pass and the global index build
//                        out over N workers (0 or omitted value = one per
//                        hardware thread; default auto). Output is
//                        byte-identical at any job count.
//   --only=PATH          report findings only for matching files (exact or
//                        path-suffix, repeatable). The whole-program index
//                        still sees every input file — scripts/lint.sh
//                        --changed relies on this, because the cross-TU
//                        rules L13-L16 are unsound on a partial index.
//   --fix                apply the mechanically safe fixes (L1 container
//                        swaps, L3 unit-alias renames) in place
//   --treat-as=CLASS     force file classification: sim-critical, src,
//                        header, calib, fs (repeatable; for linting
//                        fixtures that live outside src/)
//   --list-rules         print the rule table and exit
//
// Exit codes: 0 clean (after baseline), 1 findings (or stale entries under
// --stale=error), 2 usage or I/O error.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/baseline.hpp"
#include "tools/lint/fix.hpp"
#include "tools/lint/lint.hpp"

namespace {

void print_rule_table() {
  for (const spider::lint::RuleInfo& r : spider::lint::rules()) {
    std::printf("%s %-20s %-7s %s\n    suppress: // spiderlint: %s\n",
                std::string(r.id).c_str(), std::string(r.name).c_str(),
                std::string(to_string(r.severity)).c_str(),
                std::string(r.summary).c_str(),
                std::string(r.suppression).c_str());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json|sarif] [--fix-hints]\n"
               "       [--rules=L1,..] [--baseline=FILE] [--write-baseline]\n"
               "       [--prune-baseline] [--stale=warn|error] [--stats]\n"
               "       [--jobs=N] [--only=PATH]...\n"
               "       [--fix] "
               "[--treat-as=sim-critical|src|header|calib|fs]...\n"
               "       [--list-rules] <path>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider::lint;

  LintOptions opts;
  opts.jobs = 0;  // CLI default: auto (the library default stays serial)
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;
  bool fix_hints = false;
  bool write_baseline = false;
  bool prune_baseline = false;
  bool stale_is_error = false;
  bool print_stats = false;
  bool apply_fix = false;
  std::string baseline_path;
  std::vector<std::string> paths;
  FileClass forced;
  bool have_forced = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rule_table();
      return 0;
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--fix") {
      apply_fix = true;
    } else if (arg == "--prune-baseline") {
      prune_baseline = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg.starts_with("--stale=")) {
      const std::string_view mode = arg.substr(8);
      if (mode == "error") {
        stale_is_error = true;
      } else if (mode == "warn") {
        stale_is_error = false;
      } else {
        std::fprintf(stderr, "spiderlint: unknown stale mode '%.*s'\n",
                     static_cast<int>(mode.size()), mode.data());
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--baseline=")) {
      baseline_path = std::string(arg.substr(11));
    } else if (arg.starts_with("--format=")) {
      const std::string_view fmt = arg.substr(9);
      if (fmt == "json") {
        format = Format::kJson;
      } else if (fmt == "sarif") {
        format = Format::kSarif;
      } else if (fmt == "text") {
        format = Format::kText;
      } else {
        std::fprintf(stderr, "spiderlint: unknown format '%.*s'\n",
                     static_cast<int>(fmt.size()), fmt.data());
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--rules=")) {
      opts.rules = RuleSet::none();
      std::string_view list = arg.substr(8);
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view id = list.substr(0, comma);
        if (id == "L1") {
          opts.rules.l1 = true;
        } else if (id == "L2") {
          opts.rules.l2 = true;
        } else if (id == "L3") {
          opts.rules.l3 = true;
        } else if (id == "L4") {
          opts.rules.l4 = true;
        } else if (id == "L5") {
          opts.rules.l5 = true;
        } else if (id == "L6") {
          opts.rules.l6 = true;
        } else if (id == "L7") {
          opts.rules.l7 = true;
        } else if (id == "L8") {
          opts.rules.l8 = true;
        } else if (id == "L9") {
          opts.rules.l9 = true;
        } else if (id == "L10") {
          opts.rules.l10 = true;
        } else if (id == "L11") {
          opts.rules.l11 = true;
        } else if (id == "L12") {
          opts.rules.l12 = true;
        } else if (id == "L13") {
          opts.rules.l13 = true;
        } else if (id == "L14") {
          opts.rules.l14 = true;
        } else if (id == "L15") {
          opts.rules.l15 = true;
        } else if (id == "L16") {
          opts.rules.l16 = true;
        } else {
          std::fprintf(stderr, "spiderlint: unknown rule '%.*s'\n",
                       static_cast<int>(id.size()), id.data());
          return usage(argv[0]);
        }
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
    } else if (arg.starts_with("--treat-as=")) {
      const std::string_view cls = arg.substr(11);
      if (cls == "sim-critical") {
        forced.sim_critical = true;
        forced.in_src = true;
      } else if (cls == "src") {
        forced.in_src = true;
      } else if (cls == "header") {
        forced.in_src = true;
        forced.is_header = true;
      } else if (cls == "calib") {
        forced.in_src = true;
        forced.calib_scope = true;
      } else if (cls == "fs") {
        forced.in_src = true;
        forced.sim_critical = true;
        forced.calib_scope = true;
        forced.fs_scope = true;
      } else {
        std::fprintf(stderr, "spiderlint: unknown class '%.*s'\n",
                     static_cast<int>(cls.size()), cls.data());
        return usage(argv[0]);
      }
      have_forced = true;
    } else if (arg.starts_with("--jobs=")) {
      const std::string_view n = arg.substr(7);
      std::size_t jobs = 0;
      for (const char c : n) {
        if (c < '0' || c > '9') {
          std::fprintf(stderr, "spiderlint: bad --jobs value '%.*s'\n",
                       static_cast<int>(n.size()), n.data());
          return usage(argv[0]);
        }
        jobs = jobs * 10 + static_cast<std::size_t>(c - '0');
      }
      opts.jobs = jobs;
    } else if (arg.starts_with("--only=")) {
      const std::string_view pat = arg.substr(7);
      if (pat.empty()) {
        std::fprintf(stderr, "spiderlint: --only needs a path\n");
        return usage(argv[0]);
      }
      opts.report_only.emplace_back(pat);
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "spiderlint: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  if (prune_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "spiderlint: --prune-baseline needs --baseline=\n");
    return usage(argv[0]);
  }
  if (have_forced) opts.forced_class = forced;

  // Wall-clock for the stats line only — findings never depend on it.
  // spiderlint-file: nondet-ok — lint runtime telemetry, not simulation
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> errors;
  LintReport report = lint_paths(paths, opts, errors);
  const auto t1 = std::chrono::steady_clock::now();

  std::size_t stale_count = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spiderlint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::vector<BaselineEntry> entries =
        parse_baseline(buf.str(), errors);
    const std::vector<BaselineEntry> stale = apply_baseline(report, entries);
    stale_count = stale.size();
    if (!opts.report_only.empty()) {
      // A narrowed report cannot tell "fixed" from "not reported this
      // time": entries for files outside --only would all read as stale,
      // and pruning on that evidence would delete live entries.
      if (prune_baseline) {
        std::fprintf(stderr,
                     "spiderlint: refusing --prune-baseline with --only "
                     "(a narrowed report cannot judge staleness)\n");
        return 2;
      }
      stale_count = 0;
    } else if (prune_baseline) {
      std::size_t pruned = 0;
      const std::string rewritten =
          prune_baseline_text(buf.str(), stale, pruned);
      std::ofstream outf(baseline_path,
                         std::ios::binary | std::ios::trunc);
      if (!outf || !(outf << rewritten)) {
        std::fprintf(stderr, "spiderlint: cannot rewrite baseline '%s'\n",
                     baseline_path.c_str());
        return 2;
      }
      std::fprintf(stderr,
                   "spiderlint: pruned %zu stale baseline entr%s from %s\n",
                   pruned, pruned == 1 ? "y" : "ies", baseline_path.c_str());
      stale_count = 0;  // pruned away: nothing left to warn or fail on
    } else {
      for (const BaselineEntry& e : stale) {
        std::fprintf(stderr,
                     "spiderlint: %s baseline entry (fixed? delete it, or "
                     "run --prune-baseline): %s :: %s :: %s\n",
                     stale_is_error ? "STALE" : "stale", e.rule.c_str(),
                     e.file.c_str(), e.message.c_str());
      }
    }
  }

  for (const std::string& err : errors) {
    std::fprintf(stderr, "spiderlint: %s\n", err.c_str());
  }

  if (write_baseline) {
    std::fputs(render_baseline(report).c_str(), stdout);
    return errors.empty() ? 0 : 2;
  }

  if (apply_fix) {
    const FixResult fixed = apply_fixes(report, errors);
    std::fprintf(stderr, "spiderlint: applied %zu fix%s in %zu file%s\n",
                 fixed.fixes_applied, fixed.fixes_applied == 1 ? "" : "es",
                 fixed.files_changed.size(),
                 fixed.files_changed.size() == 1 ? "" : "s");
  }

  std::string rendered;
  switch (format) {
    case Format::kJson: rendered = render_json(report); break;
    case Format::kSarif: rendered = render_sarif(report); break;
    case Format::kText: rendered = render_text(report, fix_hints); break;
  }
  std::fputs(rendered.c_str(), stdout);

  if (print_stats) {
    const auto wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0);
    std::fprintf(stderr,
                 "spiderlint-stats: files=%zu findings=%zu jobs=%zu "
                 "wall_ms=%lld scan_ms=%lld rules_ms=%lld global_ms=%lld\n",
                 report.files_scanned, report.findings.size(), opts.jobs,
                 static_cast<long long>(wall_ms.count()),
                 static_cast<long long>(report.scan_ms),
                 static_cast<long long>(report.rules_ms),
                 static_cast<long long>(report.global_ms));
  }

  if (!errors.empty()) return 2;
  if (!report.clean()) return 1;
  if (stale_is_error && stale_count != 0) return 1;
  return 0;
}
