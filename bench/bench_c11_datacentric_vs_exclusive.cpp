// C11 (Sections I-II, VII): the case for the data-centric model.
//
// Three quantitative strands from the paper:
//   - workflow: machine-exclusive scratch forces data staging between
//     islands ("excessive data movement costs");
//   - cost: exclusive file systems "can easily exceed 10% of the total
//     acquisition cost" per platform, plus movement infrastructure; the
//     center-wide PFS amortizes one system across all platforms, and the
//     30x-memory capacity target leaves "margin for accommodating new
//     systems with minimal cost";
//   - availability: downtime on the owning machine strands its island.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/exclusive_model.hpp"
#include "tools/capacity_planner.hpp"

int main() {
  using namespace spider;
  using namespace spider::core;

  bench::banner("C11a: simulate -> analyze -> visualize workflow");
  const auto wf = compare_workflow(WorkflowSpec{});
  Table wft;
  wft.set_columns({"model", "pipeline time (min)", "movement fraction"});
  wft.add_row({std::string("data-centric (Spider)"), wf.datacentric_s / 60.0,
               0.0});
  wft.add_row({std::string("machine-exclusive islands"), wf.exclusive_s / 60.0,
               wf.movement_fraction});
  wft.print(std::cout);
  std::cout << "workflow speedup from eliminating staging: " << wf.speedup
            << "x\n";

  bench::banner("C11b: acquisition cost (flagship-machine cost units)");
  // Titan-class flagship, two analysis clusters, a viz cluster, a DTN.
  const std::vector<double> platforms{1.0, 0.12, 0.08, 0.05, 0.02};
  const auto cost = tools::compare_acquisition_cost(platforms);
  Table ct;
  ct.set_columns({"model", "storage cost", "notes"});
  ct.add_row({std::string("machine-exclusive"), cost.exclusive_total,
              std::string(">=10% of each platform + movers")});
  ct.add_row({std::string("data-centric"), cost.datacentric_total,
              std::string("one center-wide PFS + attach costs")});
  ct.print(std::cout);
  std::cout << "savings: " << cost.savings_fraction * 100.0 << "%\n";

  bench::banner("C11c: capacity target and availability");
  const Bytes target = tools::capacity_target_from_memory(770_TB);
  std::cout << "30x rule on 770 TB attached memory -> " << to_pb(target)
            << " PB (Spider II's 32 PB exceeds it, leaving attach margin)\n";
  const auto avail = compare_availability(AvailabilitySpec{});
  std::cout << "dataset availability: exclusive " << avail.exclusive * 100.0
            << "% vs data-centric " << avail.datacentric * 100.0 << "%\n\n";

  bench::ShapeChecker checker;
  checker.check(wf.speedup > 1.2,
                "data-centric workflow meaningfully faster end to end");
  checker.check(wf.movement_fraction > 0.3,
                "staging dominates the exclusive pipeline");
  checker.check(cost.savings_fraction > 0.0,
                "data-centric storage cheaper for a multi-platform center");
  checker.check(to_pb(target) < 32.0,
                "Spider II capacity exceeds the 30x memory target");
  checker.check(avail.datacentric > avail.exclusive,
                "center-wide PFS keeps data reachable during machine downtime");
  return checker.exit_code();
}
