file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_journaling.dir/bench_a2_journaling.cpp.o"
  "CMakeFiles/bench_a2_journaling.dir/bench_a2_journaling.cpp.o.d"
  "bench_a2_journaling"
  "bench_a2_journaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_journaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
