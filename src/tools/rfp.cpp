#include "tools/rfp.hpp"

#include <algorithm>
#include <cmath>

namespace spider::tools {

namespace {
std::size_t ceil_div(double need, double per_unit) {
  if (per_unit <= 0.0) return SIZE_MAX;
  return static_cast<std::size_t>(std::ceil(need / per_unit));
}
}  // namespace

ProposalScore evaluate_proposal(const SowTargets& sow, const Proposal& p,
                                const EvaluationWeights& w) {
  ProposalScore s;
  s.vendor = p.vendor;

  // The SSU count is driven by whichever target is hardest to meet.
  const std::size_t for_seq = ceil_div(sow.sequential_bw, p.ssu_sequential_bw);
  const std::size_t for_rand = ceil_div(sow.random_bw, p.ssu_random_bw);
  const std::size_t for_cap =
      ceil_div(static_cast<double>(sow.capacity),
               static_cast<double>(p.ssu_capacity));
  s.ssus_needed = std::max({for_seq, for_rand, for_cap});
  if (s.ssus_needed == SIZE_MAX) {
    s.notes.push_back("degenerate SSU characteristics");
    return s;
  }

  s.hardware_cost = p.price_per_ssu * static_cast<double>(s.ssus_needed);
  const double overhead = p.model == ResponseModel::kBlockStorage
                              ? w.block_integration_overhead
                              : w.appliance_premium;
  s.total_cost = s.hardware_cost * (1.0 + overhead);
  s.within_budget = s.total_cost <= sow.budget;

  const bool variance_ok = p.measured_variance <= sow.variance_envelope + 1e-12;
  const bool schedule_ok = p.schedule_months <= sow.required_schedule_months;
  s.meets_targets = variance_ok && s.within_budget && schedule_ok;
  if (!variance_ok) s.notes.push_back("variance envelope exceeded");
  if (!s.within_budget) s.notes.push_back("over budget");
  if (!schedule_ok) s.notes.push_back("schedule too long");
  if (p.model == ResponseModel::kBlockStorage) {
    s.notes.push_back("integration risk carried by the buyer");
  }

  // Component scores, each in [0, 1].
  s.technical = 0.5 * p.past_performance +
                0.5 * std::clamp(sow.variance_envelope / std::max(1e-9, p.measured_variance),
                                 0.0, 1.0);
  // Performance margin above targets at the chosen SSU count.
  const double seq_margin =
      p.ssu_sequential_bw * static_cast<double>(s.ssus_needed) /
      sow.sequential_bw;
  const double rand_margin = p.ssu_random_bw *
                             static_cast<double>(s.ssus_needed) /
                             sow.random_bw;
  s.performance = std::clamp(0.5 * (seq_margin + rand_margin) - 0.5, 0.0, 1.0);
  s.schedule = std::clamp(2.0 - p.schedule_months / sow.required_schedule_months,
                          0.0, 1.0);
  s.cost = std::clamp(2.0 - 2.0 * s.total_cost / sow.budget, 0.0, 1.0);
  s.total = w.technical * s.technical + w.performance * s.performance +
            w.schedule * s.schedule + w.cost * s.cost;
  return s;
}

std::size_t best_value(std::span<const Proposal> proposals,
                       const SowTargets& sow, const EvaluationWeights& w,
                       std::vector<ProposalScore>* scores) {
  std::size_t winner = SIZE_MAX;
  double best = -1.0;
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    const auto score = evaluate_proposal(sow, proposals[i], w);
    if (scores) scores->push_back(score);
    if (score.meets_targets && score.total > best) {
      best = score.total;
      winner = i;
    }
  }
  return winner;
}

}  // namespace spider::tools
