#include "fs/mds.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::fs {

Mds::Mds(const MdsParams& params) : params_(params) {
  if (params_.base_ops_per_sec <= 0.0 || params_.dne_shards == 0) {
    throw std::invalid_argument("Mds: base rate > 0 and >= 1 shard required");
  }
}

double Mds::capacity_ops() const {
  if (params_.dne_shards == 1) return params_.base_ops_per_sec;
  const double extra = static_cast<double>(params_.dne_shards - 1);
  return params_.base_ops_per_sec * (1.0 + extra * params_.dne_efficiency);
}

double Mds::op_cost(MetaOp op, std::uint32_t stripe_count) const {
  double c = 0.0;
  switch (op) {
    case MetaOp::kCreate: c = params_.create_cost; break;
    case MetaOp::kStat:
      c = params_.stat_cost +
          params_.stat_per_stripe_cost * static_cast<double>(
              stripe_count > 0 ? stripe_count - 1 : 0);
      break;
    case MetaOp::kUnlink: c = params_.unlink_cost; break;
    case MetaOp::kLookup: c = params_.lookup_cost; break;
    case MetaOp::kSetattr: c = params_.setattr_cost; break;
  }
  return c;
}

void Mds::account(MetaOp op, std::uint32_t stripe_count) {
  accounted_ += op_cost(op, stripe_count);
  ++ops_seen_;
}

void Mds::reset_accounting() {
  accounted_ = 0.0;
  ops_seen_ = 0;
}

double Mds::throughput(double offered) const {
  if (stalled_) return 0.0;
  return std::min(offered, capacity_ops());
}

double Mds::mean_latency_s(double offered) const {
  const double mu = capacity_ops();
  const double service = 1.0 / mu;
  if (stalled_) return service * kSaturatedLatencyFactor;  // fully saturated
  const double rho = offered / mu;
  if (rho >= 0.999) return service * kSaturatedLatencyFactor;
  return service / (1.0 - rho);
}

}  // namespace spider::fs
