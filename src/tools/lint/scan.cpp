#include "tools/lint/scan.hpp"

#include <cctype>

namespace spider::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Lexer mode carried across lines.
enum class Mode {
  kNormal,
  kBlockComment,
  kRawString,  // inside R"delim( ... )delim"
};

}  // namespace

SourceFile scan_source(std::string path, std::string_view contents) {
  SourceFile out;
  out.path = std::move(path);

  Mode mode = Mode::kNormal;
  std::string raw_delim;  // the `)delim"` terminator of an open raw string

  std::size_t start = 0;
  while (start <= contents.size()) {
    const std::size_t nl = contents.find('\n', start);
    std::string_view text = contents.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    if (!text.empty() && text.back() == '\r') text.remove_suffix(1);

    Line line;
    line.raw.assign(text);
    line.code.assign(text.size(), ' ');

    std::size_t i = 0;
    while (i < text.size()) {
      if (mode == Mode::kBlockComment) {
        const std::size_t end = text.find("*/", i);
        const std::size_t stop = end == std::string_view::npos ? text.size() : end;
        line.comment.append(text.substr(i, stop - i));
        if (end == std::string_view::npos) {
          i = text.size();
        } else {
          i = end + 2;
          mode = Mode::kNormal;
        }
        continue;
      }
      if (mode == Mode::kRawString) {
        const std::size_t end = text.find(raw_delim, i);
        if (end == std::string_view::npos) {
          i = text.size();
        } else {
          i = end + raw_delim.size();
          line.code[i - 1] = '"';  // keep the closing quote as code
          mode = Mode::kNormal;
        }
        continue;
      }

      const char c = text[i];
      // Line comment.
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
        line.comment.append(text.substr(i + 2));
        i = text.size();
        continue;
      }
      // Block comment.
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
        i += 2;
        mode = Mode::kBlockComment;
        continue;
      }
      // Raw string literal: R"delim( ... )delim".
      if (c == '"' && i >= 1 && text[i - 1] == 'R' &&
          !(i >= 2 && ident_char(text[i - 2]))) {
        line.code[i] = '"';
        std::size_t j = i + 1;
        std::string delim;
        while (j < text.size() && text[j] != '(') delim.push_back(text[j++]);
        raw_delim = ")" + delim + "\"";
        i = j + 1;
        mode = Mode::kRawString;
        continue;
      }
      // pp-number: digits, digit separators (1'000'000), hex/float forms,
      // exponents with signs. Consumed as a unit so a digit separator is
      // never mistaken for a char-literal quote.
      if (std::isdigit(static_cast<unsigned char>(c)) &&
          (i == 0 || !ident_char(text[i - 1]))) {
        std::size_t j = i;
        while (j < text.size()) {
          const char d = text[j];
          if (ident_char(d) || d == '.') {
            ++j;
            continue;
          }
          if (d == '\'' && j + 1 < text.size() &&
              std::isalnum(static_cast<unsigned char>(text[j + 1]))) {
            ++j;  // digit separator
            continue;
          }
          if ((d == '+' || d == '-') && j > i &&
              (text[j - 1] == 'e' || text[j - 1] == 'E' ||
               text[j - 1] == 'p' || text[j - 1] == 'P')) {
            ++j;  // signed exponent
            continue;
          }
          break;
        }
        for (std::size_t k = i; k < j; ++k) line.code[k] = text[k];
        i = j;
        continue;
      }
      // String / char literal (contents blanked, delimiters kept).
      if (c == '"' || c == '\'') {
        line.code[i] = c;
        std::size_t j = i + 1;
        while (j < text.size()) {
          if (text[j] == '\\' && j + 1 < text.size()) {
            j += 2;
            continue;
          }
          if (text[j] == c) break;
          ++j;
        }
        if (j < text.size()) {
          line.code[j] = c;
          i = j + 1;
        } else {
          i = text.size();  // unterminated: blank to end of line
        }
        continue;
      }
      line.code[i] = c;
      ++i;
    }

    out.lines.push_back(std::move(line));
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return out;
}

bool is_preprocessor(const Line& line) {
  for (char c : line.code) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

namespace {

/// True when `comment` contains `directive` (e.g. "spiderlint:") followed
/// (comma/space separated) by `token`.
bool comment_has_directive(std::string_view comment, std::string_view directive,
                           std::string_view token) {
  std::size_t pos = comment.find(directive);
  while (pos != std::string_view::npos) {
    // "spiderlint:" must not match inside "spiderlint-next-line:" — the
    // character before the directive may not extend a longer directive name.
    if (pos > 0 && (ident_char(comment[pos - 1]) || comment[pos - 1] == '-')) {
      pos = comment.find(directive, pos + directive.size());
      continue;
    }
    std::string_view rest = comment.substr(pos + directive.size());
    // Tokens run until something that is neither ident-ish nor '-'/','/' '.
    std::size_t i = 0;
    while (i < rest.size()) {
      while (i < rest.size() && (rest[i] == ' ' || rest[i] == ',')) ++i;
      std::size_t j = i;
      while (j < rest.size() && (ident_char(rest[j]) || rest[j] == '-')) ++j;
      if (j == i) break;
      if (rest.substr(i, j - i) == token) return true;
      i = j;
    }
    pos = comment.find(directive, pos + directive.size());
  }
  return false;
}

/// A line whose code is blank (only whitespace) but which has comment text.
bool comment_only(const Line& line) {
  if (line.comment.empty()) return false;
  for (char c : line.code) {
    if (c != ' ' && c != '\t') return false;
  }
  return true;
}

}  // namespace

bool has_suppression(const SourceFile& file, std::size_t index,
                     std::string_view token) {
  if (index >= file.lines.size()) return false;
  if (comment_has_directive(file.lines[index].comment, "spiderlint:", token)) {
    return true;
  }
  if (index > 0) {
    const Line& above = file.lines[index - 1];
    // A standalone suppression comment immediately above also applies, as
    // does the explicit next-line directive (standalone or trailing).
    if (comment_only(above) &&
        comment_has_directive(above.comment, "spiderlint:", token)) {
      return true;
    }
    if (comment_has_directive(above.comment, "spiderlint-next-line:", token)) {
      return true;
    }
  }
  // File-scope suppression: `spiderlint-file: <token>` anywhere in the file
  // (by convention near the top) silences the rule for the whole file.
  for (const Line& line : file.lines) {
    if (!line.comment.empty() &&
        comment_has_directive(line.comment, "spiderlint-file:", token)) {
      return true;
    }
  }
  return false;
}

bool is_word_at(std::string_view text, std::size_t pos, std::size_t len) {
  if (pos + len > text.size()) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  if (pos + len < text.size() && ident_char(text[pos + len])) return false;
  return true;
}

std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  std::size_t pos = text.find(word, from);
  while (pos != std::string_view::npos) {
    if (is_word_at(text, pos, word.size())) return pos;
    pos = text.find(word, pos + 1);
  }
  return std::string_view::npos;
}

}  // namespace spider::lint
