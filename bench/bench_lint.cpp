// spiderlint whole-tree wall time (docs/static-analysis.md).
//
// Lints the repo's own src/, tests/, and bench/ trees cold — read, scan,
// tokenize, per-file rules, and the whole-program L13-L16 passes — once
// serially (--jobs=1) and once fanned out over the shared pool (--jobs=0,
// one worker per hardware thread), and reports files/sec plus the per-phase
// split the CLI prints under --stats. Because lint output is worker-count
// invariant by construction, the bench checks in-run that the parallel pass
// renders byte-identical JSON to the serial pass — the speedup compares the
// same analysis, not two different ones.
//
// Modes (mirrors bench_fsck):
//   --spider-json=PATH   write the machine-readable report (BENCH_lint.json)
//   --baseline=FILE      gate serial files/sec against a checked-in report
//                        (ci/bench-baseline-lint.json) at a 0.60x noise floor
//   --smoke              seconds-long run sized for CI
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "tools/lint/lint.hpp"
#include "tools/lint/report.hpp"

#ifndef SPIDER_LINT_TREE_ROOT
#define SPIDER_LINT_TREE_ROOT "."
#endif

namespace {

using namespace spider::lint;
namespace bench = spider::bench;

using Clock = std::chrono::steady_clock;  // spiderlint: nondet-ok

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct LintRun {
  double files_per_sec = 0.0;
  double elapsed_s = 0.0;
  std::size_t files = 0;
  std::size_t findings = 0;
  double scan_ms = 0.0;
  double rules_ms = 0.0;
  double global_ms = 0.0;
  std::string json;
};

/// Time `reps` cold lints of the whole tree at the given fan-out. Every rep
/// re-reads and re-scans from disk, so the runs are comparable and the
/// phase split reflects what `spiderlint --stats` would print.
LintRun run_point(const std::vector<std::string>& paths, std::size_t reps,
                  std::size_t jobs) {
  LintOptions opts;
  opts.jobs = jobs;
  LintRun out;
  LintReport last;
  const Clock::time_point start = Clock::now();  // spiderlint: nondet-ok
  for (std::size_t r = 0; r < reps; ++r) {
    std::vector<std::string> errors;
    last = lint_paths(paths, opts, errors);
  }
  out.elapsed_s = seconds_since(start);
  out.files = last.files_scanned;
  out.findings = last.findings.size();
  out.scan_ms = last.scan_ms;
  out.rules_ms = last.rules_ms;
  out.global_ms = last.global_ms;
  const double scanned = static_cast<double>(out.files) *
                         static_cast<double>(reps);
  out.files_per_sec = out.elapsed_s > 0.0 ? scanned / out.elapsed_s : 0.0;
  out.json = render_json(last);
  return out;
}

int run_bench(const std::string& json_path, const std::string& baseline_path,
              bool smoke) {
  const std::size_t reps = smoke ? 1 : 3;
  const std::string root = SPIDER_LINT_TREE_ROOT;
  const std::vector<std::string> paths{root + "/src", root + "/tests",
                                       root + "/bench"};

  bench::banner("spiderlint whole-tree wall time (files/sec)");

  bench::JsonReport report("lint", smoke ? "smoke" : "full");
  bench::ShapeChecker checker;

  std::string baseline_text;
  if (!baseline_path.empty() &&
      !bench::read_text_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench: cannot read baseline '%s'\n",
                 baseline_path.c_str());
    return 1;
  }

  const auto add = [&report](const std::string& name, const LintRun& r) {
    report.add(name, "files_per_sec", r.files_per_sec);
    report.add(name, "elapsed_s", r.elapsed_s);
    report.add(name, "files", static_cast<double>(r.files));
    report.add(name, "scan_ms", r.scan_ms);
    report.add(name, "rules_ms", r.rules_ms);
    report.add(name, "global_ms", r.global_ms);
    std::printf("  %-10s %10.0f files/sec  (%zu files, %zu findings, "
                "scan %.0fms rules %.0fms global %.0fms)\n",
                name.c_str(), r.files_per_sec, r.files, r.findings,
                r.scan_ms, r.rules_ms, r.global_ms);
  };

  const LintRun serial = run_point(paths, reps, /*jobs=*/1);
  const LintRun parallel = run_point(paths, reps, /*jobs=*/0);
  add("serial", serial);
  add("parallel", parallel);

  checker.check(serial.files > 0, "tree walked: files scanned > 0");

  // The determinism bar, in-run: the fanned-out lint must render the same
  // bytes as the serial one or the speedup compares two different checks.
  checker.check(serial.json == parallel.json,
                "parallel JSON byte-identical to serial");

  const double speedup = serial.files_per_sec > 0.0
                             ? parallel.files_per_sec / serial.files_per_sec
                             : 0.0;
  report.add("speedup", "vs_serial", speedup);
  std::printf("  %-10s %10.2fx parallel speedup\n", "speedup", speedup);

  if (!baseline_text.empty()) {
    double base = 0.0;
    if (!bench::json_number(baseline_text, "serial", "files_per_sec", base)) {
      checker.check(false, "serial: baseline entry present");
    } else {
      const double ratio = base > 0.0 ? serial.files_per_sec / base : 0.0;
      report.add("serial", "baseline_files_per_sec", base);
      report.add("serial", "vs_baseline", ratio);
      char label[160];
      std::snprintf(label, sizeof(label),
                    "serial: %.2fx of baseline %.0f files/sec (floor 0.60x)",
                    ratio, base);
      checker.check(ratio >= 0.6, label);
    }
  }

  if (!json_path.empty()) {
    if (!report.write_file(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return checker.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_lint.json";
  std::string baseline_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--spider-json=")) {
      json_path = std::string(arg.substr(14));
    } else if (arg.starts_with("--baseline=")) {
      baseline_path = std::string(arg.substr(11));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spider-json=PATH] [--baseline=FILE] "
                   "[--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  return run_bench(json_path, baseline_path, smoke);
}
