#include "block/disk.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace spider::block {

Disk::Disk(const DiskParams& params, std::uint32_t id, double perf_factor,
           double outlier_rate)
    : params_(params), id_(id), perf_factor_(perf_factor), outlier_rate_(outlier_rate) {
  if (perf_factor_ <= 0.0) throw std::invalid_argument("perf_factor must be > 0");
}

void Disk::degrade(double factor) {
  if (!(factor > 0.0) || factor > 1.0) {
    throw std::invalid_argument("degrade factor must be in (0, 1]");
  }
  // Floor keeps service times finite even under repeated degradation.
  perf_factor_ = std::max(0.01, perf_factor_ * factor);
}

double Disk::random_overhead_s() const {
  // Choose t_ov so that at the 1 MiB reference size:
  //   (S/bw) / (S/bw + t_ov) == random_fraction_1mb
  const double s_ref = static_cast<double>(1_MiB);
  const double media = s_ref / params_.seq_read_bw;
  const double f = params_.random_fraction_1mb;
  return media * (1.0 / f - 1.0);
}

Bandwidth Disk::effective_bw(IoMode mode, IoDir dir, Bytes request_size) const {
  const Bandwidth seq =
      (dir == IoDir::kRead ? params_.seq_read_bw : params_.seq_write_bw) * perf_factor_;
  if (mode == IoMode::kSequential) return seq;
  const double size = static_cast<double>(request_size);
  const double media = size / seq;
  return size / (media + random_overhead_s() / perf_factor_);
}

double Disk::service_time_s(Bytes size, IoMode mode, IoDir dir) const {
  const Bandwidth seq =
      (dir == IoDir::kRead ? params_.seq_read_bw : params_.seq_write_bw) * perf_factor_;
  const double media = static_cast<double>(size) / seq;
  if (mode == IoMode::kSequential) return media;
  // Small random requests additionally pay seek + rotation explicitly; the
  // calibrated overhead dominates at large sizes, positioning at small ones.
  const double positioning =
      std::max(random_overhead_s() / perf_factor_,
               (params_.seek_s + params_.rotational_s) / perf_factor_);
  return media + positioning;
}

double Disk::sample_service_time_s(Bytes size, IoMode mode, IoDir dir,
                                   Rng& rng) const {
  double t = service_time_s(size, mode, dir);
  // Mild per-request jitter (zone-dependent media rate, queueing inside the
  // drive) plus rare long recovery pauses.
  t *= 1.0 + 0.08 * (rng.uniform() - 0.5);
  if (rng.chance(outlier_rate_)) t += params_.outlier_pause_s;
  return t;
}

std::vector<Disk> make_population(std::size_t n, const DiskParams& params,
                                  const PopulationModel& pop, Rng& rng) {
  std::vector<Disk> disks;
  disks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double factor;
    double outlier;
    if (rng.chance(pop.slow_fraction)) {
      factor = rng.uniform(pop.slow_lo, pop.slow_hi);
      outlier = pop.outlier_rate_slow;
    } else {
      const double lo = 1.0 - 4.0 * pop.healthy_sigma;
      const double hi = 1.0 + 4.0 * pop.healthy_sigma;
      factor = std::clamp(rng.normal(1.0, pop.healthy_sigma), lo, hi);
      outlier = pop.outlier_rate;
    }
    disks.emplace_back(params, static_cast<std::uint32_t>(i), factor, outlier);
  }
  return disks;
}

}  // namespace spider::block
