// Checkpoint/restart with libPIO: the Section VI-A application story.
//
// An S3D-like solver writes periodic restart dumps (file-per-process,
// POSIX, 1 MiB transfers) into a center that is already busy with other
// users' I/O. The unmodified application takes whatever OSTs Lustre's
// cursor hands it; the libPIO-integrated version asks the placement
// library first. The paper reports the integration took ~30 changed lines;
// the `LibPioWriter` wrapper below is the analogous footprint.
#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "tools/libpio.hpp"
#include "workload/s3d.hpp"

using namespace spider;

namespace {

/// The application-side integration: everything the solver's I/O layer
/// needs to change to become placement-aware. Targets are chosen when the
/// output step actually starts, from the live monitoring-plane snapshot.
class LibPioWriter {
 public:
  LibPioWriter(core::CenterModel& center, core::ScenarioRunner& runner,
               bool use_libpio)
      : center_(center), runner_(runner), use_libpio_(use_libpio),
        pio_(center.storage_topology()) {}

  /// OST targets for one output step of `ranks` writer groups; call at
  /// burst start.
  std::vector<std::size_t> targets(std::size_t ranks, Rng& rng) {
    std::vector<std::size_t> osts(ranks);
    if (use_libpio_) {
      // One call into the library with the live load snapshot.
      const auto loads =
          center_.loads_from_network(runner_.network(), runner_.map());
      const auto suggestions = pio_.place_job(ranks, loads);
      for (std::size_t i = 0; i < ranks; ++i) osts[i] = suggestions[i].ost;
    } else {
      const std::size_t start = rng.uniform_index(center_.total_osts());
      for (std::size_t i = 0; i < ranks; ++i) {
        osts[i] = (start + i) % center_.total_osts();
      }
    }
    return osts;
  }

 private:
  core::CenterModel& center_;
  core::ScenarioRunner& runner_;
  bool use_libpio_;
  tools::LibPio pio_;
};

/// Background users hammering part of the fleet (production is never idle).
void add_noise(core::CenterModel& center, core::ScenarioRunner& runner,
               double duration_s, Rng& rng) {
  double t = 0.0;
  while (t < duration_s) {
    workload::IoBurst burst;
    burst.start = sim::from_seconds(t);
    burst.clients = 256;
    burst.bytes_per_client = 512_MiB;
    const std::size_t hot_base = rng.uniform_index(center.total_osts() / 2);
    runner.submit_burst(burst,
                        [hot_base, &center](std::size_t f) {
                          return (hot_base + f) % center.total_osts();
                        },
                        nullptr, 16, 60000);
    t += 60.0 + rng.uniform(0.0, 60.0);
  }
}

}  // namespace

int main() {
  Rng rng(99);
  core::CenterModel center(core::scaled_config(core::spider2_config(), 0.15),
                           rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  workload::S3dParams params;
  params.ranks = 1024;
  params.bytes_per_rank = 32_MiB;
  params.output_interval_s = 300.0;
  const workload::S3dWorkload s3d(params);

  std::cout << "S3D-like run: " << params.ranks << " ranks, "
            << to_gib(s3d.bytes_per_output()) << " GiB per restart dump, every "
            << params.output_interval_s << " s\n\n";

  for (bool use_libpio : {false, true}) {
    sim::Simulator sim;
    core::ScenarioRunner runner(center, sim);
    Rng run_rng(7);
    add_noise(center, runner, 1800.0, run_rng);
    LibPioWriter writer(center, runner, use_libpio);

    std::vector<double> burst_bw;
    Rng app_rng(13);
    auto target_rng = std::make_shared<Rng>(app_rng.fork(1));
    for (const auto& burst : s3d.generate(1800.0, app_rng)) {
      // Targets are chosen lazily, per output step, against the live load.
      auto step_targets = std::make_shared<std::vector<std::size_t>>();
      runner.submit_burst(burst,
                          [&writer, step_targets, target_rng](std::size_t f) {
                            if (step_targets->empty()) {
                              *step_targets = writer.targets(64, *target_rng);
                            }
                            return (*step_targets)[f % step_targets->size()];
                          },
                          [&burst_bw](core::BurstOutcome o) {
                            burst_bw.push_back(o.achieved_bw);
                          },
                          /*client_grouping=*/16);
    }
    sim.run();

    double mean = 0.0;
    for (double b : burst_bw) mean += b;
    mean /= static_cast<double>(burst_bw.size());
    std::cout << (use_libpio ? "with libPIO   " : "without libPIO")
              << ": " << burst_bw.size() << " restart dumps, mean "
              << to_gbps(mean) << " GB/s per dump\n";
  }
  std::cout << "\n(the paper measured up to 24% improvement for S3D in a "
               "noisy production environment)\n";
  return 0;
}
