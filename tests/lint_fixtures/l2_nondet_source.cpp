// Fixture for spiderlint rule L2 (nondet-source).
//
// Linted as if it lived under src/: ambient hardware randomness fires.
#include <random>

namespace fixture {

inline unsigned seed_from_hardware() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
