#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/distributions.hpp"
#include "common/histogram.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace spider {
namespace {

TEST(Units, BinaryAndDecimalLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(1_MB, 1000000u);
  EXPECT_EQ(2_TB, 2000000000000ull);
  EXPECT_DOUBLE_EQ(to_gbps(1.0 * kTBps), 1000.0);
  EXPECT_DOUBLE_EQ(to_pb(1000_TB), 1.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedCoverage) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.exponential(4.0));
  EXPECT_NEAR(rs.mean(), 0.25, 0.01);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng a(5);
  Rng child1 = a.fork(1);
  Rng b(5);
  Rng child2 = b.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Distributions, ParetoSamplesAboveScale) {
  Rng rng(23);
  Pareto p(1.5, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 2.0);
}

TEST(Distributions, ParetoEmpiricalMeanMatchesAnalytic) {
  Rng rng(29);
  Pareto p(2.5, 1.0);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(p.sample(rng));
  EXPECT_NEAR(rs.mean(), p.mean(), 0.05 * p.mean());
}

TEST(Distributions, ParetoInfiniteMeanForSmallAlpha) {
  Pareto p(0.9, 1.0);
  EXPECT_TRUE(std::isinf(p.mean()));
}

TEST(Distributions, ParetoRejectsBadParams) {
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, -1.0), std::invalid_argument);
}

TEST(Distributions, BoundedParetoStaysInBounds) {
  Rng rng(31);
  BoundedPareto p(1.2, 1.0, 100.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = p.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Distributions, LogNormalMeanMatchesAnalytic) {
  Rng rng(37);
  LogNormal ln(0.5, 0.4);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(ln.sample(rng));
  EXPECT_NEAR(rs.mean(), ln.mean(), 0.03 * ln.mean());
}

TEST(Distributions, ZipfPrefersLowRanks) {
  Rng rng(41);
  Zipf z(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Distributions, DiscreteMixtureProbabilities) {
  const double weights[] = {1.0, 3.0};
  DiscreteMixture mix({weights, 2});
  EXPECT_NEAR(mix.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(mix.probability(1), 0.75, 1e-12);
  Rng rng(43);
  int first = 0;
  for (int i = 0; i < 40000; ++i) {
    if (mix.sample(rng) == 0) ++first;
  }
  EXPECT_NEAR(first / 40000.0, 0.25, 0.02);
}

TEST(Distributions, EmpiricalSamplesFromValues) {
  Rng rng(47);
  Empirical e({1.0, 2.0, 4.0});
  for (int i = 0; i < 1000; ++i) {
    const double v = e.sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 4.0);
  }
}

TEST(Stats, WelfordMatchesDirectComputation) {
  Rng rng(53);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / 1000.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 999.0;
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), var, 1e-9);
}

TEST(Stats, MergeEqualsSequential) {
  Rng rng(59);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Stats, PercentilesBatchMatchesSingle) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0, 7.0};
  const std::vector<double> ps{10.0, 50.0, 90.0};
  const auto batch = percentiles(v, ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]));
  }
}

TEST(Stats, SpreadAndImbalance) {
  const std::vector<double> v{90.0, 100.0, 110.0};
  EXPECT_NEAR(spread_fraction(v), 0.2, 1e-12);
  EXPECT_NEAR(imbalance_of(v), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(spread_fraction({}), 0.0);
}

TEST(Histogram, LinearBinningAndClamping) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into the first bin
  h.add(100.0);   // clamps into the last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, Log2FractionBelow) {
  Log2Histogram h(0, 20);
  h.add(2.0);      // 2^1 bin
  h.add(1024.0);   // 2^10 bin
  h.add(1_MiB / 2.0);
  EXPECT_NEAR(h.fraction_below(512.0), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Table, FormatsAndQueriesCells) {
  Table t("demo");
  t.set_columns({"name", "count", "rate"});
  t.set_precision(2, 1);
  t.add_row({std::string("x"), std::int64_t{3}, 1.25});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_DOUBLE_EQ(t.number_at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.number_at(0, 2), 1.25);
  EXPECT_THROW(t.number_at(0, 0), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("1.2"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("x,3,1.2"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t;
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

TEST(Parallel, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i]++; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ThreadPoolRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, InlineWhenSingleThread) {
  int sum = 0;  // no synchronization needed: must run inline
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

}  // namespace
}  // namespace spider
