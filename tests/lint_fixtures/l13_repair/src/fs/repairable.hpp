// Fixture for spiderlint rule L13 (repair-mutator confinement): the
// repairable surface. `fsck_set_count` is a trigger by naming contract;
// `scrub_reset` is a trigger by annotation. Declaring them is fine —
// only *calls* from outside a repair context are breaches.
#pragma once

#include <cstdint>

#include "common/annotations.hpp"

namespace fixture {

class Table {
 public:
  std::uint64_t count() const { return count_; }
  // The repair surface: blunt overwrite, repair contexts only.
  void fsck_set_count(std::uint64_t n) { count_ = n; }
  // Annotated into the surface: composite repair helper.
  void scrub_reset() SPIDER_REPAIR_ONLY { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace fixture
