// Fixture for spiderlint rule L7 (schedule-site-flow).
//
// schedule_at/schedule_in default their std::source_location to the
// immediate caller, so a siteless call from a private helper collapses
// every event to the helper's own line. The public entry point and the
// loc-forwarding helper are engineered false positives.
#include <source_location>

namespace fixture {

class Replayer {
 public:
  // Public entry point: the defaulted source_location names the real
  // caller. Must NOT be flagged.
  void kick() { sim_.schedule_at(10, 0); }

  void kick_all(std::source_location loc = std::source_location::current()) {
    relaunch_threaded(loc);
  }

 private:
  // Private helper, siteless call: every replayed event would hash to this
  // line. Flagged.
  void relaunch() { sim_.schedule_at(10, 0); }  // L7

  // Private helper that forwards the caller's location. Must NOT be
  // flagged.
  void relaunch_threaded(std::source_location loc) {
    sim_.schedule_at(10, 0, loc);
  }

  // Cross-shard mailbox sends hash a site too: a siteless schedule_cross
  // from a private helper collapses them the same way. Flagged.
  void relaunch_cross(long due) { engine_.schedule_cross(0, 1, due, 0); }  // L7

  // And the loc-forwarding variant must NOT be flagged.
  void relaunch_cross_threaded(long due, std::source_location loc) {
    engine_.schedule_cross(0, 1, due, 0, loc);
  }

  struct FakeEngine {
    void schedule_cross(int from, int to, long when, int payload) {
      (void)from;
      (void)to;
      (void)when;
      (void)payload;
    }
    void schedule_cross(int from, int to, long when, int payload,
                        std::source_location loc) {
      (void)from;
      (void)to;
      (void)when;
      (void)payload;
      (void)loc;
    }
  };
  FakeEngine engine_;

  struct FakeSim {
    void schedule_at(long when, int payload) {
      (void)when;
      (void)payload;
    }
    void schedule_at(long when, int payload, std::source_location loc) {
      (void)when;
      (void)payload;
      (void)loc;
    }
  };
  FakeSim sim_;
};

}  // namespace fixture
