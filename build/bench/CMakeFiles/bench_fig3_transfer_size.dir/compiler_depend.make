# Empty compiler generated dependencies file for bench_fig3_transfer_size.
# This may be replaced when dependencies are built.
