
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/congestion.cpp" "src/CMakeFiles/spider_net.dir/net/congestion.cpp.o" "gcc" "src/CMakeFiles/spider_net.dir/net/congestion.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/spider_net.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/spider_net.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/fgr.cpp" "src/CMakeFiles/spider_net.dir/net/fgr.cpp.o" "gcc" "src/CMakeFiles/spider_net.dir/net/fgr.cpp.o.d"
  "/root/repo/src/net/placement.cpp" "src/CMakeFiles/spider_net.dir/net/placement.cpp.o" "gcc" "src/CMakeFiles/spider_net.dir/net/placement.cpp.o.d"
  "/root/repo/src/net/torus.cpp" "src/CMakeFiles/spider_net.dir/net/torus.cpp.o" "gcc" "src/CMakeFiles/spider_net.dir/net/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
