// Automatic purge engine (Lesson 10).
//
// "Files that are not created, modified, or accessed within a contiguous
// 14 day range are deleted by an automated process. This mechanism allows
// for automatic capacity trimming" — keeping scratch fullness below the
// 70% severe-degradation point.
//
// Two implementations live here. run_purge is the scan-era sweep: walk
// every live file, compare ages, unlink. PurgeEngine is the changelog era
// (ROADMAP item 2): it consumes the namespace's OpLog into a per-file
// last-touch table plus an age index, so a sweep costs O(candidates) and
// maintenance costs O(Δ records) — no namespace walk anywhere, which is
// the only shape that still works at 1e9 entries (Robinhood's lesson).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fs/changelog.hpp"
#include "fs/fs_namespace.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::fs {

struct PurgePolicy {
  /// Files untouched (atime, mtime, and ctime) for this long are purged.
  double window_days = 14.0;
  /// Purge runs can exempt projects (e.g. under an active extension).
  std::uint32_t exempt_project = UINT32_MAX;
};

struct PurgeReport {
  std::uint64_t scanned = 0;
  std::uint64_t purged = 0;
  Bytes freed = 0;
  /// Weighted MDS ops the sweep itself cost (scan stats + unlinks).
  double mds_ops = 0.0;
  /// Age (now - last touch) of the youngest file this sweep deleted;
  /// +infinity when nothing was purged. The purge-age oracle asserts this
  /// never drops below the policy window.
  Seconds min_purged_age_s = std::numeric_limits<double>::infinity();

  /// True once a sweep actually purged something: min_purged_age_s is only
  /// meaningful then. Consumers must check this before comparing or
  /// serializing the age (a bare +inf is not valid JSON).
  bool has_min_age() const { return std::isfinite(min_purged_age_s); }
};

/// Serialize a report as one JSON object. `min_purged_age_s` is `null`
/// when the sweep purged nothing — never the bare `inf` token.
std::string purge_report_json(const PurgeReport& report);

/// One purge sweep over a namespace at simulated time `now`.
PurgeReport run_purge(FsNamespace& ns, sim::SimTime now,
                      const PurgePolicy& policy = {});

/// Schedule the production cadence: one sweep per day at `hour_of_day`
/// (OLCF runs it off-hours), for `days` days starting from the
/// simulator's current day. Reports accumulate into `*reports` if given.
void schedule_daily_purge(sim::Simulator& sim, FsNamespace& ns,
                          const PurgePolicy& policy, int days,
                          double hour_of_day = 2.0,
                          std::vector<PurgeReport>* reports = nullptr);

// --- incremental purge (changelog consumer) ---------------------------------

/// One purge policy class: a file is eligible when it matches the age,
/// size, and owner filters simultaneously. A rules set purges a file when
/// ANY class matches (center policy is usually one broad scratch class
/// plus narrower per-project ones).
struct PurgeClass {
  /// Age threshold: eligible when now - last_touch exceeds this window.
  double window_days = 14.0;
  /// Size floor: only files at least this big (0 = any size). Lets a
  /// center purge bulk data aggressively while sparing small config files.
  Bytes min_size = 0;
  /// Owner filter: restrict the class to one project (UINT32_MAX = any).
  std::uint32_t project = UINT32_MAX;
};

struct PurgeRules {
  std::vector<PurgeClass> classes;
  /// Projects never purged regardless of class matches.
  std::uint32_t exempt_project = UINT32_MAX;
};

/// The scan-era policy expressed as one broad class (for apples-to-apples
/// comparisons between run_purge and PurgeEngine sweeps).
PurgeRules rules_from_policy(const PurgePolicy& policy);

/// Incremental purge engine: a changelog consumer owning a per-file
/// (project, size, last-touch) table plus an age index ordered by
/// (last_touch, id). poll() folds newly committed records in at O(Δ);
/// sweep() walks only the age-index prefix older than the loosest class
/// window — never the namespace. Last touch is defined as the latest
/// changelog record for the file; atime-only reads are visible exactly
/// when the namespace's mask includes kLogAtime.
class PurgeEngine {
 public:
  /// `ns` must have `log` attached (the engine unlinks through `ns`, and
  /// those unlinks must land in the same changelog every other consumer
  /// reads). The engine never commits or truncates the log.
  PurgeEngine(FsNamespace& ns, const OpLog& log, PurgeRules rules);

  /// Consume newly committed records into the tables. On cursor_ahead the
  /// tables were untouched — call rebuild(). A gap means the tables are
  /// suspect (apply what exists, escalate to spiderfsck).
  ConsumeResult poll();

  /// Evaluate the policy classes against the age index and unlink every
  /// eligible file, at simulated time `now`. PurgeReport::scanned counts
  /// age-index candidates examined, not namespace entries — the namespace
  /// is never walked (FsNamespace::full_walks() proves it).
  PurgeReport sweep(sim::SimTime now);

  /// Forget everything and re-consume the whole committed prefix — the
  /// recovery path after a crash rewound the log (cursor_ahead).
  ConsumeResult rebuild();

  std::uint64_t tracked_files() const { return files_.size(); }
  std::uint64_t cursor() const { return cursor_.position(); }
  const PurgeRules& rules() const { return rules_; }

 private:
  struct Tracked {
    std::uint32_t project = 0;
    Bytes size = 0;
    std::int64_t last_touch = 0;
  };

  void apply(const OpRecord& rec);
  void touch(std::uint64_t file, std::int64_t at);
  void drop(std::uint64_t file);

  FsNamespace& ns_;
  const OpLog& log_;
  PurgeRules rules_;
  ChangelogCursor cursor_;
  std::map<std::uint64_t, Tracked> files_;
  /// (last_touch, file) in ascending order: the sweep reads a prefix.
  std::set<std::pair<std::int64_t, std::uint64_t>> by_age_;
};

}  // namespace spider::fs
