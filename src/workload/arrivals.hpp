// Burst/idle arrival process with Pareto-tailed gaps.
//
// The Spider I study found both request inter-arrival times and idle-time
// distributions to be long-tailed (Pareto). The process alternates busy
// bursts (geometric number of requests with Pareto inter-arrival gaps) and
// Pareto-tailed idle periods — the structure the IOSI signature extractor
// later has to see through.
#pragma once

#include <cstdint>
#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "sim/time.hpp"
#include "workload/pattern.hpp"

namespace spider::workload {

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const WorkloadMixParams& mix);

  /// Gap in seconds until the next request. Internally tracks the burst
  /// state: within a burst gaps are Pareto(arrival); at burst end one
  /// Pareto(idle) gap is inserted.
  double next_gap_s(Rng& rng);

  /// True when the last returned gap ended a burst (was an idle period).
  bool last_gap_was_idle() const { return last_was_idle_; }

 private:
  WorkloadMixParams mix_;
  Pareto arrival_;
  Pareto idle_;
  double requests_left_in_burst_ = 0.0;
  bool last_was_idle_ = false;
};

/// Generate a full request trace: `clients` independent processes sampled
/// for `duration_s`, merged and sorted by issue time.
std::vector<IoRequest> generate_trace(const WorkloadMixParams& mix,
                                      std::uint32_t clients, double duration_s,
                                      Rng& rng);

}  // namespace spider::workload
