// Discrete-event simulator driver.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>

#include "common/function_ref.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace spider::sim {

/// Called for every executed event, before its callback runs: (time, event
/// id, scheduling-site hash). Used by the deterministic-replay harness
/// (sim/replay.hpp); it sits on the hot dispatch path, so it is a
/// non-owning two-word FunctionRef — one indirect call per event instead of
/// std::function's double indirection. The referent (e.g. a ReplayRecorder)
/// must outlive the simulator's run.
using EventObserver = FunctionRef<void(SimTime, EventId, std::uint64_t)>;

/// Stable hash of a scheduling call site (file name + line), folded into the
/// replay stream so a divergence names the code that scheduled the event.
std::uint64_t site_hash(const std::source_location& loc);

/// The basename of a path, for checkout-independent diagnostics.
const char* source_basename(const char* path);

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedule at an absolute time (must be >= now()).
  EventId schedule_at(SimTime when, EventFn fn,
                      std::source_location loc = std::source_location::current());
  /// Schedule `dt` after now (dt >= 0).
  EventId schedule_in(SimTime dt, EventFn fn,
                      std::source_location loc = std::source_location::current());
  /// Schedule with a precomputed scheduling-site hash (see site_hash). The
  /// sharded engine uses this when transferring a cross-shard mailbox
  /// message into the target queue, so the replay stream still names the
  /// original schedule_cross call site rather than the drain loop.
  EventId schedule_sited(SimTime when, EventFn fn, std::uint64_t site);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or `until` is reached, whichever is first.
  /// Events with time <= `until` execute (the horizon is inclusive).
  ///
  /// Clock semantics are uniform: with a finite `until`, now() lands exactly
  /// on `until` when the call returns — whether the run was cut off by the
  /// horizon, the queue drained mid-run, or the queue was empty to begin
  /// with. Barrier-synchronized callers (sim/sharded_sim.hpp) rely on this:
  /// an idle shard must still reach each epoch boundary. With the default
  /// infinite horizon the clock stops at the last executed event. Returns
  /// the number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Execute exactly one event, if any. Returns true if one ran.
  bool step();

  /// Install (or clear, with nullptr) the per-event observer. Non-owning:
  /// the observed object must stay alive for every subsequent run()/step().
  void set_observer(EventObserver obs) { observer_ = obs; }

  bool idle() const { return queue_.empty(); }
  /// Earliest pending event time, or SimTime's max when the queue is empty.
  /// The sharded engine's epoch scheduler uses this to skip dead time.
  SimTime next_event_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::max()
                          : queue_.next_time();
  }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  void dispatch(EventQueue::Fired fired);

  EventQueue queue_;
  EventObserver observer_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace spider::sim
