// Minimal task parallelism: a fixed thread pool plus parallel_for.
//
// Benchmarks sweep large parameter spaces (Lesson 15 warns scaling studies
// are expensive); independent sweep points run concurrently across hardware
// threads. Simulations themselves stay single-threaded and deterministic —
// parallelism is only across independent runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace spider {

/// Fixed-size worker pool. Tasks are void() callables. An exception escaping
/// a task does not kill the worker: the first exception per batch is
/// captured and rethrown from the next wait_idle() call; later exceptions in
/// the same batch are dropped.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  /// Block until every submitted task has finished, then rethrow the first
  /// exception any task in the batch raised (clearing it, so the pool stays
  /// usable for the next batch).
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();
  /// Wake wait_idle() when the batch has drained. Caller holds mu_ — the
  /// predicate check and the notification must be serialized or the wakeup
  /// can be lost.
  void notify_if_idle_locked() SPIDER_REQUIRES(mu_);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> tasks_ SPIDER_GUARDED_BY(mu_);
  std::exception_ptr first_error_ SPIDER_GUARDED_BY(mu_);
  std::size_t in_flight_ SPIDER_GUARDED_BY(mu_) = 0;
  bool stop_ SPIDER_GUARDED_BY(mu_) = false;
};

/// Run fn(i) for i in [0, n) across up to `threads` workers. Blocks until
/// all iterations complete. With threads <= 1 (or n <= 1) runs inline, which
/// keeps single-threaded determinism trivially available. If any iteration
/// throws, remaining un-started iterations are skipped and the first
/// exception is rethrown on the calling thread after all workers join.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = std::thread::hardware_concurrency());

}  // namespace spider
