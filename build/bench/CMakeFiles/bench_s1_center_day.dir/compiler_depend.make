# Empty compiler generated dependencies file for bench_s1_center_day.
# This may be replaced when dependencies are built.
