# Empty dependencies file for dynamic_property_test.
# This may be replaced when dependencies are built.
