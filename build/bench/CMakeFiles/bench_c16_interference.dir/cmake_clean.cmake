file(REMOVE_RECURSE
  "CMakeFiles/bench_c16_interference.dir/bench_c16_interference.cpp.o"
  "CMakeFiles/bench_c16_interference.dir/bench_c16_interference.cpp.o.d"
  "bench_c16_interference"
  "bench_c16_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c16_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
