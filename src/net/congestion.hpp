// Static congestion analysis of the torus under an I/O pattern (Lesson 14).
//
// "Network congestion will lead to sub-optimal I/O performance.
// Identifying hot spots and eliminating them is key to realizing better
// performance." The analyzer projects a client population's I/O demand
// onto dimension-order-routed torus links and reports the hotspot
// structure (hottest link, tail loads, concentration factor) — the view an
// operator needs *before* running traffic, complementing the solver's
// delivered-bandwidth answer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "net/fgr.hpp"
#include "net/torus.hpp"

namespace spider::net {

enum class RoutingChoice { kFgr, kNearest, kRoundRobin };

struct CongestionReport {
  std::size_t clients = 0;
  std::size_t links_used = 0;
  double total_demand = 0.0;     ///< bytes/s injected
  double max_link_load = 0.0;    ///< bytes/s on the hottest link
  double mean_link_load = 0.0;   ///< over links carrying traffic
  double p99_link_load = 0.0;
  /// Hotspot concentration: max / mean over used links.
  double concentration = 0.0;
  LinkId hottest_link = 0;
  /// Average torus hops per flow (data-movement cost).
  double mean_hops = 0.0;
};

/// Project `per_client_bw` of demand from every client onto the torus.
/// `dest_leaf_of_client[i]` is the IB leaf client i's target OST lives on.
CongestionReport analyze_congestion(const Torus3D& torus,
                                    const FgrPolicy& policy,
                                    std::span<const int> client_nodes,
                                    std::span<const std::size_t> dest_leaf,
                                    Bandwidth per_client_bw,
                                    RoutingChoice routing);

/// Per-link load vector (directed links), for custom analyses/plots.
std::vector<double> link_loads(const Torus3D& torus, const FgrPolicy& policy,
                               std::span<const int> client_nodes,
                               std::span<const std::size_t> dest_leaf,
                               Bandwidth per_client_bw, RoutingChoice routing);

}  // namespace spider::net
