// S3D: the direct numerical combustion solver used to validate libPIO
// (Section VI-A).
//
// "S3D is I/O intensive and periodically outputs the state of the
// simulation to the scratch file system" — POSIX file-per-process bursts.
// The paper integrated libPIO with ~30 changed lines and measured up to
// 24% POSIX I/O bandwidth improvement in a noisy production environment.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/checkpoint.hpp"

namespace spider::workload {

struct S3dParams {
  /// MPI ranks performing I/O (a large production S3D run).
  std::uint32_t ranks = 12288;
  /// Restart-file bytes per rank per output step.
  Bytes bytes_per_rank = 28_MiB;
  /// Simulation steps between outputs, expressed as wall seconds.
  double output_interval_s = 600.0;
  /// POSIX transfer size used by the writer.
  Bytes request_size = 1_MiB;
};

class S3dWorkload {
 public:
  explicit S3dWorkload(const S3dParams& params);

  const S3dParams& params() const { return params_; }
  Bytes bytes_per_output() const;

  /// Output-burst schedule over `duration_s`.
  std::vector<IoBurst> generate(double duration_s, Rng& rng) const;

 private:
  S3dParams params_;
};

}  // namespace spider::workload
