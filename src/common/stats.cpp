#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace spider {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
// Shared closest-ranks interpolation over an already-sorted sample; the
// single definition keeps percentile() and percentiles() bit-identical.
double sorted_rank(std::span<const double> sorted, double p) {
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_rank(sorted, p);
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  std::vector<double> out;
  out.reserve(ps.size());
  if (values.empty()) {
    out.assign(ps.size(), 0.0);
    return out;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (double p : ps) out.push_back(sorted_rank(sorted, p));
  return out;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double stddev_of(std::span<const double> values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.stddev();
}

double spread_fraction(std::span<const double> values) {
  if (values.empty()) return 0.0;
  RunningStats rs;
  for (double v : values) rs.add(v);
  if (rs.mean() == 0.0) return 0.0;
  return (rs.max() - rs.min()) / rs.mean();
}

double imbalance_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  RunningStats rs;
  for (double v : values) rs.add(v);
  if (rs.mean() == 0.0) return 0.0;
  return rs.max() / rs.mean() - 1.0;
}

}  // namespace spider
