// spiderfsck CLI — parallel namespace consistency checker and repairer.
//
// Usage: spiderfsck [options]
//   --files=N     synthetic namespace size (default 64)
//   --osts=N      OST count (default 8)
//   --churn=F     per-file unlink probability while populating (default 0.25)
//   --seed=S      population + corruption seed (default 2014)
//   --corrupt=N   apply N seeded corruptions before checking (default 0)
//   --jobs=N      phase-1 scan lanes (default 1; 0 = whole machine)
//   --shards=N    phase-1 scan shards (default 8)
//   --strided     strided instead of contiguous shard assignment
//   --dry-run     detect only; do not repair
//   --json        print the full fsck report as one JSON line
//
// The tool builds a deterministic synthetic namespace + op journal + DNE
// shard set from --seed, optionally damages it with seeded corruptions
// (cycling through every finding kind), then runs the three fsck phases.
// Output is byte-identical at any --jobs/--shards/--strided setting: shard
// results are buffered and merged in canonical order, so parallelism never
// leaks into stdout — the determinism bar scripts/check.sh diffs.
//
// Exit codes: 0 clean (dry run found nothing, or repair converged — the
// post-repair re-check found nothing), 1 findings remain (dry run found
// breaches, or repair failed to converge), 2 usage error.
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "tools/spiderfsck/fsck.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--files=N] [--osts=N] [--churn=F] [--seed=S]\n"
               "       [--corrupt=N] [--jobs=N] [--shards=N] [--strided]\n"
               "       [--dry-run] [--json]\n",
               argv0);
  return 2;
}

bool parse_count(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider;

  tools::SyntheticFsConfig fs_cfg;
  tools::FsckOptions options;
  options.repair = true;
  std::uint64_t corruptions = 0;
  std::uint64_t jobs = 1;
  std::uint64_t shards = 0;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t value = 0;
    if (arg.starts_with("--files=")) {
      if (!parse_count(arg.substr(8), value) || value == 0) {
        return usage(argv[0]);
      }
      fs_cfg.files = static_cast<std::size_t>(value);
    } else if (arg.starts_with("--osts=")) {
      if (!parse_count(arg.substr(7), value) || value == 0) {
        return usage(argv[0]);
      }
      fs_cfg.raid_groups = static_cast<std::size_t>(value);
    } else if (arg.starts_with("--churn=")) {
      try {
        fs_cfg.churn = std::stod(std::string(arg.substr(8)));
      } catch (const std::exception&) {
        return usage(argv[0]);
      }
      if (fs_cfg.churn < 0.0 || fs_cfg.churn > 1.0) return usage(argv[0]);
    } else if (arg.starts_with("--seed=")) {
      if (!parse_count(arg.substr(7), fs_cfg.seed)) return usage(argv[0]);
    } else if (arg.starts_with("--corrupt=")) {
      if (!parse_count(arg.substr(10), corruptions)) return usage(argv[0]);
    } else if (arg.starts_with("--jobs=")) {
      if (!parse_count(arg.substr(7), jobs)) return usage(argv[0]);
    } else if (arg.starts_with("--shards=")) {
      if (!parse_count(arg.substr(9), shards) || shards == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--strided") {
      options.assignment = tools::ShardAssignment::kStrided;
    } else if (arg == "--dry-run") {
      options.repair = false;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "spiderfsck: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }
  options.jobs = static_cast<std::size_t>(jobs);
  options.shards = static_cast<std::size_t>(shards);

  tools::SyntheticFs fs = tools::make_synthetic_fs(fs_cfg);
  tools::FsckTarget target = fs.target();

  // Seeded corruptions cycle through the finding kinds so --corrupt=10
  // exercises every detector; inapplicable kinds are skipped.
  Rng corrupt_rng(fs_cfg.seed ^ 0x5fc5ull);
  constexpr tools::FindingKind kKinds[] = {
      tools::FindingKind::kBadRecordId,
      tools::FindingKind::kDanglingStripe,
      tools::FindingKind::kJournalMissingCreate,
      tools::FindingKind::kJournalMissingUnlink,
      tools::FindingKind::kJournalGhostUnlink,
      tools::FindingKind::kLiveCountDrift,
      tools::FindingKind::kCreateCountDrift,
      tools::FindingKind::kOrphanObjects,
      tools::FindingKind::kLostObjects,
      tools::FindingKind::kDneLoadDrift,
  };
  for (std::uint64_t c = 0; c < corruptions; ++c) {
    const tools::FindingKind kind = kKinds[c % std::size(kKinds)];
    const std::string what = tools::inject_corruption(target, kind, corrupt_rng);
    if (!what.empty()) {
      std::fprintf(stderr, "spiderfsck: injected [%s] %s\n",
                   std::string(tools::finding_kind_name(kind)).c_str(),
                   what.c_str());
    }
  }

  const tools::FsckReport report = tools::run_fsck(target, options);
  if (json) {
    std::printf("%s\n", tools::fsck_report_json(report).c_str());
  } else {
    std::printf(
        "spiderfsck: %llu slot(s), %llu live file(s), %llu OST(s), "
        "%llu journal record(s): %zu finding(s), %llu repair(s)\n",
        static_cast<unsigned long long>(report.slots_scanned),
        static_cast<unsigned long long>(report.live_files),
        static_cast<unsigned long long>(report.osts_scanned),
        static_cast<unsigned long long>(report.journal_records),
        report.findings.size(),
        static_cast<unsigned long long>(report.repairs_applied));
    for (const auto& f : report.findings) {
      std::printf("  [%s] %s%s%s\n",
                  std::string(tools::finding_kind_name(f.kind)).c_str(),
                  f.detail.c_str(), f.repaired ? " -- repaired: " : "",
                  f.repair.c_str());
    }
  }

  if (!options.repair) return report.clean() ? 0 : 1;

  // Repair mode: the bar is convergence — a re-check of the repaired tree
  // must come back clean. The re-check runs serially; fan-out has already
  // been exercised by the primary pass.
  tools::FsckOptions recheck;
  recheck.jobs = 1;
  recheck.shards = options.shards;
  const tools::FsckReport verify = tools::run_fsck(target, recheck);
  if (!verify.clean()) {
    std::fprintf(stderr,
                 "spiderfsck: repair did not converge: %zu finding(s) remain\n",
                 verify.findings.size());
    return 1;
  }
  return 0;
}
