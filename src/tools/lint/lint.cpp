#include "tools/lint/lint.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/parallel.hpp"
#include "tools/lint/global.hpp"

// spiderlint-file: nondet-ok — steady_clock feeds only the --stats phase
// timings, never a finding, a sort key, or an output byte.

namespace spider::lint {

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<std::string> collect_sources(const std::vector<std::string>& paths,
                                         std::vector<std::string>& errors) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(p, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      errors.push_back("cannot access: " + p);
      continue;
    }
    if (fs::is_directory(st)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        // Lint fixtures contain deliberate violations; they are linted
        // explicitly by their tests, never via directory recursion.
        if (it->is_directory() &&
            it->path().filename() == "lint_fixtures") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable_extension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) errors.push_back("error walking: " + p + " (" + ec.message() + ")");
    } else {
      files.push_back(fs::path(p).generic_string());
    }
  }
  // Sorted + deduplicated so runs are reproducible regardless of readdir
  // order — a lint about determinism had better be deterministic itself.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> lint_scanned(const SourceFile& file,
                                  const LintOptions& opts,
                                  const SourceFile* paired_header) {
  const FileClass cls = opts.forced_class.has_value()
                            ? *opts.forced_class
                            : classify_path(file.path);
  return lint_file(file, cls, paired_header, opts.rules);
}

namespace {

/// Baseline-style path matching for --only: exact, or a path suffix at a
/// '/' boundary ("fs/ost.cpp" matches "src/fs/ost.cpp").
bool path_matches(const std::string& file, const std::string& pattern) {
  if (file == pattern) return true;
  return file.size() > pattern.size() && file.ends_with(pattern) &&
         file[file.size() - pattern.size() - 1] == '/';
}

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& opts,
                      std::vector<std::string>& errors) {
  using Clock = std::chrono::steady_clock;
  LintReport report;
  const Clock::time_point t0 = Clock::now();
  // Read + scan stays serial: IO error reporting keeps a deterministic
  // order, and the scanner is a fraction of tokenize+rules cost. Scanned
  // files are kept for the whole-program passes (L5 layering, L13-L16).
  std::vector<SourceFile> scanned;
  for (const std::string& path : collect_sources(paths, errors)) {
    const std::optional<std::string> contents = read_file(path);
    if (!contents.has_value()) {
      errors.push_back("cannot read: " + path);
      continue;
    }
    scanned.push_back(scan_source(path, *contents));
    ++report.files_scanned;
  }
  const Clock::time_point t1 = Clock::now();

  // Per-file pass, fanned out over the shared pool. Each slot is written
  // by exactly one task and merged in slot order — and collect_sources is
  // sorted — so the findings stream is byte-identical at any job count.
  std::vector<std::vector<Finding>> slots(scanned.size());
  spider::parallel_for(
      scanned.size(),
      [&](std::size_t i) {
        const SourceFile& file = scanned[i];
        // Pair foo.cpp with a sibling foo.hpp (or .h/.hh) for L1
        // identifier tracking and L6/L7 declaration lookup.
        SourceFile header;
        const SourceFile* paired = nullptr;
        const fs::path p(file.path);
        if (p.extension() == ".cpp" || p.extension() == ".cc") {
          for (const char* ext : {".hpp", ".h", ".hh"}) {
            fs::path candidate = p;
            candidate.replace_extension(ext);
            const std::optional<std::string> header_text =
                read_file(candidate.generic_string());
            if (header_text.has_value()) {
              header = scan_source(candidate.generic_string(), *header_text);
              paired = &header;
              break;
            }
          }
        }
        slots[i] = lint_scanned(file, opts, paired);
      },
      opts.jobs);
  for (std::vector<Finding>& found : slots) {
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
  }
  const Clock::time_point t2 = Clock::now();

  std::vector<Finding> project = lint_project(scanned, opts.rules);
  report.findings.insert(report.findings.end(),
                         std::make_move_iterator(project.begin()),
                         std::make_move_iterator(project.end()));
  GlobalOptions gopts;
  gopts.rules = opts.rules;
  gopts.forced_class = opts.forced_class;
  gopts.jobs = opts.jobs;
  std::vector<Finding> global = lint_global(scanned, gopts);
  report.findings.insert(report.findings.end(),
                         std::make_move_iterator(global.begin()),
                         std::make_move_iterator(global.end()));
  const Clock::time_point t3 = Clock::now();

  // --only filters what is *reported*; everything above still saw the full
  // file set (cross-TU rules are unsound on a partial index).
  if (!opts.report_only.empty()) {
    report.findings.erase(
        std::remove_if(report.findings.begin(), report.findings.end(),
                       [&](const Finding& f) {
                         for (const std::string& pat : opts.report_only) {
                           if (path_matches(f.file, pat)) return false;
                         }
                         return true;
                       }),
        report.findings.end());
  }
  // stable_sort: equal keys keep their (deterministic) insertion order, so
  // two findings sharing file/line/column/rule can never flip bytes
  // between job counts.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.column != b.column) return a.column < b.column;
                     return a.rule < b.rule;
                   });
  report.scan_ms = elapsed_ms(t0, t1);
  report.rules_ms = elapsed_ms(t1, t2);
  report.global_ms = elapsed_ms(t2, t3);
  return report;
}

}  // namespace spider::lint
