#include "sim/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace spider::sim {

namespace {
// A flow is considered finished when its remaining size drops below this
// fraction of one unit; prevents infinite tails from float error.
constexpr double kRemainingEps = 1e-6;
}  // namespace

ResourceId FlowNetwork::add_resource(std::string name, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("resource capacity must be >= 0");
  names_.push_back(std::move(name));
  capacity_.push_back(capacity);
  stats_.emplace_back();
  return static_cast<ResourceId>(capacity_.size() - 1);
}

void FlowNetwork::set_capacity(ResourceId id, double capacity) {
  advance_progress();
  capacity_.at(id) = capacity;
  resolve();
}

FlowId FlowNetwork::start_flow(FlowDesc desc) {
  if (desc.size <= 0.0) throw std::invalid_argument("flow size must be > 0");
  for (const auto& hop : desc.path) {
    if (hop.resource >= capacity_.size()) {
      throw std::out_of_range("flow path references unknown resource");
    }
  }
  const FlowId id = next_flow_id_++;
  auto activate = [this, id, desc = std::move(desc)]() mutable {
    advance_progress();
    ActiveFlow f;
    f.path = std::move(desc.path);
    f.size = desc.size;
    f.remaining = desc.size;
    f.rate_cap = desc.rate_cap;
    f.on_complete = std::move(desc.on_complete);
    for (const auto& hop : f.path) ++stats_[hop.resource].flows_seen;
    flows_.emplace(id, std::move(f));
    resolve();
  };
  if (desc.latency > 0) {
    const SimTime latency = desc.latency;
    sim_.schedule_in(latency, std::move(activate));
  } else {
    activate();
  }
  return id;
}

void FlowNetwork::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_progress();
  flows_.erase(it);
  resolve();
}

double FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::advance_progress() {
  const SimTime now = sim_.now();
  if (now == last_update_) return;
  const double dt = to_seconds(now - last_update_);
  last_update_ = now;
  if (dt <= 0.0) return;
  // Per-resource delivered units this interval, for telemetry.
  std::vector<double> used(capacity_.size(), 0.0);
  for (auto& [id, f] : flows_) {
    const double moved = std::min(f.remaining, f.rate * dt);
    f.remaining -= moved;
    for (const auto& hop : f.path) used[hop.resource] += moved * hop.cost;
  }
  for (std::size_t r = 0; r < capacity_.size(); ++r) {
    stats_[r].served += used[r];
    if (capacity_[r] > 0.0) {
      stats_[r].busy_integral += used[r] / capacity_[r];
    }
  }
}

void FlowNetwork::resolve() {
  // Cancel any stale completion event.
  if (completion_scheduled_) {
    sim_.cancel(completion_event_);
    completion_scheduled_ = false;
  }

  // flows_ is id-ordered, so the solver sees flows in a canonical sequence
  // and rate/float-sum results depend only on the live flow set.
  std::vector<SolverFlow> sf;
  sf.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    sf.push_back(SolverFlow{f.path, f.rate_cap});
  }
  const SolveResult res = solve_max_min(capacity_, sf);

  aggregate_rate_ = 0.0;
  double min_completion_s = kUnbounded;
  std::size_t i = 0;
  for (auto& [id, f] : flows_) {
    f.rate = res.rate[i++];
    aggregate_rate_ += f.rate;
    if (f.rate > 0.0) {
      min_completion_s = std::min(min_completion_s, f.remaining / f.rate);
    }
  }
  for (std::size_t r = 0; r < capacity_.size(); ++r) {
    stats_[r].current_load = res.utilization[r];
  }

  if (!std::isinf(min_completion_s)) {
    SimTime dt = from_seconds(min_completion_s);
    if (dt < 1) dt = 1;  // always move forward
    completion_event_ = sim_.schedule_in(dt, [this] { on_completion_event(); });
    completion_scheduled_ = true;
  }
}

void FlowNetwork::on_completion_event() {
  completion_scheduled_ = false;
  advance_progress();
  // Collect finished flows (remaining ~ 0), fire callbacks after erasing so
  // callbacks may start new flows re-entrantly. The id-ordered walk makes
  // both the total_delivered_ sum and the callback order canonical.
  std::vector<std::pair<FlowId, std::function<void(FlowId, SimTime)>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kRemainingEps * (1.0 + it->second.remaining)) {
      total_delivered_ += it->second.size;
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  const SimTime now = sim_.now();
  for (auto& [id, cb] : done) {
    if (cb) cb(id, now);
  }
  resolve();
}

}  // namespace spider::sim
