// C16 (Lessons 1-2): mixed workloads interfere on a shared file system.
//
// Paper: "In some cases, competing workloads can significantly impact
// application runtime of simulations or the responsiveness of interactive
// analysis workloads." The data-centric design must be judged against the
// mix, not against each machine's stream in isolation.
//
// Method (DES): a latency-sensitive analytics read stream runs for 60 s;
// a Titan-style checkpoint burst slams the same namespace mid-stream.
// Reported: analytics latency percentiles quiet vs contended, and the
// checkpoint's own completion time with and without the analytics stream.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "workload/analytics.hpp"

namespace {

using namespace spider;

struct RunResult {
  double mean_latency = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double checkpoint_s = 0.0;
};

RunResult run(core::CenterModel& center, bool with_checkpoint,
              bool with_analytics) {
  sim::Simulator sim;
  core::ScenarioRunner runner(center, sim);
  std::vector<double> latencies;
  if (with_analytics) {
    workload::AnalyticsParams ap;
    ap.clients = 16;
    workload::AnalyticsWorkload analytics(ap);
    Rng arng(11);
    runner.submit_requests(analytics.generate(60.0, arng),
                           [](std::size_t w) { return w % 8; }, &latencies);
  }
  core::BurstOutcome checkpoint_outcome;
  bool checkpoint_done = false;
  if (with_checkpoint) {
    // 128 grouped flows over the analytics stream's 8 OSTs: each OST's
    // fair share drops below what a single reader needs.
    workload::IoBurst burst;
    burst.start = 10 * sim::kSecond;
    burst.clients = 4096;
    burst.bytes_per_client = 512_MiB;
    runner.submit_burst(burst, [](std::size_t f) { return f % 8; },
                        [&](core::BurstOutcome o) {
                          checkpoint_outcome = o;
                          checkpoint_done = true;
                        },
                        32, 100000);
  }
  sim.run();
  RunResult r;
  if (!latencies.empty()) {
    r.mean_latency = mean_of(latencies);
    r.p50 = percentile(latencies, 50.0);
    r.p99 = percentile(latencies, 99.0);
  }
  if (checkpoint_done) {
    r.checkpoint_s = sim::to_seconds(checkpoint_outcome.end -
                                     checkpoint_outcome.start);
  }
  return r;
}

}  // namespace

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(
      core::scaled_config(core::spider2_config(), 0.1), rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  bench::banner("C16: checkpoint/analytics interference on a shared namespace");

  const auto quiet = run(center, /*checkpoint=*/false, /*analytics=*/true);
  const auto contended = run(center, true, true);
  const auto checkpoint_alone = run(center, true, /*analytics=*/false);

  Table table;
  table.set_columns({"scenario", "analytics mean ms", "p50 ms", "p99 ms",
                     "checkpoint time s"});
  table.add_row({std::string("analytics alone"), quiet.mean_latency * 1e3,
                 quiet.p50 * 1e3, quiet.p99 * 1e3, 0.0});
  table.add_row({std::string("analytics + checkpoint"),
                 contended.mean_latency * 1e3, contended.p50 * 1e3,
                 contended.p99 * 1e3, contended.checkpoint_s});
  table.add_row({std::string("checkpoint alone"), 0.0, 0.0, 0.0,
                 checkpoint_alone.checkpoint_s});
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(contended.mean_latency > 1.3 * quiet.mean_latency,
                "checkpoint traffic visibly hurts analytics responsiveness");
  checker.check(contended.p99 > 1.3 * quiet.p99,
                "tail latency suffers most under contention");
  checker.check(contended.checkpoint_s > checkpoint_alone.checkpoint_s,
                "the reads also slow the checkpoint (contention is mutual)");
  return checker.exit_code();
}
