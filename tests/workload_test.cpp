#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sim/steady_state.hpp"
#include "workload/analytics.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterize.hpp"
#include "workload/checkpoint.hpp"
#include "workload/ior.hpp"
#include "workload/mixed.hpp"
#include "workload/pattern.hpp"
#include "workload/s3d.hpp"

namespace spider::workload {
namespace {

TEST(Pattern, SizesAreBimodal) {
  Rng rng(1);
  RequestSizeModel model{WorkloadMixParams{}};
  std::size_t small = 0, mb_multiple = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Bytes s = model.sample(rng);
    if (s < 16_KiB) ++small;
    if (s >= 1_MB && s % 1_MB == 0) ++mb_multiple;
  }
  // Every sample is in one of the two paper modes.
  EXPECT_NEAR(static_cast<double>(small) / n,
              WorkloadMixParams{}.small_fraction, 0.02);
  EXPECT_NEAR(static_cast<double>(small + mb_multiple) / n, 1.0, 0.02);
}

TEST(Pattern, DirectionMatchesWriteFraction) {
  Rng rng(2);
  WorkloadMixParams mix;
  int writes = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sample_dir(mix, rng) == block::IoDir::kWrite) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.60, 0.01);
}

TEST(Pattern, RejectsBadParams) {
  WorkloadMixParams mix;
  mix.small_fraction = 1.5;
  EXPECT_THROW(RequestSizeModel{mix}, std::invalid_argument);
}

TEST(Arrivals, GapsPositiveAndIdleFlagged) {
  Rng rng(3);
  ArrivalProcess proc{WorkloadMixParams{}};
  bool saw_idle = false, saw_burst = false;
  for (int i = 0; i < 20000; ++i) {
    const double gap = proc.next_gap_s(rng);
    EXPECT_GT(gap, 0.0);
    if (proc.last_gap_was_idle()) {
      saw_idle = true;
      EXPECT_GE(gap, WorkloadMixParams{}.idle_scale_s);
    } else {
      saw_burst = true;
    }
  }
  EXPECT_TRUE(saw_idle);
  EXPECT_TRUE(saw_burst);
}

TEST(Arrivals, TraceSortedAndWithinDuration) {
  Rng rng(4);
  const auto trace = generate_trace(WorkloadMixParams{}, 8, 30.0, rng);
  EXPECT_FALSE(trace.empty());
  EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                             [](const IoRequest& a, const IoRequest& b) {
                               return a.issue_time < b.issue_time;
                             }));
  for (const auto& r : trace) {
    EXPECT_LT(sim::to_seconds(r.issue_time), 30.0);
    EXPECT_LT(r.client, 8u);
  }
}

TEST(Checkpoint, RequiredBandwidthMatchesPaperSizing) {
  // 75% of 600 TB in 6 minutes -> 1.25 TB/s: the origin of the "1 TB/s"
  // Spider II requirement.
  CheckpointWorkload w{CheckpointParams{}};
  EXPECT_NEAR(w.required_bandwidth(360.0) / kTBps, 1.25, 0.01);
  EXPECT_EQ(w.bytes_per_checkpoint(), 450_TB);
}

TEST(Checkpoint, BurstsRoughlyPeriodic) {
  Rng rng(5);
  CheckpointParams p;
  p.period_s = 600.0;
  CheckpointWorkload w{p};
  const auto bursts = w.generate(6000.0, rng);
  ASSERT_GE(bursts.size(), 8u);
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    const double gap = sim::to_seconds(bursts[i].start - bursts[i - 1].start);
    EXPECT_NEAR(gap, 600.0, 600.0 * p.period_jitter + 1.0);
  }
  for (const auto& b : bursts) {
    EXPECT_EQ(b.dir, block::IoDir::kWrite);
    EXPECT_EQ(b.clients, p.clients);
  }
}

TEST(Analytics, AllReadsWithBoundedSizes) {
  Rng rng(6);
  AnalyticsParams p;
  p.clients = 16;
  AnalyticsWorkload w{p};
  const auto trace = w.generate(20.0, rng);
  EXPECT_GT(trace.size(), 100u);
  for (const auto& r : trace) {
    EXPECT_EQ(r.dir, block::IoDir::kRead);
    EXPECT_GE(r.size, p.read_lo);
    EXPECT_LE(r.size, p.read_hi);
  }
}

TEST(Mixed, MergePreservesCountAndOrder) {
  Rng rng(7);
  auto a = generate_trace(WorkloadMixParams{}, 4, 10.0, rng);
  AnalyticsWorkload analytics{AnalyticsParams{}};
  auto b = analytics.generate(10.0, rng);
  const std::size_t total = a.size() + b.size();
  const auto merged = merge_traces({std::move(a), std::move(b)});
  EXPECT_EQ(merged.size(), total);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const IoRequest& x, const IoRequest& y) {
                               return x.issue_time < y.issue_time;
                             }));
}

TEST(Mixed, TimelineConservesBytes) {
  std::vector<IoRequest> trace;
  for (int i = 0; i < 10; ++i) {
    IoRequest r;
    r.issue_time = sim::from_seconds(0.5 + i);
    r.size = 1_MB;
    trace.push_back(r);
  }
  const auto timeline = bandwidth_timeline(trace, 1.0, 12.0);
  double sum = 0.0;
  for (double b : timeline) sum += b;  // bin width 1 s -> sum == bytes
  EXPECT_NEAR(sum, 10e6, 1.0);
}

TEST(S3d, OutputVolumeAndSchedule) {
  Rng rng(8);
  S3dParams p;
  S3dWorkload w{p};
  EXPECT_EQ(w.bytes_per_output(),
            static_cast<Bytes>(p.ranks) * p.bytes_per_rank);
  const auto bursts = w.generate(3600.0, rng);
  EXPECT_NEAR(static_cast<double>(bursts.size()), 6.0, 1.0);
}

// --- characterization -----------------------------------------------------------

TEST(Characterize, RecoversPaperMix) {
  Rng rng(9);
  const auto trace = generate_trace(WorkloadMixParams{}, 32, 120.0, rng);
  const auto stats = characterize(trace);
  EXPECT_NEAR(stats.write_fraction, 0.60, 0.02);
  EXPECT_NEAR(stats.small_fraction, WorkloadMixParams{}.small_fraction, 0.03);
  EXPECT_NEAR(stats.small_fraction + stats.mb_multiple_fraction, 1.0, 0.03);
}

class HillEstimatorP : public ::testing::TestWithParam<double> {};

TEST_P(HillEstimatorP, RecoversParetoTailIndex) {
  const double alpha = GetParam();
  Rng rng(static_cast<std::uint64_t>(alpha * 1000));
  Pareto p(alpha, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(p.sample(rng));
  const double est = hill_tail_index(samples, 2500);
  EXPECT_NEAR(est, alpha, 0.15 * alpha);
}

INSTANTIATE_TEST_SUITE_P(Alphas, HillEstimatorP,
                         ::testing::Values(0.9, 1.15, 1.35, 1.8, 2.5));

TEST(Characterize, EmptyTraceSafe) {
  const auto stats = characterize({});
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_DOUBLE_EQ(stats.write_fraction, 0.0);
}

// --- IOR -------------------------------------------------------------------------

TEST(IorCap, RampsAndPeaksAtRpcSize) {
  const Bandwidth stream = 600.0 * kMBps;
  const double tiny = transfer_size_rate_cap(4_KiB, stream);
  const double small = transfer_size_rate_cap(256_KiB, stream);
  const double mb = transfer_size_rate_cap(1_MiB, stream);
  const double big = transfer_size_rate_cap(16_MiB, stream);
  EXPECT_LT(tiny, 0.1 * mb);
  EXPECT_LT(small, mb);
  EXPECT_LT(big, mb);        // >1 MiB pays the alignment penalty...
  EXPECT_GT(big, 0.9 * mb);  // ...but only a small one
  EXPECT_DOUBLE_EQ(transfer_size_rate_cap(0, stream), 0.0);
}

/// Toy provider: N clients behind one shared link to N OST resources.
class ToyProvider : public IoPathProvider {
 public:
  ToyProvider(std::size_t clients, std::size_t osts, double link_bw,
              double ost_bw, double cap)
      : clients_(clients), cap_(cap) {
    link_ = solver_.add_resource("link", link_bw);
    for (std::size_t o = 0; o < osts; ++o) {
      osts_.push_back(solver_.add_resource("ost" + std::to_string(o), ost_bw));
    }
  }
  std::size_t max_clients() const override { return clients_; }
  std::size_t num_osts() const override { return osts_.size(); }
  void reset_flows() override { solver_.clear_flows(); }
  sim::SteadyStateSolver& solver() override { return solver_; }
  DataFlow data_flow(std::size_t, std::size_t ost, block::IoDir,
                     block::IoMode, Bytes) override {
    return DataFlow{{{link_, 1.0}, {osts_[ost], 1.0}}, cap_};
  }

 private:
  std::size_t clients_;
  double cap_;
  sim::SteadyStateSolver solver_;
  sim::ResourceId link_;
  std::vector<sim::ResourceId> osts_;
};

TEST(Ior, ScalesLinearlyThenPlateaus) {
  ToyProvider provider(1000, 100, /*link=*/500.0, /*ost=*/100.0, /*cap=*/10.0);
  IorConfig cfg;
  cfg.clients = 10;  // 10 x 10 = 100 < 500: client-limited
  auto r = run_ior(provider, cfg);
  EXPECT_NEAR(r.aggregate_bw, 100.0, 1e-6);
  cfg.clients = 200;  // 200 x 10 = 2000 > 500: link-limited
  r = run_ior(provider, cfg);
  EXPECT_NEAR(r.aggregate_bw, 500.0, 1e-6);
  EXPECT_EQ(r.bottleneck, "link");
  EXPECT_NEAR(r.mean_client_bw, 2.5, 1e-6);
}

TEST(Ior, BytesMovedScalesWithStonewall) {
  ToyProvider provider(10, 10, 1000.0, 100.0, 50.0);
  IorConfig cfg;
  cfg.clients = 10;
  cfg.stonewall_s = 30.0;
  const auto r = run_ior(provider, cfg);
  EXPECT_NEAR(static_cast<double>(r.bytes_moved), r.aggregate_bw * 30.0, 1.0);
}

}  // namespace
}  // namespace spider::workload
