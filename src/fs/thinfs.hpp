// The "thin" test file system — performance QA for the life of the PFS
// (Section V-D, Lesson 16).
//
// "the Spider file systems were provisioned with a small part of each RAID
// volume reserved for long-term testing. While it only represents a small
// percentage of the total hardware capacity, it can be used to stress the
// entire system. This 'thin' file system, which contains no user data, can
// be used to run destructive benchmarks even after Spider has been put
// into production. It also allows for performance comparisons between full
// file systems and those that are freshly formatted."
//
// The model reserves a capacity fraction on every OST, runs QA sweeps that
// never touch user data (the thin region is always "freshly formatted", so
// QA measures hardware health rather than fullness state), and maintains a
// per-OST performance baseline so regressions surface as alerts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/ost.hpp"
#include "sim/time.hpp"

namespace spider::fs {

struct ThinFsParams {
  /// Fraction of each OST reserved for the thin file system (the paper:
  /// "a small percentage"; accounted for at acquisition time).
  double reserve_fraction = 0.01;
  /// QA request size.
  Bytes request_size = 1_MiB;
  /// A QA result this fraction below the recorded baseline raises a flag.
  double regression_threshold = 0.10;
};

struct QaMeasurement {
  std::uint32_t ost = 0;
  Bandwidth write_bw = 0.0;
  Bandwidth read_bw = 0.0;
  sim::SimTime when = 0;
};

struct QaReport {
  sim::SimTime when = 0;
  std::size_t osts_tested = 0;
  Bandwidth fleet_write_bw = 0.0;  ///< aggregate of per-OST results
  std::vector<std::uint32_t> regressed_osts;
  /// Mean ratio of thin-region (fresh) to production-region bandwidth —
  /// the paper's full-vs-fresh comparison.
  double fresh_over_production = 0.0;
};

class ThinFs {
 public:
  /// `osts` are non-owning and must outlive the ThinFs.
  ThinFs(std::vector<Ost*> osts, ThinFsParams params = {});

  const ThinFsParams& params() const { return params_; }
  /// Capacity set aside across the fleet (the acquisition line item).
  Bytes reserved_capacity() const;

  /// First QA pass: records the accepted baseline per OST.
  QaReport baseline(sim::SimTime now, Rng& rng);
  bool has_baseline() const { return !baseline_.empty(); }

  /// Periodic QA pass: destructive write/read in the thin region only;
  /// compares against the baseline and against the production region's
  /// current (fullness-affected) bandwidth.
  QaReport run_qa(sim::SimTime now, Rng& rng);

  /// Recorded baseline for an OST (0 if none).
  Bandwidth baseline_write_bw(std::uint32_t ost) const;

 private:
  /// Thin-region measurement: the reserve is always freshly formatted, so
  /// no fullness factor applies — only the hardware underneath.
  QaMeasurement measure(std::size_t idx, sim::SimTime now, Rng& rng) const;

  std::vector<Ost*> osts_;
  ThinFsParams params_;
  std::vector<Bandwidth> baseline_;
};

}  // namespace spider::fs
