#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace spider::sim {

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  if (when < now_) throw std::invalid_argument("schedule_at: time in the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::schedule_in(SimTime dt, EventFn fn) {
  if (dt < 0) throw std::invalid_argument("schedule_in: negative delay");
  return queue_.schedule(now_ + dt, std::move(fn));
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, fn] = queue_.pop();
    assert(when >= now_);
    now_ = when;
    fn();
    ++ran;
    ++executed_;
  }
  if (queue_.empty()) return ran;
  // Cut off: advance the clock to the horizon so callers can resume.
  if (until != std::numeric_limits<SimTime>::max() && now_ < until) now_ = until;
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.pop();
  now_ = when;
  fn();
  ++executed_;
  return true;
}

}  // namespace spider::sim
