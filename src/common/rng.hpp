// Deterministic pseudo-random generation.
//
// All stochastic behaviour in spiderpfs flows from explicitly seeded Rng
// instances so every experiment is reproducible bit-for-bit. The engine is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is both
// faster and statistically stronger than std::mt19937_64 while satisfying
// the UniformRandomBitGenerator requirements.
#pragma once

#include <cstdint>
#include <limits>

namespace spider {

/// SplitMix64 step; used for seeding and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection for
  /// unbiased results.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);

  /// Fork a statistically independent child generator. Deterministic: the
  /// child seed derives from this generator's next output mixed with `salt`,
  /// so identical call sequences yield identical children.
  Rng fork(std::uint64_t salt = 0);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace spider
