// spiderlint whole-program layer: a cross-TU symbol index, a linked global
// call graph, and the censuses behind rules L13-L16.
//
// Per-file rules (rules.hpp) see one translation unit plus its paired
// header; everything here sees the whole file set at once:
//
//   - a global symbol index resolving a function *name* to every
//     declaration and definition of that name across TUs;
//   - a global call graph: which definitions call which names, closed
//     interprocedurally (L13 repair reachability, L16 taint returns);
//   - an enum census: every enumerator of the scoped FindingKind/FaultKind
//     enums, matched against inject/repair switch cases, injector bindings,
//     oracle registrations, and test mentions (L15).
//
// Linking limits (the misparse-degrades-to-missed-finding contract):
// resolution is by unqualified name, not by signature. Overloads and
// same-named functions in different namespaces collapse onto one node, so a
// derived property (reaches a repair mutator, returns tainted data)
// propagates through a name only when EVERY definition of that name agrees
// — ambiguity weakens the analysis toward silence, never toward a spurious
// finding. Names in the explicit repair vocabulary (fsck_set_*,
// records_mutable, truncate_to) are exempt from the agreement rule: the
// naming contract itself is the signal. Declarations with no definition in
// the file set contribute annotations but never derived properties.
//
// Context checks (which directories may reach repair mutators, which files
// count as tests) are always *path*-based, independent of any --treat-as
// override: a forced FileClass changes which rules run on a file, not where
// the file lives. See docs/static-analysis.md.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/rules.hpp"
#include "tools/lint/scan.hpp"
#include "tools/lint/symbols.hpp"
#include "tools/lint/token.hpp"

namespace spider::lint {

/// Path-derived facts about one translation unit. Unlike FileClass these
/// are never overridden by --treat-as: L13's repair-context allowlist and
/// L15's test-mention census key off where a file actually lives.
struct TuFacts {
  bool in_src = false;
  bool in_tests = false;
  bool in_bench = false;
  /// Under src/fs/ (L14 journal-before-mutation scope).
  bool fs_scope = false;
  /// A context allowed to reach repair-only mutators: tools/spiderfsck/,
  /// tools/faultcli/, tests/, or bench/ (measurement code corrupts trees
  /// on purpose; see bench_fsck.cpp).
  bool repair_context = false;
};

/// Classify a path the same way classify_path does (last src/tests/bench
/// component wins), but into the path-only facts above.
TuFacts classify_tu(std::string_view path);

/// One translation unit inside the global index.
struct GlobalTu {
  const SourceFile* file = nullptr;
  TokenStream stream;
  FileSymbols syms;
  FileClass cls;  ///< forced or path-derived; selects which rules apply
  TuFacts facts;  ///< always path-derived; selects allowed contexts
};

/// The cross-TU index. Construction tokenizes and symbol-indexes every
/// file (optionally in parallel over the shared pool — results are stored
/// by slot, so the index is identical at any job count) and then runs the
/// two interprocedural fixpoints.
class GlobalIndex {
 public:
  /// A declaration or definition, addressed by TU + function-table index.
  struct Ref {
    std::size_t tu = 0;
    std::size_t fn = 0;
  };

  GlobalIndex(const std::vector<SourceFile>& files,
              const std::optional<FileClass>& forced_class = std::nullopt,
              std::size_t jobs = 1);

  std::size_t tu_count() const { return tus_.size(); }
  const GlobalTu& tu(std::size_t i) const { return tus_[i]; }
  const FunctionSym& fn(const Ref& r) const {
    return tus_[r.tu].syms.functions[r.fn];
  }

  /// Every definition (function with a body) of `name`, across all TUs, in
  /// TU order. Empty for forward-declared-only and unknown names.
  const std::vector<Ref>& definitions(std::string_view name) const;
  /// Every declaration *and* definition of `name`.
  const std::vector<Ref>& occurrences(std::string_view name) const;

  /// L13 trigger vocabulary: fsck_set_* by prefix, records_mutable,
  /// truncate_to, or any name annotated SPIDER_REPAIR_ONLY on any
  /// declaration or definition.
  bool is_repair_mutator(std::string_view name) const;

  /// L13 closure: names that reach a repair mutator through the global
  /// call graph (triggers themselves excluded), mapped to a witness chain
  /// like "run_fsck -> fsck_set_live_files".
  const std::map<std::string, std::string, std::less<>>& repair_reaching()
      const {
    return repair_reaching_;
  }

  /// L14: the definition, or any declaration sharing its class and name,
  /// carries SPIDER_JOURNALED(why).
  bool is_journaled(const Ref& def) const;

  /// L16 closure: names whose return value derives from a nondeterminism
  /// source in every definition, mapped to a witness like
  /// "steady_clock (via host_entropy)".
  const std::map<std::string, std::string, std::less<>>& taint_returning()
      const {
    return taint_returning_;
  }

 private:
  void link();
  void close_repair_reachability();
  void close_taint_returns();

  std::vector<GlobalTu> tus_;
  std::map<std::string, std::vector<Ref>, std::less<>> definitions_;
  std::map<std::string, std::vector<Ref>, std::less<>> occurrences_;
  std::set<std::string, std::less<>> annotated_repair_only_;
  /// (class, name) pairs annotated SPIDER_JOURNALED anywhere.
  std::set<std::pair<std::string, std::string>> journaled_;
  std::map<std::string, std::string, std::less<>> repair_reaching_;
  std::map<std::string, std::string, std::less<>> taint_returning_;
};

/// Options for the whole-program pass.
struct GlobalOptions {
  RuleSet rules;
  std::optional<FileClass> forced_class;
  std::size_t jobs = 1;  ///< 0 = one per hardware thread
};

/// Run the whole-program rules (L13-L16) over a set of scanned files.
/// Findings come back unsorted; the driver merges and sorts them with the
/// per-file findings.
std::vector<Finding> lint_global(const std::vector<SourceFile>& files,
                                 const GlobalOptions& opts);

}  // namespace spider::lint
