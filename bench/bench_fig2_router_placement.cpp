// Figure 2: "Topological XY representation of Titan's Lustre routers."
//
// Reproduces the XY cabinet map (one glyph per cabinet holding an I/O
// module, colored — here lettered — by router group) for the deployed
// FGR-zoned placement, and quantifies why the spread placement was worth
// the effort by comparing quality metrics across strategies.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "net/placement.hpp"
#include "net/torus.hpp"

int main() {
  using namespace spider;
  using namespace spider::net;

  Torus3D torus({25, 16, 24});
  PlacementConfig cfg;
  cfg.modules = 110;
  cfg.routers_per_module = 4;
  cfg.num_groups = 36;
  cfg.leaf_switches = 36;

  bench::banner("Figure 2: Titan LNET router placement (XY cabinet map)");
  const auto deployed = place_routers(torus, cfg, PlacementStrategy::kFgrZoned);
  std::cout << "440 routers, 110 I/O modules, 36 router groups "
               "(letters = groups; '.' = no I/O module)\n\n"
            << render_xy_map(torus, deployed) << "\n";

  Table table("placement quality (18,688-client torus)");
  table.set_columns({"strategy", "mean hops", "max hops", "hops stddev",
                     "router load imbalance"});
  struct Row {
    const char* name;
    PlacementStrategy strategy;
  };
  const Row rows[] = {
      {"clustered (naive)", PlacementStrategy::kClustered},
      {"uniform spread", PlacementStrategy::kUniformSpread},
      {"FGR-zoned (deployed)", PlacementStrategy::kFgrZoned},
  };
  PlacementQuality quality[4];
  for (int i = 0; i < 3; ++i) {
    const auto routers = place_routers(torus, cfg, rows[i].strategy);
    quality[i] = evaluate_placement(torus, routers);
    table.add_row({std::string(rows[i].name), quality[i].mean_hops_to_router,
                   quality[i].max_hops_to_router, quality[i].hops_stddev,
                   quality[i].router_load_imbalance});
  }
  // The "considerable effort" row: local-search optimization of the
  // module cabinet positions.
  spider::Rng rng(2014);
  const auto optimized = place_routers_optimized(torus, cfg, rng, 500);
  quality[3] = evaluate_placement(torus, optimized);
  table.add_row({std::string("optimized (local search)"),
                 quality[3].mean_hops_to_router, quality[3].max_hops_to_router,
                 quality[3].hops_stddev, quality[3].router_load_imbalance});
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(
      quality[3].mean_hops_to_router <= quality[1].mean_hops_to_router + 1e-9,
      "optimization effort pays: at least matches the uniform stride");
  checker.check(quality[1].mean_hops_to_router < quality[0].mean_hops_to_router,
                "spread placement brings routers closer than clustered");
  checker.check(quality[2].mean_hops_to_router < quality[0].mean_hops_to_router,
                "deployed FGR-zoned placement beats clustered on mean hops");
  checker.check(quality[1].max_hops_to_router < quality[0].max_hops_to_router,
                "worst-case client distance improves with spreading");
  return checker.exit_code();
}
