// Object Storage Server: the diskless Lustre server node fronting several
// OSTs (Lesson 7: OLCF boots OSS/MDS diskless via GeDI).
//
// Spider II runs 288 OSS for 2,016 OSTs (7 OSTs each). An OSS caps the
// bandwidth of its OSTs at min(network port, CPU/memory pipeline); it also
// carries the leaf-switch attachment FGR routes against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "fs/ost.hpp"

namespace spider::fs {

struct OssParams {
  /// FDR InfiniBand port effective bandwidth.
  Bandwidth net_bw = 6.0 * kGBps;
  /// Software/CPU ceiling moving data between network and block layers.
  Bandwidth cpu_bw = 5.5 * kGBps;
  /// RPC processing ceiling for small-request workloads.
  double rpc_per_sec = 30e3;
};

class Oss {
 public:
  Oss(std::uint32_t id, OssParams params, std::size_t ib_leaf);

  std::uint32_t id() const { return id_; }
  const OssParams& params() const { return params_; }
  std::size_t ib_leaf() const { return ib_leaf_; }

  void attach(Ost* ost) { osts_.push_back(ost); }
  const std::vector<Ost*>& osts() const { return osts_; }

  /// Server-side ceiling independent of its OSTs.
  Bandwidth node_bw() const;

  /// Delivered bandwidth for a uniform stream over all attached OSTs:
  /// min(sum of OST bandwidths, node ceiling).
  Bandwidth delivered_bw(block::IoMode mode, block::IoDir dir,
                         Bytes request_size = 1_MiB) const;

 private:
  std::uint32_t id_;
  OssParams params_;
  std::size_t ib_leaf_;
  std::vector<Ost*> osts_;
};

}  // namespace spider::fs
