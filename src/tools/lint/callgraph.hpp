// spiderlint per-TU call graph: function bodies linked to the functions
// they call, plus the two dataflow facts the shard-safety rules need.
//
// Scope and limits (documented in docs/static-analysis.md): resolution is
// by unqualified name within one translation unit (the linted file plus its
// paired header's symbol index) — no overload resolution, no cross-TU
// linking, no receiver-type tracking. That is exactly enough to trace the
// helper-wrapper patterns this codebase uses (`zone_sim(z)` returning
// `engine_.shard(map_.shard_of(z))`, private helpers threading a domain
// index down to a schedule call), and the rules built on it (L9/L10) fire
// only on clean identifier-level evidence, so an unresolvable call degrades
// to a missed finding, never a spurious one.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/symbols.hpp"
#include "tools/lint/token.hpp"

namespace spider::lint {

/// Token range [begin, end) of one top-level call argument.
struct ArgRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Split the argument list between `open` (the `(`) and `close` (its match)
/// at top-level commas. An empty list yields no ranges.
std::vector<ArgRange> split_args(const std::vector<Tok>& t, std::size_t open,
                                 std::size_t close);

/// Reduce a shard-index expression to its governing identifier or numeric
/// literal: `z` -> "z", `map_.shard_of(target)` -> "target",
/// `static_cast<ShardId>(d)` -> "d", `0` -> "0". Empty for anything more
/// complex — callers must then skip their check (missed, not false).
std::string reduce_index(const std::vector<Tok>& t, std::size_t begin,
                         std::size_t end);

/// Parameter names of `fn`, in order, from its parameter-list token range.
/// Unnamed or misparsed parameters yield whatever identifier closes the
/// segment; since rules compare names for equality, a wrong name only
/// suppresses checks.
std::vector<std::string> param_names(const TokenStream& stream,
                                     const FunctionSym& fn);

class CallGraph {
 public:
  /// Build from one file's tokens and symbols. `shard_owned` is the merged
  /// (file + paired header) shard-owned member list.
  CallGraph(const TokenStream& stream, const FileSymbols& syms,
            const std::vector<ShardOwnedMember>& shard_owned);

  /// Function definitions carrying this name (overloads merged — the rules
  /// only ever weaken on ambiguity).
  const std::vector<const FunctionSym*>& definitions(
      const std::string& name) const;

  /// Parameter names of a definition previously returned by definitions().
  const std::vector<std::string>& params_of(const FunctionSym& fn) const;

  /// True when calling `name(...)` yields a shard handle: `shard` itself,
  /// or a wrapper whose return statement calls a handle function
  /// (fixpoint, so wrappers of wrappers resolve).
  bool is_handle_fn(const std::string& name) const;

  /// Parameter indices of `name` that flow — possibly through further
  /// helpers — into the index argument of a shard-handle schedule call
  /// (`handle(idx).schedule_at/..._in`). Empty for unknown functions.
  const std::vector<std::size_t>& sched_params(const std::string& name) const;

  /// Shard-owned member names touched by `name`'s body, transitively
  /// through per-TU calls. Empty set for unknown functions.
  const std::set<std::string>& touched_shard_owned(
      const std::string& name) const;

 private:
  const std::vector<Tok>& t_;
  std::map<std::string, std::vector<const FunctionSym*>> defs_;
  std::map<const FunctionSym*, std::vector<std::string>> params_;
  std::set<std::string> handles_;
  std::map<std::string, std::vector<std::size_t>> sched_params_;
  std::map<std::string, std::set<std::string>> touched_;
};

}  // namespace spider::lint
