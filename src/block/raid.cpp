#include "block/raid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spider::block {

Raid6Group::Raid6Group(const RaidParams& params, std::vector<Disk> members)
    : params_(params), members_(std::move(members)) {
  if (members_.size() != params_.data_disks + params_.parity_disks) {
    throw std::invalid_argument("Raid6Group: wrong member count");
  }
  states_.assign(members_.size(), MemberState::kOnline);
}

Bytes Raid6Group::capacity() const {
  Bytes min_cap = members_.front().capacity();
  for (const auto& d : members_) min_cap = std::min(min_cap, d.capacity());
  return min_cap * params_.data_disks;
}

void Raid6Group::replace_member(std::size_t i, Disk replacement) {
  members_.at(i) = std::move(replacement);
  states_.at(i) = MemberState::kOnline;
}

double Raid6Group::min_member_factor() const {
  double f = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (states_[i] == MemberState::kOnline) {
      f = std::min(f, members_[i].perf_factor());
    }
  }
  return std::isinf(f) ? 0.0 : f;
}

void Raid6Group::degrade_member(std::size_t i, double factor) {
  members_.at(i).degrade(factor);
}

std::vector<std::size_t> Raid6Group::readable_members() const {
  std::vector<std::size_t> out;
  out.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (states_[i] == MemberState::kOnline) out.push_back(i);
  }
  return out;
}

void Raid6Group::note_read(std::size_t i) {
  ++reads_noted_;
  if (states_.at(i) != MemberState::kOnline) ++unsafe_reads_;
}

RaidState Raid6Group::state() const {
  if (data_lost_) return RaidState::kFailed;
  bool rebuilding = false;
  std::size_t down = 0;
  for (auto s : states_) {
    if (s == MemberState::kRebuilding) rebuilding = true;
    if (s != MemberState::kOnline) ++down;
  }
  if (rebuilding) return RaidState::kRebuilding;
  if (down > 0) return RaidState::kDegraded;
  return RaidState::kNormal;
}

std::size_t Raid6Group::unavailable_members() const {
  std::size_t down = 0;
  for (auto s : states_) {
    if (s != MemberState::kOnline) ++down;
  }
  return down;
}

void Raid6Group::fail_member(std::size_t i) {
  states_.at(i) = MemberState::kFailed;
  check_data_loss();
}

void Raid6Group::start_rebuild(std::size_t i) {
  if (states_.at(i) != MemberState::kFailed) {
    throw std::logic_error("start_rebuild: member is not failed");
  }
  states_[i] = MemberState::kRebuilding;
}

double Raid6Group::rebuild_time_s() const {
  const double cap = static_cast<double>(members_.front().capacity());
  return cap / (params_.rebuild_rate * params_.rebuild_speedup);
}

void Raid6Group::finish_rebuild(std::size_t i) {
  if (states_.at(i) != MemberState::kRebuilding) {
    throw std::logic_error("finish_rebuild: member is not rebuilding");
  }
  states_[i] = MemberState::kOnline;
}

void Raid6Group::restore_member(std::size_t i) {
  if (data_lost_) return;  // loss is sticky
  states_.at(i) = MemberState::kOnline;
}

void Raid6Group::check_data_loss() {
  if (unavailable_members() > params_.parity_disks) data_lost_ = true;
}

Bandwidth Raid6Group::bandwidth(IoMode mode, IoDir dir, Bytes request_size) const {
  if (data_lost_) return 0.0;
  // Striped transfer paced by the slowest online member. Positioning
  // efficiency is evaluated at full request granularity rather than the
  // per-disk chunk: the storage controller coalesces the stripe's chunk
  // accesses and prefetches, so each spindle sees near-request-sized
  // contiguous work. This keeps the model on the paper's calibration point
  // (random 1 MB ≈ 20-25% of sequential per disk at the array level).
  Bandwidth min_bw = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (states_[i] != MemberState::kOnline) continue;
    const Bandwidth bw = members_[i].effective_bw(mode, dir, request_size);
    if (first || bw < min_bw) {
      min_bw = bw;
      first = false;
    }
  }
  if (first) return 0.0;  // no online members
  double eff = 1.0;
  if (dir == IoDir::kWrite) {
    eff = request_size >= full_stripe() ? params_.full_stripe_write_eff
                                        : params_.rmw_eff;
  }
  switch (state()) {
    case RaidState::kDegraded:
      eff *= params_.degraded_factor;
      break;
    case RaidState::kRebuilding:
      eff *= params_.rebuilding_factor;
      break;
    case RaidState::kNormal:
    case RaidState::kFailed:
      break;
  }
  return static_cast<double>(params_.data_disks) * min_bw * eff;
}

}  // namespace spider::block
