// Fixed-bin histograms for request sizes, latencies, and bandwidth samples.
//
// Log2Histogram matches how the paper's workload characterization reports
// request sizes (small < 16 KB vs multiples of 1 MB): power-of-two buckets
// spanning many decades.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spider {

/// Uniform-width bins over [lo, hi). Out-of-range samples are counted in
/// explicit underflow/overflow counters — NOT folded into the edge bins —
/// so totals are conserved without skewing the distribution shape.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  /// All samples added, including out-of-range ones.
  std::uint64_t total() const { return total_; }
  /// Samples below lo / at-or-above hi.
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;
  /// Fraction of all samples in [lo_bound, hi_bound), bin-granular. The
  /// denominator is total(): out-of-range samples dilute the fraction but
  /// never masquerade as edge-bin mass.
  double fraction_between(double lo_bound, double hi_bound) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Power-of-two bins: bin k holds values in [2^k, 2^(k+1)).
class Log2Histogram {
 public:
  /// Bins cover [2^min_exp, 2^max_exp); values outside — including x <= 0,
  /// which has no binary exponent at all — land in underflow/overflow.
  Log2Histogram(int min_exp, int max_exp);

  void add(double x, std::uint64_t weight = 1);

  int min_exp() const { return min_exp_; }
  int max_exp() const { return min_exp_ + static_cast<int>(counts_.size()); }
  std::uint64_t count_for_exp(int exp) const;
  /// All samples added, including out-of-range ones.
  std::uint64_t total() const { return total_; }
  /// Samples with x < 2^min_exp (including x <= 0) / x >= 2^max_exp.
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Fraction of samples with value < threshold (bin-granular: counts all
  /// bins whose lower edge is below the threshold's bin, plus underflow).
  double fraction_below(double threshold) const;
  /// Render a compact ASCII summary, one line per non-empty bin.
  std::string to_string() const;

 private:
  int clamped_bin_index(double x) const;

  int min_exp_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace spider
