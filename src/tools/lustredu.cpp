#include "tools/lustredu.hpp"

#include <algorithm>

namespace spider::tools {

DuCost client_du(fs::FsNamespace& ns, std::uint32_t project,
                 double background_util) {
  DuCost cost;
  const double before = ns.mds().accounted_load();
  ns.for_each_file([&](const fs::FileRecord& rec) {
    if (rec.project != project) {
      // Directory traversal still pays a lookup to skip the entry.
      ns.mds().account(fs::MetaOp::kLookup);
      return;
    }
    ns.mds().account(fs::MetaOp::kLookup);
    ns.mds().account(fs::MetaOp::kStat, rec.stripe_count);
    cost.bytes_reported += rec.size;
  });
  cost.mds_ops = ns.mds().accounted_load() - before;
  const double usable =
      ns.mds().capacity_ops() * std::max(0.01, 1.0 - background_util);
  cost.wall_s = cost.mds_ops / usable;
  return cost;
}

void LustreDu::daily_scan(const fs::FsNamespace& ns, sim::SimTime now) {
  usage_ = ns.usage_by_project();
  last_scan_ = now;
  scanned_ = true;
}

DuCost LustreDu::usage(std::uint32_t project) const {
  DuCost cost;
  cost.mds_ops = 0.0;
  cost.wall_s = 10e-6;  // one indexed database lookup
  auto it = usage_.find(project);
  cost.bytes_reported = it == usage_.end() ? 0 : it->second;
  return cost;
}

}  // namespace spider::tools
