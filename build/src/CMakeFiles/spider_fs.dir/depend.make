# Empty dependencies file for spider_fs.
# This may be replaced when dependencies are built.
