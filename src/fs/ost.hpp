// Object Storage Target: one RAID-6 group exposed through the obdfilter
// layer, with capacity tracking and the fullness-degradation model.
//
// Two operational facts from the paper are encoded here:
//   - Lesson 10 / Section VI-C: "severe performance degradation after the
//     resource is 70% or more full" and "direct performance degradation
//     when the utilization of the filesystem is greater than 50%". The
//     fullness factor is 1.0 up to 50%, declines gently to 70%, then
//     steeply (free-space fragmentation forces random-ish allocation).
//   - Lesson 12: the file-system layer costs measurable bandwidth over the
//     block layer (obdfilter efficiency + journaling).
#pragma once

#include <algorithm>
#include <cstdint>

#include "block/raid.hpp"
#include "common/annotations.hpp"
#include "common/units.hpp"
#include "fs/journal.hpp"

namespace spider::fs {

struct OstParams {
  /// obdfilter efficiency over raw block for reads/writes (Lesson 12's
  /// measured FS-vs-block delta).
  double obdfilter_read_eff = 0.95;
  double obdfilter_write_eff = 0.92;
  JournalModel journal;
  /// Fullness model knee points.
  double fullness_knee1 = 0.50;  ///< degradation onset
  double fullness_knee2 = 0.70;  ///< severe degradation onset
  double factor_at_knee2 = 0.90; ///< delivered fraction at knee2
  double factor_floor = 0.35;    ///< asymptotic delivered fraction when full
};

class Ost {
 public:
  /// `group` is non-owning and must outlive the Ost.
  Ost(std::uint32_t id, block::Raid6Group* group, const OstParams& params = {});

  std::uint32_t id() const { return id_; }
  const block::Raid6Group& group() const { return *group_; }
  block::Raid6Group& group() { return *group_; }
  const OstParams& params() const { return params_; }

  Bytes capacity() const { return group_->capacity(); }
  Bytes used() const { return used_; }
  double fullness() const;
  std::uint64_t object_count() const { return objects_; }

  /// Reserve space for a new object; returns false if it doesn't fit.
  bool allocate(Bytes size)
      SPIDER_JOURNALED("OST accounting is derived data-path state, not "
                       "namespace metadata; fsck phase-2 rebuilds it from "
                       "the inode table cross-reference");
  /// Release a previously allocated object.
  void release(Bytes size)
      SPIDER_JOURNALED("derived accounting, reconstructed by fsck phase-2; "
                       "the owning namespace op is the journaled record");
  /// Force the used-space counter (fill-state experiments).
  void set_used(Bytes used)
      SPIDER_JOURNALED("experiment setup knob, not an operation: fill-state "
                       "sweeps preload the counter before any workload runs")
  { used_ = std::min(used, capacity()); }
  /// Overwrite the object counter (spiderfsck orphan reclaim / lost-object
  /// accounting repair, and the seeded corruptions its tests inject).
  void fsck_set_object_count(std::uint64_t objects) { objects_ = objects; }

  /// Bandwidth multiplier from free-space state, piecewise linear with the
  /// knees documented above.
  double fullness_factor() const;

  /// Delivered OST bandwidth: RAID group bandwidth x obdfilter efficiency
  /// x journaling (writes) x fullness factor.
  Bandwidth bandwidth(block::IoMode mode, block::IoDir dir,
                      Bytes request_size = 1_MiB) const;

 private:
  std::uint32_t id_;
  block::Raid6Group* group_;
  OstParams params_;
  Bytes used_ = 0;
  std::uint64_t objects_ = 0;
};

}  // namespace spider::fs
