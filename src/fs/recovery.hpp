// Lustre failover recovery, including the OLCF-funded features
// (Section IV-D): imperative recovery and asymmetric router notification.
//
// Classic Lustre recovery after an OSS failover: clients discover the
// failure only when their RPCs time out, then reconnect to the failover
// partner; the server holds a recovery window open until every known
// client reconnects (or the window expires) before serving new I/O.
// At Titan scale (18,688 clients behind 440 routers) timeouts and the
// straggler-gated window dominate. Imperative recovery has the server
// *tell* clients to reconnect immediately; asymmetric router notification
// lets LNET routers broadcast a dead-path notice so clients skip the RPC
// timeout entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "fs/journal.hpp"

namespace spider::fs {

struct RecoveryParams {
  std::size_t clients = 18688;
  /// Classic RPC timeout before a client notices the OSS is gone.
  double rpc_timeout_s = 100.0;
  /// Spread of client timeout detection (in-flight RPC phase), seconds.
  double detection_spread_s = 60.0;
  /// Recovery window the failover server holds for stragglers.
  double recovery_window_s = 300.0;
  /// Reconnect RPCs/sec the failover server can absorb.
  double reconnect_rate = 2000.0;
  /// Fraction of clients that are slow/absent stragglers under classic
  /// recovery (they gate the window).
  double straggler_fraction = 0.002;
  // --- OLCF-funded features ---
  /// Server-initiated reconnect notification.
  bool imperative_recovery = false;
  /// Routers broadcast dead-path notices (skips the RPC timeout).
  bool asymmetric_router_notification = false;
  /// Notification fan-out latency through the router fleet.
  double notification_s = 2.0;
};

struct FailoverOutcome {
  /// Time from OSS death until clients know to reconnect.
  double detection_s = 0.0;
  /// Time spent streaming reconnects into the failover server.
  double reconnect_s = 0.0;
  /// Extra time the recovery window stayed open for stragglers.
  double straggler_wait_s = 0.0;
  /// Total I/O outage for the affected OSTs.
  double total_outage_s = 0.0;
};

/// Model one OSS failover under the given feature set.
FailoverOutcome simulate_oss_failover(const RecoveryParams& params);

// --- journal-cursor replay --------------------------------------------------
//
// The crash-consistency half of recovery: fold an OpLog (fs/journal.hpp)
// back into namespace-level state without scanning the namespace itself.
// spiderfsck uses this as its phase-2 cross-reference (journal-derived
// counters and live set vs. the inode table) and as its phase-3 repair
// primitive (advance the cursor over a backfilled tail).

/// Counters derived from one full replay of an op log.
struct OpLogSummary {
  std::uint64_t creates = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t setattrs = 0;
  std::uint64_t resizes = 0;
  std::uint64_t setprojects = 0;
  /// Files whose last journaled op is a create (created and never unlinked),
  /// ascending file-id order — the journal's view of the live set.
  std::vector<std::uint64_t> live;
  /// Sum of the sizes of the journal-live files (kResize records update a
  /// live file's size in place).
  Bytes live_bytes = 0;
  std::uint64_t last_txid = 0;
};

/// Replay every record of `log` from txid 1 through the tail.
OpLogSummary replay_op_log(const OpLog& log);

/// Replay only the records beyond `cursor` (exclusive), on top of nothing —
/// the incremental consumer's step over the whole log tail (committed or
/// not; fs/changelog.hpp's ChangelogCursor is the committed-prefix flavor
/// and additionally detects txid reuse after a crash, which a pure log view
/// cannot).
struct JournalReplayOutcome {
  std::uint64_t replayed = 0;
  std::uint64_t new_cursor = 0;
  /// `cursor` was beyond last_txid(): it points into a tail that
  /// truncate_to has since crash-dropped. Nothing replayed; new_cursor is
  /// clamped back to last_txid() and the consumer must rebuild, because a
  /// future append will reuse the lost txids for different operations.
  bool cursor_ahead = false;
  /// A txid in (cursor, last_txid] had no record — interior corruption of
  /// the records_mutable kind spiderfsck seeds. Present records were still
  /// counted; `first_gap_txid` names the first hole.
  bool gap = false;
  std::uint64_t first_gap_txid = 0;
};
JournalReplayOutcome replay_from_cursor(const OpLog& log, std::uint64_t cursor);

}  // namespace spider::fs
