// End-to-end tests for the fault-campaign engine: benign runs stay clean,
// identical (plan, seed) pairs produce identical replay hashes, every
// catalogued oracle fires under a seeded breach, and verdict JSON carries
// what docs/fault-injection.md promises.
#include "tools/faultcli/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/faultplan.hpp"
#include "sim/time.hpp"

namespace {

using namespace spider;
using namespace spider::sim;
using namespace spider::tools;

FaultPlan benign_plan(double horizon_s = 120.0) {
  FaultPlan plan;
  plan.name = "benign";
  plan.horizon_s = horizon_s;
  return plan;
}

FaultPlan stormy_plan() {
  FaultPlan plan = parse_fault_plan(R"(
name = "storm"
horizon_s = 240
[[inject]]
kind = "disk-fail"
at_s = 20
group = 1
member = 2
[[inject]]
kind = "enclosure-loss"
trigger = "rebuild-active"
at_s = 20
duration_s = 40
enclosure = 7
[[inject]]
kind = "controller-failover"
at_s = 60
duration_s = 30
[[inject]]
kind = "mds-stall"
at_s = 100
duration_s = 30
[[inject]]
kind = "congestion-spike"
at_s = 140
duration_s = 30
magnitude = 8
[[inject]]
kind = "slow-disk-onset"
at_s = 170
group = 4
member = 3
magnitude = 5
)");
  return plan;
}

TEST(FaultCampaign, BenignPlanRunsCleanWithLiveWorkload) {
  // Horizon must exceed the campaign purge window (~173 s) or no file can
  // ever age out.
  const RunVerdict verdict = run_campaign(benign_plan(360.0), 1);
  EXPECT_TRUE(verdict.clean()) << verdict_json(verdict);
  EXPECT_GT(verdict.files_created, 10u);
  EXPECT_GT(verdict.files_purged, 0u);
  EXPECT_GT(verdict.delivered, 0.0);
  EXPECT_GT(verdict.events, 100u);
  EXPECT_EQ(verdict.injections_fired, 0u);
  EXPECT_FALSE(verdict.data_lost);
}

TEST(FaultCampaign, StormPlanFiresInjectionsAndStaysClean) {
  const RunVerdict verdict = run_campaign(stormy_plan(), 7);
  EXPECT_TRUE(verdict.clean()) << verdict_json(verdict);
  EXPECT_EQ(verdict.injections_fired, 6u);
  // enclosure-loss, failover, stall, and congestion all carry durations and
  // revert within the horizon.
  EXPECT_EQ(verdict.reverts_fired, 4u);
  EXPECT_GT(verdict.files_created, 10u);
}

TEST(FaultCampaign, IdenticalPlanAndSeedGiveIdenticalHashes) {
  const RunVerdict a = run_campaign(stormy_plan(), 7);
  const RunVerdict b = run_campaign(stormy_plan(), 7);
  EXPECT_EQ(a.replay_hash, b.replay_hash);
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.files_created, b.files_created);
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(FaultCampaign, DifferentSeedsDiverge) {
  const RunVerdict a = run_campaign(benign_plan(), 1);
  const RunVerdict b = run_campaign(benign_plan(), 2);
  EXPECT_NE(a.replay_hash, b.replay_hash);
}

TEST(FaultCampaign, MutatedPlansStayDeterministic) {
  const FaultPlan base = stormy_plan();
  Rng ma(11);
  Rng mb(11);
  const FaultPlan mutant_a = mutate_plan(base, campaign_bounds(), ma);
  const FaultPlan mutant_b = mutate_plan(base, campaign_bounds(), mb);
  const RunVerdict a = run_campaign(mutant_a, 3);
  const RunVerdict b = run_campaign(mutant_b, 3);
  EXPECT_EQ(a.replay_hash, b.replay_hash) << "identical mutants must replay "
                                             "identically";
}

TEST(FaultCampaign, MdsStallSuppressesCreates) {
  FaultPlan stall;
  stall.name = "stall";
  stall.horizon_s = 120.0;
  Injection inj;
  inj.kind = FaultKind::kMdsStall;
  inj.at = 10 * kSecond;
  inj.duration = 200 * kSecond;  // outlasts the horizon: no revert
  stall.injections.push_back(inj);

  const RunVerdict stalled = run_campaign(stall, 5);
  const RunVerdict free_run = run_campaign(benign_plan(), 5);
  EXPECT_TRUE(stalled.clean()) << verdict_json(stalled);
  EXPECT_LT(stalled.files_created, free_run.files_created / 2);
}

// Every catalogued oracle must demonstrably fire on a seeded breach — a
// safety net that never trips is indistinguishable from no safety net.
TEST(FaultCampaign, AllSixOraclesFireOnSeededBreaches) {
  FaultCampaign campaign(benign_plan(), 42);

  // 1. flow-conservation: pathless flow whose rate escapes every capacity.
  FlowDesc rogue;
  rogue.size = 1e12;
  rogue.rate_cap = 1e18;
  campaign.network().start_flow(std::move(rogue));
  // 2. write-accounting: acked bytes with no matching issue.
  campaign.ledger().acked += 1e9;
  // 3. raid-read-safety: a read served from a failed member.
  campaign.ssu().group(0).fail_member(0);
  campaign.ssu().group(0).note_read(0);
  // 4. rebuild-monotone: progress that moves backwards.
  campaign.rebuilds().samples_mutable().push_back({2, 0.5, true});
  campaign.rebuilds().samples_mutable().push_back({2, 0.1, false});
  // 5. namespace-journal: a create that bypasses the journal.
  Rng rng(1);
  campaign.ns().create_file(0, 8_MiB, 0, rng);
  // 6. purge-age: a sweep that deleted a file younger than the window.
  fs::PurgeReport bad;
  bad.purged = 1;
  bad.min_purged_age_s = 0.5;
  campaign.purge_log().push_back(bad);

  campaign.oracles().check_now();
  const auto fired = campaign.oracles().fired_oracles();
  const std::vector<std::string> expected{
      "flow-conservation", "write-accounting",  "raid-read-safety",
      "rebuild-monotone",  "namespace-journal", "purge-age"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(fired.begin(), fired.end(), name), fired.end())
        << "oracle '" << name << "' did not fire; fired: "
        << violations_json(campaign.oracles().violations());
  }
  EXPECT_GE(fired.size(), 6u);
}

TEST(FaultCampaign, PurgeAgeOracleGuardsTheNothingPurgedSentinel) {
  // Regression: PurgeReport::min_purged_age_s defaults to +infinity. A
  // sweep that purged nothing used to push +inf into the age comparison —
  // vacuously passing, but also serialized as bare `inf`. The oracle now
  // skips empty sweeps, and flags purged > 0 with no recorded age as a
  // malformed report.
  std::vector<fs::PurgeReport> reports;
  fs::PurgeReport idle;
  idle.scanned = 100;  // purged == 0, min age left at the +inf sentinel
  reports.push_back(idle);

  const auto oracle = make_purge_age_oracle(reports, 14.0);
  std::vector<sim::OracleViolation> out;
  oracle->check(0, out);
  EXPECT_TRUE(out.empty()) << violations_json(out);

  fs::PurgeReport healthy;
  healthy.purged = 2;
  healthy.min_purged_age_s = 15.0 * 86400.0;
  reports.push_back(healthy);
  oracle->check(1, out);
  EXPECT_TRUE(out.empty()) << violations_json(out);

  fs::PurgeReport malformed;
  malformed.purged = 3;  // +inf age despite purging: malformed
  reports.push_back(malformed);
  oracle->check(2, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].detail.find("no minimum age"), std::string::npos)
      << out[0].detail;

  fs::PurgeReport young;
  young.purged = 1;
  young.min_purged_age_s = 0.5;  // genuinely too young: still fires
  reports.push_back(young);
  oracle->check(3, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[1].detail.find("younger than"), std::string::npos)
      << out[1].detail;
}

TEST(FaultCampaign, ChangelogOracleGreenOnConsistentRedOnCorruption) {
  FaultCampaign campaign(benign_plan(), 7);
  Rng rng(2);
  for (int i = 0; i < 24; ++i) {
    campaign.ns().create_file(static_cast<std::uint32_t>(i % 3), 8_MiB, 0,
                              rng);
  }
  campaign.oplog().commit(campaign.oplog().last_txid());

  fs::ChangelogAccounting acct(4);
  const auto oracle =
      make_changelog_oracle(campaign.ns(), campaign.oplog(), acct);
  std::vector<sim::OracleViolation> out;
  oracle->check(0, out);
  EXPECT_TRUE(out.empty()) << violations_json(out);

  // More churn lands, but one record is lost in flight — interior
  // corruption in the range the next sweep will consume. The sweep must
  // call the accounting untrustworthy, naming the hole.
  for (int i = 0; i < 8; ++i) {
    campaign.ns().create_file(static_cast<std::uint32_t>(i % 3), 8_MiB, 0,
                              rng);
  }
  campaign.oplog().commit(campaign.oplog().last_txid());
  auto& recs = campaign.oplog().records_mutable();
  const std::size_t cut = recs.size() - 4;
  const fs::OpRecord lost = recs[cut];
  recs.erase(recs.begin() + static_cast<std::ptrdiff_t>(cut));
  oracle->check(1, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].oracle, "changelog-consistency");
  EXPECT_NE(out[0].detail.find("gap"), std::string::npos) << out[0].detail;

  // Repair the log (spiderfsck's backfill), force a full replay, and the
  // oracle goes green again.
  recs.insert(recs.begin() + static_cast<std::ptrdiff_t>(cut), lost);
  acct.rebuild(campaign.oplog());
  out.clear();
  oracle->check(2, out);
  EXPECT_TRUE(out.empty()) << violations_json(out);
}

TEST(FaultCampaign, ChangelogOracleDetectsCrashRewoundCursor) {
  FaultCampaign campaign(benign_plan(), 11);
  Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    campaign.ns().create_file(0, 8_MiB, 0, rng);
  }
  campaign.oplog().commit(campaign.oplog().last_txid());

  fs::ChangelogAccounting acct(2);
  const auto oracle =
      make_changelog_oracle(campaign.ns(), campaign.oplog(), acct);
  std::vector<sim::OracleViolation> out;
  oracle->check(0, out);
  ASSERT_TRUE(out.empty()) << violations_json(out);

  // Crash: the log rewinds under live namespace state. The oracle must
  // call out the rewound cursor, not silently re-consume reused txids.
  campaign.oplog().truncate_to(campaign.oplog().committed() / 2);
  oracle->check(1, out);
  ASSERT_FALSE(out.empty());
  EXPECT_NE(out[0].detail.find("rewound"), std::string::npos)
      << out[0].detail;

  // Recovery is a ground-truth resync (the committed prefix can no longer
  // describe the live namespace); afterwards the oracle is green again.
  acct.rebuild_from_namespace(campaign.ns(), campaign.oplog());
  out.clear();
  oracle->check(2, out);
  EXPECT_TRUE(out.empty()) << violations_json(out);
}

TEST(FaultCampaign, DataLossScenarioIsReportedNotMasked) {
  // Three members of one group fail: beyond RAID-6 parity. The verdict must
  // carry data_lost while accounting stays consistent (no oracle fires for
  // the loss itself — losing data is legal, lying about bytes is not).
  FaultPlan plan;
  plan.name = "triple-fault";
  plan.horizon_s = 120.0;
  for (std::uint32_t m = 0; m < 3; ++m) {
    Injection inj;
    inj.kind = FaultKind::kDiskFail;
    inj.at = (10 + m) * kSecond;
    inj.group = 2;
    inj.member = m;
    plan.injections.push_back(inj);
  }
  const RunVerdict verdict = run_campaign(plan, 9);
  EXPECT_TRUE(verdict.data_lost);
  EXPECT_TRUE(verdict.clean()) << verdict_json(verdict);
  EXPECT_EQ(verdict.injections_fired, 3u);
}

TEST(FaultCampaign, VerdictJsonCarriesReproductionRecipe) {
  const RunVerdict verdict = run_campaign(benign_plan(60.0), 17);
  const std::string json = verdict_json(verdict);
  EXPECT_NE(json.find("\"plan\": \"benign\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"seed\": 17"), std::string::npos) << json;
  EXPECT_NE(json.find("\"replay_hash\": \"0x"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stream_hash\": \"0x"), std::string::npos) << json;
  EXPECT_NE(json.find("\"clean\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\": []"), std::string::npos) << json;
}

TEST(FaultCampaign, ParallelCampaignsMatchSerialVerdictsExactly) {
  // The spiderfault --jobs=N contract in miniature: campaigns fanned out via
  // parallel_for must produce verdict JSON byte-identical to the same
  // campaigns run serially. Campaign state is all run-local, so parallel
  // runs may not perturb hashes, telemetry, or oracle outcomes.
  std::vector<std::pair<sim::FaultPlan, std::uint64_t>> runs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    runs.emplace_back(benign_plan(90.0), seed);
    runs.emplace_back(stormy_plan(), seed);
  }

  std::vector<std::string> serial(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    serial[i] = verdict_json(run_campaign(runs[i].first, runs[i].second));
  }

  std::vector<std::string> parallel(runs.size());
  parallel_for(
      runs.size(),
      [&](std::size_t i) {
        parallel[i] = verdict_json(run_campaign(runs[i].first, runs[i].second));
      },
      8);

  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "run " << i;
  }
}

TEST(FaultCampaign, ShardedCampaignsMatchSerialVerdictsExactly) {
  // The spiderfault --shards=N contract in miniature: the same campaign
  // hosted on a ShardedSimulator (the campaign drives shard 0, the epoch
  // loop drives the run) must produce verdict JSON byte-identical to the
  // plain Simulator at every shard count — including plans with injections,
  // triggers, and reverts in flight.
  for (const auto& [plan, seed] :
       {std::pair{benign_plan(90.0), std::uint64_t{7}},
        std::pair{stormy_plan(), std::uint64_t{2014}}}) {
    const std::string serial = verdict_json(run_campaign(plan, seed));
    for (const std::size_t shards : {1u, 2u, 8u}) {
      EXPECT_EQ(verdict_json(run_campaign_sharded(plan, seed, {}, shards)),
                serial)
          << plan.name << " seed=" << seed << " shards=" << shards;
    }
  }
}

TEST(FaultCampaign, CampaignBoundsMatchClusterShape) {
  CampaignConfig cfg;
  cfg.raid_groups = 6;
  cfg.enclosures = 5;
  const PlanBounds bounds = campaign_bounds(cfg);
  EXPECT_EQ(bounds.groups, 6u);
  EXPECT_EQ(bounds.members, 10u);
  EXPECT_EQ(bounds.enclosures, 5u);
  EXPECT_EQ(bounds.resources, 8u);
}

}  // namespace
