#include "sim/event_queue.hpp"

#include <cassert>

namespace spider::sim {

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

std::pair<SimTime, EventFn> EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  EventFn fn = std::move(it->second);
  callbacks_.erase(it);
  --live_;
  return {e.when, std::move(fn)};
}

}  // namespace spider::sim
