// spiderfault CLI — deterministic fault-injection campaign runner.
//
// Usage: spiderfault [options] <plan.fplan>...
//   --seeds=N             run each plan under N consecutive seeds (default 1)
//   --base-seed=S         first seed (default: the plan's own seed)
//   --mutations=M         additionally run M seeded plan mutations per seed
//   --horizon-s=X         override every plan's horizon
//   --jobs=N              run up to N campaigns concurrently (default 1)
//   --shards=N            host each campaign on an N-shard epoch engine
//                         (default 0 = the serial Simulator)
//   --expect-violations   invert the verdict: exit 0 iff violations were found
//   --fsck                after each run: spiderfsck repair + re-run oracles
//                         (verdict JSON grows a "repair" section; a run whose
//                         repaired state re-checks dirty always fails)
//   --fsck-jobs=N         phase-1 scan lanes for the fsck stage (default 1)
//
// Churn mode (no plan files; the billion-entry changelog harness):
//   --churn                    run the metadata churn scenario instead of
//                              fault plans; one JSON verdict line, exit 0
//                              iff the changelog oracles stayed green and
//                              the query path cost zero namespace walks
//   --churn-namespaces=N       DNE namespaces (default 8)
//   --churn-files=N            initial physical records per namespace
//   --churn-cohort=N           logical files per physical record
//   --churn-ops=N              churn ops per actor (default 256)
//   --churn-epochs=N           consumer/oracle barriers (default 8)
//   --churn-crash              inject a log-rewind crash mid-run; the run
//                              fails unless consumers detect and resync
//   --churn-min-logical=N      fail the verdict below N logical files
//   (--shards and --base-seed apply to churn mode too)
//
// One JSON verdict line per run: plan name, seed, replay hash, stream hash,
// telemetry, and the oracle violations (see docs/fault-injection.md for how
// to reproduce a violation from a verdict line).
//
// --jobs=N parallelism is output-invisible: the campaign list is enumerated
// up front in (plan, seed, mutation) order, runs execute concurrently on the
// shared thread pool, and verdict lines are buffered and printed in
// enumeration order — so stdout is byte-identical to --jobs=1.
//
// --shards=N holds the same bar one layer down: the campaign runs on a
// ShardedSimulator (sim/sharded_sim.hpp, docs/parallel-engine.md) and its
// verdict — replay and stream hashes included — is byte-identical to the
// serial engine's at any shard count. When --jobs also fans out, each
// sharded campaign runs its epochs serially on its worker (nested
// parallelism runs inline), so the two flags compose without oversubscribing.
//
// Exit codes: 0 campaign outcome matched expectation, 1 it did not,
// 2 usage / plan-parse / I/O error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.hpp"
#include "sim/faultplan.hpp"
#include "tools/faultcli/campaign.hpp"
#include "tools/faultcli/churn.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--base-seed=S] [--mutations=M]\n"
               "       [--horizon-s=X] [--jobs=N] [--shards=N]\n"
               "       [--expect-violations] [--fsck] [--fsck-jobs=N]\n"
               "       <plan.fplan>...\n"
               "   or: %s --churn [--churn-namespaces=N] [--churn-files=N]\n"
               "       [--churn-cohort=N] [--churn-ops=N] [--churn-epochs=N]\n"
               "       [--churn-crash] [--churn-min-logical=N] [--shards=N]\n"
               "       [--base-seed=S]\n",
               argv0,
               argv0);
  return 2;
}

bool parse_count(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider;

  std::uint64_t seeds = 1;
  std::uint64_t base_seed = 0;
  bool have_base_seed = false;
  std::uint64_t mutations = 0;
  std::uint64_t jobs = 1;
  std::uint64_t engine_shards = 0;  // 0 = serial Simulator
  double horizon_s = 0.0;
  bool expect_violations = false;
  bool fsck = false;
  std::uint64_t fsck_jobs = 1;
  bool churn = false;
  tools::ChurnRunConfig churn_cfg;
  std::vector<std::string> plan_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--seeds=")) {
      if (!parse_count(arg.substr(8), seeds) || seeds == 0) {
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--base-seed=")) {
      if (!parse_count(arg.substr(12), base_seed)) return usage(argv[0]);
      have_base_seed = true;
    } else if (arg.starts_with("--mutations=")) {
      if (!parse_count(arg.substr(12), mutations)) return usage(argv[0]);
    } else if (arg.starts_with("--jobs=")) {
      if (!parse_count(arg.substr(7), jobs) || jobs == 0) {
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--shards=")) {
      if (!parse_count(arg.substr(9), engine_shards) || engine_shards == 0) {
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--horizon-s=")) {
      try {
        horizon_s = std::stod(std::string(arg.substr(12)));
      } catch (const std::exception&) {
        return usage(argv[0]);
      }
      if (horizon_s <= 0.0) return usage(argv[0]);
    } else if (arg == "--churn") {
      churn = true;
    } else if (arg.starts_with("--churn-namespaces=")) {
      std::uint64_t v = 0;
      if (!parse_count(arg.substr(19), v) || v == 0) return usage(argv[0]);
      churn_cfg.params.namespaces = static_cast<std::size_t>(v);
    } else if (arg.starts_with("--churn-files=")) {
      std::uint64_t v = 0;
      if (!parse_count(arg.substr(14), v) || v == 0) return usage(argv[0]);
      churn_cfg.params.initial_files = static_cast<std::size_t>(v);
    } else if (arg.starts_with("--churn-cohort=")) {
      std::uint64_t v = 0;
      if (!parse_count(arg.substr(15), v) || v == 0) return usage(argv[0]);
      churn_cfg.params.cohort = v;
    } else if (arg.starts_with("--churn-ops=")) {
      std::uint64_t v = 0;
      if (!parse_count(arg.substr(12), v) || v == 0) return usage(argv[0]);
      churn_cfg.params.ops_per_actor = static_cast<std::size_t>(v);
    } else if (arg.starts_with("--churn-epochs=")) {
      std::uint64_t v = 0;
      if (!parse_count(arg.substr(15), v) || v == 0) return usage(argv[0]);
      churn_cfg.epochs = static_cast<std::size_t>(v);
    } else if (arg == "--churn-crash") {
      churn_cfg.crash = true;
    } else if (arg.starts_with("--churn-min-logical=")) {
      std::uint64_t v = 0;
      if (!parse_count(arg.substr(20), v)) return usage(argv[0]);
      churn_cfg.min_logical_files = v;
    } else if (arg == "--expect-violations") {
      expect_violations = true;
    } else if (arg == "--fsck") {
      fsck = true;
    } else if (arg.starts_with("--fsck-jobs=")) {
      if (!parse_count(arg.substr(12), fsck_jobs)) return usage(argv[0]);
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "spiderfault: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      plan_paths.emplace_back(arg);
    }
  }
  if (churn) {
    if (!plan_paths.empty()) {
      std::fprintf(stderr, "spiderfault: --churn takes no plan files\n");
      return usage(argv[0]);
    }
    if (engine_shards > 0) {
      churn_cfg.engine_shards = static_cast<std::size_t>(engine_shards);
    }
    if (have_base_seed) churn_cfg.params.seed = base_seed;
    const tools::ChurnVerdict verdict = tools::run_churn(churn_cfg);
    std::printf("%s\n", tools::churn_verdict_json(churn_cfg, verdict).c_str());
    return verdict.ok ? 0 : 1;
  }
  if (plan_paths.empty()) return usage(argv[0]);

  tools::CampaignConfig cfg;
  cfg.horizon_s = horizon_s;  // 0 = per-plan horizon

  // Enumerate every run up front, in (plan, seed, mutation) order. Mutation
  // derivation stays serial and seeded — mutant m derives from (plan, seed,
  // m) alone — so the job list, and therefore the output, is reproducible
  // from the command line regardless of --jobs.
  struct Job {
    sim::FaultPlan plan;
    std::uint64_t seed = 0;
  };
  std::vector<Job> run_jobs;
  for (const std::string& path : plan_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "spiderfault: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    sim::FaultPlan plan;
    try {
      plan = sim::parse_fault_plan(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spiderfault: %s: %s\n", path.c_str(), e.what());
      return 2;
    }

    const std::uint64_t first_seed = have_base_seed ? base_seed : plan.seed;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = first_seed + s;
      run_jobs.push_back(Job{plan, seed});
      for (std::uint64_t m = 1; m <= mutations; ++m) {
        Rng mutation_rng(seed ^ (0x9e3779b97f4a7c15ull * m));
        run_jobs.push_back(Job{
            sim::mutate_plan(plan, tools::campaign_bounds(cfg), mutation_rng),
            seed});
      }
    }
  }

  // Campaigns are independent single-threaded simulations, so they fan out
  // across the shared pool. Verdict lines are buffered per job and emitted
  // in enumeration order below, keeping stdout byte-identical to --jobs=1.
  tools::FsckOptions fsck_opts;
  fsck_opts.jobs = static_cast<std::size_t>(fsck_jobs);
  std::vector<tools::RunVerdict> verdicts(run_jobs.size());
  parallel_for(
      run_jobs.size(),
      [&](std::size_t i) {
        if (fsck) {
          verdicts[i] =
              engine_shards > 0
                  ? tools::run_campaign_sharded_checked(
                        run_jobs[i].plan, run_jobs[i].seed, cfg, engine_shards,
                        /*workers=*/0, fsck_opts)
                  : tools::run_campaign_checked(run_jobs[i].plan,
                                                run_jobs[i].seed, cfg,
                                                fsck_opts);
        } else {
          verdicts[i] =
              engine_shards > 0
                  ? tools::run_campaign_sharded(run_jobs[i].plan,
                                                run_jobs[i].seed, cfg,
                                                engine_shards)
                  : tools::run_campaign(run_jobs[i].plan, run_jobs[i].seed,
                                        cfg);
        }
      },
      static_cast<std::size_t>(jobs));

  std::uint64_t violating_runs = 0;
  bool repair_failed = false;
  for (const tools::RunVerdict& verdict : verdicts) {
    std::printf("%s\n", tools::verdict_json(verdict).c_str());
    if (!verdict.clean()) ++violating_runs;
    // A dirty repaired state is a tool failure, never an expected outcome —
    // --expect-violations does not excuse it.
    if (verdict.repair.ran && !verdict.repair.post_clean) repair_failed = true;
  }

  if (repair_failed) return 1;
  if (expect_violations) return violating_runs > 0 ? 0 : 1;
  return violating_runs == 0 ? 0 : 1;
}
