// spiderlint self-tests: each rule fires on its fixture at the exact line,
// suppressions silence it, and both renderers carry the findings.
//
// Fixtures live in tests/lint_fixtures/ (outside src/, so the in-tree lint
// gate never sees them); classification is forced per fixture the same way
// the CLI's --treat-as does it.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/baseline.hpp"
#include "tools/lint/fix.hpp"
#include "tools/lint/lint.hpp"
#include "tools/lint/report.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/scan.hpp"

namespace spider::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(SPIDER_LINT_FIXTURES_DIR) + "/" + name;
}

LintReport lint_fixture(const std::string& name, FileClass cls) {
  LintOptions opts;
  opts.forced_class = cls;
  std::vector<std::string> errors;
  LintReport report = lint_paths({fixture(name)}, opts, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return report;
}

constexpr FileClass kSimCritical{.in_src = true, .sim_critical = true};
constexpr FileClass kSrc{.in_src = true};
constexpr FileClass kSrcHeader{.in_src = true, .is_header = true};

TEST(SpiderLint, L1FiresOnDeclarationAndIteration) {
  const LintReport r =
      lint_fixture("l1_unordered_iteration.cpp", kSimCritical);
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "L1");
  EXPECT_EQ(r.findings[0].line, 10u);  // unordered_map member declaration
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_EQ(r.findings[1].rule, "L1");
  EXPECT_EQ(r.findings[1].line, 14u);  // range-for over the tracked member
  EXPECT_NE(r.findings[1].message.find("flows_"), std::string::npos);
}

TEST(SpiderLint, L2FiresOnAmbientRandomness) {
  const LintReport r = lint_fixture("l2_nondet_source.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_EQ(r.findings[0].line, 9u);  // std::random_device rd;
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("random_device"), std::string::npos);
}

TEST(SpiderLint, L3FiresOnUnitBearingDoubleInHeader) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L3");
  EXPECT_EQ(r.findings[0].line, 10u);  // double transfer_bytes
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
  EXPECT_NE(r.findings[0].message.find("transfer_bytes"), std::string::npos);
}

TEST(SpiderLint, L3NeedsHeaderScope) {
  // The same file linted as a non-header translation unit stays quiet:
  // L3 is a public-interface rule.
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrc);
  EXPECT_TRUE(r.clean());
}

TEST(SpiderLint, L4FiresOnSitelessSchedule) {
  const LintReport r = lint_fixture("l4_missing_site.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].rule, "L4");
  EXPECT_EQ(r.findings[0].line, 14u);  // q.schedule(100, 1);
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  // Fault-plan entry points must declare a replay-site parameter too.
  EXPECT_EQ(r.findings[1].line, 22u);  // inject(const Injection&)
  EXPECT_NE(r.findings[1].message.find("inject"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 23u);  // arm(const FaultPlan&)
  EXPECT_NE(r.findings[2].message.find("arm"), std::string::npos);
}

TEST(SpiderLint, SuppressionsSilenceEveryScopedRule) {
  // The file is linted under every class at once: unordered_map + a
  // unit-bearing double are both present, both justified.
  const LintReport r = lint_fixture(
      "suppressed_ok.cpp",
      FileClass{.in_src = true, .sim_critical = true, .is_header = true});
  EXPECT_TRUE(r.clean()) << render_text(r, /*fix_hints=*/false);
}

TEST(SpiderLint, DisabledRulesDoNotRun) {
  LintOptions opts;
  opts.forced_class = kSimCritical;
  opts.rules.l1 = false;
  std::vector<std::string> errors;
  const LintReport r =
      lint_paths({fixture("l1_unordered_iteration.cpp")}, opts, errors);
  EXPECT_TRUE(r.clean());
}

TEST(SpiderLint, TextReportCarriesFileLineRule) {
  const LintReport r =
      lint_fixture("l1_unordered_iteration.cpp", kSimCritical);
  const std::string text = render_text(r, /*fix_hints=*/false);
  EXPECT_NE(
      text.find("l1_unordered_iteration.cpp:10:8: error: [L1]"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("2 findings (2 errors, 0 warnings)"), std::string::npos)
      << text;
}

TEST(SpiderLint, TextReportHintsOnRequest) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  const std::string plain = render_text(r, /*fix_hints=*/false);
  const std::string hinted = render_text(r, /*fix_hints=*/true);
  EXPECT_EQ(plain.find("units.hpp vocabulary"), std::string::npos);
  EXPECT_NE(hinted.find("units.hpp vocabulary"), std::string::npos) << hinted;
}

TEST(SpiderLint, JsonReportCarriesFindings) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\": {\"error\": 0, \"warning\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rule\": \"L3\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"column\": 3"), std::string::npos) << json;
}

TEST(SpiderLint, RuleTableIsComplete) {
  ASSERT_EQ(rules().size(), 8u);
  const char* ids[] = {"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8"};
  for (const char* id : ids) {
    const RuleInfo* info = rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_FALSE(info->name.empty());
    EXPECT_FALSE(info->suppression.empty());
    EXPECT_FALSE(info->hint.empty());
  }
  EXPECT_EQ(rule("L9"), nullptr);
}

TEST(SpiderLint, CollectSourcesIsSortedAndDeduplicated) {
  std::vector<std::string> errors;
  const std::vector<std::string> once =
      collect_sources({SPIDER_LINT_FIXTURES_DIR}, errors);
  const std::vector<std::string> twice = collect_sources(
      {SPIDER_LINT_FIXTURES_DIR, fixture("l2_nondet_source.cpp")}, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(once.size(), 18u) << "fixture census drifted";
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(std::is_sorted(once.begin(), once.end()));
}

// ---------------------------------------------------------------------------
// Semantic rules (L5-L8): each fixture pins one true positive at an exact
// file:line and carries engineered false positives that must stay quiet
// (the count assertion is the false-positive check).

constexpr FileClass kCalib{.in_src = true, .calib_scope = true};

TEST(SpiderLint, L5FlagsUpwardIncludeAndCycle) {
  // The fixture tree has four downward edges (engineered false positives)
  // plus one upward include and one two-file cycle.
  const LintReport r = lint_fixture("l5_layering", kSrc);
  ASSERT_EQ(r.findings.size(), 2u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L5");
  EXPECT_TRUE(r.findings[0].file.ends_with("l5_layering/src/block/dev.hpp"));
  EXPECT_EQ(r.findings[0].line, 5u);  // #include "workload/gen.hpp"
  EXPECT_NE(r.findings[0].message.find("workload/gen.hpp"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("points up"), std::string::npos);
  EXPECT_EQ(r.findings[1].rule, "L5");
  EXPECT_TRUE(r.findings[1].file.ends_with("l5_layering/src/sim/cycle_a.hpp"));
  EXPECT_NE(
      r.findings[1].message.find(
          "sim/cycle_a.hpp -> sim/cycle_b.hpp -> sim/cycle_a.hpp"),
      std::string::npos);
}

TEST(SpiderLint, L6FlagsOnlyTheUnguardedAccess) {
  // unsafe_touch fires; the lock_guard path and the SPIDER_REQUIRES helper
  // are the engineered false positives.
  const LintReport r = lint_fixture("l6_lock_discipline.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L6");
  EXPECT_EQ(r.findings[0].line, 15u);  // return count_; without the lock
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("count_"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("mu_"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("unsafe_touch"), std::string::npos);
}

TEST(SpiderLint, L7FlagsPrivateSitelessScheduleOnly) {
  // relaunch() and relaunch_cross() fire; the public entry point and both
  // loc-threading helpers are the engineered false positives.
  const LintReport r = lint_fixture("l7_schedule_flow.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 2u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L7");
  EXPECT_EQ(r.findings[0].line, 24u);  // sim_.schedule_at(10, 0)
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("relaunch"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("source_location"), std::string::npos);
  // The cross-shard mailbox send is held to the same site-flow contract.
  EXPECT_EQ(r.findings[1].rule, "L7");
  EXPECT_EQ(r.findings[1].line, 34u);  // engine_.schedule_cross(0, 1, 10, 0)
  EXPECT_NE(r.findings[1].message.find("relaunch_cross"), std::string::npos);
  EXPECT_NE(r.findings[1].message.find("schedule_cross"), std::string::npos);
}

TEST(SpiderLint, L8FlagsBareCalibrationLiteralOnly) {
  // The bare 1e3 fires; the constexpr constant, hex mask, unit literal, and
  // default member initializer are the engineered false positives.
  const LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L8");
  EXPECT_EQ(r.findings[0].line, 12u);  // return seconds * 1e3;
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
  EXPECT_NE(r.findings[0].message.find("1e3"), std::string::npos);
}

TEST(SpiderLint, TokenizerEdgeCasesStayQuiet) {
  // Raw strings, spanning block comments, #if 0 regions, and digit
  // separators all contain rule triggers; none may fire.
  const LintReport r = lint_fixture("tok_edges.cpp", kSimCritical);
  EXPECT_TRUE(r.clean()) << render_text(r, /*fix_hints=*/false);
}

TEST(SpiderLint, SuppressionScopesAreExactlyScoped) {
  // Same-line, line-above, next-line, and file-scope suppressions silence
  // their targets; the declaration one line past a `spiderlint-next-line`
  // still fires — the scope is exactly one line.
  const LintReport r = lint_fixture("suppress_scopes.cpp", kSimCritical);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L1");
  EXPECT_EQ(r.findings[0].line, 26u);  // d_ past the next-line scope
}

// ---------------------------------------------------------------------------
// SARIF rendering.

TEST(SpiderLint, SarifReportIsWellFormed) {
  const LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  const std::string sarif = render_sarif(r);
  // Required SARIF 2.1.0 skeleton.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  EXPECT_NE(sarif.find("\"driver\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"spiderlint\""), std::string::npos);
  // The full rule table rides along so viewers can show rule metadata.
  EXPECT_NE(sarif.find("\"id\": \"L1\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"L8\""), std::string::npos);
  // The finding itself.
  EXPECT_NE(sarif.find("\"ruleId\": \"L8\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"physicalLocation\""), std::string::npos);
  EXPECT_NE(sarif.find("\"artifactLocation\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\": 49"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline.

TEST(SpiderLint, BaselineParsesEntriesAndReportsMalformedLines) {
  std::vector<std::string> errors;
  const std::vector<BaselineEntry> entries = parse_baseline(
      "# comment\n"
      "\n"
      "L1 :: a/b.cpp :: some message :: grandfathered\n"
      "not a baseline line\n",
      errors);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "L1");
  EXPECT_EQ(entries[0].file, "a/b.cpp");
  EXPECT_EQ(entries[0].message, "some message");
  EXPECT_EQ(entries[0].reason, "grandfathered");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("4"), std::string::npos) << errors[0];
}

TEST(SpiderLint, BaselineMatchesByMessageNotLineNumber) {
  LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  ASSERT_EQ(r.findings.size(), 1u);

  BaselineEntry entry{.rule = "L8",
                      .file = "lint_fixtures/l8_calibration.cpp",
                      .message = r.findings[0].message,
                      .reason = "test"};
  EXPECT_TRUE(baseline_matches(entry, r.findings[0]));

  // Suffix matching honours '/' boundaries: a mid-component suffix is not
  // the same file.
  BaselineEntry partial = entry;
  partial.file = "8_calibration.cpp";
  EXPECT_FALSE(baseline_matches(partial, r.findings[0]));

  // Applying the baseline removes the finding; nothing is stale.
  const std::vector<BaselineEntry> stale = apply_baseline(r, {entry});
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(stale.empty());
}

TEST(SpiderLint, BaselineReportsStaleEntries) {
  LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  const BaselineEntry gone{.rule = "L8",
                           .file = "lint_fixtures/l8_calibration.cpp",
                           .message = "a finding that was fixed long ago",
                           .reason = "stale"};
  const std::vector<BaselineEntry> stale = apply_baseline(r, {gone});
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].message, "a finding that was fixed long ago");
  EXPECT_EQ(r.findings.size(), 1u);  // nothing was eaten
}

TEST(SpiderLint, BaselineRoundTripsThroughWriteBaseline) {
  LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  std::vector<std::string> errors;
  const std::vector<BaselineEntry> entries =
      parse_baseline(render_baseline(r), errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(entries.size(), r.findings.size());
  const std::vector<BaselineEntry> stale = apply_baseline(r, entries);
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(stale.empty());
}

// ---------------------------------------------------------------------------
// --fix: applied to throwaway copies, the result must re-lint clean and
// recompile.

std::string fix_copy(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "spiderlint_fix_test";
  fs::create_directories(dir);
  const fs::path dst = dir / name;
  fs::copy_file(fixture(name), dst, fs::copy_options::overwrite_existing);
  return dst.string();
}

int syntax_check(const std::string& extra_flags, const std::string& path) {
  const std::string cmd = std::string(SPIDER_LINT_CXX) +
                          " -std=c++20 -fsyntax-only " + extra_flags + " " +
                          path + " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(SpiderLint, FixSwapsL1ContainersButNotCustomHashers) {
  const std::string path = fix_copy("fix_l1.cpp");
  LintOptions opts;
  opts.forced_class = kSimCritical;
  std::vector<std::string> errors;
  LintReport before = lint_paths({path}, opts, errors);
  ASSERT_EQ(before.findings.size(), 2u);

  const FixResult fixed = apply_fixes(before, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(fixed.fixes_applied, 2u);
  ASSERT_EQ(fixed.files_changed.size(), 1u);

  const LintReport after = lint_paths({path}, opts, errors);
  EXPECT_TRUE(after.clean()) << render_text(after, /*fix_hints=*/false);

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("std::map<int, double> rows_"), std::string::npos);
  EXPECT_NE(text.find("std::set<int> keys_"), std::string::npos);
  EXPECT_NE(text.find("#include <map>"), std::string::npos);
  EXPECT_NE(text.find("#include <set>"), std::string::npos);
  // The custom-hasher table and its include survive untouched.
  EXPECT_NE(text.find("std::unordered_map<int, int, std::hash<int>>"),
            std::string::npos);
  EXPECT_NE(text.find("#include <unordered_map>"), std::string::npos);

  EXPECT_EQ(syntax_check("", path), 0) << "fixed file no longer compiles";
}

TEST(SpiderLint, FixRenamesL3DoublesToUnitAliases) {
  const std::string path = fix_copy("fix_l3.hpp");
  LintOptions opts;
  opts.forced_class = kSrcHeader;
  std::vector<std::string> errors;
  LintReport before = lint_paths({path}, opts, errors);
  ASSERT_EQ(before.findings.size(), 4u);

  const FixResult fixed = apply_fixes(before, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(fixed.fixes_applied, 4u);

  const LintReport after = lint_paths({path}, opts, errors);
  EXPECT_TRUE(after.clean()) << render_text(after, /*fix_hints=*/false);

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("spider::ByteVolume transfer_bytes"), std::string::npos);
  EXPECT_NE(text.find("spider::Seconds elapsed_seconds"), std::string::npos);
  EXPECT_NE(text.find("spider::Bandwidth peak_bw"), std::string::npos);
  EXPECT_NE(text.find("spider::Seconds latency_p99"), std::string::npos);
  EXPECT_NE(text.find("#include \"common/units.hpp\""), std::string::npos);

  EXPECT_EQ(syntax_check(std::string("-x c++ -I ") + SPIDER_LINT_SRC_DIR,
                         path),
            0)
      << "fixed header no longer compiles";
}

}  // namespace
}  // namespace spider::lint
