# Empty compiler generated dependencies file for bench_a5_striping_practices.
# This may be replaced when dependencies are built.
