// The standard monitoring checks OLCF ran (Section IV-A "Monitoring").
//
// "To monitor the InfiniBand adapter and network, custom checks were
// written around the standard OFED tools for HCA errors and network
// errors... Single cable failures can cause performance degradation in
// accessing the file system. OLCF has developed procedures for diagnosing
// a cable in-place." Plus the Lustre Health Checker's view of RAID and
// controller state, and capacity checks against the 70% degradation knee.
//
// make_standard_checks() loads a CheckScheduler with the whole battery,
// bound to live center state and an IB error-counter store.
#pragma once

#include <cstdint>
#include <vector>

#include "core/center.hpp"
#include "tools/health.hpp"

namespace spider::tools {

/// Per-port InfiniBand error counters (what `ibqueryerrors`/perfquery
/// expose); fed by the fabric layer or injected by tests.
class IbErrorCounters {
 public:
  explicit IbErrorCounters(std::size_t ports) : symbol_(ports, 0), down_(ports, 0) {}

  std::size_t ports() const { return symbol_.size(); }
  void add_symbol_errors(std::size_t port, std::uint64_t n);
  void add_link_down(std::size_t port);
  std::uint64_t symbol_errors(std::size_t port) const { return symbol_.at(port); }
  std::uint64_t link_downs(std::size_t port) const { return down_.at(port); }
  void clear();

 private:
  std::vector<std::uint64_t> symbol_;
  std::vector<std::uint64_t> down_;
};

struct CheckThresholds {
  /// Symbol errors before a cable is flagged for in-place diagnosis.
  std::uint64_t symbol_warning = 100;
  std::uint64_t symbol_critical = 10'000;
  /// OST fullness knees (the paper's 50%/70% observations).
  double fullness_warning = 0.70;
  double fullness_critical = 0.90;
  /// MDS offered load fraction that warrants a warning.
  double mds_warning_util = 0.80;
};

/// Build the standard battery:
///   - one RAID-state check per SSU (degraded/rebuilding/failed groups),
///   - one controller-pair check per SSU,
///   - IB cable checks over the counter store,
///   - OST fullness checks against the degradation knees,
///   - MDS saturation checks per namespace (given offered loads).
CheckScheduler make_standard_checks(core::CenterModel& center,
                                    const IbErrorCounters& ib,
                                    const std::vector<double>& mds_offered,
                                    const CheckThresholds& thresholds = {});

}  // namespace spider::tools
