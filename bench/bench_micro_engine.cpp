// Microbenchmarks of the simulation engine itself (google-benchmark).
//
// These guard the performance properties the reproduction relies on: the
// max-min solver must handle full Spider II scale (18,688 flows over ~70k
// resources) in well under a second per solve, and the event queue must
// sustain millions of schedule/pop cycles for DES scenarios.
//
// Two modes:
//   (default)              google-benchmark suite, usual benchmark flags.
//   --spider-json=PATH     hand-rolled engine throughput loops (see
//                          engine_measure.hpp) written as machine-readable
//                          JSON to PATH. Add --smoke for a seconds-long run
//                          sized for CI, and --baseline=FILE to shape-check
//                          events/sec against a checked-in baseline report
//                          (exit 1 on regression past the noise floor).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "engine_measure.hpp"
#include "net/torus.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "workload/ior.hpp"

namespace {

using namespace spider;

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<sim::SimTime>(rng.uniform_index(1000000)), [] {});
    }
    while (!q.empty()) q.pop();
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Task vs std::function for the hot dispatch capture shape: 24 bytes fits
// Task's 48-byte inline buffer but exceeds libstdc++ std::function's 16-byte
// one, so the std::function variant heap-allocates per callable.
void BM_TaskRoundTrip24ByteCapture(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t a = 1, b = 2, c = 3;
  for (auto _ : state) {
    sim::Task t([&sink, a, b, c] { sink += a + b + c; });
    t();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_TaskRoundTrip24ByteCapture);

void BM_StdFunctionRoundTrip24ByteCapture(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t a = 1, b = 2, c = 3;
  for (auto _ : state) {
    std::function<void()> t([&sink, a, b, c] { sink += a + b + c; });
    t();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_StdFunctionRoundTrip24ByteCapture);

void BM_EventQueueScheduleCancelChurn(benchmark::State& state) {
  sim::EventQueue q;
  q.schedule(1, [] {});  // live anchor so the queue never empties
  for (auto _ : state) {
    const sim::EventId id = q.schedule(1'000'000, [] {});
    q.cancel(id);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_EventQueueScheduleCancelChurn);

void BM_TorusRoute(benchmark::State& state) {
  net::Torus3D torus({25, 16, 24});
  Rng rng(3);
  for (auto _ : state) {
    const auto from = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(torus.num_nodes())));
    const auto to = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(torus.num_nodes())));
    benchmark::DoNotOptimize(torus.route(from, to));
  }
}
BENCHMARK(BM_TorusRoute);

void BM_SolveMaxMin(benchmark::State& state) {
  const auto flows_n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const std::size_t nr = 2000;
  std::vector<double> cap(nr);
  for (auto& c : cap) c = rng.uniform(1e8, 1e9);
  std::vector<std::vector<sim::PathHop>> paths(flows_n);
  std::vector<sim::SolverFlow> flows;
  for (auto& p : paths) {
    for (int h = 0; h < 8; ++h) {
      p.push_back({static_cast<sim::ResourceId>(rng.uniform_index(nr)), 1.0});
    }
  }
  for (const auto& p : paths) flows.push_back({p, 6e8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::solve_max_min(cap, flows));
  }
}
BENCHMARK(BM_SolveMaxMin)->Arg(512)->Arg(4096)->Arg(16384);

void BM_FullSpiderIorSolve(benchmark::State& state) {
  Rng rng(5);
  core::CenterModel center(core::spider2_config(), rng);
  center.set_target_namespace(0);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);
  workload::IorConfig cfg;
  cfg.clients = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::run_ior(center, cfg));
  }
}
BENCHMARK(BM_FullSpiderIorSolve)->Arg(1008)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_CenterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(6);
    core::CenterModel center(core::spider2_config(), rng);
    benchmark::DoNotOptimize(center.total_osts());
  }
}
BENCHMARK(BM_CenterConstruction)->Unit(benchmark::kMillisecond);

// --- --spider-json mode ------------------------------------------------------

struct EngineRunConfig {
  std::size_t dispatch_events = 20000;
  std::size_t dispatch_rounds = 60;
  std::size_t cancel_pairs = 50000;
  std::size_t cancel_rounds = 40;
  std::size_t observed_events = 20000;
  std::size_t observed_rounds = 40;
  std::size_t batches = 2000;
  std::size_t tasks_per_batch = 64;
  std::size_t batch_threads = 4;
};

EngineRunConfig smoke_config() {
  EngineRunConfig cfg;
  cfg.dispatch_rounds = 10;
  cfg.cancel_rounds = 6;
  cfg.observed_rounds = 6;
  cfg.batches = 300;
  return cfg;
}

/// Run the hand-rolled loops, write the JSON report, and shape-check the
/// result (against `baseline_path` when given). The regression gate is
/// deliberately loose — 0.6x of the recorded baseline — because CI machines
/// are noisy and heterogeneous; the gate exists to catch engine-level
/// collapses (an accidental per-event allocation, a serialized pool), not
/// single-digit drift. Before/after comparisons for PR records should use
/// the full mode on one quiet machine.
int run_spider_json(const std::string& json_path,
                    const std::string& baseline_path, bool smoke) {
  using spider::bench::Measurement;
  const EngineRunConfig cfg = smoke ? smoke_config() : EngineRunConfig{};

  spider::bench::banner("engine throughput (events/sec)");
  const Measurement dispatch = spider::bench::measure_schedule_dispatch(
      cfg.dispatch_events, cfg.dispatch_rounds);
  const Measurement cancel = spider::bench::measure_schedule_cancel(
      cfg.cancel_pairs, cfg.cancel_rounds);
  const Measurement observed = spider::bench::measure_observed_dispatch(
      cfg.observed_events, cfg.observed_rounds);
  const Measurement batches = spider::bench::measure_parallel_batches(
      cfg.batches, cfg.tasks_per_batch, cfg.batch_threads);

  spider::bench::JsonReport report("engine_micro", smoke ? "smoke" : "full");
  const auto add = [&report](const char* name, const Measurement& m) {
    report.add(name, "ops_per_sec", m.ops_per_sec);
    report.add(name, "ops", static_cast<double>(m.ops));
    report.add(name, "elapsed_s", m.elapsed_s);
    std::printf("  %-18s %12.0f ops/sec  (%llu ops in %.3fs)\n", name,
                m.ops_per_sec, static_cast<unsigned long long>(m.ops),
                m.elapsed_s);
  };
  add("schedule_dispatch", dispatch);
  add("schedule_cancel", cancel);
  add("observed_dispatch", observed);
  add("parallel_batches", batches);

  spider::bench::ShapeChecker checker;
  checker.check(dispatch.ops_per_sec > 0 && cancel.ops_per_sec > 0 &&
                    observed.ops_per_sec > 0 && batches.ops_per_sec > 0,
                "all engine loops made forward progress");
  // Cancel never dispatches, so a schedule+cancel pair must beat a full
  // schedule+dispatch cycle; inversion means cancel went accidentally
  // expensive (e.g. eager heap rebuilds per cancel).
  checker.check(cancel.ops_per_sec > dispatch.ops_per_sec,
                "schedule+cancel churn outpaces full dispatch");

  if (!baseline_path.empty()) {
    std::string text;
    if (!spider::bench::read_text_file(baseline_path, text)) {
      std::fprintf(stderr, "bench: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 1;
    }
    const auto gate = [&](const char* name, const Measurement& m) {
      double base = 0.0;
      if (!spider::bench::json_number(text, name, "ops_per_sec", base)) {
        checker.check(false, std::string(name) + ": baseline entry present");
        return;
      }
      const double ratio = m.ops_per_sec / base;
      report.add(name, "baseline_ops_per_sec", base);
      report.add(name, "vs_baseline", ratio);
      char label[160];
      std::snprintf(label, sizeof(label),
                    "%s: %.2fx of baseline %.0f ops/sec (floor 0.60x)", name,
                    ratio, base);
      checker.check(ratio >= 0.6, label);
    };
    gate("schedule_dispatch", dispatch);
    gate("schedule_cancel", cancel);
    gate("observed_dispatch", observed);
    gate("parallel_batches", batches);
  }

  if (!report.write_file(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return checker.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--spider-json=", 0) == 0) {
      json_path = arg.substr(14);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return run_spider_json(json_path, baseline_path, smoke);
  }

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
