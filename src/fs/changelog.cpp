#include "fs/changelog.hpp"

#include <stdexcept>

namespace spider::fs {

namespace {

// FNV-1a 64-bit reference parameters (Fowler–Noll–Vo).
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ChangelogAccounting::ChangelogAccounting(std::uint32_t shards)
    : tables_(shards == 0 ? 1 : shards) {}

ConsumeResult ChangelogAccounting::consume(const OpLog& log) {
  return cursor_.consume(log, [this](const OpRecord& rec) { apply(rec); });
}

void ChangelogAccounting::apply(const OpRecord& rec) {
  ++records_applied_;
  const std::uint32_t n = shards();
  auto row = [this, n](std::uint32_t project) -> ProjectUsage& {
    return tables_[project % n][project];
  };
  switch (rec.kind) {
    case OpKind::kCreate: {
      ProjectUsage& u = row(rec.project);
      u.bytes += rec.size;
      ++u.files;
      ++u.creates;
      if (rec.at > u.last_activity) u.last_activity = rec.at;
      break;
    }
    case OpKind::kUnlink: {
      ProjectUsage& u = row(rec.project);
      u.bytes -= rec.size;
      --u.files;
      ++u.unlinks;
      if (rec.at > u.last_activity) u.last_activity = rec.at;
      break;
    }
    case OpKind::kSetattr: {
      ProjectUsage& u = row(rec.project);
      if (rec.at > u.last_activity) u.last_activity = rec.at;
      break;
    }
    case OpKind::kResize: {
      ProjectUsage& u = row(rec.project);
      u.bytes += rec.size;
      u.bytes -= rec.prev_size;
      if (rec.at > u.last_activity) u.last_activity = rec.at;
      break;
    }
    case OpKind::kSetProject: {
      // The record spans two shards; each applies exactly its half, so the
      // merged table is invariant under the shard count.
      ProjectUsage& from = row(rec.prev_project);
      from.bytes -= rec.size;
      --from.files;
      if (rec.at > from.last_activity) from.last_activity = rec.at;
      ProjectUsage& to = row(rec.project);
      to.bytes += rec.size;
      ++to.files;
      if (rec.at > to.last_activity) to.last_activity = rec.at;
      break;
    }
  }
}

Bytes ChangelogAccounting::bytes_of(std::uint32_t project) const {
  const ProjectUsage* u = find(project);
  return u == nullptr ? 0 : u->bytes;
}

std::uint64_t ChangelogAccounting::files_of(std::uint32_t project) const {
  const ProjectUsage* u = find(project);
  return u == nullptr ? 0 : u->files;
}

const ProjectUsage* ChangelogAccounting::find(std::uint32_t project) const {
  const auto& table = tables_[project % shards()];
  const auto it = table.find(project);
  return it == table.end() ? nullptr : &it->second;
}

std::map<std::uint32_t, Bytes> ChangelogAccounting::usage() const {
  std::map<std::uint32_t, Bytes> merged;
  for (const auto& table : tables_) {
    for (const auto& [project, u] : table) {
      // Projects whose every file is gone still have a row (creates ==
      // unlinks history is worth keeping); report them only while live
      // bytes remain, matching usage_by_project's live-walk shape.
      if (u.bytes != 0 || u.files != 0) merged[project] = u.bytes;
    }
  }
  return merged;
}

std::map<std::uint32_t, ProjectUsage> ChangelogAccounting::rows() const {
  std::map<std::uint32_t, ProjectUsage> merged;
  for (const auto& table : tables_) {
    for (const auto& [project, u] : table) merged[project] = u;
  }
  return merged;
}

std::uint64_t ChangelogAccounting::table_hash() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& [project, u] : rows()) {
    h = fnv64(h, project);
    h = fnv64(h, u.bytes);
    h = fnv64(h, u.files);
    h = fnv64(h, u.creates);
    h = fnv64(h, u.unlinks);
    h = fnv64(h, static_cast<std::uint64_t>(u.last_activity));
  }
  return h;
}

ConsumeResult ChangelogAccounting::rebuild(const OpLog& log) {
  for (auto& table : tables_) table.clear();
  records_applied_ = 0;
  cursor_.reset();
  return consume(log);
}

void ChangelogAccounting::rebuild_from_namespace(const FsNamespace& ns,
                                                 const OpLog& log) {
  for (auto& table : tables_) table.clear();
  records_applied_ = 0;
  const std::uint32_t n = shards();
  ns.for_each_file([this, n](const FileRecord& rec) {
    ProjectUsage& u = tables_[rec.project % n][rec.project];
    u.bytes += rec.size;
    ++u.files;
    const auto at = static_cast<std::int64_t>(rec.mtime);
    if (at > u.last_activity) u.last_activity = at;
  });
  cursor_.reset(log.committed());
}

}  // namespace spider::fs
