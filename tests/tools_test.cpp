#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "block/raid.hpp"
#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "fs/fs_namespace.hpp"
#include "tools/capacity_planner.hpp"
#include "tools/health.hpp"
#include "tools/iosi.hpp"
#include "tools/libpio.hpp"
#include "tools/lustredu.hpp"
#include "tools/ptools.hpp"
#include "tools/slowdisk.hpp"

namespace spider::tools {
namespace {

// --- libPIO ---------------------------------------------------------------------

StorageTopology toy_topology() {
  StorageTopology topo;
  // 8 OSTs on 4 OSS (2 each); OSS i on leaf i % 2; 4 routers, 2 per leaf.
  topo.ost_to_oss = {0, 0, 1, 1, 2, 2, 3, 3};
  topo.oss_to_leaf = {0, 1, 0, 1};
  topo.router_to_leaf = {0, 1, 0, 1};
  return topo;
}

TEST(LibPio, PrefersLeastLoadedOstAndOss) {
  LibPio pio(toy_topology());
  LoadSnapshot loads;
  loads.ost_load = {0.9, 0.9, 0.1, 0.9, 0.9, 0.9, 0.9, 0.9};
  loads.oss_load = {0.5, 0.1, 0.5, 0.5};
  loads.router_load = {0.0, 0.0, 0.0, 0.0};
  const auto sug = pio.place_job(1, loads);
  ASSERT_EQ(sug.size(), 1u);
  EXPECT_EQ(sug[0].ost, 2u);  // least loaded OST on least loaded OSS
}

TEST(LibPio, RouterMatchesDestinationLeaf) {
  LibPio pio(toy_topology());
  LoadSnapshot loads;
  loads.ost_load.assign(8, 0.0);
  loads.oss_load.assign(4, 0.0);
  loads.router_load = {0.0, 0.0, 0.9, 0.9};
  const auto sug = pio.place_job(4, loads);
  for (const auto& s : sug) {
    const auto leaf = toy_topology().oss_to_leaf[toy_topology().ost_to_oss[s.ost]];
    EXPECT_EQ(toy_topology().router_to_leaf[s.router], leaf);
  }
}

TEST(LibPio, SpreadsJobAcrossComponents) {
  LibPio pio(toy_topology());
  LoadSnapshot loads;
  loads.ost_load.assign(8, 0.0);
  loads.oss_load.assign(4, 0.0);
  loads.router_load.assign(4, 0.0);
  const auto sug = pio.place_job(8, loads);
  std::set<std::uint32_t> osts;
  for (const auto& s : sug) osts.insert(s.ost);
  EXPECT_EQ(osts.size(), 8u);  // all distinct under zero load
}

TEST(LibPio, DefaultPlacementIgnoresLoad) {
  LibPio pio(toy_topology());
  Rng rng(1);
  const auto sug = pio.place_default(4, rng);
  ASSERT_EQ(sug.size(), 4u);
  // Round-robin: consecutive OSTs regardless of load.
  for (std::size_t i = 1; i < sug.size(); ++i) {
    EXPECT_EQ(sug[i].ost, (sug[i - 1].ost + 1) % 8);
  }
}

TEST(LibPio, RejectsIncompleteTopology) {
  StorageTopology bad;
  EXPECT_THROW(LibPio{bad}, std::invalid_argument);
}

// --- IOSI -----------------------------------------------------------------------

std::vector<double> synthetic_log(double period_s, double burst_s,
                                  double burst_bw, double noise_bw,
                                  double duration_s, double bin_s,
                                  Rng& rng) {
  const auto bins = static_cast<std::size_t>(duration_s / bin_s);
  std::vector<double> log(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    log[b] = noise_bw * (0.5 + rng.uniform());
    const double t = static_cast<double>(b) * bin_s;
    const double phase = std::fmod(t, period_s);
    if (phase < burst_s) log[b] += burst_bw;
  }
  return log;
}

TEST(Iosi, DetectsBurstsInSingleLog) {
  Rng rng(2);
  const auto log = synthetic_log(600.0, 60.0, 50e9, 2e9, 3600.0, 10.0, rng);
  const auto bursts = detect_bursts(log, 10.0);
  EXPECT_EQ(bursts.size(), 6u);
  for (const auto& b : bursts) EXPECT_NEAR(b.duration_s, 60.0, 20.0);
}

TEST(Iosi, ExtractsConsensusSignatureAcrossRuns) {
  Rng rng(3);
  std::vector<std::vector<double>> runs;
  for (int r = 0; r < 5; ++r) {
    runs.push_back(synthetic_log(600.0, 60.0, 50e9, 3e9, 7200.0, 10.0, rng));
  }
  const auto sig = extract_signature(runs, 10.0);
  ASSERT_TRUE(sig.found);
  EXPECT_NEAR(sig.period_s, 600.0, 30.0);
  EXPECT_NEAR(sig.burst_duration_s, 60.0, 20.0);
  EXPECT_GE(sig.confidence, 0.8);
  // Burst volume ~ 50 GB/s x 60 s.
  EXPECT_NEAR(sig.burst_bytes, 50e9 * 60.0, 0.2 * 50e9 * 60.0);
}

TEST(Iosi, NoSignatureInPureNoise) {
  Rng rng(4);
  std::vector<std::vector<double>> runs;
  for (int r = 0; r < 3; ++r) {
    std::vector<double> log;
    for (int i = 0; i < 360; ++i) log.push_back(2e9 * (0.5 + rng.uniform()));
    runs.push_back(std::move(log));
  }
  const auto sig = extract_signature(runs, 10.0);
  // Random noise may produce isolated spikes but no consistent period; at
  // minimum it must not report high confidence.
  if (sig.found) {
    EXPECT_LT(sig.confidence, 0.8);
  }
}

TEST(Iosi, EmptyInputSafe) {
  EXPECT_TRUE(detect_bursts({}, 10.0).empty());
  EXPECT_FALSE(extract_signature({}, 10.0).found);
}

// --- LustreDU -------------------------------------------------------------------

struct DuFixture : ::testing::Test {
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  std::unique_ptr<fs::FsNamespace> ns;
  Rng rng{5};

  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      std::vector<block::Disk> members;
      for (int m = 0; m < 10; ++m) {
        members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
      }
      groups.push_back(std::make_unique<block::Raid6Group>(
          block::RaidParams{}, std::move(members)));
      osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
      ptrs.push_back(osts.back().get());
    }
    ns = std::make_unique<fs::FsNamespace>("ns", ptrs);
    for (int f = 0; f < 500; ++f) {
      ns->create_file(f % 3, 1_GiB, 0, rng);
    }
  }
};

TEST_F(DuFixture, ClientDuCostScalesWithFiles) {
  const auto cost = client_du(*ns, 0);
  EXPECT_GT(cost.mds_ops, 500.0);  // lookup per entry + stat per match
  EXPECT_GT(cost.wall_s, 0.0);
  EXPECT_GT(cost.bytes_reported, 100_GiB);
}

TEST_F(DuFixture, BackgroundLoadStretchesClientDu) {
  const auto idle = client_du(*ns, 0, 0.0);
  const auto busy = client_du(*ns, 0, 0.9);
  EXPECT_GT(busy.wall_s, 5.0 * idle.wall_s);
}

TEST_F(DuFixture, LustreDuAnswersFromSnapshotAtZeroMdsCost) {
  LustreDu tool;
  tool.daily_scan(*ns, sim::kDay);
  const double mds_before = ns->mds().accounted_load();
  const auto cost = tool.usage(0);
  EXPECT_DOUBLE_EQ(ns->mds().accounted_load(), mds_before);  // no MDS traffic
  EXPECT_DOUBLE_EQ(cost.mds_ops, 0.0);
  EXPECT_LT(cost.wall_s, 1e-3);
  // Snapshot agrees with the expensive client walk.
  const auto truth = client_du(*ns, 0);
  EXPECT_EQ(cost.bytes_reported, truth.bytes_reported);
}

TEST_F(DuFixture, UnknownProjectReportsZero) {
  LustreDu tool;
  tool.daily_scan(*ns, 0);
  const auto cost = tool.usage(999);
  EXPECT_EQ(cost.bytes_reported, 0u);
  EXPECT_FALSE(cost.stale);  // a real answer: the project is empty
}

TEST_F(DuFixture, ColdQueryIsStaleNotZero) {
  // Regression: a never-scanned tool used to answer 0 bytes, which is
  // indistinguishable from a genuinely empty project. Cold means stale.
  LustreDu tool;
  const auto cold = tool.usage(0);
  EXPECT_TRUE(cold.stale);
  EXPECT_EQ(cold.bytes_reported, 0u);
  EXPECT_FALSE(tool.has_snapshot());

  tool.daily_scan(*ns, sim::kDay);
  EXPECT_TRUE(tool.has_snapshot());
  const auto warm = tool.usage(0);
  EXPECT_FALSE(warm.stale);
  EXPECT_GT(warm.bytes_reported, 0u);
}

TEST_F(DuFixture, ChangelogModeIsStaleUntilFirstPoll) {
  fs::OpLog log;
  ns->attach_oplog(&log, fs::kLogDefault);
  ns->create_file(0, 1_GiB, 0, rng);
  log.commit(log.last_txid());

  LustreDu tool;
  tool.follow(log);
  EXPECT_TRUE(tool.following());
  EXPECT_TRUE(tool.usage(0).stale);  // followed but never polled

  tool.poll();
  const auto cost = tool.usage(0);
  EXPECT_FALSE(cost.stale);
  EXPECT_EQ(cost.bytes_reported, 1_GiB);  // only journaled history counts
}

TEST_F(DuFixture, ChangelogModeSumsFeedsAtZeroWalksAndZeroMdsCost) {
  // Two DNE namespaces, one tool following both changelogs.
  fs::OpLog log_a;
  ns->attach_oplog(&log_a, fs::kLogDefault);
  fs::FsNamespace other("ns2", ptrs);
  fs::OpLog log_b;
  other.attach_oplog(&log_b, fs::kLogDefault);

  ns->create_file(7, 2_GiB, 0, rng);
  other.create_file(7, 3_GiB, 0, rng);
  other.create_file(8, 1_GiB, 0, rng);
  log_a.commit(log_a.last_txid());
  log_b.commit(log_b.last_txid());

  LustreDu tool;
  tool.follow(log_a);
  tool.follow(log_b);
  ASSERT_EQ(tool.feed_count(), 2u);
  tool.poll();

  const std::uint64_t walks =
      ns->full_walks() + other.full_walks();
  const double mds_before = ns->mds().accounted_load();
  const auto cost = tool.usage(7);
  EXPECT_EQ(cost.bytes_reported, 5_GiB);
  EXPECT_EQ(tool.usage(8).bytes_reported, 1_GiB);
  EXPECT_DOUBLE_EQ(ns->mds().accounted_load(), mds_before);
  EXPECT_EQ(ns->full_walks() + other.full_walks(), walks);  // zero walks
}

TEST_F(DuFixture, ResyncFeedRecoversACrashRewoundLog) {
  fs::OpLog log;
  ns->attach_oplog(&log, fs::kLogDefault);
  for (int f = 0; f < 8; ++f) ns->create_file(1, 1_GiB, 0, rng);
  log.commit(log.last_txid());

  LustreDu tool;
  tool.follow(log);
  tool.poll();

  // MDS crash rewinds the log under live namespace state: the feed's
  // cursor is now ahead and a prefix replay cannot reconcile, so the tool
  // falls back to the daily-scan escape hatch for that feed.
  log.truncate_to(log.committed() / 2);
  EXPECT_TRUE(tool.poll().cursor_ahead);
  tool.resync_feed(0, *ns);
  EXPECT_EQ(tool.usage(1).bytes_reported,
            ns->usage_by_project().at(1));

  // And the feed is incremental again afterwards.
  ns->create_file(1, 1_GiB, 0, rng);
  log.commit(log.last_txid());
  const auto res = tool.poll();
  EXPECT_FALSE(res.cursor_ahead);
  EXPECT_EQ(res.applied, 1u);
  EXPECT_EQ(tool.usage(1).bytes_reported, ns->usage_by_project().at(1));
}

// --- scalable tools ---------------------------------------------------------------

TEST(PTools, ParallelFindBeatsSerialUntilMdsSaturates) {
  TreeSpec tree;
  ToolEnvironment env;
  const auto serial = run_serial_find(tree, env);
  const auto par4 = run_dfind(tree, env, 4);
  const auto par64 = run_dfind(tree, env, 64);
  // 4 ranks stay under the MDS ceiling: near-linear speedup.
  EXPECT_NEAR(serial.wall_s / par4.wall_s, 4.0, 0.3);
  // 64 ranks exceed the MDS ceiling: speedup caps at mds_rate x rtt.
  const double mds_cap_speedup = env.mds_ops_per_sec * env.metadata_rtt_s;
  EXPECT_NEAR(serial.wall_s / par64.wall_s, mds_cap_speedup, 0.5);
  EXPECT_NEAR(par64.mds_utilization, 1.0, 0.05);
}

TEST(PTools, DcpScalesWithRanksThenFsBandwidth) {
  TreeSpec tree;
  ToolEnvironment env;
  const auto serial = run_serial_cp(tree, env);
  const auto dcp16 = run_dcp(tree, env, 16);
  EXPECT_GT(serial.wall_s / dcp16.wall_s, 8.0);
  // Huge rank counts cap at half the file system bandwidth (read+write).
  const auto dcp_many = run_dcp(tree, env, 4096);
  const double floor_s =
      static_cast<double>(tree.total_bytes()) / (env.fs_bw / 2.0);
  EXPECT_GE(dcp_many.wall_s, 0.9 * floor_s);
}

TEST(PTools, DtarBeatsSerialTar) {
  TreeSpec tree;
  ToolEnvironment env;
  EXPECT_GT(run_serial_tar(tree, env).wall_s,
            4.0 * run_dtar(tree, env, 16).wall_s);
}

TEST(PTools, ResultsAccountAllItemsAndBytes) {
  TreeSpec tree;
  tree.files = 1000;
  tree.directories = 100;
  ToolEnvironment env;
  const auto r = run_dcp(tree, env, 4);
  EXPECT_EQ(r.items, 1100u);
  EXPECT_EQ(r.bytes_moved, tree.total_bytes());
}

// --- health monitoring --------------------------------------------------------------

TEST(Health, CoalescesEventsIntoIncidents) {
  HealthMonitor mon;
  // Two bursts on oss01 separated by > window, one event on ib-leaf-3.
  mon.ingest({10 * sim::kSecond, EventSource::kLustre, Severity::kWarning,
              "oss01", "slow reply"});
  mon.ingest({12 * sim::kSecond, EventSource::kHardware, Severity::kCritical,
              "oss01", "SCSI sense error"});
  mon.ingest({500 * sim::kSecond, EventSource::kLustre, Severity::kWarning,
              "oss01", "reconnect"});
  mon.ingest({15 * sim::kSecond, EventSource::kNetwork, Severity::kWarning,
              "ib-leaf-3", "symbol errors"});
  const auto incidents = mon.coalesce(60 * sim::kSecond);
  ASSERT_EQ(incidents.size(), 3u);
  // First oss01 incident contains both events and is hardware-related.
  const auto& first = incidents[0];
  EXPECT_EQ(first.component, "oss01");
  EXPECT_EQ(first.events.size(), 2u);
  EXPECT_TRUE(first.hardware_related);
  EXPECT_EQ(first.worst, Severity::kCritical);
  // The later oss01 burst is a separate, software-only incident.
  EXPECT_FALSE(incidents[2].hardware_related);
}

TEST(Health, ChecksReportFailures) {
  CheckScheduler sched;
  sched.add_check({"ok-check", [] { return CheckResult{CheckStatus::kOk, ""}; }});
  sched.add_check({"warn-check", [] {
                     return CheckResult{CheckStatus::kWarning, "degraded"};
                   }});
  sched.add_check({"crit-check", [] {
                     return CheckResult{CheckStatus::kCritical, "down"};
                   }});
  const auto report = sched.run_all();
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.warning, 1u);
  EXPECT_EQ(report.critical, 1u);
  ASSERT_EQ(report.failing.size(), 2u);
  EXPECT_EQ(report.failing[0].first, "warn-check");
}

TEST(Health, DdnPollerQueries) {
  DdnPoller poller;
  for (int t = 0; t < 10; ++t) {
    poller.record({t * sim::kMinute, 0, 2e9, 4e9, 1_MiB});
    poller.record({t * sim::kMinute, 1, 1e9, 1e9, 128_KiB});
  }
  EXPECT_NEAR(poller.mean_write_bw(0, 0), 4e9, 1e6);
  EXPECT_NEAR(poller.mean_read_bw(1, 0), 1e9, 1e6);
  EXPECT_NEAR(poller.peak_total_bw(0), 8e9, 1e6);
  // `since` filters old samples.
  EXPECT_DOUBLE_EQ(poller.mean_write_bw(0, 100 * sim::kMinute), 0.0);
}

TEST(Health, DdnPollerRetentionBounded) {
  DdnPoller poller(100);
  for (int i = 0; i < 1000; ++i) poller.record({i, 0, 1.0, 1.0, 1});
  EXPECT_EQ(poller.samples(), 100u);
}

// --- slow-disk culling ----------------------------------------------------------------

TEST(SlowDisk, CullingConvergesAndTightensVariance) {
  Rng rng(6);
  std::vector<block::Ssu> ssus;
  block::SsuParams params;
  params.raid_groups = 14;  // keep the fleet small for test speed
  for (int s = 0; s < 4; ++s) ssus.emplace_back(params, s, rng);

  CullingConfig cfg;
  cfg.intra_ssu_threshold = 0.075;  // the production envelope
  cfg.fleet_threshold = 0.075;
  const auto before = measure_fleet(ssus, cfg);
  const auto report = run_culling(ssus, cfg, rng);
  const auto after = measure_fleet(ssus, cfg);

  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.total_disks_replaced, 0u);
  EXPECT_LE(after.worst_intra_ssu_spread, cfg.intra_ssu_threshold + 1e-9);
  EXPECT_LE(after.fleet_spread, cfg.fleet_threshold + 1e-9);
  EXPECT_GT(after.fleet_mean_bw, before.fleet_mean_bw);
}

TEST(SlowDisk, ReplacedFractionMatchesSlowTail) {
  Rng rng(7);
  std::vector<block::Ssu> ssus;
  block::SsuParams params;
  params.raid_groups = 14;
  params.population.slow_fraction = 0.10;
  for (int s = 0; s < 4; ++s) ssus.emplace_back(params, s, rng);
  CullingConfig cfg;
  cfg.intra_ssu_threshold = 0.075;
  cfg.fleet_threshold = 0.075;
  const auto report = run_culling(ssus, cfg, rng);
  const double total_disks = 4.0 * 14.0 * 10.0;
  const double replaced_fraction =
      static_cast<double>(report.total_disks_replaced) / total_disks;
  // The paper replaced ~10% of the fleet across both rounds.
  EXPECT_GT(replaced_fraction, 0.05);
  EXPECT_LT(replaced_fraction, 0.25);
}

TEST(SlowDisk, HealthyFleetNeedsNoReplacement) {
  Rng rng(8);
  std::vector<block::Ssu> ssus;
  block::SsuParams params;
  params.raid_groups = 8;
  params.population.slow_fraction = 0.0;
  params.population.healthy_sigma = 0.005;
  ssus.emplace_back(params, 0, rng);
  CullingConfig cfg;
  cfg.intra_ssu_threshold = 0.075;
  cfg.fleet_threshold = 0.075;
  const auto report = run_culling(ssus, cfg, rng);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.total_disks_replaced, 0u);
}

// --- capacity planner --------------------------------------------------------------------

TEST(CapacityPlanner, BalancesBothDimensions) {
  Rng rng(9);
  std::vector<ProjectRequirement> projects;
  for (std::uint32_t i = 0; i < 40; ++i) {
    ProjectRequirement p;
    p.id = i;
    p.capacity = static_cast<Bytes>(rng.uniform(10.0, 500.0)) * 1_TB;
    p.bandwidth = rng.uniform(1.0, 50.0) * kGBps;
    projects.push_back(p);
  }
  const auto plan = plan_namespaces(projects, 2);
  EXPECT_EQ(plan.assignment.size(), 40u);
  EXPECT_LT(plan.capacity_imbalance, 0.10);
  EXPECT_LT(plan.bandwidth_imbalance, 0.10);
}

TEST(CapacityPlanner, SingleNamespaceDegenerate) {
  std::vector<ProjectRequirement> projects{{1, 1_TB, 1.0 * kGBps}};
  const auto plan = plan_namespaces(projects, 1);
  EXPECT_EQ(plan.assignment[0], 0u);
  EXPECT_DOUBLE_EQ(plan.capacity_imbalance, 0.0);
}

TEST(CapacityPlanner, SizingRules) {
  // 770 TB of attached memory x 30 -> ~23 PB; Spider II's 32 PB exceeds it.
  const Bytes target = capacity_target_from_memory(770_TB);
  EXPECT_NEAR(to_pb(target), 23.1, 0.1);
  EXPECT_GT(32_PB, target);
  EXPECT_EQ(capacity_target_from_usage(10_PB, 0.30), 13_PB);
}

TEST(CapacityPlanner, DataCentricCheaperForMultiPlatformCenter) {
  // Flagship + two analysis clusters + viz cluster.
  const std::vector<double> platforms{1.0, 0.15, 0.1, 0.05};
  const auto cmp = compare_acquisition_cost(platforms);
  EXPECT_GT(cmp.exclusive_total, cmp.datacentric_total);
  EXPECT_GT(cmp.savings_fraction, 0.0);
}

TEST(CapacityPlanner, SinglePlatformFavorsExclusive) {
  const std::vector<double> platforms{1.0};
  const auto cmp = compare_acquisition_cost(platforms);
  EXPECT_LT(cmp.exclusive_total, cmp.datacentric_total);
}

}  // namespace
}  // namespace spider::tools
