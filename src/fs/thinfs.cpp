#include "fs/thinfs.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::fs {

ThinFs::ThinFs(std::vector<Ost*> osts, ThinFsParams params)
    : osts_(std::move(osts)), params_(params) {
  if (osts_.empty()) throw std::invalid_argument("ThinFs: no OSTs");
  if (params_.reserve_fraction <= 0.0 || params_.reserve_fraction >= 0.5) {
    throw std::invalid_argument("ThinFs: reserve fraction must be in (0, 0.5)");
  }
}

Bytes ThinFs::reserved_capacity() const {
  Bytes total = 0;
  for (const Ost* o : osts_) {
    total += static_cast<Bytes>(static_cast<double>(o->capacity()) *
                                params_.reserve_fraction);
  }
  return total;
}

QaMeasurement ThinFs::measure(std::size_t idx, sim::SimTime now,
                              Rng& rng) const {
  const Ost& o = *osts_[idx];
  QaMeasurement m;
  m.ost = o.id();
  m.when = now;
  // The thin region is freshly formatted for every run: hardware bandwidth
  // (RAID group through obdfilter) without the production fullness factor,
  // with benchmark run-to-run noise.
  const double noise = 1.0 + 0.015 * (rng.uniform() - 0.5);
  const double fullness_factor = o.fullness_factor();
  const double divisor = fullness_factor > 0.0 ? fullness_factor : 1.0;
  m.write_bw = o.bandwidth(block::IoMode::kSequential, block::IoDir::kWrite,
                           params_.request_size) /
               divisor * noise;
  m.read_bw = o.bandwidth(block::IoMode::kSequential, block::IoDir::kRead,
                          params_.request_size) /
              divisor * noise;
  return m;
}

QaReport ThinFs::baseline(sim::SimTime now, Rng& rng) {
  baseline_.assign(osts_.size(), 0.0);
  QaReport report;
  report.when = now;
  report.osts_tested = osts_.size();
  double ratio_acc = 0.0;
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    const auto m = measure(i, now, rng);
    baseline_[i] = m.write_bw;
    report.fleet_write_bw += m.write_bw;
    const double prod = osts_[i]->bandwidth(block::IoMode::kSequential,
                                            block::IoDir::kWrite,
                                            params_.request_size);
    ratio_acc += prod > 0.0 ? m.write_bw / prod : 0.0;
  }
  report.fresh_over_production = ratio_acc / static_cast<double>(osts_.size());
  return report;
}

QaReport ThinFs::run_qa(sim::SimTime now, Rng& rng) {
  if (baseline_.empty()) return baseline(now, rng);
  QaReport report;
  report.when = now;
  report.osts_tested = osts_.size();
  double ratio_acc = 0.0;
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    const auto m = measure(i, now, rng);
    report.fleet_write_bw += m.write_bw;
    if (baseline_[i] > 0.0 &&
        m.write_bw < baseline_[i] * (1.0 - params_.regression_threshold)) {
      report.regressed_osts.push_back(m.ost);
    }
    const double prod = osts_[i]->bandwidth(block::IoMode::kSequential,
                                            block::IoDir::kWrite,
                                            params_.request_size);
    ratio_acc += prod > 0.0 ? m.write_bw / prod : 0.0;
  }
  report.fresh_over_production = ratio_acc / static_cast<double>(osts_.size());
  return report;
}

Bandwidth ThinFs::baseline_write_bw(std::uint32_t ost) const {
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    if (osts_[i]->id() == ost) {
      return i < baseline_.size() ? baseline_[i] : 0.0;
    }
  }
  return 0.0;
}

}  // namespace spider::fs
