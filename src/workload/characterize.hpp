// Workload characterization: recovering the published statistics from a
// generated trace (validates the generators, and is the analysis the paper
// ran on Spider I server logs [14]).
#pragma once

#include <span>
#include <vector>

#include "common/histogram.hpp"
#include "workload/pattern.hpp"

namespace spider::workload {

struct WorkloadStats {
  std::size_t requests = 0;
  double write_fraction = 0.0;
  /// Fraction of requests under 16 KB.
  double small_fraction = 0.0;
  /// Fraction of requests that are exact multiples of 1 MB.
  double mb_multiple_fraction = 0.0;
  /// Hill tail-index estimate of inter-arrival gaps (Pareto alpha).
  double interarrival_tail_alpha = 0.0;
  /// Hill tail-index estimate of idle gaps (gaps above the idle threshold).
  double idle_tail_alpha = 0.0;
  Log2Histogram size_histogram{9, 25};  // 512 B .. 16 MiB
};

/// Hill estimator of the Pareto tail index over the top `k` order
/// statistics. Returns 0 for insufficient data.
double hill_tail_index(std::span<const double> samples, std::size_t k);

/// Characterize a merged, time-sorted trace. `idle_threshold_s` separates
/// in-burst gaps from idle periods.
WorkloadStats characterize(std::span<const IoRequest> trace,
                           double idle_threshold_s = 0.1);

}  // namespace spider::workload
