#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/fgr.hpp"
#include "net/placement.hpp"
#include "net/torus.hpp"

namespace spider::net {
namespace {

TEST(Torus, NodeIdCoordRoundTrip) {
  Torus3D t({5, 4, 3});
  for (int n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.node_id(t.coord_of(n)), n);
  }
  EXPECT_EQ(t.num_nodes(), 60);
  EXPECT_EQ(t.num_links(), 360);
}

TEST(Torus, HopCountSymmetricAndWraps) {
  Torus3D t({10, 10, 10});
  const int a = t.node_id({0, 0, 0});
  const int b = t.node_id({9, 0, 0});
  EXPECT_EQ(t.hop_count(a, b), 1);  // wraparound
  EXPECT_EQ(t.hop_count(b, a), 1);
  const int c = t.node_id({5, 5, 5});
  EXPECT_EQ(t.hop_count(a, c), 15);
  EXPECT_EQ(t.hop_count(a, a), 0);
}

TEST(Torus, NeighborInverse) {
  Torus3D t({4, 5, 6});
  for (int n = 0; n < t.num_nodes(); ++n) {
    for (int d = 0; d < 6; ++d) {
      const int back = d % 2 == 0 ? d + 1 : d - 1;
      EXPECT_EQ(t.neighbor(t.neighbor(n, d), back), n);
    }
  }
}

class TorusRouteP : public ::testing::TestWithParam<int> {};

TEST_P(TorusRouteP, RouteLengthMatchesHopCountAndArrives) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Torus3D t({7, 6, 5});
  for (int trial = 0; trial < 50; ++trial) {
    const int from = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(t.num_nodes())));
    const int to = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(t.num_nodes())));
    const auto links = t.route(from, to);
    EXPECT_EQ(static_cast<int>(links.size()), t.hop_count(from, to));
    // Walk the links and land on `to`.
    int cur = from;
    for (LinkId l : links) {
      EXPECT_EQ(Torus3D::link_node(l), cur);
      cur = t.neighbor(cur, Torus3D::link_dir(l));
    }
    EXPECT_EQ(cur, to);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TorusRouteP, ::testing::Range(0, 5));

TEST(Torus, RejectsBadDims) {
  EXPECT_THROW(Torus3D({0, 1, 1}), std::invalid_argument);
}

TEST(Fabric, OssLeafAssignmentBlocked) {
  IbFabric f(FabricParams{});
  // 288 OSS over 36 leaves -> 8 per leaf, block-assigned.
  EXPECT_EQ(f.leaf_of_oss(0, 288), 0u);
  EXPECT_EQ(f.leaf_of_oss(7, 288), 0u);
  EXPECT_EQ(f.leaf_of_oss(8, 288), 1u);
  EXPECT_EQ(f.leaf_of_oss(287, 288), 35u);
}

TEST(Fabric, PathCrossesCoreOnlyBetweenLeaves) {
  IbFabric f(FabricParams{});
  EXPECT_FALSE(f.path(3, 3).crosses_core);
  const auto p = f.path(3, 4);
  EXPECT_TRUE(p.crosses_core);
  EXPECT_LT(p.core_index, FabricParams{}.core_switches);
  EXPECT_THROW(f.path(99, 0), std::out_of_range);
}

// --- placement ----------------------------------------------------------------

PlacementConfig titan_cfg() {
  PlacementConfig cfg;
  cfg.modules = 110;
  cfg.routers_per_module = 4;
  cfg.num_groups = 36;
  cfg.leaf_switches = 36;
  return cfg;
}

TEST(Placement, RouterCountAndDistinctCabinets) {
  Torus3D t({25, 16, 24});
  for (auto strategy : {PlacementStrategy::kClustered,
                        PlacementStrategy::kUniformSpread,
                        PlacementStrategy::kFgrZoned}) {
    const auto routers = place_routers(t, titan_cfg(), strategy);
    EXPECT_EQ(routers.size(), 440u);
    std::set<std::pair<int, int>> cabinets;
    for (const auto& r : routers) {
      const Coord c = t.coord_of(r.node);
      cabinets.insert({c.x, c.y});
    }
    EXPECT_EQ(cabinets.size(), 110u);  // one cabinet per module
  }
}

TEST(Placement, ModuleRoutersUseDistinctLeaves) {
  Torus3D t({25, 16, 24});
  const auto routers =
      place_routers(t, titan_cfg(), PlacementStrategy::kFgrZoned);
  for (std::size_t m = 0; m < 110; ++m) {
    std::set<std::size_t> leaves;
    for (const auto& r : routers) {
      if (r.module == static_cast<int>(m)) leaves.insert(r.ib_leaf);
    }
    EXPECT_EQ(leaves.size(), 4u) << "module " << m;
  }
}

TEST(Placement, UniformSpreadBeatsClusteredOnMeanHops) {
  Torus3D t({25, 16, 24});
  const auto clustered = evaluate_placement(
      t, place_routers(t, titan_cfg(), PlacementStrategy::kClustered));
  const auto uniform = evaluate_placement(
      t, place_routers(t, titan_cfg(), PlacementStrategy::kUniformSpread));
  EXPECT_LT(uniform.mean_hops_to_router, clustered.mean_hops_to_router);
  EXPECT_LT(uniform.max_hops_to_router, clustered.max_hops_to_router);
}

TEST(Placement, AllGroupsRepresented) {
  Torus3D t({25, 16, 24});
  const auto routers =
      place_routers(t, titan_cfg(), PlacementStrategy::kFgrZoned);
  std::set<int> groups;
  for (const auto& r : routers) groups.insert(r.group);
  EXPECT_GE(groups.size(), 30u);  // zones cover nearly all 36 groups
}

TEST(Placement, XyMapHasOneRowPerY) {
  Torus3D t({25, 16, 24});
  const auto routers =
      place_routers(t, titan_cfg(), PlacementStrategy::kFgrZoned);
  const std::string map = render_xy_map(t, routers);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 16);
  EXPECT_NE(map.find('A'), std::string::npos);
}

TEST(Placement, OptimizerBeatsOrMatchesUniformStride) {
  Torus3D t({25, 16, 24});
  Rng rng(7);
  const auto uniform =
      place_routers(t, titan_cfg(), PlacementStrategy::kUniformSpread);
  const auto optimized = place_routers_optimized(t, titan_cfg(), rng, 300);
  EXPECT_EQ(optimized.size(), uniform.size());
  const auto qu = evaluate_placement(t, uniform);
  const auto qo = evaluate_placement(t, optimized);
  EXPECT_LE(qo.mean_hops_to_router, qu.mean_hops_to_router + 1e-9);
  // Modules still occupy distinct cabinets.
  std::set<std::pair<int, int>> cabinets;
  for (const auto& r : optimized) {
    const Coord c = t.coord_of(r.node);
    cabinets.insert({c.x, c.y});
  }
  EXPECT_EQ(cabinets.size(), 110u);
}

TEST(Placement, OptimizerIsDeterministicPerSeed) {
  Torus3D t({12, 8, 10});
  PlacementConfig cfg;
  cfg.modules = 20;
  cfg.num_groups = 8;
  cfg.leaf_switches = 8;
  Rng a(3), b(3);
  const auto r1 = place_routers_optimized(t, cfg, a, 100);
  const auto r2 = place_routers_optimized(t, cfg, b, 100);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].node, r2[i].node);
    EXPECT_EQ(r1[i].ib_leaf, r2[i].ib_leaf);
  }
}

TEST(Placement, RejectsTooManyModules) {
  Torus3D t({3, 3, 3});
  PlacementConfig cfg;
  cfg.modules = 100;
  EXPECT_THROW(place_routers(t, cfg, PlacementStrategy::kUniformSpread),
               std::invalid_argument);
}

// --- FGR ------------------------------------------------------------------------

struct FgrFixture : ::testing::Test {
  Torus3D torus{{25, 16, 24}};
  std::vector<PlacedRouter> routers =
      place_routers(torus, titan_cfg(), PlacementStrategy::kFgrZoned);
  FgrPolicy policy{torus, routers, 36};
};

TEST_F(FgrFixture, FgrSelectsRouterOnDestinationLeaf) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const int node = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(torus.num_nodes())));
    const std::size_t leaf = rng.uniform_index(36);
    const std::size_t r = policy.select_fgr(node, leaf);
    EXPECT_EQ(policy.router(r).ib_leaf, leaf);
  }
}

TEST_F(FgrFixture, FgrPicksClosestAmongLeafRouters) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const int node = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(torus.num_nodes())));
    const std::size_t leaf = rng.uniform_index(36);
    const std::size_t chosen = policy.select_fgr(node, leaf);
    const int chosen_hops = torus.hop_count(node, policy.router(chosen).node);
    for (std::size_t idx : policy.routers_for_leaf(leaf)) {
      EXPECT_LE(chosen_hops, torus.hop_count(node, policy.router(idx).node));
    }
  }
}

TEST_F(FgrFixture, NearestIsLowerBoundOnFgrDistance) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int node = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(torus.num_nodes())));
    const std::size_t leaf = rng.uniform_index(36);
    const int nearest_hops =
        torus.hop_count(node, policy.router(policy.select_nearest(node)).node);
    const int fgr_hops =
        torus.hop_count(node, policy.router(policy.select_fgr(node, leaf)).node);
    EXPECT_LE(nearest_hops, fgr_hops);
  }
}

TEST_F(FgrFixture, RoundRobinCycles) {
  const std::size_t n = policy.num_routers();
  EXPECT_EQ(policy.select_round_robin(0), 0u);
  EXPECT_EQ(policy.select_round_robin(n), 0u);
  EXPECT_EQ(policy.select_round_robin(n + 1), 1u);
}

TEST(Fgr, RejectsEmptyRouterSet) {
  Torus3D t({2, 2, 2});
  EXPECT_THROW(FgrPolicy(t, {}, 4), std::invalid_argument);
}

}  // namespace
}  // namespace spider::net
