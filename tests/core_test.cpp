#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/center.hpp"
#include "core/exclusive_model.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "workload/analytics.hpp"
#include "workload/ior.hpp"

namespace spider::core {
namespace {

/// One shared full-scale model (construction is cheap; keep one per suite).
struct CenterFixture : ::testing::Test {
  static CenterModel& center() {
    static Rng rng(42);
    static CenterModel model(spider2_config(), rng);
    return model;
  }
  static Rng& rng() {
    static Rng r(7);
    return r;
  }
};

TEST_F(CenterFixture, InventoryMatchesPaper) {
  auto& c = center();
  EXPECT_EQ(c.config().clients, 18688u);
  EXPECT_EQ(c.fgr().num_routers(), 440u);
  EXPECT_EQ(c.num_ssus(), 36u);
  EXPECT_EQ(c.total_osts(), 2016u);
  EXPECT_EQ(c.num_oss(), 288u);
  // 32 PB class capacity.
  EXPECT_NEAR(to_pb(c.filesystem().capacity()), 32.3, 0.5);
  EXPECT_EQ(c.filesystem().namespaces(), 2u);
}

TEST_F(CenterFixture, MappingsConsistent) {
  auto& c = center();
  EXPECT_EQ(c.ssu_of_ost(0), 0u);
  EXPECT_EQ(c.ssu_of_ost(55), 0u);
  EXPECT_EQ(c.ssu_of_ost(56), 1u);
  EXPECT_EQ(c.namespace_of_ost(0), 0u);
  EXPECT_EQ(c.namespace_of_ost(1007), 0u);
  EXPECT_EQ(c.namespace_of_ost(1008), 1u);
  // 2016 OSTs over 288 OSS -> 7 per OSS.
  EXPECT_EQ(c.oss_of_ost(6), 0u);
  EXPECT_EQ(c.oss_of_ost(7), 1u);
  for (std::size_t o : {0u, 500u, 2015u}) {
    EXPECT_LT(c.leaf_of_ost(o), 36u);
  }
}

TEST_F(CenterFixture, LayerProfileMonotoneDownTheStack) {
  const auto p = center().layer_profile(block::IoMode::kSequential,
                                        block::IoDir::kWrite);
  EXPECT_GT(p.disks, p.raid);       // RAID geometry costs bandwidth
  EXPECT_GT(p.raid, p.obdfilter);   // the file system costs more
  EXPECT_GT(p.obdfilter, 0.0);
  const double expected_min = std::min({p.obdfilter, p.controllers, p.oss,
                                        p.routers, p.ib_leaves, p.clients});
  EXPECT_DOUBLE_EQ(p.end_to_end, expected_min);
  // The full system delivers the paper's >1 TB/s.
  EXPECT_GT(p.end_to_end, 1.0 * kTBps);
}

TEST_F(CenterFixture, RandomModeLandsNearRandomTarget) {
  const auto p =
      center().layer_profile(block::IoMode::kRandom, block::IoDir::kWrite);
  // 240 GB/s class: between 200 and 400 GB/s in the model.
  const double system_random =
      std::min({p.obdfilter, p.controllers, p.oss, p.routers});
  EXPECT_GT(system_random, 200.0 * kGBps);
  EXPECT_LT(system_random, 420.0 * kGBps);
}

TEST(CenterKnobs, ControllerUpgradeRaisesNamespaceCeiling) {
  Rng rng(1);
  CenterModel c(spider2_config(/*upgraded_controllers=*/false), rng);
  c.set_target_namespace(0);
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  workload::IorConfig cfg;
  cfg.clients = 1008;
  const auto before = workload::run_ior(c, cfg);
  // Paper: 320 GB/s before the upgrade, 510 GB/s after.
  EXPECT_NEAR(to_gbps(before.aggregate_bw), 320.0, 30.0);
  c.upgrade_controllers(block::upgraded_controller_params());
  const auto after = workload::run_ior(c, cfg);
  EXPECT_NEAR(to_gbps(after.aggregate_bw), 510.0, 40.0);
}

TEST(CenterKnobs, RandomPlacementFarSlowerPerClient) {
  Rng rng(2);
  CenterModel c(spider2_config(false), rng);
  c.set_target_namespace(0);
  workload::IorConfig cfg;
  cfg.clients = 1008;
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  const auto optimal = workload::run_ior(c, cfg);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  const auto random = workload::run_ior(c, cfg);
  EXPECT_GT(optimal.aggregate_bw, 4.0 * random.aggregate_bw);
}

TEST(CenterKnobs, ClientScalingKneeNearSixThousand) {
  Rng rng(3);
  CenterModel c(spider2_config(false), rng);
  c.set_target_namespace(0);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  auto run = [&](std::size_t clients) {
    workload::IorConfig cfg;
    cfg.clients = clients;
    return workload::run_ior(c, cfg).aggregate_bw;
  };
  const double at512 = run(512);
  const double at4096 = run(4096);
  const double at6144 = run(6144);
  const double at16384 = run(16384);
  // Near-linear up to ~6000 clients...
  EXPECT_GT(at4096, 6.0 * at512);
  EXPECT_GT(at6144, at4096 * 1.2);
  // ...then steady at the namespace ceiling (320 GB/s class).
  EXPECT_LT(at16384, at6144 * 1.25);
  EXPECT_NEAR(to_gbps(at16384), 320.0, 40.0);
}

TEST(CenterKnobs, FullnessDegradesBandwidth) {
  Rng rng(4);
  CenterModel c(scaled_config(spider2_config(), 0.1), rng);
  c.set_target_namespace(SIZE_MAX);
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  workload::IorConfig cfg;
  cfg.clients = c.total_osts() * 2;
  const auto empty = workload::run_ior(c, cfg);
  c.set_fleet_fullness(0.85);
  const auto full = workload::run_ior(c, cfg);
  EXPECT_LT(full.aggregate_bw, 0.9 * empty.aggregate_bw);
  c.set_fleet_fullness(0.0);
}

TEST(CenterKnobs, RoutingPoliciesDiffer) {
  Rng rng(5);
  CenterModel c(scaled_config(spider2_config(), 0.15), rng);
  c.set_target_namespace(SIZE_MAX);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  workload::IorConfig cfg;
  cfg.clients = 512;
  c.set_routing_policy(RoutingPolicy::kFgr);
  const auto fgr = workload::run_ior(c, cfg);
  c.set_routing_policy(RoutingPolicy::kRoundRobin);
  const auto rr = workload::run_ior(c, cfg);
  // FGR keeps traffic off the IB core and close in the torus.
  EXPECT_GT(fgr.aggregate_bw, rr.aggregate_bw);
}

TEST(CenterKnobs, ScaledConfigBuildsAndSolves) {
  Rng rng(6);
  const auto cfg = scaled_config(spider2_config(), 1.0 / 16.0);
  CenterModel c(cfg, rng);
  EXPECT_GE(c.total_osts(), 100u);
  workload::IorConfig ior;
  ior.clients = 256;
  const auto r = workload::run_ior(c, ior);
  EXPECT_GT(r.aggregate_bw, 0.0);
}

TEST(CenterKnobs, TargetNamespaceRestrictsOsts) {
  Rng rng(7);
  CenterModel c(scaled_config(spider2_config(), 0.1), rng);
  c.set_target_namespace(0);
  const std::size_t ns0 = c.num_osts();
  c.set_target_namespace(SIZE_MAX);
  EXPECT_EQ(c.num_osts(), c.total_osts());
  EXPECT_LT(ns0, c.total_osts());
  EXPECT_THROW(c.set_target_namespace(5), std::out_of_range);
}

TEST(CenterTelemetry, LoadsAndTopologyShapes) {
  Rng rng(8);
  CenterModel c(scaled_config(spider2_config(), 0.1), rng);
  workload::IorConfig cfg;
  cfg.clients = 128;
  workload::run_ior(c, cfg);
  const auto loads = c.loads_from_solver();
  EXPECT_EQ(loads.ost_load.size(), c.total_osts());
  EXPECT_EQ(loads.oss_load.size(), c.num_oss());
  EXPECT_GT(*std::max_element(loads.ost_load.begin(), loads.ost_load.end()),
            0.5);
  const auto topo = c.storage_topology();
  EXPECT_EQ(topo.ost_to_oss.size(), c.total_osts());
  EXPECT_EQ(topo.oss_to_leaf.size(), c.num_oss());
  EXPECT_EQ(topo.router_to_leaf.size(), c.fgr().num_routers());
}

// --- scenarios -----------------------------------------------------------------

TEST(Scenario, BurstCompletesWithPlausibleBandwidth) {
  Rng rng(9);
  CenterModel c(scaled_config(spider2_config(), 0.1), rng);
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  sim::Simulator sim;
  ScenarioRunner runner(c, sim);

  workload::IoBurst burst;
  burst.start = sim::kSecond;
  burst.clients = 256;
  burst.bytes_per_client = 1_GiB;
  burst.request_size = 1_MiB;

  bool finished = false;
  BurstOutcome outcome;
  runner.submit_burst(
      burst, [&c](std::size_t w) { return w % c.total_osts(); },
      [&](BurstOutcome o) {
        finished = true;
        outcome = o;
      });
  sim.run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(outcome.bytes, 256u * 1_GiB);
  EXPECT_GT(outcome.achieved_bw, 1.0 * kGBps);
  // Cannot exceed the scaled system's ceiling.
  const auto prof =
      c.layer_profile(block::IoMode::kSequential, block::IoDir::kWrite);
  EXPECT_LE(outcome.achieved_bw, prof.end_to_end * 1.05);
}

TEST(Scenario, InterferenceRaisesAnalyticsLatency) {
  Rng rng(10);
  CenterModel c(scaled_config(spider2_config(), 0.1), rng);
  c.set_client_placement(ClientPlacement::kRandom, rng);

  auto run_analytics = [&](bool with_checkpoint) {
    sim::Simulator sim;
    ScenarioRunner runner(c, sim);
    workload::AnalyticsParams ap;
    ap.clients = 12;
    workload::AnalyticsWorkload analytics(ap);
    Rng wrng(11);
    std::vector<double> latencies;
    runner.submit_requests(analytics.generate(20.0, wrng),
                           [](std::size_t w) { return w % 8; }, &latencies);
    if (with_checkpoint) {
      // A checkpoint storm aimed at the same 8 OSTs the analytics stream
      // reads from, heavy enough that each OST's fair share drops below a
      // single reader's demand — the Lesson 1-2 mixed-workload scenario.
      workload::IoBurst burst;
      burst.start = sim::kSecond;
      burst.clients = 2048;
      burst.bytes_per_client = 4_GiB;
      runner.submit_burst(burst, [](std::size_t f) { return f % 8; },
                          nullptr, 16, 100000);
    }
    sim.run();
    return mean_of(latencies);
  };
  const double quiet = run_analytics(false);
  const double contended = run_analytics(true);
  EXPECT_GT(contended, 1.3 * quiet);
}

TEST(Scenario, ThroughputLogSeesBurst) {
  Rng rng(12);
  CenterModel c(scaled_config(spider2_config(), 0.1), rng);
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  sim::Simulator sim;
  ScenarioRunner runner(c, sim);
  workload::IoBurst burst;
  burst.start = 5 * sim::kSecond;
  burst.clients = 128;
  burst.bytes_per_client = 1_GiB;
  runner.submit_burst(burst,
                      [&c](std::size_t w) { return w % c.total_osts(); },
                      nullptr);
  std::vector<double> log;
  runner.record_throughput(1.0, 30.0, &log);
  sim.run();
  ASSERT_EQ(log.size(), 30u);
  // Quiet before the burst, hot during.
  EXPECT_LT(log[2], 1.0);
  EXPECT_GT(*std::max_element(log.begin(), log.end()), 1.0 * kGBps);
}

// --- machine-exclusive comparison ----------------------------------------------

TEST(ExclusiveModel, DataCentricFasterAndMovementVisible) {
  const auto r = compare_workflow(WorkflowSpec{});
  EXPECT_GT(r.exclusive_s, r.datacentric_s);
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_GT(r.movement_fraction, 0.3);  // staging dominates the pipeline
}

TEST(ExclusiveModel, FasterMoversShrinkTheGap) {
  WorkflowSpec slow;
  slow.mover_bw = 5.0 * kGBps;
  WorkflowSpec fast;
  fast.mover_bw = 100.0 * kGBps;
  EXPECT_GT(compare_workflow(slow).speedup, compare_workflow(fast).speedup);
}

TEST(ExclusiveModel, AvailabilityFavorsDataCentric) {
  const auto a = compare_availability(AvailabilitySpec{});
  EXPECT_GT(a.datacentric, a.exclusive);
  EXPECT_NEAR(a.exclusive, 0.95 * 0.99, 1e-9);
}

}  // namespace
}  // namespace spider::core
