# Empty compiler generated dependencies file for bench_a6_ioaware_scheduling.
# This may be replaced when dependencies are built.
