#include "tools/lint/rules.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "tools/lint/include_graph.hpp"
#include "tools/lint/symbols.hpp"
#include "tools/lint/token.hpp"

namespace spider::lint {

namespace {

const std::vector<RuleInfo> kRules = {
    {"L1", "unordered-iteration", Severity::kError,
     "unordered_map/unordered_set in sim-critical directories "
     "(src/sim, src/block, src/fs, src/net) or tests/bench: iteration and "
     "float-sum order depend on hash/rehash history",
     "ordered-ok",
     "use std::map or sorted-key iteration; a pure lookup table whose order "
     "never leaks may be justified with // spiderlint: ordered-ok"},
    {"L2", "nondet-source", Severity::kError,
     "wall-clock or ambient randomness in src/ (std::random_device, rand, "
     "time(), *_clock, mt19937 outside common/rng)",
     "nondet-ok",
     "draw randomness from a seeded spider::Rng (common/rng.hpp) and time "
     "from Simulator::now(); justify true host-time uses with "
     "// spiderlint: nondet-ok"},
    {"L3", "raw-unit-double", Severity::kWarning,
     "raw double in a public header whose name carries a unit "
     "(*_bytes, *_seconds, *_bw, latency*)",
     "units-ok",
     "use the units.hpp vocabulary (Bytes, ByteVolume, Bandwidth, Seconds) "
     "so the unit lives in the type; dimensionless factors may be justified "
     "with // spiderlint: units-ok"},
    {"L4", "replay-site", Severity::kError,
     "schedule()/reschedule()/inject()/arm() without a scheduling site: "
     "replay divergence cannot be localized to the call site",
     "site-ok",
     "pass a std::source_location (or site hash) through the scheduling "
     "call, or use Simulator::schedule_at/schedule_in (and "
     "FaultInjector::inject/arm) which capture it automatically"},
    {"L5", "layer-violation", Severity::kError,
     "include edge points up the architectural layering "
     "(common -> sim -> {block,fs,net} -> workload -> core -> {tools,infra}) "
     "or participates in an include cycle",
     "layer-ok",
     "invert the dependency: move the shared declaration down a layer, or "
     "pass the upper-layer behaviour in as a callback/interface; justified "
     "exceptions carry // spiderlint: layer-ok"},
    {"L6", "lock-discipline", Severity::kError,
     "member annotated SPIDER_GUARDED_BY(m) accessed in a function that "
     "neither locks m nor is annotated SPIDER_REQUIRES(m)",
     "lock-ok",
     "take std::lock_guard/std::unique_lock on the guard mutex before "
     "touching the member, or annotate the helper SPIDER_REQUIRES(m) and "
     "make every caller hold the lock"},
    {"L7", "schedule-site-flow", Severity::kError,
     "schedule_at()/schedule_in()/schedule_cross() called from a non-public "
     "helper without forwarding an explicit site: the defaulted "
     "std::source_location collapses every event from this helper to one "
     "site",
     "flow-ok",
     "thread a std::source_location parameter from the public entry point "
     "down to the scheduling call (see Simulator::schedule_at's and "
     "ShardedSimulator::schedule_cross's defaulted loc arguments)"},
    {"L8", "calibration-constant", Severity::kWarning,
     "bare numeric literal >= 1000 inside a function body in "
     "src/{block,fs,net}: bandwidth/latency/size calibration constants must "
     "have greppable provenance",
     "calib-ok",
     "hoist the literal into a named constant in the subsystem's config "
     "header (or use the units.hpp constants/literals) so the calibration "
     "source is documented once"},
};

/// True when a flattened argument list carries a scheduling site.
bool args_carry_site(std::string_view args) {
  return args.find("site") != std::string_view::npos ||
         args.find("source_location") != std::string_view::npos ||
         find_word(args, "loc") != std::string_view::npos;
}

/// Join [begin, end) token texts with spaces.
std::string flatten(const std::vector<Tok>& t, std::size_t begin,
                    std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (!out.empty()) out.push_back(' ');
    out += t[i].text;
  }
  return out;
}

void add_finding(std::vector<Finding>& out, const RuleInfo& info,
                 const std::string& path, std::size_t line_index,
                 std::size_t col, std::string message) {
  Finding f;
  f.rule = std::string(info.id);
  f.severity = info.severity;
  f.file = path;
  f.line = line_index + 1;
  f.column = col + 1;
  f.message = std::move(message);
  f.hint = std::string(info.hint);
  out.push_back(std::move(f));
}

// --- L1: unordered containers in sim-critical code -------------------------

/// Names of variables (members, locals, params) declared with an unordered
/// container type, from the token stream (declarations may span lines).
std::set<std::string> unordered_idents(const TokenStream& stream) {
  std::set<std::string> idents;
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
    std::size_t j = matching_close(t, i + 1);
    if (j >= t.size()) continue;
    ++j;
    while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*") ||
                            is_ident(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        (j + 1 >= t.size() || !is_punct(t[j + 1], "("))) {
      idents.insert(t[j].text);
    }
  }
  return idents;
}

void run_l1(const SourceFile& file, const TokenStream& stream,
            const TokenStream* header_stream, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L1");
  std::set<std::string> tracked = unordered_idents(stream);
  if (header_stream != nullptr) {
    std::set<std::string> from_header = unordered_idents(*header_stream);
    tracked.insert(from_header.begin(), from_header.end());
  }

  const std::vector<Tok>& t = stream.tokens;
  // One finding per line per trigger, mirroring the line scanner.
  std::set<std::pair<std::size_t, std::string>> flagged;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;

    // Any use of the type itself.
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
      if (flagged.emplace(t[i].line, t[i].text).second &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    "std::" + t[i].text + " in sim-critical code");
      }
      continue;
    }

    // Iteration over a tracked identifier: range-for (`: ident`) or an
    // explicit iterator walk (`ident.begin()`).
    if (tracked.count(t[i].text) == 0) continue;
    bool iterates = false;
    if (i >= 1 && is_punct(t[i - 1], ":") &&
        find_word(file.lines[t[i].line].code, "for") != std::string::npos) {
      iterates = true;
    }
    if (i + 2 < t.size() && is_punct(t[i + 1], ".") &&
        (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin") ||
         is_ident(t[i + 2], "rbegin"))) {
      iterates = true;
    }
    if (iterates && flagged.emplace(t[i].line, "it:" + t[i].text).second &&
        !has_suppression(file, t[i].line, info.suppression)) {
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "iteration over unordered container '" + t[i].text + "'");
    }
  }
}

// --- L2: nondeterminism sources --------------------------------------------

void run_l2(const SourceFile& file, const TokenStream& stream,
            const FileClass& cls, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L2");
  struct Trigger {
    std::string_view text;
    bool needs_call;  // must be followed by '('
  };
  static const Trigger kTriggers[] = {
      {"random_device", false}, {"rand", true},
      {"srand", true},          {"time", true},
      {"clock", true},          {"gettimeofday", false},
      {"clock_gettime", false}, {"system_clock", false},
      {"steady_clock", false},  {"high_resolution_clock", false},
  };

  const std::vector<Tok>& t = stream.tokens;
  std::set<std::pair<std::size_t, std::string>> flagged;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;

    for (const Trigger& trig : kTriggers) {
      if (t[i].text != trig.text) continue;
      const bool is_call = i + 1 < t.size() && is_punct(t[i + 1], "(");
      if ((!trig.needs_call || is_call) &&
          flagged.emplace(t[i].line, t[i].text).second &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    "nondeterminism source '" + t[i].text +
                        "' — simulations must not read ambient "
                        "randomness or wall-clock time");
      }
    }

    // mt19937 / mt19937_64: allowed only inside common/rng (the one place
    // engines may live); elsewhere RNGs must come through spider::Rng.
    if (!cls.rng_home && t[i].text.starts_with("mt19937") &&
        flagged.emplace(t[i].line, "mt19937").second &&
        !has_suppression(file, t[i].line, info.suppression)) {
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "mt19937 constructed outside common/rng — use "
                  "spider::Rng so seeding stays explicit");
    }
  }
}

// --- L3: raw unit-bearing doubles in public headers ------------------------

bool unit_bearing_name(std::string_view ident) {
  return ident.ends_with("_bytes") || ident.ends_with("_seconds") ||
         ident.ends_with("_bw") || ident.starts_with("latency") ||
         ident == "bytes" || ident == "seconds" || ident == "bw";
}

void run_l3(const SourceFile& file, const TokenStream& stream,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L3");
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "double") || t[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    if (unit_bearing_name(t[i + 1].text) &&
        !has_suppression(file, t[i].line, info.suppression)) {
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "raw double '" + t[i + 1].text +
                      "' carries a unit in its name");
    }
  }
}

// --- L4: scheduling sites ---------------------------------------------------

void run_l4(const SourceFile& file, const TokenStream& stream,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L4");
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& name = t[i].text;
    const bool call_name = name == "schedule" || name == "reschedule";
    const bool decl_name = call_name || name == "schedule_at" ||
                           name == "schedule_in" || name == "schedule_cross" ||
                           name == "inject" || name == "arm";
    if (!decl_name || i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
    const std::size_t close = matching_close(t, i + 1);
    if (close >= t.size()) continue;
    const std::string args = flatten(t, i + 2, close);

    // Call sites: obj.schedule(...) / obj->reschedule(...).
    const bool member_call =
        i >= 1 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    if (call_name && member_call) {
      if (!args_carry_site(args) &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    "call to " + name + "() drops the scheduling site");
      }
      continue;
    }

    // Declarations/definitions of scheduling entry points taking a callback
    // (or a fault-plan payload, which compiles into scheduled events): the
    // parameter list must carry a source_location or site hash. inject/arm
    // are checked at the declaration only — call sites legitimately rely on
    // the defaulted source_location::current() argument.
    const bool qualified = i >= 1 && is_punct(t[i - 1], "::");
    const bool after_type = i >= 1 && t[i - 1].kind == TokKind::kIdent;
    if (qualified || after_type) {
      const bool takes_callback =
          find_word(args, "EventFn") != std::string::npos ||
          find_word(args, "function") != std::string::npos ||
          find_word(args, "Injection") != std::string::npos ||
          find_word(args, "FaultPlan") != std::string::npos;
      if (takes_callback && !args_carry_site(args) &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    name +
                        "() takes a callback but no scheduling site "
                        "parameter");
      }
    }
  }
}

// --- L6: lock discipline ----------------------------------------------------

/// True when the body token range acquires `mutex`: a lock_guard/
/// unique_lock/scoped_lock constructed over it, or an explicit
/// `mutex.lock()`.
bool body_locks(const std::vector<Tok>& t, std::size_t begin, std::size_t end,
                std::string_view mutex) {
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "lock_guard" || t[i].text == "unique_lock" ||
        t[i].text == "scoped_lock") {
      // Find the constructor's argument list within a short window (past an
      // optional template-argument list and the variable name).
      for (std::size_t p = i + 1; p < end && p < i + 16; ++p) {
        if (is_punct(t[p], "<")) {
          p = matching_close(t, p);
          continue;
        }
        if (is_punct(t[p], "(") || is_punct(t[p], "{")) {
          const std::size_t close = matching_close(t, p);
          if (find_word(flatten(t, p + 1, close), mutex) !=
              std::string::npos) {
            return true;
          }
          break;
        }
        if (is_punct(t[p], ";")) break;
      }
    }
    if (t[i].text == mutex && i + 3 < end && is_punct(t[i + 1], ".") &&
        is_ident(t[i + 2], "lock") && is_punct(t[i + 3], "(")) {
      return true;
    }
  }
  return false;
}

/// Declaration-side annotations for an out-of-line definition: the matching
/// declaration's SPIDER_REQUIRES list, looked up by (class, name).
const FunctionSym* find_declaration(const FileSymbols* syms,
                                    const FunctionSym& def) {
  if (syms == nullptr) return nullptr;
  for (const FunctionSym& fn : syms->functions) {
    if (!fn.is_definition && fn.cls == def.cls && fn.name == def.name) {
      return &fn;
    }
  }
  return nullptr;
}

void run_l6(const SourceFile& file, const TokenStream& stream,
            const FileSymbols& syms, const FileSymbols* header_syms,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L6");
  std::vector<GuardedMember> guarded = syms.guarded;
  if (header_syms != nullptr) {
    guarded.insert(guarded.end(), header_syms->guarded.begin(),
                   header_syms->guarded.end());
  }
  if (guarded.empty()) return;

  const std::vector<Tok>& t = stream.tokens;
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition || fn.ctor_or_dtor || fn.cls.empty()) continue;

    std::vector<std::string> requires_list = fn.requires_mutexes;
    if (const FunctionSym* decl = find_declaration(header_syms, fn)) {
      requires_list.insert(requires_list.end(), decl->requires_mutexes.begin(),
                           decl->requires_mutexes.end());
    }
    if (const FunctionSym* decl = find_declaration(&syms, fn)) {
      requires_list.insert(requires_list.end(), decl->requires_mutexes.begin(),
                           decl->requires_mutexes.end());
    }

    for (const GuardedMember& g : guarded) {
      if (g.cls != fn.cls) continue;
      const bool annotated =
          std::find(requires_list.begin(), requires_list.end(), g.mutex) !=
          requires_list.end();
      if (annotated || body_locks(t, fn.body_begin, fn.body_end, g.mutex)) {
        continue;
      }
      for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size();
           ++i) {
        if (!is_ident(t[i], g.name)) continue;
        if (!has_suppression(file, t[i].line, info.suppression)) {
          add_finding(out, info, file.path, t[i].line, t[i].col,
                      "member '" + g.name + "' guarded by '" + g.mutex +
                          "' accessed in '" + fn.cls + "::" + fn.name +
                          "' without holding the lock");
        }
        break;  // one finding per function per member
      }
    }
  }
}

// --- L7: schedule-site flow -------------------------------------------------

void run_l7(const SourceFile& file, const TokenStream& stream,
            const FileSymbols& syms, const FileSymbols* header_syms,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L7");
  const std::vector<Tok>& t = stream.tokens;
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition) continue;

    bool nonpublic = false;
    if (!fn.cls.empty()) {
      Access acc = fn.access;
      if (const FunctionSym* decl = find_declaration(header_syms, fn)) {
        acc = decl->access;
      } else if (const FunctionSym* local = find_declaration(&syms, fn)) {
        acc = local->access;
      }
      nonpublic = acc != Access::kPublic;
    } else {
      nonpublic = fn.in_anon_namespace;
    }
    if (!nonpublic) continue;

    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end && i < t.size();
         ++i) {
      if (t[i].kind != TokKind::kIdent ||
          (t[i].text != "schedule_at" && t[i].text != "schedule_in" &&
           t[i].text != "schedule_cross")) {
        continue;
      }
      const bool member_call =
          i >= 1 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
      if (!member_call || !is_punct(t[i + 1], "(")) continue;
      const std::size_t close = matching_close(t, i + 1);
      if (close >= t.size()) continue;
      if (args_carry_site(flatten(t, i + 2, close))) continue;
      if (has_suppression(file, t[i].line, info.suppression)) continue;
      const std::string where =
          fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  t[i].text + "() in non-public '" + where +
                      "' relies on the defaulted source_location — thread "
                      "the site from the public entry point");
    }
  }
}

// --- L8: calibration-constant provenance ------------------------------------

/// Numeric magnitude of a pp-number token; -1 when it is not a plain
/// decimal literal (hex/binary, or a unit-literal suffix with '_').
double literal_magnitude(std::string_view text) {
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X' || text[1] == 'b' || text[1] == 'B')) {
    return -1.0;
  }
  if (text.find('_') != std::string_view::npos) return -1.0;  // 64_KiB etc.
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char c : text) {
    if (c != '\'') cleaned.push_back(c);
  }
  return std::strtod(cleaned.c_str(), nullptr);
}

void run_l8(const SourceFile& file, const TokenStream& stream,
            const FileSymbols& syms, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L8");
  const std::vector<Tok>& t = stream.tokens;
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition) continue;
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (t[i].kind != TokKind::kNumber) continue;
      if (literal_magnitude(t[i].text) < 1000.0) continue;
      // A constexpr statement IS a named-constant definition.
      if (find_word(file.lines[t[i].line].code, "constexpr") !=
          std::string::npos) {
        continue;
      }
      if (has_suppression(file, t[i].line, info.suppression)) continue;
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "numeric literal '" + t[i].text +
                      "' is a calibration-scale constant without a named "
                      "source");
    }
  }
}

void sort_findings(std::vector<Finding>& out) {
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  });
}

}  // namespace

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rules() { return kRules; }

const RuleInfo* rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

bool RuleSet::enabled(std::string_view id) const {
  if (id == "L1") return l1;
  if (id == "L2") return l2;
  if (id == "L3") return l3;
  if (id == "L4") return l4;
  if (id == "L5") return l5;
  if (id == "L6") return l6;
  if (id == "L7") return l7;
  if (id == "L8") return l8;
  return false;
}

RuleSet RuleSet::none() {
  return RuleSet{false, false, false, false, false, false, false, false};
}

FileClass classify_path(std::string_view path) {
  FileClass cls;
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  // The LAST src/tests/bench component wins, so fixture trees like
  // tests/lint_fixtures/l5_layering/src/... classify as src.
  std::size_t root = parts.size();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" || parts[i] == "tests" || parts[i] == "bench") {
      root = i;
    }
  }
  if (root < parts.size()) {
    if (parts[root] == "src") {
      cls.in_src = true;
      if (root + 1 < parts.size()) {
        const std::string_view sub = parts[root + 1];
        cls.sim_critical =
            sub == "sim" || sub == "block" || sub == "fs" || sub == "net";
        cls.calib_scope = sub == "block" || sub == "fs" || sub == "net";
        cls.rng_home = sub == "common" && root + 2 < parts.size() &&
                       (parts[root + 2] == "rng.cpp" ||
                        parts[root + 2] == "rng.hpp");
      }
    } else if (parts[root] == "tests") {
      cls.in_tests = true;
    } else {
      cls.in_bench = true;
    }
  }
  if (!parts.empty()) {
    const std::string_view base = parts.back();
    cls.is_header = base.ends_with(".hpp") || base.ends_with(".h") ||
                    base.ends_with(".hh");
  }
  return cls;
}

std::vector<Finding> lint_file(const SourceFile& file, const FileClass& cls,
                               const SourceFile* paired_header,
                               const RuleSet& enabled) {
  std::vector<Finding> out;
  const TokenStream stream = tokenize(file);
  TokenStream header_stream;
  if (paired_header != nullptr) header_stream = tokenize(*paired_header);
  const TokenStream* header =
      paired_header != nullptr ? &header_stream : nullptr;

  if (cls.in_tests || cls.in_bench) {
    // Tests and benches get the hygiene rules only: no unordered iteration,
    // no ambient nondeterminism. Style/flow rules stay src-scoped.
    if (enabled.l1) run_l1(file, stream, header, out);
    if (enabled.l2) run_l2(file, stream, cls, out);
    sort_findings(out);
    return out;
  }

  if (enabled.l1 && cls.sim_critical) run_l1(file, stream, header, out);
  if (enabled.l2 && cls.in_src) run_l2(file, stream, cls, out);
  if (enabled.l3 && cls.in_src && cls.is_header) run_l3(file, stream, out);
  if (enabled.l4 && cls.in_src) run_l4(file, stream, out);

  if (cls.in_src && (enabled.l6 || enabled.l7 || enabled.l8)) {
    const FileSymbols syms = index_symbols(stream);
    FileSymbols header_syms;
    const FileSymbols* hsyms = nullptr;
    if (header != nullptr) {
      header_syms = index_symbols(*header);
      hsyms = &header_syms;
    }
    if (enabled.l6) run_l6(file, stream, syms, hsyms, out);
    if (enabled.l7) run_l7(file, stream, syms, hsyms, out);
    if (enabled.l8 && cls.calib_scope) run_l8(file, stream, syms, out);
  }

  sort_findings(out);
  return out;
}

std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const RuleSet& enabled) {
  std::vector<Finding> out;
  if (!enabled.l5) return out;
  const RuleInfo& info = *rule("L5");

  IncludeGraph graph;
  for (const SourceFile& f : files) {
    graph.add_file(include_key(f.path), &f);
  }

  // Upward includes: checkable per edge from the include spelling alone.
  for (const auto& [key, src] : graph.files()) {
    const int from = layer_of(key);
    if (from < 0) continue;
    for (const IncludeEdge& e : quoted_includes(*src)) {
      const int to = layer_of(e.target);
      if (to < 0 || to <= from) continue;
      if (has_suppression(*src, e.line, info.suppression)) continue;
      add_finding(out, info, src->path, e.line, 0,
                  "include of '" + e.target + "' (" +
                      std::string(layer_name(to)) + ") from layer '" +
                      std::string(layer_name(from)) +
                      "' points up the architecture");
    }
  }

  // Cycles among the registered files.
  for (const std::vector<std::string>& cycle : graph.cycles()) {
    if (cycle.size() < 2) continue;
    const SourceFile* head = graph.files().at(cycle[0]);
    // Anchor the finding at the include that opens the cycle.
    std::size_t line = 0;
    for (const IncludeEdge& e : quoted_includes(*head)) {
      if (e.target == cycle[1]) {
        line = e.line;
        break;
      }
    }
    if (has_suppression(*head, line, info.suppression)) continue;
    std::string path_text;
    for (const std::string& node : cycle) {
      if (!path_text.empty()) path_text += " -> ";
      path_text += node;
    }
    add_finding(out, info, head->path, line, 0,
                "include cycle: " + path_text);
  }

  sort_findings(out);
  return out;
}

}  // namespace spider::lint
