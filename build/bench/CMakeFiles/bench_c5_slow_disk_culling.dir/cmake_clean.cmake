file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_slow_disk_culling.dir/bench_c5_slow_disk_culling.cpp.o"
  "CMakeFiles/bench_c5_slow_disk_culling.dir/bench_c5_slow_disk_culling.cpp.o.d"
  "bench_c5_slow_disk_culling"
  "bench_c5_slow_disk_culling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_slow_disk_culling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
