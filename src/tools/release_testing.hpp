// Full-scale release testing (Section IV-B, Lesson 9).
//
// "Titan is a unique resource that supports testing at extreme scale...
// the OLCF allocates the Titan and the Spider PFS for full scale tests of
// candidate Lustre releases. These tests identify edge cases and problems
// that would not manifest themselves otherwise."
//
// The model: scale-dependent defects manifest only above a client-count
// threshold (races, resource exhaustion, O(N^2) paths). A testbed sized at
// a few hundred clients catches the small-scale tail; the full machine is
// the only place the rest can be seen before production hits them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace spider::tools {

/// One latent defect in a candidate release.
struct ScaleDefect {
  /// Clients needed before the defect can manifest at all.
  std::uint32_t threshold_clients = 1000;
  /// Probability of manifesting in one test run at >= threshold scale.
  double manifest_prob = 0.8;
};

/// Probability one test run at `test_clients` exposes the defect: zero
/// below threshold, ramping with scale margin above it (more clients, more
/// chances for the race/exhaustion to trip).
double detection_probability(const ScaleDefect& defect,
                             std::uint32_t test_clients);

struct ReleaseCampaign {
  std::uint32_t testbed_clients = 512;
  std::uint32_t full_scale_clients = 18688;
  /// Test runs per stage.
  unsigned testbed_runs = 10;
  unsigned full_scale_runs = 2;
};

struct CampaignResult {
  std::size_t defects = 0;
  std::size_t caught_on_testbed = 0;
  std::size_t caught_at_full_scale = 0;  ///< missed by the testbed
  std::size_t escaped_to_production = 0;
};

/// Draw a defect population (log-uniform thresholds from 8 to max_scale)
/// and run the two-stage campaign.
CampaignResult simulate_campaign(std::size_t defects,
                                 const ReleaseCampaign& campaign, Rng& rng);

}  // namespace spider::tools
