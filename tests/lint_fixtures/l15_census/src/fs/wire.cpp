// Fixture for spiderlint rule L15: the wiring side of the census. kGood
// gets an injector case, a repair case, an oracle registration, and (in
// ../tests/census_test.cpp) a test mention; kHalfWired only gets the
// injector case; kBound gets its bind; kUnbound gets nothing.
#include "fs/kinds.hpp"

namespace fixture {

struct Injector {
  void bind(FaultKind, int) {}
};

struct Suite {
  void add(Oracle) {}
};

Oracle make_good_oracle() { return {}; }
Oracle make_lost_oracle() { return {}; }

void inject_corruption(FindingKind kind) {
  switch (kind) {
    case FindingKind::kGood:
      break;
    case FindingKind::kHalfWired:
      break;
    default:
      break;
  }
}

void repair(FindingKind kind) {
  switch (kind) {
    case FindingKind::kGood:
      break;
    default:
      break;
  }
}

void install(Injector& inj, Suite& suite) {
  inj.bind(FaultKind::kBound, 1);
  suite.add(make_good_oracle());
}

}  // namespace fixture
