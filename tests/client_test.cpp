#include <gtest/gtest.h>

#include "fs/client.hpp"

namespace spider::fs {
namespace {

TEST(LustreClient, CeilingIsMinOfWindowDirtyAndLink) {
  LustreClientParams p;
  // Defaults: window = 8 x 1 MiB / 4 ms ≈ 2.1 GB/s; dirty = 32 MiB / 4 ms
  // ≈ 8.4 GB/s; link = 5 GB/s -> window-bound.
  EXPECT_NEAR(client_stream_ceiling(p),
              8.0 * static_cast<double>(1_MiB) / 4e-3, 1.0);
}

TEST(LustreClient, MoreRpcsInFlightRaisesCeilingUntilLink) {
  LustreClientParams p;
  p.max_dirty_bytes = 1_GiB;  // not binding
  LustreClientParams deep = p;
  deep.max_rpcs_in_flight = 16;
  EXPECT_NEAR(client_stream_ceiling(deep) / client_stream_ceiling(p), 2.0,
              1e-9);
  LustreClientParams very_deep = p;
  very_deep.max_rpcs_in_flight = 256;  // would exceed the NIC
  EXPECT_DOUBLE_EQ(client_stream_ceiling(very_deep), p.link_bw);
}

TEST(LustreClient, DirtyBudgetCanBind) {
  LustreClientParams p;
  p.max_dirty_bytes = 4_MiB;  // tighter than the 8-RPC window
  EXPECT_NEAR(client_stream_ceiling(p),
              static_cast<double>(4_MiB) / p.rpc_rtt_s, 1.0);
}

TEST(LustreClient, SubRpcTransfersLoseThroughput) {
  LustreClientParams p;
  const double full = client_transfer_ceiling(p, 1_MiB);
  const double half = client_transfer_ceiling(p, 512_KiB);
  const double tiny = client_transfer_ceiling(p, 4_KiB);
  EXPECT_NEAR(half, 0.5 * full, 1.0);
  EXPECT_LT(tiny, 0.01 * full);
  EXPECT_DOUBLE_EQ(client_transfer_ceiling(p, 16_MiB), full);
  EXPECT_DOUBLE_EQ(client_transfer_ceiling(p, 0), 0.0);
}

TEST(LustreClient, StripingMultipliesUpToTheLink) {
  LustreClientParams p;
  const double one = client_striped_ceiling(p, 1);
  EXPECT_NEAR(client_striped_ceiling(p, 2), 2.0 * one, 1.0);
  // Wide stripes saturate the NIC.
  EXPECT_DOUBLE_EQ(client_striped_ceiling(p, 64), p.link_bw);
  EXPECT_DOUBLE_EQ(client_striped_ceiling(p, 0), 0.0);
}

TEST(LustreClient, RttDegradesThroughput) {
  LustreClientParams near;
  LustreClientParams far = near;
  far.rpc_rtt_s = 16e-3;  // congested path / remote mount
  EXPECT_NEAR(client_stream_ceiling(near) / client_stream_ceiling(far), 4.0,
              1e-9);
}

}  // namespace
}  // namespace spider::fs
