#include "tools/lint/fix.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

namespace spider::lint {

namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::optional<std::vector<std::string>> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  for (const std::string& line : lines) out << line << '\n';
  return static_cast<bool>(out);
}

/// Whole-word occurrence check anywhere in `lines`, ignoring #include
/// lines (the include being swapped would otherwise always match).
bool contains_word(const std::vector<std::string>& lines,
                   std::string_view word) {
  for (const std::string& line : lines) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (std::string_view(line).substr(i).starts_with("#include")) continue;
    if (find_word(line, word) != std::string::npos) return true;
  }
  return false;
}

/// Count top-level commas of the template argument list opening at
/// `lines[row][col]` (which must be '<'); -1 when the list does not close
/// on the same line (multi-line swaps are left to a human).
int template_arity(const std::string& line, std::size_t col) {
  int depth = 0;
  int commas = 0;
  for (std::size_t i = col; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '<' || c == '(' || c == '[') ++depth;
    if (c == '>' || c == ')' || c == ']') {
      if (--depth == 0) return commas;
    }
    if (c == ',' && depth == 1) ++commas;
  }
  return -1;
}

/// The unit alias for an L3 unit-bearing identifier.
std::string_view alias_for(std::string_view ident) {
  if (ident.ends_with("_bytes") || ident == "bytes") {
    return "spider::ByteVolume";
  }
  if (ident.ends_with("_bw") || ident == "bw") return "spider::Bandwidth";
  return "spider::Seconds";  // *_seconds, latency*, seconds
}

/// Extract the identifier quoted in a finding message ('name').
std::string quoted_ident(const std::string& message) {
  const std::size_t open = message.find('\'');
  if (open == std::string::npos) return {};
  const std::size_t close = message.find('\'', open + 1);
  if (close == std::string::npos) return {};
  return message.substr(open + 1, close - open - 1);
}

/// Insert `#include "common/units.hpp"` after the last include (or after
/// `#pragma once`, or at the top) unless already present.
void ensure_units_include(std::vector<std::string>& lines) {
  std::size_t insert_at = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("common/units.hpp") != std::string::npos) return;
    if (line.rfind("#include", 0) == 0 || line.rfind("#pragma once", 0) == 0) {
      insert_at = i + 1;
    }
  }
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(insert_at),
               "#include \"common/units.hpp\"");
}

}  // namespace

FixResult apply_fixes(const LintReport& report,
                      std::vector<std::string>& errors) {
  FixResult result;

  // Group the fixable findings per file.
  std::map<std::string, std::vector<const Finding*>> by_file;
  for (const Finding& f : report.findings) {
    const bool l1_type_use =
        f.rule == "L1" && f.message.rfind("std::unordered_", 0) == 0;
    const bool l3 = f.rule == "L3";
    if (l1_type_use || l3) by_file[f.file].push_back(&f);
  }

  for (auto& [path, findings] : by_file) {
    std::optional<std::vector<std::string>> lines = read_lines(path);
    if (!lines.has_value()) {
      errors.push_back("cannot read for --fix: " + path);
      continue;
    }

    // Apply bottom-up, right-to-left, so earlier edits don't shift later
    // finding coordinates.
    std::sort(findings.begin(), findings.end(),
              [](const Finding* a, const Finding* b) {
                if (a->line != b->line) return a->line > b->line;
                return a->column > b->column;
              });

    std::size_t applied = 0;
    bool fixed_l3 = false;
    bool swapped_map = false;
    bool swapped_set = false;
    for (const Finding* f : findings) {
      if (f->line == 0 || f->line > lines->size()) continue;
      std::string& line = (*lines)[f->line - 1];
      const std::size_t col = f->column - 1;
      if (col >= line.size()) continue;
      std::string_view at = std::string_view(line).substr(col);

      if (f->rule == "L1") {
        const bool is_map = at.starts_with("unordered_map");
        const bool is_set = at.starts_with("unordered_set");
        if (!is_map && !is_set) continue;  // source moved; skip
        const std::size_t name_len = 13;   // both names are 13 chars
        std::size_t open = col + name_len;
        while (open < line.size() && line[open] == ' ') ++open;
        if (open >= line.size() || line[open] != '<') continue;
        const int arity = template_arity(line, open);
        if (arity != (is_map ? 1 : 0)) continue;  // custom hash/alloc/multiline
        line.replace(col, name_len, is_map ? "map" : "set");
        (is_map ? swapped_map : swapped_set) = true;
        ++applied;
      } else {  // L3
        if (!at.starts_with("double") ||
            (col + 6 < line.size() && ident_char(line[col + 6]))) {
          continue;
        }
        const std::string ident = quoted_ident(f->message);
        if (ident.empty()) continue;
        line.replace(col, 6, std::string(alias_for(ident)));
        ++applied;
        fixed_l3 = true;
      }
    }
    if (applied == 0) continue;

    // Include hygiene after the token edits: the ordered header must exist
    // for every swap we made; the unordered header goes away only when no
    // use of it remains (a suppressed custom-hash table may keep it).
    for (std::string_view container : {"unordered_map", "unordered_set"}) {
      const bool swapped =
          container == "unordered_map" ? swapped_map : swapped_set;
      if (!swapped) continue;
      const std::string unordered_inc =
          "#include <" + std::string(container) + ">";
      const std::string ordered_inc =
          container == "unordered_map" ? "#include <map>" : "#include <set>";
      const bool still_used = contains_word(*lines, container);
      const bool have_ordered =
          std::find(lines->begin(), lines->end(), ordered_inc) !=
          lines->end();
      auto it = std::find(lines->begin(), lines->end(), unordered_inc);
      if (it == lines->end()) continue;  // pulled in transitively; leave it
      if (!still_used && !have_ordered) {
        *it = ordered_inc;  // in-place swap keeps the include block tidy
      } else {
        // `<map>`/`<set>` sort directly before their unordered twins.
        if (!have_ordered) it = lines->insert(it, ordered_inc) + 1;
        if (!still_used) lines->erase(it);
      }
    }
    if (fixed_l3) ensure_units_include(*lines);

    if (!write_lines(path, *lines)) {
      errors.push_back("cannot write for --fix: " + path);
      continue;
    }
    result.fixes_applied += applied;
    result.files_changed.push_back(path);
  }

  std::sort(result.files_changed.begin(), result.files_changed.end());
  return result;
}

}  // namespace spider::lint
