// Probability distributions used by the workload and hardware models.
//
// The paper's workload characterization (Section II, citing the Spider I
// study [14]) found that request inter-arrival times and idle periods follow
// long-tailed distributions well modelled as Pareto, and that request sizes
// are bimodal: either small (< 16 KB) or large multiples of 1 MB. The
// distributions here are the vocabulary those generators are built from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace spider {

/// Pareto (type I) distribution: P(X > x) = (x_m / x)^alpha for x >= x_m.
/// Long-tailed for small alpha; mean is finite only for alpha > 1.
class Pareto {
 public:
  Pareto(double shape_alpha, double scale_xm);

  double sample(Rng& rng) const;
  /// Analytic mean; +inf when alpha <= 1.
  double mean() const;
  double shape() const { return alpha_; }
  double scale() const { return xm_; }

 private:
  double alpha_;
  double xm_;
};

/// Pareto truncated to [lo, hi]; keeps the long tail but guarantees bounded
/// samples, which hardware models need (no infinite service times).
class BoundedPareto {
 public:
  BoundedPareto(double shape_alpha, double lo, double hi);

  double sample(Rng& rng) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double alpha_;
  double lo_;
  double hi_;
};

/// Log-normal, parameterized by the mean/stddev of the underlying normal.
class LogNormal {
 public:
  LogNormal(double mu, double sigma);

  double sample(Rng& rng) const;
  double mean() const;

 private:
  double mu_;
  double sigma_;
};

/// Zipf distribution over ranks 1..n with exponent s; used for file and
/// project popularity skew.
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  /// Sample a rank in [0, n).
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Discrete mixture: pick component i with probability weight[i]/sum.
class DiscreteMixture {
 public:
  explicit DiscreteMixture(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  std::size_t components() const { return cdf_.size(); }
  /// Normalized probability of component i.
  double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

/// Empirical distribution over explicit values with equal weight.
class Empirical {
 public:
  explicit Empirical(std::vector<double> values);

  double sample(Rng& rng) const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace spider
