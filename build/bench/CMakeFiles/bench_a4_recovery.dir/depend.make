# Empty dependencies file for bench_a4_recovery.
# This may be replaced when dependencies are built.
