// Pins the sim::Task SBO contract and the FunctionRef lifetime/shape
// contract the engine hot path relies on (docs/performance.md).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/function_ref.hpp"
#include "sim/task.hpp"

namespace spider::sim {
namespace {

// Counts live instances and moves so tests can observe where a callable
// lives and when it dies.
struct Probe {
  static int live;
  static int moves;
  int payload = 0;

  explicit Probe(int p) : payload(p) { ++live; }
  Probe(const Probe& other) : payload(other.payload) { ++live; }
  Probe(Probe&& other) noexcept : payload(other.payload) {
    ++live;
    ++moves;
  }
  ~Probe() { --live; }
  void operator()() const {}
};
int Probe::live = 0;
int Probe::moves = 0;

TEST(Task, InlineEligibilityMatchesTheDocumentedContract) {
  // The typical scheduling capture — an object pointer plus a couple of
  // 64-bit ids — must stay inline; that is the whole point of the 48-byte
  // budget.
  struct HotCapture {
    void* self;
    std::uint64_t a, b;
    void operator()() const {}
  };
  static_assert(sizeof(HotCapture) == 24);
  EXPECT_TRUE(Task::stores_inline<HotCapture>());

  struct TooBig {
    std::array<std::byte, Task::kInlineBytes + 1> bytes;
    void operator()() const {}
  };
  EXPECT_FALSE(Task::stores_inline<TooBig>());

  struct OverAligned {
    alignas(2 * alignof(std::max_align_t)) int x;
    void operator()() const {}
  };
  EXPECT_FALSE(Task::stores_inline<OverAligned>());

  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) {}
    void operator()() const {}
  };
  EXPECT_FALSE(Task::stores_inline<ThrowingMove>());

  // Exactly at the boundary is still inline.
  struct ExactFit {
    std::array<std::byte, Task::kInlineBytes> bytes;
    void operator()() const {}
  };
  EXPECT_TRUE(Task::stores_inline<ExactFit>());
}

TEST(Task, InvokesInlineAndHeapCallables) {
  int hits = 0;
  Task small([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  std::array<std::uint64_t, 16> big{};  // 128 bytes: forced heap fallback
  big[7] = 7;
  auto large_fn = [&hits, big] { hits += static_cast<int>(big[7]); };
  static_assert(!Task::stores_inline<decltype(large_fn)>());
  Task large(std::move(large_fn));
  large();
  EXPECT_EQ(hits, 8);
}

TEST(Task, MoveTransfersTheCallableAndEmptiesTheSource) {
  int hits = 0;
  Task a([&hits] { ++hits; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Task c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(Task, InlineMoveRelocatesExactlyOneLiveInstance) {
  Probe::live = 0;
  Probe::moves = 0;
  {
    Task a{Probe(1)};
    EXPECT_EQ(Probe::live, 1);
    const int moves_after_store = Probe::moves;
    Task b(std::move(a));
    EXPECT_EQ(Probe::live, 1);  // relocated, not duplicated
    EXPECT_EQ(Probe::moves, moves_after_store + 1);
  }
  EXPECT_EQ(Probe::live, 0);
}

TEST(Task, HeapMoveTransfersOwnershipWithoutTouchingTheCallable) {
  struct BigProbe : Probe {
    std::array<std::byte, 64> pad{};
    using Probe::Probe;
  };
  static_assert(!Task::stores_inline<BigProbe>());
  Probe::live = 0;
  Probe::moves = 0;
  {
    Task a{BigProbe(2)};
    EXPECT_EQ(Probe::live, 1);
    const int moves_after_store = Probe::moves;
    Task b(std::move(a));
    EXPECT_EQ(Probe::live, 1);
    // Heap relocation moves the pointer, never the callable itself.
    EXPECT_EQ(Probe::moves, moves_after_store);
  }
  EXPECT_EQ(Probe::live, 0);
}

TEST(Task, ResetAndMoveAssignDestroyEagerly) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  Task t([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  t.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(t));

  // Move-assignment over a live task drops the old callable immediately.
  auto token2 = std::make_shared<int>(8);
  std::weak_ptr<int> watch2 = token2;
  Task u([token2] { (void)*token2; });
  token2.reset();
  u = Task([] {});
  EXPECT_TRUE(watch2.expired());
}

TEST(Task, IsMoveOnly) {
  static_assert(!std::is_copy_constructible_v<Task>);
  static_assert(!std::is_copy_assignable_v<Task>);
  static_assert(std::is_nothrow_move_constructible_v<Task>);
  static_assert(std::is_nothrow_move_assignable_v<Task>);
  // Move-only captures are storable — std::function could never hold this.
  auto owned = std::make_unique<int>(5);
  int out = 0;
  Task t([p = std::move(owned), &out] { out = *p; });
  t();
  EXPECT_EQ(out, 5);
}

TEST(Task, DefaultAndNullptrConstructedAreEmpty) {
  Task a;
  Task b(nullptr);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(FunctionRef, BindsLvalueCallablesInTwoWords) {
  static_assert(sizeof(FunctionRef<void(int)>) == 2 * sizeof(void*));
  static_assert(std::is_trivially_copyable_v<FunctionRef<void(int)>>);

  int sum = 0;
  auto add = [&sum](int v) { sum += v; };
  FunctionRef<void(int)> ref(add);
  ASSERT_TRUE(static_cast<bool>(ref));
  ref(3);
  ref(4);
  EXPECT_EQ(sum, 7);

  // Rebinding a copy sees the same referent — it is a reference, not a copy.
  FunctionRef<void(int)> copy = ref;
  copy(5);
  EXPECT_EQ(sum, 12);
}

TEST(FunctionRef, RejectsTemporariesAtCompileTime) {
  // A temporary lambda would dangle at the end of the full expression; the
  // rvalue constructor is deleted.
  auto lvalue = [] {};
  static_assert(std::is_constructible_v<FunctionRef<void()>, decltype(lvalue)&>);
  static_assert(!std::is_constructible_v<FunctionRef<void()>, decltype(lvalue)>);
}

TEST(FunctionRef, DefaultConstructedIsFalsy) {
  FunctionRef<void()> ref;
  EXPECT_FALSE(static_cast<bool>(ref));
  FunctionRef<void()> null(nullptr);
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(FunctionRef, PropagatesReturnValues) {
  auto triple = [](int v) { return 3 * v; };
  FunctionRef<int(int)> ref(triple);
  EXPECT_EQ(ref(14), 42);
}

}  // namespace
}  // namespace spider::sim
