file(REMOVE_RECURSE
  "CMakeFiles/spider_fs.dir/fs/client.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/client.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/dne.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/dne.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/filesystem.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/filesystem.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/fs_namespace.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/fs_namespace.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/journal.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/journal.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/mds.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/mds.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/obdsurvey.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/obdsurvey.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/oss.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/oss.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/ost.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/ost.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/purge.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/purge.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/recovery.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/recovery.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/striping.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/striping.cpp.o.d"
  "CMakeFiles/spider_fs.dir/fs/thinfs.cpp.o"
  "CMakeFiles/spider_fs.dir/fs/thinfs.cpp.o.d"
  "libspider_fs.a"
  "libspider_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
