// Cancellable discrete-event queue.
//
// A binary heap keyed on (time, sequence) gives deterministic FIFO ordering
// for simultaneous events. Cancellation is lazy: cancelled ids are skipped
// at pop time, which keeps cancel O(1) — important because the flow network
// cancels and reschedules its next-completion event on every arrival.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace spider::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule fn at absolute time `when`. Returns an id usable with cancel().
  EventId schedule(SimTime when, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Earliest pending event time; only valid when !empty().
  SimTime next_time() const;

  /// Pop the earliest event. Only valid when !empty(). Returns its time and
  /// callback.
  std::pair<SimTime, EventFn> pop();

 private:
  struct Entry {
    SimTime when;
    EventId id;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, EventFn> callbacks_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace spider::sim
