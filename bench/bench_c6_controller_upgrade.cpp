// C6 (Section V-C): the Spider II storage-controller CPU/memory upgrade.
//
// Paper: "we observed 510 GB/s of aggregate sequential write performance
// out of a single Spider II file system namespace, versus 320 GB/s before
// the upgrade. IOR was used for this test in the file-per-process mode
// with 1 MB I/O transfer sizes. The peak performance was obtained using
// only 1,008 clients against 1,008 OSTs. The clients were optimally placed
// on Titan's 3D torus such that it minimized network contention for I/O."
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(core::spider2_config(/*upgraded=*/false), rng);
  center.set_target_namespace(0);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);

  workload::IorConfig cfg;
  cfg.clients = 1008;
  cfg.transfer_size = 1_MiB;

  bench::banner("C6: controller upgrade, single namespace, 1,008 optimally "
                "placed clients vs 1,008 OSTs");

  const auto before = workload::run_ior(center, cfg);
  center.upgrade_controllers(block::upgraded_controller_params());
  const auto after = workload::run_ior(center, cfg);

  // The same 1,008 clients randomly placed, for contrast with the paper's
  // emphasis on optimal placement.
  center.set_client_placement(core::ClientPlacement::kRandom, rng);
  const auto random_placed = workload::run_ior(center, cfg);

  Table table;
  table.set_columns({"configuration", "paper GB/s", "measured GB/s",
                     "bottleneck"});
  table.add_row({std::string("pre-upgrade, optimal placement"),
                 std::string("320"), to_gbps(before.aggregate_bw),
                 before.bottleneck});
  table.add_row({std::string("post-upgrade, optimal placement"),
                 std::string("510"), to_gbps(after.aggregate_bw),
                 after.bottleneck});
  table.add_row({std::string("post-upgrade, random placement"),
                 std::string("(not reported)"),
                 to_gbps(random_placed.aggregate_bw), random_placed.bottleneck});
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(std::abs(to_gbps(before.aggregate_bw) - 320.0) < 35.0,
                "pre-upgrade namespace delivers ~320 GB/s");
  checker.check(std::abs(to_gbps(after.aggregate_bw) - 510.0) < 50.0,
                "post-upgrade namespace delivers ~510 GB/s");
  checker.check(after.aggregate_bw / before.aggregate_bw > 1.4,
                "upgrade factor ~1.6x (paper: 510/320)");
  checker.check(random_placed.aggregate_bw < 0.5 * after.aggregate_bw,
                "optimal placement is essential to reach the peak");
  return checker.exit_code();
}
