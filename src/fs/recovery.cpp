#include "fs/recovery.hpp"

#include <algorithm>

namespace spider::fs {

FailoverOutcome simulate_oss_failover(const RecoveryParams& params) {
  FailoverOutcome out;

  // Detection: how long until clients know the OSS moved.
  if (params.asymmetric_router_notification) {
    // Routers see the dead path and broadcast; no RPC timeout.
    out.detection_s = params.notification_s;
  } else if (params.imperative_recovery) {
    // The failover server boots its targets and pings clients; still pays
    // the failover partner's takeover delay, not the full RPC timeout.
    out.detection_s = params.notification_s + 0.1 * params.rpc_timeout_s;
  } else {
    // Classic: mean RPC timeout plus detection spread.
    out.detection_s = params.rpc_timeout_s + 0.5 * params.detection_spread_s;
  }

  // Reconnect storm: all clients stream reconnect RPCs into one server.
  out.reconnect_s =
      static_cast<double>(params.clients) / params.reconnect_rate;

  // Straggler gating: classic recovery keeps the window open until the
  // last known client returns or the window expires. Imperative recovery
  // evicts non-responding clients quickly instead of waiting.
  if (params.imperative_recovery) {
    out.straggler_wait_s = std::min(10.0, params.recovery_window_s);
  } else if (params.straggler_fraction > 0.0) {
    out.straggler_wait_s = params.recovery_window_s;
  }

  out.total_outage_s = out.detection_s + out.reconnect_s + out.straggler_wait_s;
  return out;
}

}  // namespace spider::fs
