file(REMOVE_RECURSE
  "CMakeFiles/spider_core.dir/core/center.cpp.o"
  "CMakeFiles/spider_core.dir/core/center.cpp.o.d"
  "CMakeFiles/spider_core.dir/core/exclusive_model.cpp.o"
  "CMakeFiles/spider_core.dir/core/exclusive_model.cpp.o.d"
  "CMakeFiles/spider_core.dir/core/production.cpp.o"
  "CMakeFiles/spider_core.dir/core/production.cpp.o.d"
  "CMakeFiles/spider_core.dir/core/scenario.cpp.o"
  "CMakeFiles/spider_core.dir/core/scenario.cpp.o.d"
  "CMakeFiles/spider_core.dir/core/spider_config.cpp.o"
  "CMakeFiles/spider_core.dir/core/spider_config.cpp.o.d"
  "CMakeFiles/spider_core.dir/tools/standard_checks.cpp.o"
  "CMakeFiles/spider_core.dir/tools/standard_checks.cpp.o.d"
  "libspider_core.a"
  "libspider_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
