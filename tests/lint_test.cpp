// spiderlint self-tests: each rule fires on its fixture at the exact line,
// suppressions silence it, and both renderers carry the findings.
//
// Fixtures live in tests/lint_fixtures/ (outside src/, so the in-tree lint
// gate never sees them); classification is forced per fixture the same way
// the CLI's --treat-as does it.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/baseline.hpp"
#include "tools/lint/fix.hpp"
#include "tools/lint/global.hpp"
#include "tools/lint/lint.hpp"
#include "tools/lint/report.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/scan.hpp"
#include "tools/lint/symbols.hpp"
#include "tools/lint/token.hpp"

namespace spider::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(SPIDER_LINT_FIXTURES_DIR) + "/" + name;
}

LintReport lint_fixture(const std::string& name, FileClass cls) {
  LintOptions opts;
  opts.forced_class = cls;
  std::vector<std::string> errors;
  LintReport report = lint_paths({fixture(name)}, opts, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return report;
}

constexpr FileClass kSimCritical{.in_src = true, .sim_critical = true};
constexpr FileClass kSrc{.in_src = true};
constexpr FileClass kSrcHeader{.in_src = true, .is_header = true};

TEST(SpiderLint, L1FiresOnDeclarationAndIteration) {
  const LintReport r =
      lint_fixture("l1_unordered_iteration.cpp", kSimCritical);
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "L1");
  EXPECT_EQ(r.findings[0].line, 10u);  // unordered_map member declaration
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_EQ(r.findings[1].rule, "L1");
  EXPECT_EQ(r.findings[1].line, 14u);  // range-for over the tracked member
  EXPECT_NE(r.findings[1].message.find("flows_"), std::string::npos);
}

TEST(SpiderLint, L2FiresOnAmbientRandomness) {
  const LintReport r = lint_fixture("l2_nondet_source.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L2");
  EXPECT_EQ(r.findings[0].line, 9u);  // std::random_device rd;
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("random_device"), std::string::npos);
}

TEST(SpiderLint, L3FiresOnUnitBearingDoubleInHeader) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "L3");
  EXPECT_EQ(r.findings[0].line, 10u);  // double transfer_bytes
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
  EXPECT_NE(r.findings[0].message.find("transfer_bytes"), std::string::npos);
}

TEST(SpiderLint, L3NeedsHeaderScope) {
  // The same file linted as a non-header translation unit stays quiet:
  // L3 is a public-interface rule.
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrc);
  EXPECT_TRUE(r.clean());
}

TEST(SpiderLint, L4FiresOnSitelessSchedule) {
  const LintReport r = lint_fixture("l4_missing_site.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].rule, "L4");
  EXPECT_EQ(r.findings[0].line, 14u);  // q.schedule(100, 1);
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  // Fault-plan entry points must declare a replay-site parameter too.
  EXPECT_EQ(r.findings[1].line, 22u);  // inject(const Injection&)
  EXPECT_NE(r.findings[1].message.find("inject"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 23u);  // arm(const FaultPlan&)
  EXPECT_NE(r.findings[2].message.find("arm"), std::string::npos);
}

TEST(SpiderLint, SuppressionsSilenceEveryScopedRule) {
  // The file is linted under every class at once: unordered_map + a
  // unit-bearing double are both present, both justified.
  const LintReport r = lint_fixture(
      "suppressed_ok.cpp",
      FileClass{.in_src = true, .sim_critical = true, .is_header = true});
  EXPECT_TRUE(r.clean()) << render_text(r, /*fix_hints=*/false);
}

TEST(SpiderLint, DisabledRulesDoNotRun) {
  LintOptions opts;
  opts.forced_class = kSimCritical;
  opts.rules.l1 = false;
  std::vector<std::string> errors;
  const LintReport r =
      lint_paths({fixture("l1_unordered_iteration.cpp")}, opts, errors);
  EXPECT_TRUE(r.clean());
}

TEST(SpiderLint, TextReportCarriesFileLineRule) {
  const LintReport r =
      lint_fixture("l1_unordered_iteration.cpp", kSimCritical);
  const std::string text = render_text(r, /*fix_hints=*/false);
  EXPECT_NE(
      text.find("l1_unordered_iteration.cpp:10:8: error: [L1]"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("2 findings (2 errors, 0 warnings)"), std::string::npos)
      << text;
}

TEST(SpiderLint, TextReportHintsOnRequest) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  const std::string plain = render_text(r, /*fix_hints=*/false);
  const std::string hinted = render_text(r, /*fix_hints=*/true);
  EXPECT_EQ(plain.find("units.hpp vocabulary"), std::string::npos);
  EXPECT_NE(hinted.find("units.hpp vocabulary"), std::string::npos) << hinted;
}

TEST(SpiderLint, JsonReportCarriesFindings) {
  const LintReport r = lint_fixture("l3_raw_unit_double.hpp", kSrcHeader);
  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\": {\"error\": 0, \"warning\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rule\": \"L3\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"column\": 3"), std::string::npos) << json;
}

TEST(SpiderLint, RuleTableIsComplete) {
  ASSERT_EQ(rules().size(), 16u);
  const char* ids[] = {"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8",
                       "L9", "L10", "L11", "L12", "L13", "L14", "L15", "L16"};
  for (const char* id : ids) {
    const RuleInfo* info = rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_FALSE(info->name.empty());
    EXPECT_FALSE(info->suppression.empty());
    EXPECT_FALSE(info->hint.empty());
  }
  EXPECT_EQ(rule("L17"), nullptr);
}

TEST(SpiderLint, CollectSourcesIsSortedAndDeduplicated) {
  std::vector<std::string> errors;
  const std::vector<std::string> once =
      collect_sources({SPIDER_LINT_FIXTURES_DIR}, errors);
  const std::vector<std::string> twice = collect_sources(
      {SPIDER_LINT_FIXTURES_DIR, fixture("l2_nondet_source.cpp")}, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(once.size(), 32u) << "fixture census drifted";
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(std::is_sorted(once.begin(), once.end()));
}

// ---------------------------------------------------------------------------
// Semantic rules (L5-L8): each fixture pins one true positive at an exact
// file:line and carries engineered false positives that must stay quiet
// (the count assertion is the false-positive check).

constexpr FileClass kCalib{.in_src = true, .calib_scope = true};

TEST(SpiderLint, L5FlagsUpwardIncludeAndCycle) {
  // The fixture tree has four downward edges (engineered false positives)
  // plus one upward include and one two-file cycle.
  const LintReport r = lint_fixture("l5_layering", kSrc);
  ASSERT_EQ(r.findings.size(), 2u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L5");
  EXPECT_TRUE(r.findings[0].file.ends_with("l5_layering/src/block/dev.hpp"));
  EXPECT_EQ(r.findings[0].line, 5u);  // #include "workload/gen.hpp"
  EXPECT_NE(r.findings[0].message.find("workload/gen.hpp"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("points up"), std::string::npos);
  EXPECT_EQ(r.findings[1].rule, "L5");
  EXPECT_TRUE(r.findings[1].file.ends_with("l5_layering/src/sim/cycle_a.hpp"));
  EXPECT_NE(
      r.findings[1].message.find(
          "sim/cycle_a.hpp -> sim/cycle_b.hpp -> sim/cycle_a.hpp"),
      std::string::npos);
}

TEST(SpiderLint, L6FlagsOnlyTheUnguardedAccess) {
  // unsafe_touch fires; the lock_guard path and the SPIDER_REQUIRES helper
  // are the engineered false positives.
  const LintReport r = lint_fixture("l6_lock_discipline.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L6");
  EXPECT_EQ(r.findings[0].line, 15u);  // return count_; without the lock
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("count_"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("mu_"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("unsafe_touch"), std::string::npos);
}

TEST(SpiderLint, L7FlagsPrivateSitelessScheduleOnly) {
  // relaunch() and relaunch_cross() fire; the public entry point and both
  // loc-threading helpers are the engineered false positives.
  const LintReport r = lint_fixture("l7_schedule_flow.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 2u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L7");
  EXPECT_EQ(r.findings[0].line, 24u);  // sim_.schedule_at(10, 0)
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("relaunch"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("source_location"), std::string::npos);
  // The cross-shard mailbox send is held to the same site-flow contract.
  EXPECT_EQ(r.findings[1].rule, "L7");
  EXPECT_EQ(r.findings[1].line, 34u);  // engine_.schedule_cross(0, 1, 10, 0)
  EXPECT_NE(r.findings[1].message.find("relaunch_cross"), std::string::npos);
  EXPECT_NE(r.findings[1].message.find("schedule_cross"), std::string::npos);
}

TEST(SpiderLint, L8FlagsBareCalibrationLiteralOnly) {
  // The bare 1e3 fires; the constexpr constant, hex mask, unit literal, and
  // default member initializer are the engineered false positives.
  const LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L8");
  EXPECT_EQ(r.findings[0].line, 12u);  // return seconds * 1e3;
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
  EXPECT_NE(r.findings[0].message.find("1e3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency rules (L9-L12): shard-escape, cross-shard scheduling,
// lookahead provenance, and pool capture discipline. As above, every
// fixture pins true positives at exact lines and the count assertion is
// the false-positive check.

TEST(SpiderLint, L9FlagsShardEscapesOnly) {
  // The by-ref init-capture alias, the [&] this-touch, and the call-graph
  // reach fire; the value copy, the plain member, and the barrier-code
  // access are the engineered false positives.
  const LintReport r = lint_fixture("l9_shard_escape.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 3u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L9");
  EXPECT_EQ(r.findings[0].line, 19u);  // [&box = outbox_]
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("'&box'"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("outbox_"), std::string::npos);
  EXPECT_EQ(r.findings[1].line, 24u);  // [&] { outbox_.clear(); }
  EXPECT_NE(r.findings[1].message.find("captured this"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 30u);  // [this] { drain(); }
  EXPECT_NE(r.findings[2].message.find("via call to 'drain'"),
            std::string::npos);
}

TEST(SpiderLint, L10FlagsCrossShardRawSchedulesOnly) {
  // The foreign-shard schedule_at, the lying schedule_cross source, the
  // foreign index threaded into rearm(), and the foreign-bound Simulator&
  // fire; the same-shard variants of all four are the engineered false
  // positives.
  const LintReport r = lint_fixture("l10_cross_schedule.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 4u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L10");
  EXPECT_EQ(r.findings[0].line, 26u);  // shard(target).schedule_at
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("use schedule_cross"),
            std::string::npos);
  EXPECT_EQ(r.findings[1].line, 30u);  // schedule_cross(target, zone, ...)
  EXPECT_NE(r.findings[1].message.find("claims source shard 'target'"),
            std::string::npos);
  EXPECT_EQ(r.findings[2].line, 32u);  // rearm(target)
  EXPECT_NE(r.findings[2].message.find("'rearm'"), std::string::npos);
  EXPECT_EQ(r.findings[3].line, 37u);  // far.schedule_at
  EXPECT_NE(r.findings[3].message.find("'far'"), std::string::npos);
}

TEST(SpiderLint, L11FlagsBareDelaysAndGradesTheFloor) {
  // The bare +500 and the below-floor +64 fire; the lookahead-derived and
  // symbolic delays are the engineered false positives. The below-floor
  // constant gets the sharper certain-breach message.
  const LintReport r = lint_fixture("l11_lookahead.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 2u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L11");
  EXPECT_EQ(r.findings[0].line, 26u);  // now + 500
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("bare numeric constants"),
            std::string::npos);
  EXPECT_EQ(r.findings[1].line, 28u);  // now + 64
  EXPECT_NE(r.findings[1].message.find("64 ns"), std::string::npos);
  EXPECT_NE(r.findings[1].message.find("below the torus hop floor"),
            std::string::npos);
}

TEST(SpiderLint, L12FlagsUnguardedPoolCapturesOnly) {
  // The this-touched plain member, the joinless by-ref local, the joinless
  // default-ref, and the member-aliasing init-capture fire; the fork-join
  // local, the atomic/guarded/mutex members, and the joined local are the
  // engineered false positives.
  const LintReport r = lint_fixture("l12_pool_capture.cpp", kSrc);
  ASSERT_EQ(r.findings.size(), 4u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L12");
  EXPECT_EQ(r.findings[0].line, 35u);  // rows_.push_back through this
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("rows_"), std::string::npos);
  EXPECT_EQ(r.findings[1].line, 48u);  // [&local] without a join
  EXPECT_NE(r.findings[1].message.find("no visible join"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 53u);  // [&] without a join
  EXPECT_NE(r.findings[2].message.find("default by-reference"),
            std::string::npos);
  EXPECT_EQ(r.findings[3].line, 61u);  // [&rows = rows_] under a join
  EXPECT_NE(r.findings[3].message.find("'&rows'"), std::string::npos);
}

TEST(SpiderLint, LambdaEdgeCasesStayQuiet) {
  // Subscripts, attributes, structured bindings, moves, template lambdas,
  // nested lambdas, and an unparseable capture list — all engineered to
  // look like hazardous captures. None may fire.
  const LintReport r = lint_fixture("lambda_edges.cpp", kSrc);
  EXPECT_TRUE(r.clean()) << render_text(r, /*fix_hints=*/false);
}

TEST(SpiderLint, TokenizerEdgeCasesStayQuiet) {
  // Raw strings, spanning block comments, #if 0 regions, and digit
  // separators all contain rule triggers; none may fire.
  const LintReport r = lint_fixture("tok_edges.cpp", kSimCritical);
  EXPECT_TRUE(r.clean()) << render_text(r, /*fix_hints=*/false);
}

TEST(SpiderLint, SuppressionScopesAreExactlyScoped) {
  // Same-line, line-above, next-line, and file-scope suppressions silence
  // their targets; the declaration one line past a `spiderlint-next-line`
  // still fires — the scope is exactly one line.
  const LintReport r = lint_fixture("suppress_scopes.cpp", kSimCritical);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L1");
  EXPECT_EQ(r.findings[0].line, 26u);  // d_ past the next-line scope
}

// ---------------------------------------------------------------------------
// Whole-program rules (L13-L16): cross-TU linking, repair-surface
// reachability, journal ordering, census exhaustiveness, determinism taint.
// Tree fixtures are linted unforced so the path-based context rules apply;
// flat fixtures are forced into the scope their rule guards.

constexpr FileClass kFs{.in_src = true, .fs_scope = true};

LintReport lint_rules(const std::string& name, const RuleSet& rules,
                      std::optional<FileClass> cls = std::nullopt) {
  LintOptions opts;
  opts.rules = rules;
  opts.forced_class = cls;
  std::vector<std::string> errors;
  LintReport report = lint_paths({fixture(name)}, opts, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return report;
}

RuleSet just(bool RuleSet::* flag) {
  RuleSet rules = RuleSet::none();
  rules.*flag = true;
  return rules;
}

TEST(SpiderLint, L13FlagsRepairSurfaceEscapesOnly) {
  // The direct trigger call, the annotated-trigger call, and the
  // interprocedural reach fire from src/core; the spiderfsck and tests
  // callers plus the suppressed call are the engineered false positives.
  const LintReport r = lint_rules("l13_repair", just(&RuleSet::l13));
  ASSERT_EQ(r.findings.size(), 3u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L13");
  EXPECT_EQ(r.findings[0].line, 13u);  // t.fsck_set_count(0)
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("'fsck_set_count'"),
            std::string::npos);
  EXPECT_EQ(r.findings[1].line, 17u);  // t.scrub_reset() (SPIDER_REPAIR_ONLY)
  EXPECT_NE(r.findings[1].message.find("'scrub_reset'"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 21u);  // reset_all(t)
  EXPECT_NE(r.findings[2].message.find("reset_all -> fsck_set_count"),
            std::string::npos);
}

TEST(SpiderLint, L14FlagsUnjournaledMutationOnly) {
  // The mutate-then-append method fires; the append-first method, the
  // SPIDER_JOURNALED method, and the suppressed line are the engineered
  // false positives.
  const LintReport r =
      lint_rules("l14_journal.cpp", just(&RuleSet::l14), kFs);
  ASSERT_EQ(r.findings.size(), 1u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L14");
  EXPECT_EQ(r.findings[0].line, 27u);  // total_ += v before the append
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  EXPECT_NE(r.findings[0].message.find("'Ledger::add'"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("'total_'"), std::string::npos);
}

TEST(SpiderLint, L15FlagsCensusGapsOnly) {
  // kHalfWired (no repair case, no test mention), kUnbound (no bind, no
  // test mention), and the unregistered oracle factory fire; kGood, kBound,
  // make_good_oracle, and the suppressed kWaived are the engineered false
  // positives.
  const LintReport r = lint_rules("l15_census", just(&RuleSet::l15));
  ASSERT_EQ(r.findings.size(), 3u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L15");
  EXPECT_EQ(r.findings[0].line, 11u);  // kHalfWired
  EXPECT_NE(r.findings[0].message.find(
                "FindingKind::kHalfWired is half-wired: no repair case, "
                "no test mention"),
            std::string::npos);
  EXPECT_EQ(r.findings[1].line, 17u);  // kUnbound
  EXPECT_NE(r.findings[1].message.find("no injector binding"),
            std::string::npos);
  EXPECT_EQ(r.findings[2].line, 25u);  // make_lost_oracle declaration
  EXPECT_NE(r.findings[2].message.find("'make_lost_oracle'"),
            std::string::npos);
}

TEST(SpiderLint, L16FlagsTaintedSinksOnly) {
  // The taint-returning helper, the tainted local, the hash input, and the
  // journal record fire; the clean reassignment, the non-sink call, and
  // the suppressed sink are the engineered false positives.
  const LintReport r =
      lint_rules("l16_taint.cpp", just(&RuleSet::l16), kSrc);
  ASSERT_EQ(r.findings.size(), 4u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[0].rule, "L16");
  EXPECT_EQ(r.findings[0].line, 33u);  // schedule_in(wall_ms(), ...)
  EXPECT_NE(r.findings[0].message.find("via wall_ms()"), std::string::npos);
  EXPECT_EQ(r.findings[1].line, 39u);  // schedule_at(t, ...)
  EXPECT_NE(r.findings[1].message.find("via local 't'"), std::string::npos);
  EXPECT_EQ(r.findings[2].line, 43u);  // mix_hash(..., rand())
  EXPECT_NE(r.findings[2].message.find("a hash input"), std::string::npos);
  EXPECT_EQ(r.findings[3].line, 47u);  // journal_.append(clock())
  EXPECT_NE(r.findings[3].message.find("a journal record"),
            std::string::npos);
}

// --- cross-TU resolution edge cases on the global index itself -------------

TEST(SpiderLintGlobal, LinksForwardDeclarationsToTheirDefinition) {
  std::vector<SourceFile> files;
  files.push_back(scan_source("src/core/a.hpp", "void helper(int);\n"));
  files.push_back(scan_source("src/core/a.cpp",
                              "void helper(int x) { (void)x; }\n"));
  const GlobalIndex index(files);
  EXPECT_EQ(index.definitions("helper").size(), 1u);
  EXPECT_EQ(index.occurrences("helper").size(), 2u);
  EXPECT_TRUE(index.definitions("absent").empty());
}

TEST(SpiderLintGlobal, OutOfLineDefinitionCarriesItsClass) {
  std::vector<SourceFile> files;
  files.push_back(scan_source(
      "src/fs/w.hpp",
      "class Widget {\n public:\n  void touch();\n"
      "  void fsck_set_n(int n);\n};\n"));
  files.push_back(scan_source("src/fs/w.cpp",
                              "void Widget::touch() { fsck_set_n(0); }\n"));
  const GlobalIndex index(files);
  ASSERT_EQ(index.definitions("touch").size(), 1u);
  EXPECT_EQ(index.fn(index.definitions("touch")[0]).cls, "Widget");
  // touch's only definition calls a trigger, so the name is reaching.
  EXPECT_NE(index.repair_reaching().find("touch"),
            index.repair_reaching().end());
}

TEST(SpiderLintGlobal, DisagreeingOverloadsWeakenReachabilityToSilence) {
  // Two same-named definitions, only one reaching the repair surface: under
  // the all-definitions rule the *name* must not become repair-reaching —
  // a cross-TU name collision degrades to a missed finding, never a
  // spurious one. Agreeing definitions still close.
  std::vector<SourceFile> files;
  files.push_back(scan_source(
      "src/core/a.cpp", "void reset_all() { fsck_set_n(0); }\n"
                        "void wipe_all() { fsck_set_n(0); }\n"));
  files.push_back(scan_source(
      "src/net/b.cpp", "void reset_all() { }\n"
                       "void wipe_all() { fsck_set_n(1); }\n"));
  const GlobalIndex index(files);
  EXPECT_EQ(index.repair_reaching().find("reset_all"),
            index.repair_reaching().end());
  EXPECT_NE(index.repair_reaching().find("wipe_all"),
            index.repair_reaching().end());
}

TEST(SpiderLintGlobal, ShadowedTriggerNamesAndDeclarationsStayQuiet) {
  // A variable shadowing a trigger name (no call shape) and a namespace-
  // scope declaration (no enclosing body) must not count as call sites.
  std::vector<SourceFile> files;
  files.push_back(scan_source(
      "src/core/s.cpp",
      "void fsck_set_n(int);\n"
      "void use(int);\n"
      "void tick() {\n  int truncate_to = 3;\n  use(truncate_to);\n}\n"));
  GlobalOptions opts;
  opts.rules = RuleSet::none();
  opts.rules.l13 = true;
  const std::vector<Finding> findings = lint_global(files, opts);
  EXPECT_TRUE(findings.empty());
}

// --- parallel per-file pass: byte identity at any job count -----------------

TEST(SpiderLint, JobsOutputIsByteIdenticalAcrossCounts) {
  // The full fixture corpus (flat files and trees, per-file and whole-
  // program findings) rendered at --jobs 1/2/4/8 must produce identical
  // bytes — slot-ordered merge plus the canonical stable sort.
  LintOptions opts;
  std::vector<std::string> errors;
  opts.jobs = 1;
  const LintReport serial =
      lint_paths({SPIDER_LINT_FIXTURES_DIR}, opts, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_FALSE(serial.findings.empty());
  const std::string want = render_json(serial);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    LintOptions parallel_opts;
    parallel_opts.jobs = jobs;
    std::vector<std::string> parallel_errors;
    const LintReport got =
        lint_paths({SPIDER_LINT_FIXTURES_DIR}, parallel_opts,
                   parallel_errors);
    EXPECT_TRUE(parallel_errors.empty());
    EXPECT_EQ(render_json(got), want) << "jobs=" << jobs;
  }
}

// --- --only: the report narrows, the index does not -------------------------

TEST(SpiderLint, ReportOnlyFiltersReportNotIndex) {
  LintOptions opts;
  opts.rules = just(&RuleSet::l13);
  opts.report_only = {"core/bad.cpp"};  // suffix match at a '/' boundary
  std::vector<std::string> errors;
  const LintReport r = lint_paths({fixture("l13_repair")}, opts, errors);
  EXPECT_TRUE(errors.empty());
  // All three breaches live in bad.cpp — including the scrub_reset call,
  // whose trigger status comes from the SPIDER_REPAIR_ONLY annotation in
  // repairable.hpp. Seeing it here proves the filtered run still indexed
  // the unreported file.
  ASSERT_EQ(r.findings.size(), 3u) << render_text(r, /*fix_hints=*/false);
  EXPECT_EQ(r.findings[1].line, 17u);
  EXPECT_NE(r.findings[1].message.find("'scrub_reset'"), std::string::npos);

  LintOptions other;
  other.rules = just(&RuleSet::l13);
  other.report_only = {"src/fs/repairable.hpp"};
  std::vector<std::string> other_errors;
  const LintReport empty =
      lint_paths({fixture("l13_repair")}, other, other_errors);
  EXPECT_TRUE(empty.findings.empty())
      << render_text(empty, /*fix_hints=*/false);
}

// ---------------------------------------------------------------------------
// SARIF rendering.

TEST(SpiderLint, SarifReportIsWellFormed) {
  const LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  const std::string sarif = render_sarif(r);
  // Required SARIF 2.1.0 skeleton.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  EXPECT_NE(sarif.find("\"driver\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"spiderlint\""), std::string::npos);
  // The full rule table rides along so viewers can show rule metadata.
  EXPECT_NE(sarif.find("\"id\": \"L1\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"L8\""), std::string::npos);
  // The finding itself.
  EXPECT_NE(sarif.find("\"ruleId\": \"L8\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"physicalLocation\""), std::string::npos);
  EXPECT_NE(sarif.find("\"artifactLocation\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\": 49"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline.

TEST(SpiderLint, BaselineParsesEntriesAndReportsMalformedLines) {
  std::vector<std::string> errors;
  const std::vector<BaselineEntry> entries = parse_baseline(
      "# comment\n"
      "\n"
      "L1 :: a/b.cpp :: some message :: grandfathered\n"
      "not a baseline line\n",
      errors);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "L1");
  EXPECT_EQ(entries[0].file, "a/b.cpp");
  EXPECT_EQ(entries[0].message, "some message");
  EXPECT_EQ(entries[0].reason, "grandfathered");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("4"), std::string::npos) << errors[0];
}

TEST(SpiderLint, BaselineMatchesByMessageNotLineNumber) {
  LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  ASSERT_EQ(r.findings.size(), 1u);

  BaselineEntry entry{.rule = "L8",
                      .file = "lint_fixtures/l8_calibration.cpp",
                      .message = r.findings[0].message,
                      .reason = "test"};
  EXPECT_TRUE(baseline_matches(entry, r.findings[0]));

  // Suffix matching honours '/' boundaries: a mid-component suffix is not
  // the same file.
  BaselineEntry partial = entry;
  partial.file = "8_calibration.cpp";
  EXPECT_FALSE(baseline_matches(partial, r.findings[0]));

  // Applying the baseline removes the finding; nothing is stale.
  const std::vector<BaselineEntry> stale = apply_baseline(r, {entry});
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(stale.empty());
}

TEST(SpiderLint, BaselineReportsStaleEntries) {
  LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  const BaselineEntry gone{.rule = "L8",
                           .file = "lint_fixtures/l8_calibration.cpp",
                           .message = "a finding that was fixed long ago",
                           .reason = "stale"};
  const std::vector<BaselineEntry> stale = apply_baseline(r, {gone});
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].message, "a finding that was fixed long ago");
  EXPECT_EQ(r.findings.size(), 1u);  // nothing was eaten
}

TEST(SpiderLint, PruneBaselinePreservesEverythingButStaleEntries) {
  const std::string text =
      "# header comment survives\n"
      "\n"
      "L8 :: a/live.cpp :: still here :: keep me\n"
      "L8 :: a/gone.cpp :: fixed finding :: drop me\n"
      "not a baseline line\n"
      "L6 :: b/gone.cpp :: fixed finding :: drop me too\n";
  const std::vector<BaselineEntry> stale = {
      {.rule = "L8", .file = "a/gone.cpp", .message = "fixed finding",
       .reason = "ignored"},
      {.rule = "L6", .file = "b/gone.cpp", .message = "fixed finding",
       .reason = "reasons never match"}};
  std::size_t pruned = 0;
  const std::string out = prune_baseline_text(text, stale, pruned);
  EXPECT_EQ(pruned, 2u);
  EXPECT_EQ(out,
            "# header comment survives\n"
            "\n"
            "L8 :: a/live.cpp :: still here :: keep me\n"
            "not a baseline line\n");

  // Pruning nothing is the identity: comments, blanks, and malformed
  // lines all round-trip byte for byte.
  const std::string same = prune_baseline_text(text, {}, pruned);
  EXPECT_EQ(pruned, 0u);
  EXPECT_EQ(same, text);
}

// ---------------------------------------------------------------------------
// Capture parser (find_lambdas): the foundation under L9/L12. Parsed
// lambdas expose exact capture kinds; anything the parser cannot
// understand is marked unparsed, never misread.

std::vector<LambdaSym> lambdas_of(std::string_view src) {
  const SourceFile file = scan_source("mem.cpp", src);
  return find_lambdas(tokenize(file));
}

TEST(SpiderLint, CaptureParserClassifiesEveryKind) {
  const std::vector<LambdaSym> lams = lambdas_of(
      "void f() {\n"
      "  auto a = [&] { run(); };\n"
      "  auto b = [=, this] { run(); };\n"
      "  auto c = [&queue, count, *this] { run(); };\n"
      "  auto d = [buf = make(), &ref = slot_] { run(); };\n"
      "}\n");
  ASSERT_EQ(lams.size(), 4u);

  ASSERT_TRUE(lams[0].parsed);
  ASSERT_EQ(lams[0].captures.size(), 1u);
  EXPECT_EQ(lams[0].captures[0].kind, CaptureKind::kDefaultRef);
  EXPECT_TRUE(lams[0].captures_this());
  EXPECT_TRUE(lams[0].has_ref_default());

  ASSERT_TRUE(lams[1].parsed);
  ASSERT_EQ(lams[1].captures.size(), 2u);
  EXPECT_EQ(lams[1].captures[0].kind, CaptureKind::kDefaultValue);
  EXPECT_EQ(lams[1].captures[1].kind, CaptureKind::kThis);
  EXPECT_TRUE(lams[1].captures_this());

  ASSERT_TRUE(lams[2].parsed);
  ASSERT_EQ(lams[2].captures.size(), 3u);
  EXPECT_EQ(lams[2].captures[0].kind, CaptureKind::kByRef);
  EXPECT_EQ(lams[2].captures[0].name, "queue");
  EXPECT_EQ(lams[2].captures[1].kind, CaptureKind::kByValue);
  EXPECT_EQ(lams[2].captures[1].name, "count");
  EXPECT_EQ(lams[2].captures[2].kind, CaptureKind::kStarThis);
  EXPECT_TRUE(lams[2].captures_this());
  EXPECT_FALSE(lams[2].has_ref_default());

  ASSERT_TRUE(lams[3].parsed);
  ASSERT_EQ(lams[3].captures.size(), 2u);
  EXPECT_EQ(lams[3].captures[0].kind, CaptureKind::kByValue);
  EXPECT_TRUE(lams[3].captures[0].init);
  EXPECT_EQ(lams[3].captures[1].kind, CaptureKind::kByRef);
  EXPECT_EQ(lams[3].captures[1].name, "ref");
  EXPECT_TRUE(lams[3].captures[1].init);
  EXPECT_NE(lams[3].captures[1].init_expr.find("slot_"), std::string::npos);
}

TEST(SpiderLint, CaptureParserHandlesTemplateAndNestedLambdas) {
  const std::vector<LambdaSym> lams = lambdas_of(
      "void f() {\n"
      "  auto t = [&]<typename T>(T x) mutable noexcept -> int {\n"
      "    auto inner = [x] { return x; };\n"
      "    return inner();\n"
      "  };\n"
      "}\n");
  ASSERT_EQ(lams.size(), 2u);
  EXPECT_TRUE(lams[0].parsed);
  EXPECT_TRUE(lams[0].has_ref_default());
  EXPECT_TRUE(lams[1].parsed);
  ASSERT_EQ(lams[1].captures.size(), 1u);
  EXPECT_EQ(lams[1].captures[0].name, "x");
  // The nested body lies inside the outer body.
  EXPECT_GT(lams[1].body_begin, lams[0].body_begin);
  EXPECT_LT(lams[1].body_end, lams[0].body_end);
}

TEST(SpiderLint, CaptureParserRejectsLookalikesAndMisparses) {
  // Subscripts, attributes, and structured bindings are not lambdas; a
  // macro in the capture list yields parsed == false (degrade to a missed
  // finding), and a pack capture still parses.
  EXPECT_TRUE(lambdas_of("int g() { return xs[0] + ys[i]; }\n").empty());
  EXPECT_TRUE(lambdas_of("[[nodiscard]] int h();\n").empty());
  EXPECT_TRUE(lambdas_of("void f() { auto& [a, b] = pair_; use(a, b); }\n")
                  .empty());

  const std::vector<LambdaSym> bad =
      lambdas_of("void f() { run([MACRO()] { touch_(); }); }\n");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_FALSE(bad[0].parsed);

  const std::vector<LambdaSym> pack =
      lambdas_of("void f() { run([xs...] { use(xs...); }); }\n");
  ASSERT_EQ(pack.size(), 1u);
  EXPECT_TRUE(pack[0].parsed);
}

TEST(SpiderLint, BaselineRoundTripsThroughWriteBaseline) {
  LintReport r = lint_fixture("l8_calibration.cpp", kCalib);
  std::vector<std::string> errors;
  const std::vector<BaselineEntry> entries =
      parse_baseline(render_baseline(r), errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(entries.size(), r.findings.size());
  const std::vector<BaselineEntry> stale = apply_baseline(r, entries);
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(stale.empty());
}

// ---------------------------------------------------------------------------
// --fix: applied to throwaway copies, the result must re-lint clean and
// recompile.

std::string fix_copy(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "spiderlint_fix_test";
  fs::create_directories(dir);
  const fs::path dst = dir / name;
  fs::copy_file(fixture(name), dst, fs::copy_options::overwrite_existing);
  return dst.string();
}

int syntax_check(const std::string& extra_flags, const std::string& path) {
  const std::string cmd = std::string(SPIDER_LINT_CXX) +
                          " -std=c++20 -fsyntax-only " + extra_flags + " " +
                          path + " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(SpiderLint, FixSwapsL1ContainersButNotCustomHashers) {
  const std::string path = fix_copy("fix_l1.cpp");
  LintOptions opts;
  opts.forced_class = kSimCritical;
  std::vector<std::string> errors;
  LintReport before = lint_paths({path}, opts, errors);
  ASSERT_EQ(before.findings.size(), 2u);

  const FixResult fixed = apply_fixes(before, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(fixed.fixes_applied, 2u);
  ASSERT_EQ(fixed.files_changed.size(), 1u);

  const LintReport after = lint_paths({path}, opts, errors);
  EXPECT_TRUE(after.clean()) << render_text(after, /*fix_hints=*/false);

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("std::map<int, double> rows_"), std::string::npos);
  EXPECT_NE(text.find("std::set<int> keys_"), std::string::npos);
  EXPECT_NE(text.find("#include <map>"), std::string::npos);
  EXPECT_NE(text.find("#include <set>"), std::string::npos);
  // The custom-hasher table and its include survive untouched.
  EXPECT_NE(text.find("std::unordered_map<int, int, std::hash<int>>"),
            std::string::npos);
  EXPECT_NE(text.find("#include <unordered_map>"), std::string::npos);

  EXPECT_EQ(syntax_check("", path), 0) << "fixed file no longer compiles";
}

TEST(SpiderLint, FixRenamesL3DoublesToUnitAliases) {
  const std::string path = fix_copy("fix_l3.hpp");
  LintOptions opts;
  opts.forced_class = kSrcHeader;
  std::vector<std::string> errors;
  LintReport before = lint_paths({path}, opts, errors);
  ASSERT_EQ(before.findings.size(), 4u);

  const FixResult fixed = apply_fixes(before, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(fixed.fixes_applied, 4u);

  const LintReport after = lint_paths({path}, opts, errors);
  EXPECT_TRUE(after.clean()) << render_text(after, /*fix_hints=*/false);

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("spider::ByteVolume transfer_bytes"), std::string::npos);
  EXPECT_NE(text.find("spider::Seconds elapsed_seconds"), std::string::npos);
  EXPECT_NE(text.find("spider::Bandwidth peak_bw"), std::string::npos);
  EXPECT_NE(text.find("spider::Seconds latency_p99"), std::string::npos);
  EXPECT_NE(text.find("#include \"common/units.hpp\""), std::string::npos);

  EXPECT_EQ(syntax_check(std::string("-x c++ -I ") + SPIDER_LINT_SRC_DIR,
                         path),
            0)
      << "fixed header no longer compiles";
}

}  // namespace
}  // namespace spider::lint
