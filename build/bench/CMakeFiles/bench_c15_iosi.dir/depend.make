# Empty dependencies file for bench_c15_iosi.
# This may be replaced when dependencies are built.
