#include "fs/dne.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace spider::fs {

DneNamespace::DneNamespace(const DneParams& params) : params_(params) {
  if (params_.mdts == 0) throw std::invalid_argument("DneNamespace: mdts >= 1");
  load_.assign(params_.mdts, 0.0);
}

std::size_t DneNamespace::mdt_of_dir(std::uint64_t dir_id) const {
  std::uint64_t state = dir_id;
  return static_cast<std::size_t>(splitmix64(state) % params_.mdts);
}

DneNamespace::OpOutcome DneNamespace::account(std::uint64_t dir_id, MetaOp op,
                                              std::uint64_t linked_dir) {
  OpOutcome out;
  out.mdt = mdt_of_dir(dir_id);
  const Mds cost_model(op_costs_);
  out.cost = cost_model.op_cost(op);
  if (linked_dir != UINT64_MAX && mdt_of_dir(linked_dir) != out.mdt) {
    out.cross_mdt = true;
    out.cost *= params_.cross_mdt_penalty;
    // The remote shard does work too.
    load_[mdt_of_dir(linked_dir)] += out.cost * 0.5;
  }
  load_[out.mdt] += out.cost;
  return out;
}

double DneNamespace::load_of(std::size_t mdt) const { return load_.at(mdt); }

void DneNamespace::fsck_set_load(std::size_t mdt, double load) {
  load_.at(mdt) = load;
}

double DneNamespace::imbalance() const { return imbalance_of(load_); }

void DneNamespace::reset() { load_.assign(params_.mdts, 0.0); }

double DneNamespace::capacity_ops() const {
  return params_.mdt_ops_per_sec * static_cast<double>(params_.mdts);
}

double DneNamespace::max_throughput(
    const std::vector<double>& offered_per_dir) const {
  // Map the offered per-directory loads onto shards; the hottest shard
  // saturates first and caps the whole namespace's scaling factor.
  std::vector<double> shard(params_.mdts, 0.0);
  double total = 0.0;
  for (std::size_t d = 0; d < offered_per_dir.size(); ++d) {
    shard[mdt_of_dir(d)] += offered_per_dir[d];
    total += offered_per_dir[d];
  }
  const double hottest = *std::max_element(shard.begin(), shard.end());
  if (hottest <= 0.0) return 0.0;
  const double scale = std::min(1.0, params_.mdt_ops_per_sec / hottest);
  return total * scale;
}

}  // namespace spider::fs
