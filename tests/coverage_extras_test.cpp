// Final coverage pass: small public-API corners not exercised elsewhere.
#include <gtest/gtest.h>

#include <memory>

#include "block/ssu.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fs/fs_namespace.hpp"
#include "workload/checkpoint.hpp"
#include "workload/s3d.hpp"

namespace spider {
namespace {

TEST(SsuExtras, GroupBandwidthsMatchGroupQueries) {
  Rng rng(1);
  block::SsuParams params;
  params.raid_groups = 6;
  block::Ssu ssu(params, 0, rng);
  const auto bws =
      ssu.group_bandwidths(block::IoMode::kSequential, block::IoDir::kRead);
  ASSERT_EQ(bws.size(), 6u);
  for (std::size_t g = 0; g < 6; ++g) {
    EXPECT_DOUBLE_EQ(bws[g], ssu.group(g).bandwidth(block::IoMode::kSequential,
                                                    block::IoDir::kRead, 1_MiB));
  }
}

TEST(SsuExtras, RandomDeliveredBelowSequential) {
  Rng rng(2);
  block::Ssu ssu(block::SsuParams{}, 0, rng);
  EXPECT_LT(ssu.delivered_bw(block::IoMode::kRandom, block::IoDir::kWrite),
            ssu.delivered_bw(block::IoMode::kSequential, block::IoDir::kWrite));
}

TEST(DiskExtras, IsSlowThreshold) {
  const block::Disk healthy(block::DiskParams{}, 0, 1.0, 1e-4);
  const block::Disk slow(block::DiskParams{}, 1, 0.8, 1e-3);
  EXPECT_FALSE(healthy.is_slow());
  EXPECT_TRUE(slow.is_slow());
  EXPECT_FALSE(slow.is_slow(/*threshold=*/0.7));
}

TEST(HistogramExtras, CountForExpAndOutOfRange) {
  Log2Histogram h(4, 10);
  h.add(20.0);  // 2^4 bin
  h.add(100.0); // 2^6 bin
  EXPECT_EQ(h.count_for_exp(4), 1u);
  EXPECT_EQ(h.count_for_exp(6), 1u);
  EXPECT_EQ(h.count_for_exp(20), 0u);
  EXPECT_EQ(h.count_for_exp(-3), 0u);
}

TEST(StatsExtras, EmptyAccumulatorsAreSafe) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(rs.cv(), 0.0);
  RunningStats other;
  rs.merge(other);
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(NamespaceExtras, AggregateOstBandwidthSums) {
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  for (int i = 0; i < 3; ++i) {
    std::vector<block::Disk> members;
    for (int m = 0; m < 10; ++m) {
      members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
    }
    groups.push_back(std::make_unique<block::Raid6Group>(block::RaidParams{},
                                                         std::move(members)));
    osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
    ptrs.push_back(osts.back().get());
  }
  fs::FsNamespace ns("x", ptrs);
  double sum = 0.0;
  for (auto* o : ptrs) {
    sum += o->bandwidth(block::IoMode::kSequential, block::IoDir::kWrite, 1_MiB);
  }
  EXPECT_NEAR(
      ns.aggregate_ost_bw(block::IoMode::kSequential, block::IoDir::kWrite),
      sum, 1.0);
}

TEST(WorkloadExtras, ZeroDurationGeneratesNothing) {
  Rng rng(3);
  const workload::CheckpointWorkload cp{workload::CheckpointParams{}};
  EXPECT_TRUE(cp.generate(0.0, rng).empty());
  const workload::S3dWorkload s3d{workload::S3dParams{}};
  EXPECT_TRUE(s3d.generate(0.0, rng).empty());
}

TEST(WorkloadExtras, S3dBurstVolumeConsistent) {
  Rng rng(4);
  workload::S3dParams p;
  p.ranks = 100;
  p.bytes_per_rank = 10_MiB;
  const workload::S3dWorkload s3d(p);
  for (const auto& b : s3d.generate(2000.0, rng)) {
    EXPECT_EQ(static_cast<Bytes>(b.clients) * b.bytes_per_client,
              s3d.bytes_per_output());
  }
}

}  // namespace
}  // namespace spider
