file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_workload_mix.dir/bench_c4_workload_mix.cpp.o"
  "CMakeFiles/bench_c4_workload_mix.dir/bench_c4_workload_mix.cpp.o.d"
  "bench_c4_workload_mix"
  "bench_c4_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
