file(REMOVE_RECURSE
  "CMakeFiles/spider_net.dir/net/congestion.cpp.o"
  "CMakeFiles/spider_net.dir/net/congestion.cpp.o.d"
  "CMakeFiles/spider_net.dir/net/fabric.cpp.o"
  "CMakeFiles/spider_net.dir/net/fabric.cpp.o.d"
  "CMakeFiles/spider_net.dir/net/fgr.cpp.o"
  "CMakeFiles/spider_net.dir/net/fgr.cpp.o.d"
  "CMakeFiles/spider_net.dir/net/placement.cpp.o"
  "CMakeFiles/spider_net.dir/net/placement.cpp.o.d"
  "CMakeFiles/spider_net.dir/net/torus.cpp.o"
  "CMakeFiles/spider_net.dir/net/torus.cpp.o.d"
  "libspider_net.a"
  "libspider_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
