# Empty compiler generated dependencies file for bench_a2_journaling.
# This may be replaced when dependencies are built.
