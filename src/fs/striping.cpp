#include "fs/striping.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::fs {

OstAllocator::OstAllocator(std::span<Ost* const> osts, AllocatorMode mode)
    : osts_(osts.begin(), osts.end()), mode_(mode) {
  if (osts_.empty()) throw std::invalid_argument("OstAllocator: no OSTs");
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    index_of_id_.emplace(osts_[i]->id(), i);
  }
}

bool OstAllocator::qos_eligible(const Ost& o, double mean_fullness) const {
  // Lustre QOS: skip OSTs whose fullness exceeds the mean by a margin.
  return o.fullness() <= mean_fullness + 0.05;
}

std::vector<std::uint32_t> OstAllocator::allocate(std::uint32_t count,
                                                  Bytes file_size, Rng& rng) {
  count = std::min<std::uint32_t>(count, static_cast<std::uint32_t>(osts_.size()));
  if (count == 0) return {};
  const Bytes per_ost = (file_size + count - 1) / count;

  double mean_fullness = 0.0;
  if (mode_ == AllocatorMode::kQosWeighted) {
    for (const Ost* o : osts_) mean_fullness += o->fullness();
    mean_fullness /= static_cast<double>(osts_.size());
  }

  std::vector<std::uint32_t> chosen;
  chosen.reserve(count);
  std::vector<std::size_t> chosen_idx;
  // Start at the round-robin cursor (randomized slightly, as Lustre does,
  // to avoid lock-step allocation across clients).
  std::size_t start = rr_cursor_;
  if (mode_ == AllocatorMode::kQosWeighted && rng.chance(0.2)) {
    start = rng.uniform_index(osts_.size());
  }
  for (std::size_t probe = 0; probe < osts_.size() && chosen.size() < count; ++probe) {
    const std::size_t i = (start + probe) % osts_.size();
    Ost& o = *osts_[i];
    if (mode_ == AllocatorMode::kQosWeighted && !qos_eligible(o, mean_fullness)) {
      continue;
    }
    if (o.allocate(per_ost)) {
      chosen.push_back(o.id());
      chosen_idx.push_back(i);
    }
  }
  // Second pass without QOS filtering if we came up short.
  for (std::size_t probe = 0; probe < osts_.size() && chosen.size() < count; ++probe) {
    const std::size_t i = (start + probe) % osts_.size();
    if (std::find(chosen_idx.begin(), chosen_idx.end(), i) != chosen_idx.end()) {
      continue;
    }
    if (osts_[i]->allocate(per_ost)) {
      chosen.push_back(osts_[i]->id());
      chosen_idx.push_back(i);
    }
  }
  if (chosen.size() < count) {
    // Roll back a failed allocation.
    for (std::size_t i : chosen_idx) osts_[i]->release(per_ost);
    return {};
  }
  rr_cursor_ = (start + count) % osts_.size();
  return chosen;
}

void OstAllocator::release(std::span<const std::uint32_t> ost_ids, Bytes file_size) {
  if (ost_ids.empty()) return;
  const Bytes per_ost = (file_size + ost_ids.size() - 1) / ost_ids.size();
  for (std::uint32_t id : ost_ids) {
    auto it = index_of_id_.find(id);
    if (it != index_of_id_.end()) osts_[it->second]->release(per_ost);
  }
}

bool OstAllocator::resize(std::span<const std::uint32_t> ost_ids,
                          Bytes old_size, Bytes new_size) {
  if (ost_ids.empty()) return false;
  const Bytes per_old = (old_size + ost_ids.size() - 1) / ost_ids.size();
  const Bytes per_new = (new_size + ost_ids.size() - 1) / ost_ids.size();
  if (per_new == per_old) return true;
  std::vector<Ost*> touched;
  touched.reserve(ost_ids.size());
  for (std::uint32_t id : ost_ids) {
    auto it = index_of_id_.find(id);
    if (it != index_of_id_.end()) touched.push_back(osts_[it->second]);
  }
  if (per_new < per_old) {
    for (Ost* o : touched) o->release(per_old - per_new);
    return true;
  }
  std::size_t done = 0;
  for (; done < touched.size(); ++done) {
    if (!touched[done]->allocate(per_new - per_old)) break;
  }
  if (done == touched.size()) return true;
  // Grow did not fit: roll the partial reservation back.
  for (std::size_t i = 0; i < done; ++i) touched[i]->release(per_new - per_old);
  return false;
}

}  // namespace spider::fs
