// Macro-scale throughput of the sharded epoch engine (docs/parallel-engine.md).
//
// Drives core::ScaleScenario — a Spider II-shaped population of client zones
// with FGR cross-zone traffic — at 1x/4x/16x center scale, once on a serial
// schedule (workers=1) and once with the epoch fan-out enabled (workers=auto),
// both hosted on the same 8-shard engine and zone->shard map. Because the
// merged replay stream is worker-count invariant, the two runs are the same
// workload by construction and the bench checks their hashes in-run; the
// events/sec ratio is therefore a true parallel speedup, not two different
// simulations.
//
// Modes (mirrors bench_micro_engine):
//   --spider-json=PATH   write the machine-readable report (BENCH_scale.json)
//   --baseline=FILE      gate serial-schedule events/sec against a checked-in
//                        report (ci/bench-baseline-scale.json) at a 0.60x
//                        noise floor
//   --smoke              seconds-long run sized for CI
//
// The >=2x speedup claim is only assertable where >=4 epoch lanes exist
// (shared_pool().size() + 1 >= 4) and the run is not a smoke run; on narrower
// machines the ratio is reported but not gated, so single-core CI stays green
// while a real parallel collapse still fails where it can be seen.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/scale_scenario.hpp"
#include "net/fabric.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/time.hpp"

namespace {

using namespace spider;

using Clock = std::chrono::steady_clock;  // spiderlint: nondet-ok

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::size_t kShards = 8;

struct ScaleRunConfig {
  std::vector<double> scales{1.0, 4.0, 16.0};
  std::size_t clients_per_zone = 16;
  sim::SimTime horizon = 2 * sim::kSecond;
};

ScaleRunConfig smoke_config() {
  ScaleRunConfig cfg;
  cfg.clients_per_zone = 8;
  cfg.horizon = 1 * sim::kSecond;
  return cfg;
}

struct ScaleRun {
  double events_per_sec = 0.0;
  double events = 0.0;
  double elapsed_s = 0.0;
  std::uint64_t merged_hash = 0;
  std::uint64_t completed = 0;
};

core::ScaleParams scale_params(const ScaleRunConfig& cfg, double scale) {
  core::ScaleParams params;
  params.clients_per_zone = cfg.clients_per_zone;
  params.scale = scale;
  return params;
}

/// One scenario run on `shards` shards with the given zone->shard map and
/// worker budget; wall time covers engine.run only (construction excluded).
ScaleRun run_scale(const ScaleRunConfig& cfg, double scale, std::size_t shards,
                   const sim::ShardMap& map, std::size_t workers) {
  const core::ScaleParams params = scale_params(cfg, scale);
  const net::IbFabric fabric{net::FabricParams{}};
  sim::ShardedConfig engine_cfg;
  engine_cfg.lookahead = core::ScaleScenario::required_lookahead(fabric, params);
  engine_cfg.workers = workers;
  sim::ShardedSimulator engine(shards, engine_cfg);
  sim::ShardedReplay replay(engine);
  core::ScaleScenario scenario(params, fabric, engine, map);
  scenario.start();

  const Clock::time_point start = Clock::now();  // spiderlint: nondet-ok
  const std::uint64_t ran = engine.run(cfg.horizon);
  ScaleRun out;
  out.elapsed_s = seconds_since(start);
  out.events = static_cast<double>(ran);
  out.events_per_sec = out.elapsed_s > 0.0 ? out.events / out.elapsed_s : 0.0;
  out.merged_hash = replay.merged_hash();
  out.completed = scenario.totals().completed;
  return out;
}

int run_bench(const std::string& json_path, const std::string& baseline_path,
              bool smoke) {
  const ScaleRunConfig cfg = smoke ? smoke_config() : ScaleRunConfig{};
  const std::size_t lanes = std::min(kShards, shared_pool().size() + 1);

  bench::banner("macro-scale engine throughput (events/sec)");
  std::printf("  shards=%zu, epoch lanes available=%zu, horizon=%.3fs\n",
              kShards, lanes,
              static_cast<double>(cfg.horizon) / 1e9);

  bench::JsonReport report("macro_scale", smoke ? "smoke" : "full");
  bench::ShapeChecker checker;

  const auto add = [&report](const std::string& name, const ScaleRun& r) {
    report.add(name, "events_per_sec", r.events_per_sec);
    report.add(name, "events", r.events);
    report.add(name, "elapsed_s", r.elapsed_s);
    std::printf("  %-14s %12.0f events/sec  (%.0f events in %.3fs)\n",
                name.c_str(), r.events_per_sec, r.events, r.elapsed_s);
  };

  std::string baseline_text;
  if (!baseline_path.empty() &&
      !bench::read_text_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench: cannot read baseline '%s'\n",
                 baseline_path.c_str());
    return 1;
  }
  const auto gate = [&](const std::string& name, const ScaleRun& r) {
    if (baseline_text.empty()) return;
    double base = 0.0;
    if (!bench::json_number(baseline_text, name, "events_per_sec", base)) {
      checker.check(false, name + ": baseline entry present");
      return;
    }
    const double ratio = base > 0.0 ? r.events_per_sec / base : 0.0;
    report.add(name, "baseline_events_per_sec", base);
    report.add(name, "vs_baseline", ratio);
    char label[160];
    std::snprintf(label, sizeof(label),
                  "%s: %.2fx of baseline %.0f events/sec (floor 0.60x)",
                  name.c_str(), ratio, base);
    checker.check(ratio >= 0.6, label);
  };

  // Epoch-machinery overhead reference: the same 1x workload collapsed onto
  // one shard (one EventQueue, one epoch lane) — the closest thing to the
  // plain serial Simulator that can host cross-zone traffic.
  {
    const core::ScaleParams params = scale_params(cfg, 1.0);
    const sim::ShardMap map1(params.zones, 1);
    const ScaleRun single = run_scale(cfg, 1.0, 1, map1, 1);
    add("single_shard_1x", single);
    checker.check(single.events > 0, "single-shard run made forward progress");
    gate("single_shard_1x", single);
  }

  for (const double scale : cfg.scales) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "%.0fx", scale);
    const core::ScaleParams params = scale_params(cfg, scale);
    const sim::ShardMap map(params.zones, kShards);

    const ScaleRun serial = run_scale(cfg, scale, kShards, map, 1);
    const ScaleRun sharded = run_scale(cfg, scale, kShards, map, 0);
    add(std::string("serial_") + suffix, serial);
    add(std::string("sharded_") + suffix, sharded);

    checker.check(serial.events > 0 && sharded.events > 0,
                  std::string(suffix) + ": both schedules made progress");
    // The determinism bar, in-run: same map, same workload, different worker
    // budget — the merged replay streams must agree or the speedup below
    // would compare two different simulations.
    char hash_label[160];
    std::snprintf(hash_label, sizeof(hash_label),
                  "%s: sharded merged hash matches serial (0x%016llx)", suffix,
                  static_cast<unsigned long long>(serial.merged_hash));
    checker.check(serial.merged_hash == sharded.merged_hash &&
                      serial.completed == sharded.completed,
                  hash_label);

    const double speedup = serial.events_per_sec > 0.0
                               ? sharded.events_per_sec / serial.events_per_sec
                               : 0.0;
    report.add(std::string("speedup_") + suffix, "vs_serial", speedup);
    std::printf("  %-14s %12.2fx parallel speedup\n", suffix, speedup);
    // The >=2x acceptance claim, gated only where it is measurable.
    if (scale >= 16.0) {
      if (lanes >= 4 && !smoke) {
        char label[128];
        std::snprintf(label, sizeof(label),
                      "16x: sharded >= 2x serial events/sec (got %.2fx)",
                      speedup);
        checker.check(speedup >= 2.0, label);
      } else {
        std::printf(
            "  [SKIP] 16x speedup gate: needs >=4 epoch lanes and full mode "
            "(lanes=%zu, %s)\n",
            lanes, smoke ? "smoke" : "full");
      }
    }

    // Only the serial schedule is gated against the checked-in baseline: its
    // throughput is machine-width independent, so the 0.60x floor means the
    // same thing everywhere. Sharded throughput is reported (and its >=2x
    // speedup asserted above where measurable) but not baseline-gated —
    // barrier overhead varies with lane count.
    gate(std::string("serial_") + suffix, serial);
  }

  if (!json_path.empty()) {
    if (!report.write_file(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return checker.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_scale.json";
  std::string baseline_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--spider-json=")) {
      json_path = std::string(arg.substr(14));
    } else if (arg.starts_with("--baseline=")) {
      baseline_path = std::string(arg.substr(11));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spider-json=PATH] [--baseline=FILE] "
                   "[--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  return run_bench(json_path, baseline_path, smoke);
}
