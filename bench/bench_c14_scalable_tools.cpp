// C14 (Section VI-C, Lesson 19): standard Linux tools do not work at scale.
//
// du hammers the MDS (hence server-side LustreDU); cp/find/tar are
// single-threaded and latency-bound (hence dcp/dfind/dtar from the
// OLCF/LLNL/LANL/DDN collaboration).
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fs/fs_namespace.hpp"
#include "tools/lustredu.hpp"
#include "tools/ptools.hpp"

int main() {
  using namespace spider;
  using namespace spider::tools;

  bench::banner("C14a: du vs LustreDU on a 1M-file namespace");
  Rng rng(2014);
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  for (int i = 0; i < 32; ++i) {
    std::vector<block::Disk> members;
    for (int m = 0; m < 10; ++m) {
      members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
    }
    groups.push_back(std::make_unique<block::Raid6Group>(block::RaidParams{},
                                                         std::move(members)));
    osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
    ptrs.push_back(osts.back().get());
  }
  fs::FsNamespace ns("atlas1", ptrs);
  for (int f = 0; f < 1'000'000; ++f) {
    ns.create_file(f % 50, 8_MiB, 0, rng);
  }

  const auto du_cost = client_du(ns, 7, /*background_util=*/0.5);
  LustreDu lustredu;
  lustredu.daily_scan(ns, sim::kDay);
  const auto ldu_cost = lustredu.usage(7);

  Table du_table;
  du_table.set_columns({"tool", "MDS ops", "wall time s", "bytes reported TB"});
  du_table.add_row({std::string("client du (under 50% MDS load)"),
                    du_cost.mds_ops, du_cost.wall_s, to_tb(du_cost.bytes_reported)});
  du_table.add_row({std::string("LustreDU (daily server snapshot)"),
                    ldu_cost.mds_ops, ldu_cost.wall_s,
                    to_tb(ldu_cost.bytes_reported)});
  du_table.print(std::cout);

  bench::banner("C14b: serial vs parallel tree tools (1M files, 8 MiB mean)");
  TreeSpec tree;
  ToolEnvironment env;
  Table t;
  t.set_columns({"tool", "ranks", "wall time", "speedup", "MDS util"});
  const auto sfind = run_serial_find(tree, env);
  const auto scp = run_serial_cp(tree, env);
  const auto star = run_serial_tar(tree, env);
  auto add = [&t](const std::string& name, unsigned ranks,
                  const ToolRunResult& r, double base) {
    t.add_row({name, static_cast<std::int64_t>(ranks),
               r.wall_s > 120.0 ? std::to_string(r.wall_s / 60.0) + " min"
                                : std::to_string(r.wall_s) + " s",
               base / r.wall_s, r.mds_utilization});
  };
  add("find", 1, sfind, sfind.wall_s);
  add("dfind", 4, run_dfind(tree, env, 4), sfind.wall_s);
  add("dfind", 32, run_dfind(tree, env, 32), sfind.wall_s);
  add("cp -r", 1, scp, scp.wall_s);
  add("dcp", 16, run_dcp(tree, env, 16), scp.wall_s);
  add("dcp", 128, run_dcp(tree, env, 128), scp.wall_s);
  add("tar -c", 1, star, star.wall_s);
  add("dtar", 16, run_dtar(tree, env, 16), star.wall_s);
  add("dtar", 128, run_dtar(tree, env, 128), star.wall_s);
  t.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(du_cost.mds_ops > 5e5,
                "client du costs ~a million weighted MDS ops on a 1M-file tree");
  checker.check(ldu_cost.mds_ops == 0.0 && ldu_cost.wall_s < 1e-2,
                "LustreDU answers at zero MDS cost from the snapshot");
  checker.check(ldu_cost.bytes_reported == du_cost.bytes_reported,
                "LustreDU agrees with the exhaustive walk");
  const auto dfind32 = run_dfind(tree, env, 32);
  checker.check(sfind.wall_s / dfind32.wall_s > 4.0,
                "dfind speeds up the walk several-fold");
  const auto dcp128 = run_dcp(tree, env, 128);
  checker.check(scp.wall_s / dcp128.wall_s > 20.0,
                "dcp turns a day-scale copy into minutes");
  return checker.exit_code();
}
