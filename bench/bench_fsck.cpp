// spiderfsck scan throughput over namespace size (docs/fsck.md).
//
// Builds synthetic namespaces of increasing file count, runs the phase-1
// scan + phase-2 cross-reference once serially (--jobs=1) and once with the
// shard fan-out enabled (--jobs=auto over 32 shards), and reports slots/sec.
// Because fsck output is worker-count invariant by construction, the bench
// checks in-run that the parallel pass produces byte-identical report JSON
// and the same state hash as the serial pass — the speedup compares the same
// verification, not two different ones. A corrupt -> repair -> re-check
// convergence pass runs once per size as a shape check (repair wall time is
// reported, not gated).
//
// Modes (mirrors bench_macro_scale):
//   --spider-json=PATH   write the machine-readable report (BENCH_fsck.json)
//   --baseline=FILE      gate serial slots/sec against a checked-in report
//                        (ci/bench-baseline-fsck.json) at a 0.60x noise floor
//   --smoke              seconds-long run sized for CI
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "tools/spiderfsck/fsck.hpp"

namespace {

using namespace spider;

using Clock = std::chrono::steady_clock;  // spiderlint: nondet-ok

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct FsckRunConfig {
  std::vector<std::size_t> sizes{4096, 16384, 65536};
  std::size_t target_slots = 1 << 19;  ///< reps sized so each point scans this
};

// Smoke keeps a subset of the full-mode sizes (same report names, so the
// checked-in full-mode baseline still gates it) and scans fewer total slots.
FsckRunConfig smoke_config() {
  FsckRunConfig cfg;
  cfg.sizes = {4096, 16384};
  cfg.target_slots = 1 << 16;
  return cfg;
}

struct FsckRun {
  double slots_per_sec = 0.0;
  double elapsed_s = 0.0;
  std::size_t reps = 0;
  std::uint64_t state_hash = 0;
  std::string report_json;
};

/// Time `reps` dry fsck passes over one tree with the given fan-out. Dry
/// runs never mutate, so every rep (and every configuration) sees the same
/// namespace. `slots` is the actual slot count (creates can fall short of
/// the requested file count when the cluster fills).
FsckRun run_point(tools::SyntheticFs& fs, std::size_t slots, std::size_t reps,
                  std::size_t jobs, std::size_t shards) {
  tools::FsckOptions options;
  options.jobs = jobs;
  options.shards = shards;
  FsckRun out;
  out.reps = reps;
  tools::FsckReport last;
  const Clock::time_point start = Clock::now();  // spiderlint: nondet-ok
  for (std::size_t r = 0; r < reps; ++r) {
    last = tools::run_fsck(fs.target(), options);
  }
  out.elapsed_s = seconds_since(start);
  const double scanned =
      static_cast<double>(slots) * static_cast<double>(reps);
  out.slots_per_sec = out.elapsed_s > 0.0 ? scanned / out.elapsed_s : 0.0;
  out.state_hash = last.state_hash;
  out.report_json = tools::fsck_report_json(last);
  return out;
}

int run_bench(const std::string& json_path, const std::string& baseline_path,
              bool smoke) {
  const FsckRunConfig cfg = smoke ? smoke_config() : FsckRunConfig{};

  bench::banner("spiderfsck scan throughput (slots/sec)");

  bench::JsonReport report("fsck", smoke ? "smoke" : "full");
  bench::ShapeChecker checker;

  std::string baseline_text;
  if (!baseline_path.empty() &&
      !bench::read_text_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench: cannot read baseline '%s'\n",
                 baseline_path.c_str());
    return 1;
  }

  const auto add = [&report](const std::string& name, const FsckRun& r) {
    report.add(name, "slots_per_sec", r.slots_per_sec);
    report.add(name, "elapsed_s", r.elapsed_s);
    report.add(name, "reps", static_cast<double>(r.reps));
    std::printf("  %-16s %12.0f slots/sec  (%zu reps in %.3fs)\n",
                name.c_str(), r.slots_per_sec, r.reps, r.elapsed_s);
  };
  const auto gate = [&](const std::string& name, const FsckRun& r) {
    if (baseline_text.empty()) return;
    double base = 0.0;
    if (!bench::json_number(baseline_text, name, "slots_per_sec", base)) {
      checker.check(false, name + ": baseline entry present");
      return;
    }
    const double ratio = base > 0.0 ? r.slots_per_sec / base : 0.0;
    report.add(name, "baseline_slots_per_sec", base);
    report.add(name, "vs_baseline", ratio);
    char label[160];
    std::snprintf(label, sizeof(label),
                  "%s: %.2fx of baseline %.0f slots/sec (floor 0.60x)",
                  name.c_str(), ratio, base);
    checker.check(ratio >= 0.6, label);
  };

  for (const std::size_t files : cfg.sizes) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "%zu", files);
    tools::SyntheticFsConfig fs_cfg;
    fs_cfg.files = files;
    fs_cfg.churn = 0.25;
    tools::SyntheticFs fs = tools::make_synthetic_fs(fs_cfg);
    const std::size_t slots = fs.ns->slot_count();
    checker.check(slots > 0, std::string(suffix) + " files: tree built");
    const std::size_t reps =
        cfg.target_slots >= slots ? cfg.target_slots / slots : 1;

    const FsckRun serial = run_point(fs, slots, reps, /*jobs=*/1,
                                     /*shards=*/32);
    const FsckRun parallel = run_point(fs, slots, reps, /*jobs=*/0,
                                       /*shards=*/32);
    add(std::string("serial_") + suffix, serial);
    add(std::string("parallel_") + suffix, parallel);

    // The determinism bar, in-run: the fanned-out scan must be byte-identical
    // to the serial one or the speedup compares two different checks.
    char hash_label[160];
    std::snprintf(hash_label, sizeof(hash_label),
                  "%s files: parallel report matches serial (0x%016llx)",
                  suffix, static_cast<unsigned long long>(serial.state_hash));
    checker.check(serial.report_json == parallel.report_json &&
                      serial.state_hash == parallel.state_hash,
                  hash_label);

    const double speedup = serial.slots_per_sec > 0.0
                               ? parallel.slots_per_sec / serial.slots_per_sec
                               : 0.0;
    report.add(std::string("speedup_") + suffix, "vs_serial", speedup);
    std::printf("  %-16s %12.2fx parallel speedup\n", suffix, speedup);

    // Corrupt -> repair -> re-check convergence, once per size. Repair wall
    // time is reported for trajectory watching; only convergence is gated.
    {
      Rng rng(2014 + files);
      for (int k = 0; k < 10; ++k) {
        tools::inject_corruption(fs.target(),
                                 static_cast<tools::FindingKind>(k), rng);
      }
      tools::FsckOptions repair_opts;
      repair_opts.repair = true;
      const Clock::time_point start = Clock::now();  // spiderlint: nondet-ok
      const tools::FsckReport repaired =
          tools::run_fsck(fs.target(), repair_opts);
      const double repair_s = seconds_since(start);
      report.add(std::string("repair_") + suffix, "elapsed_s", repair_s);
      report.add(std::string("repair_") + suffix, "findings",
                 static_cast<double>(repaired.findings.size()));
      const bool converged = tools::run_fsck(fs.target()).clean();
      char label[96];
      std::snprintf(label, sizeof(label),
                    "%s files: corrupt tree repaired in one pass (%.3fs)",
                    suffix, repair_s);
      checker.check(!repaired.clean() && converged, label);
    }

    gate(std::string("serial_") + suffix, serial);
  }

  if (!json_path.empty()) {
    if (!report.write_file(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return checker.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fsck.json";
  std::string baseline_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--spider-json=")) {
      json_path = std::string(arg.substr(14));
    } else if (arg.starts_with("--baseline=")) {
      baseline_path = std::string(arg.substr(11));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spider-json=PATH] [--baseline=FILE] "
                   "[--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  return run_bench(json_path, baseline_path, smoke);
}
