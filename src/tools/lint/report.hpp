// spiderlint output rendering: human text and machine JSON.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/rules.hpp"

namespace spider::lint {

/// Aggregate result of a lint run.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  /// Per-phase wall time (milliseconds), reported by --stats: read+scan,
  /// the per-file rule pass, and the whole-program pass (L5 + L13-L16).
  /// Not part of the JSON/SARIF renderings — timing is telemetry, not a
  /// finding.
  double scan_ms = 0.0;
  double rules_ms = 0.0;
  double global_ms = 0.0;
  std::size_t errors() const;
  std::size_t warnings() const;
  bool clean() const { return findings.empty(); }
};

/// gcc-style text: `file:line:col: severity: [Lx] message`, one per
/// finding, followed by a summary line. With `fix_hints`, each finding's
/// hint is printed indented underneath and a per-rule hint digest closes
/// the report.
std::string render_text(const LintReport& report, bool fix_hints);

/// Stable machine-readable JSON for CI:
/// {"version":1,"files_scanned":N,
///  "counts":{"error":E,"warning":W},
///  "findings":[{"rule","severity","file","line","column","message","hint"}]}
std::string render_json(const LintReport& report);

/// SARIF 2.1.0 for code-scanning UIs: one run, the full rule table under
/// tool.driver.rules, one result per finding with a physicalLocation
/// (artifactLocation.uri + region.startLine/startColumn). Paths are emitted
/// as given (relative when the lint was invoked with relative paths).
std::string render_sarif(const LintReport& report);

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace spider::lint
