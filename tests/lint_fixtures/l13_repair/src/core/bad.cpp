// Fixture for spiderlint rule L13: calls into the repair surface from a
// non-repair context (src/core is not tools/spiderfsck, tools/faultcli,
// tests, or bench). The direct call, the annotated-trigger call, and the
// interprocedural reach are breaches; the suppressed call is the
// engineered false positive.
#include "fs/repairable.hpp"

namespace fixture {

// Single definition that calls a trigger: `reset_all` itself becomes
// repair-reaching, and its body holds a direct breach.
void reset_all(Table& t) {
  t.fsck_set_count(0);  // L13 (direct call, non-repair context)
}

void apply(Table& t) {
  t.scrub_reset();  // L13 (annotated trigger)
}

void tick(Table& t) {
  reset_all(t);  // L13 (reaches the surface: reset_all -> fsck_set_count)
}

// Reviewed escape hatch: the suppression names the rule's token. Must NOT
// be flagged.
void migrate(Table& t) {
  t.fsck_set_count(7);  // spiderlint: repair-ok — one-shot schema migration
}

}  // namespace fixture
