#include "tools/standard_checks.hpp"

#include <algorithm>
#include <string>

namespace spider::tools {

void IbErrorCounters::add_symbol_errors(std::size_t port, std::uint64_t n) {
  symbol_.at(port) += n;
}

void IbErrorCounters::add_link_down(std::size_t port) { ++down_.at(port); }

void IbErrorCounters::clear() {
  std::fill(symbol_.begin(), symbol_.end(), 0);
  std::fill(down_.begin(), down_.end(), 0);
}

CheckScheduler make_standard_checks(core::CenterModel& center,
                                    const IbErrorCounters& ib,
                                    const std::vector<double>& mds_offered,
                                    const CheckThresholds& thresholds) {
  CheckScheduler sched;

  // RAID group states, one check per SSU.
  for (std::size_t s = 0; s < center.num_ssus(); ++s) {
    sched.add_check({"raid-ssu" + std::to_string(s), [&center, s] {
      std::size_t degraded = 0, rebuilding = 0, failed = 0;
      auto& ssu = center.ssu(s);
      for (std::size_t g = 0; g < ssu.groups(); ++g) {
        switch (ssu.group(g).state()) {
          case block::RaidState::kDegraded: ++degraded; break;
          case block::RaidState::kRebuilding: ++rebuilding; break;
          case block::RaidState::kFailed: ++failed; break;
          case block::RaidState::kNormal: break;
        }
      }
      if (failed > 0) {
        return CheckResult{CheckStatus::kCritical,
                           std::to_string(failed) + " groups failed"};
      }
      if (degraded + rebuilding > 0) {
        return CheckResult{CheckStatus::kWarning,
                           std::to_string(degraded) + " degraded, " +
                               std::to_string(rebuilding) + " rebuilding"};
      }
      return CheckResult{};
    }});
    sched.add_check({"controller-ssu" + std::to_string(s), [&center, s] {
      switch (center.ssu(s).controller().state()) {
        case block::PairState::kActiveActive:
          return CheckResult{};
        case block::PairState::kFailedOver:
          return CheckResult{CheckStatus::kWarning, "failed over"};
        case block::PairState::kOffline:
          return CheckResult{CheckStatus::kCritical, "pair offline"};
      }
      return CheckResult{};
    }});
  }

  // IB cable checks (the OFED counter battery).
  for (std::size_t port = 0; port < ib.ports(); ++port) {
    sched.add_check({"ib-port" + std::to_string(port), [&ib, port, thresholds] {
      if (ib.link_downs(port) > 0 ||
          ib.symbol_errors(port) >= thresholds.symbol_critical) {
        return CheckResult{CheckStatus::kCritical,
                           "cable requires in-place diagnosis"};
      }
      if (ib.symbol_errors(port) >= thresholds.symbol_warning) {
        return CheckResult{CheckStatus::kWarning, "symbol errors accumulating"};
      }
      return CheckResult{};
    }});
  }

  // Fullness per namespace (the 70%/90% knees).
  for (std::size_t n = 0; n < center.filesystem().namespaces(); ++n) {
    sched.add_check({"fullness-ns" + std::to_string(n), [&center, n, thresholds] {
      const double f = center.filesystem().ns(n).fullness();
      if (f >= thresholds.fullness_critical) {
        return CheckResult{CheckStatus::kCritical,
                           "past severe degradation point"};
      }
      if (f >= thresholds.fullness_warning) {
        return CheckResult{CheckStatus::kWarning, "past the 70% knee"};
      }
      return CheckResult{};
    }});
  }

  // MDS saturation per namespace.
  for (std::size_t n = 0; n < center.filesystem().namespaces() &&
                          n < mds_offered.size();
       ++n) {
    sched.add_check({"mds-ns" + std::to_string(n),
                     [&center, &mds_offered, n, thresholds] {
      const auto& mds = center.filesystem().ns(n).mds();
      const double util = mds_offered[n] / mds.capacity_ops();
      if (util >= 1.0) {
        return CheckResult{CheckStatus::kCritical, "MDS saturated"};
      }
      if (util >= thresholds.mds_warning_util) {
        return CheckResult{CheckStatus::kWarning, "MDS near saturation"};
      }
      return CheckResult{};
    }});
  }

  return sched;
}

}  // namespace spider::tools
