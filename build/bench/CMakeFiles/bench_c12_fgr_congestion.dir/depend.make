# Empty dependencies file for bench_c12_fgr_congestion.
# This may be replaced when dependencies are built.
