#include "tools/release_testing.hpp"

#include <algorithm>
#include <cmath>

namespace spider::tools {

double detection_probability(const ScaleDefect& defect,
                             std::uint32_t test_clients) {
  if (test_clients < defect.threshold_clients) return 0.0;
  // Manifestation odds grow with scale margin past the threshold and
  // saturate at the defect's intrinsic probability.
  const double margin = static_cast<double>(test_clients) /
                        static_cast<double>(defect.threshold_clients);
  const double ramp = 1.0 - std::exp(-(margin - 1.0) - 0.5);
  return defect.manifest_prob * std::clamp(ramp, 0.1, 1.0);
}

CampaignResult simulate_campaign(std::size_t defects,
                                 const ReleaseCampaign& campaign, Rng& rng) {
  CampaignResult result;
  result.defects = defects;
  const double lo = std::log2(8.0);
  const double hi = std::log2(static_cast<double>(campaign.full_scale_clients) * 2.0);
  for (std::size_t d = 0; d < defects; ++d) {
    ScaleDefect defect;
    defect.threshold_clients =
        static_cast<std::uint32_t>(std::exp2(rng.uniform(lo, hi)));
    defect.manifest_prob = rng.uniform(0.4, 0.95);

    auto stage_catches = [&](std::uint32_t clients, unsigned runs) {
      const double p = detection_probability(defect, clients);
      for (unsigned r = 0; r < runs; ++r) {
        if (rng.chance(p)) return true;
      }
      return false;
    };

    if (stage_catches(campaign.testbed_clients, campaign.testbed_runs)) {
      ++result.caught_on_testbed;
    } else if (stage_catches(campaign.full_scale_clients,
                             campaign.full_scale_runs)) {
      ++result.caught_at_full_scale;
    } else {
      ++result.escaped_to_production;
    }
  }
  return result;
}

}  // namespace spider::tools
