// Lustre client I/O pipeline model.
//
// The client-side knobs every Lustre best-practices guide (including
// OLCF's, Section VII) tunes: RPCs in flight per OST, pages per RPC, and
// the dirty-page budget. They set the *intrinsic* per-process streaming
// ceiling — the rate a perfectly placed client can sustain:
//
//   ceiling = min( max_rpcs_in_flight * rpc_bytes / rtt,
//                  max_dirty_bytes / rtt,
//                  client_link_bw )
//
// In the center model this intrinsic ceiling exceeds the placement-limited
// rate (CenterConfig::per_hop_penalty, docs/MODEL_NOTES.md §4) for all but
// zero-hop clients, which is exactly the paper's observation: tuning
// client knobs alone cannot buy what placement buys.
#pragma once

#include "common/units.hpp"

namespace spider::fs {

struct LustreClientParams {
  /// osc.*.max_rpcs_in_flight (per OST).
  unsigned max_rpcs_in_flight = 8;
  /// Pages per RPC (256 x 4 KiB = 1 MiB, the classic wire size).
  unsigned max_pages_per_rpc = 256;
  /// osc.*.max_dirty_mb translated to bytes.
  Bytes max_dirty_bytes = 32_MiB;
  /// Request round-trip to the OSS at zero congestion, seconds.
  double rpc_rtt_s = 4e-3;
  /// Client NIC ceiling.
  Bandwidth link_bw = 5.0 * kGBps;

  Bytes rpc_bytes() const {
    return static_cast<Bytes>(max_pages_per_rpc) * 4_KiB;
  }
};

/// Intrinsic streaming ceiling to one OST.
Bandwidth client_stream_ceiling(const LustreClientParams& params);

/// Ceiling for a given transfer size: transfers below the RPC size cannot
/// fill the pipeline (one RPC per syscall), reproducing the small-transfer
/// penalty at the client level.
Bandwidth client_transfer_ceiling(const LustreClientParams& params,
                                  Bytes transfer_size);

/// Striping a file over `stripe_count` OSTs multiplies the per-OST
/// pipeline (each OSC has its own RPCs in flight), up to the link.
Bandwidth client_striped_ceiling(const LustreClientParams& params,
                                 unsigned stripe_count);

}  // namespace spider::fs
