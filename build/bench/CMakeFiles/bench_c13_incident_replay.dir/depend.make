# Empty dependencies file for bench_c13_incident_replay.
# This may be replaced when dependencies are built.
