// A Lustre namespace: one MDS plus a set of OSTs with a file table.
//
// Section IV-C: OLCF splits capacity into multiple namespaces (four on
// Spider I, two on Spider II) because one MDS cannot sustain the center's
// metadata rate and a single namespace couples every resource to any
// problem. Each namespace spans half the Spider II hardware, which is why
// the Figure 3/4 experiments top out near half the system's 1 TB/s.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/journal.hpp"
#include "fs/mds.hpp"
#include "fs/ost.hpp"
#include "fs/striping.hpp"
#include "sim/time.hpp"

namespace spider::fs {

using FileId = std::uint64_t;
inline constexpr FileId kNoFile = 0;

// FileId layout: (generation << 32) | (slot + 1). Slot reuse bumps the
// generation so stale ids never alias a new file. The codec is public so
// spiderfsck can verify a record's id against its table position (and
// rewrite it when corrupt).
inline constexpr FileId file_id_for_slot(std::uint32_t generation,
                                         std::size_t slot) {
  return (static_cast<FileId>(generation) << 32) |
         static_cast<FileId>(slot + 1);
}
inline constexpr std::size_t slot_of_file_id(FileId id) {
  return static_cast<std::size_t>((id & 0xffffffffULL) - 1);
}
inline constexpr std::uint32_t generation_of_file_id(FileId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

struct FileRecord {
  FileId id = kNoFile;
  std::uint32_t project = 0;
  Bytes size = 0;
  sim::SimTime atime = 0;
  sim::SimTime mtime = 0;
  sim::SimTime ctime = 0;
  std::uint32_t stripe_offset = 0;  ///< into the namespace stripe pool
  std::uint32_t stripe_count = 0;
  bool alive = false;
};

class FsNamespace {
 public:
  /// OST pointers are non-owning and must outlive the namespace.
  FsNamespace(std::string name, std::vector<Ost*> osts,
              const MdsParams& mds_params = {},
              AllocatorMode alloc_mode = AllocatorMode::kQosWeighted,
              StripePolicy default_policy = {});

  const std::string& name() const { return name_; }
  Mds& mds() { return mds_; }
  const Mds& mds() const { return mds_; }
  OstAllocator& allocator() { return allocator_; }
  std::size_t num_osts() const { return osts_.size(); }
  Ost& ost(std::size_t i) { return *osts_.at(i); }
  const Ost& ost(std::size_t i) const { return *osts_.at(i); }
  const StripePolicy& default_policy() const { return default_policy_; }

  // --- changelog attachment (ROADMAP item 2) ------------------------------
  // When an OpLog is attached, every mutation path selected by the mask
  // appends its record *before* touching namespace state (spiderlint L14),
  // so consumers (fs/changelog.hpp) can rebuild per-project accounting from
  // the committed prefix alone. The log is non-owning and the namespace
  // never commits: the durability cursor belongs to whoever owns the log.
  void attach_oplog(OpLog* log, ChangelogMask mask = kLogDefault)
      SPIDER_JOURNALED("wires the journal up; stores only the log pointer "
                       "and mask, never namespace state") {
    oplog_ = log;
    oplog_mask_ = mask;
  }
  OpLog* oplog() const { return oplog_; }
  ChangelogMask changelog_mask() const { return oplog_mask_; }

  // --- file operations (metadata accounted on the MDS) -------------------
  /// Create a file; returns kNoFile when no space can be found.
  FileId create_file(std::uint32_t project, Bytes size, sim::SimTime now,
                     Rng& rng, std::optional<StripePolicy> policy = {});
  bool exists(FileId id) const;
  const FileRecord& file(FileId id) const;
  /// Read access: bumps atime, accounts lookup + stat. Emits kSetattr only
  /// under kLogAtime (atime churn is masked off by default, as in Lustre).
  void read_file(FileId id, sim::SimTime now);
  /// Modify: bumps mtime (changelog kSetattr).
  void touch_file(FileId id, sim::SimTime now);
  /// stat() only (no data access).
  void stat_file(FileId id);
  /// Grow or shrink a file in place on its existing stripes (changelog
  /// kResize carrying prev_size). Returns false — with no state change and
  /// no record — when a grow does not fit.
  bool resize_file(FileId id, Bytes new_size, sim::SimTime now);
  /// Reassign a file to a new project/owner (changelog kSetProject carrying
  /// prev_project). Returns false for unknown ids.
  bool set_project(FileId id, std::uint32_t new_project, sim::SimTime now);
  bool unlink(FileId id, sim::SimTime now);

  /// Visit every live file. Counts as a full namespace walk.
  void for_each_file(const std::function<void(const FileRecord&)>& fn) const;

  /// Number of full-namespace enumerations ever taken (for_each_file,
  /// live_ids, recount_live, and everything built on them). The changelog
  /// oracle asserts incremental purge/LustreDU query paths leave this
  /// untouched — the whole point of ROADMAP item 2 is zero walks at 1e9
  /// entries.
  std::uint64_t full_walks() const { return full_walks_; }

  // --- stable enumeration (spiderfsck scan phases, spiderlint L1) ---------
  // The inode table is a slot vector, so slot index IS the canonical walk
  // order: ascending, gap-free, identical at any scan fan-out. Dead slots
  // are exposed too — fsck inspects them for zombie records.
  /// Number of inode-table slots ever allocated (live + dead).
  std::size_t slot_count() const { return files_.size(); }
  /// Record in slot `i`, alive or not.
  const FileRecord& slot_record(std::size_t i) const { return files_.at(i); }
  /// Live file ids in ascending slot order — the canonical stable walk
  /// (sort the result for ascending-id order; both are deterministic).
  std::vector<FileId> live_ids() const;
  /// Ground-truth recount of live records (fsck checks live_files() drift
  /// against this).
  std::uint64_t recount_live() const;
  std::size_t stripe_pool_size() const { return stripe_pool_.size(); }

  // --- fsck repair / seeded-corruption surface ----------------------------
  // Deliberately blunt mutators, named so call sites are greppable: only
  // tools/spiderfsck (repair phase) and seeded-corruption tests may touch
  // them. They bypass aliveness checks because fsck must reach zombies.
  /// Mutable record access by slot, dead slots included.
  FileRecord& fsck_record(std::size_t slot) { return files_.at(slot); }
  /// Mutable view of a record's stripe entries, clamped to the pool (a
  /// corrupt record can claim a span past the pool's end).
  std::span<std::uint32_t> fsck_stripes(const FileRecord& rec);
  /// Overwrite the live-file counter (fsck live-count repair).
  void fsck_set_live_files(std::uint64_t n) { live_files_ = n; }
  /// Overwrite the created-file counter (fsck journal reconciliation).
  void fsck_set_total_created(std::uint64_t n) { total_created_ = n; }

  // --- capacity ----------------------------------------------------------
  Bytes capacity() const;
  Bytes used() const;
  double fullness() const;
  std::uint64_t live_files() const { return live_files_; }
  std::uint64_t total_created() const { return total_created_; }
  /// Per-project usage, ordered by project id so reports and snapshot
  /// consumers (LustreDU) see a canonical order.
  std::map<std::uint32_t, Bytes> usage_by_project() const;

  /// Aggregate OST-side bandwidth (server-side ceiling is the center
  /// model's business).
  Bandwidth aggregate_ost_bw(block::IoMode mode, block::IoDir dir,
                             Bytes request_size = 1_MiB) const;

  std::span<const std::uint32_t> stripes_of(const FileRecord& rec) const;

 private:
  FileRecord& record(FileId id);

  std::string name_;
  std::vector<Ost*> osts_;
  Mds mds_;
  OstAllocator allocator_;
  StripePolicy default_policy_;
  std::vector<FileRecord> files_;
  std::vector<std::uint32_t> stripe_pool_;
  std::vector<std::size_t> free_slots_;
  std::uint64_t live_files_ = 0;
  std::uint64_t total_created_ = 0;
  OpLog* oplog_ = nullptr;  ///< non-owning; null when no changelog attached
  ChangelogMask oplog_mask_ = kLogDefault;
  mutable std::uint64_t full_walks_ = 0;  ///< telemetry: full enumerations
};

}  // namespace spider::fs
