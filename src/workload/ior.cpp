#include "workload/ior.hpp"

#include <algorithm>
#include <limits>

namespace spider::workload {

IorResult run_ior(IoPathProvider& provider, const IorConfig& cfg) {
  provider.reset_flows();
  auto& solver = provider.solver();
  const std::size_t clients = std::min(cfg.clients, provider.max_clients());
  const std::size_t osts = provider.num_osts();
  for (std::size_t c = 0; c < clients; ++c) {
    DataFlow flow =
        provider.data_flow(c, c % osts, cfg.dir, cfg.mode, cfg.transfer_size);
    solver.add_flow(std::move(flow.path), flow.rate_cap);
  }
  solver.solve();

  IorResult result;
  result.aggregate_bw = solver.aggregate_rate();
  result.bottleneck = solver.bottleneck();
  double min_bw = std::numeric_limits<double>::infinity();
  for (std::size_t f = 0; f < solver.flows(); ++f) {
    min_bw = std::min(min_bw, solver.flow_rate(f));
  }
  result.min_client_bw = clients > 0 ? min_bw : 0.0;
  result.mean_client_bw =
      clients > 0 ? result.aggregate_bw / static_cast<double>(clients) : 0.0;
  result.bytes_moved =
      static_cast<Bytes>(result.aggregate_bw * cfg.stonewall_s);
  return result;
}

double transfer_size_rate_cap(Bytes transfer_size, Bandwidth stream_bw,
                              Bytes knee, Bytes max_rpc,
                              double oversize_penalty) {
  if (transfer_size == 0) return 0.0;
  const double t_eff =
      static_cast<double>(std::min<Bytes>(transfer_size, max_rpc));
  double cap = stream_bw * t_eff / (t_eff + static_cast<double>(knee));
  if (transfer_size > max_rpc) cap *= oversize_penalty;
  return cap;
}

}  // namespace spider::workload
