#include "workload/trace_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spider::workload {

namespace {
constexpr const char* kHeader = "time_ns,client,size_bytes,dir,mode";

template <typename T>
T parse_number(const std::string& field, const char* what) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("trace csv: bad ") + what + " '" +
                             field + "'");
  }
  return value;
}
}  // namespace

void write_trace_csv(std::ostream& os, std::span<const IoRequest> trace) {
  os << kHeader << "\n";
  for (const auto& r : trace) {
    os << r.issue_time << ',' << r.client << ',' << r.size << ','
       << (r.dir == block::IoDir::kWrite ? 'W' : 'R') << ','
       << (r.mode == block::IoMode::kSequential ? 'S' : 'R') << "\n";
  }
}

std::vector<IoRequest> read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("trace csv: missing or wrong header");
  }
  std::vector<IoRequest> trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 5) {
      throw std::runtime_error("trace csv: line " + std::to_string(line_no) +
                               ": expected 5 fields");
    }
    IoRequest r;
    r.issue_time = parse_number<sim::SimTime>(fields[0], "time");
    r.client = parse_number<std::uint32_t>(fields[1], "client");
    r.size = parse_number<Bytes>(fields[2], "size");
    if (fields[3] == "W") {
      r.dir = block::IoDir::kWrite;
    } else if (fields[3] == "R") {
      r.dir = block::IoDir::kRead;
    } else {
      throw std::runtime_error("trace csv: bad dir '" + fields[3] + "'");
    }
    if (fields[4] == "S") {
      r.mode = block::IoMode::kSequential;
    } else if (fields[4] == "R") {
      r.mode = block::IoMode::kRandom;
    } else {
      throw std::runtime_error("trace csv: bad mode '" + fields[4] + "'");
    }
    trace.push_back(r);
  }
  return trace;
}

std::string trace_to_string(std::span<const IoRequest> trace) {
  std::ostringstream os;
  write_trace_csv(os, trace);
  return os.str();
}

std::vector<IoRequest> trace_from_string(const std::string& csv) {
  std::istringstream is(csv);
  return read_trace_csv(is);
}

}  // namespace spider::workload
