// Declarative fault-injection plans compiled into Simulator events.
//
// The paper's hardest-won lessons are about failure behaviour — latent slow
// disks dragging RAID groups (Lesson 13), a RAID-6 rebuild colliding with an
// enclosure loss inside one failure domain (Lesson 11), controller
// failovers, congested LNET routers (Lesson 14). A `FaultPlan` describes
// such a scenario declaratively: a list of injections, each either timed
// (fire at `at`) or trigger-conditioned (poll a predicate from `at` until it
// holds). `FaultInjector` compiles the plan onto a Simulator, scheduling
// every injection — and its recovery, when `duration` is set — as ordinary
// events that carry replay sites, so a fault campaign is bit-reproducible
// under the deterministic-replay harness (sim/replay.hpp) and a violation is
// reproducible from its (plan, seed) pair alone.
//
// This layer is subsystem-agnostic: the injector knows *when* faults fire,
// while the binding layer (tools/faultcli/campaign.hpp) supplies *what* each
// FaultKind does to the cluster under test. Plans parse from a TOML-ish text
// format (see docs/fault-injection.md) and support seeded mutation so one
// scenario fans out into N randomized-but-reproducible variants.
#pragma once

#include <cstdint>
#include <functional>
#include <source_location>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::sim {

/// What breaks. The binding layer maps each kind onto subsystem calls.
enum class FaultKind {
  kDiskFail,            ///< whole-disk failure in a RAID group (rebuild starts)
  kDiskPartial,         ///< partial media failure: member degrades sharply
  kSlowDiskOnset,       ///< latent slow-disk onset: member perf factor decays
  kEnclosureLoss,       ///< every group member in one enclosure drops out
  kControllerFailover,  ///< one controller of the pair fails over
  kMdsStall,            ///< metadata server stops serving ops
  kRouterDrop,          ///< LNET router path goes away (capacity -> 0)
  kCongestionSpike,     ///< router/link capacity divided by `magnitude`
};
inline constexpr std::size_t kFaultKindCount = 8;

std::string_view to_string(FaultKind kind);
/// Parse "disk-fail", "router-drop", ... Throws std::invalid_argument.
FaultKind fault_kind_from_string(std::string_view text);

/// When a conditioned injection may fire. kAtTime fires unconditionally at
/// `Injection::at`; the others poll from `at` every `poll` until true.
enum class TriggerKind {
  kAtTime,          ///< fire at `at`
  kOnRebuildActive, ///< fire once any RAID rebuild is in flight
  kOnFullnessAbove, ///< fire once namespace fullness exceeds `threshold`
};
inline constexpr std::size_t kTriggerKindCount = 3;

std::string_view to_string(TriggerKind kind);
TriggerKind trigger_kind_from_string(std::string_view text);

/// One fault to inject. Target fields are interpreted per kind (group/member
/// for disk faults, enclosure for enclosure loss, resource for network
/// faults); unused fields are ignored by the binding.
struct Injection {
  FaultKind kind = FaultKind::kDiskFail;
  TriggerKind trigger = TriggerKind::kAtTime;
  SimTime at = 0;        ///< fire time (or poll start, for triggered kinds)
  SimTime duration = 0;  ///< 0 = permanent; else revert fires `duration` later
  SimTime poll = kSecond;  ///< trigger poll cadence
  std::uint32_t group = 0;
  std::uint32_t member = 0;
  std::uint32_t enclosure = 0;
  std::uint32_t resource = 0;
  double magnitude = 2.0;   ///< slow factor / congestion divisor, per kind
  double threshold = 0.0;   ///< trigger threshold (e.g. fullness fraction)
};

/// A named campaign scenario.
struct FaultPlan {
  std::string name = "unnamed";
  std::uint64_t seed = 0;      ///< default seed when the runner gives none
  Seconds horizon_s = 600.0;   ///< simulated length of one campaign run
  std::vector<Injection> injections;
};

/// Parse the TOML-ish plan format:
///
///   name = "rebuild-then-enclosure"
///   horizon_s = 600
///   [[inject]]
///   kind = "disk-fail"
///   at_s = 10
///   group = 3
///   member = 1
///
/// Unknown keys and malformed lines throw std::invalid_argument with a
/// 1-based line number.
FaultPlan parse_fault_plan(const std::string& text);

/// Render a plan back into parseable text (round-trips through the parser).
std::string to_plan_text(const FaultPlan& plan);

/// Target-space bounds for plan mutation, supplied by the binding layer.
struct PlanBounds {
  std::uint32_t groups = 1;
  std::uint32_t members = 10;
  std::uint32_t enclosures = 10;
  std::uint32_t resources = 1;
};

/// Seeded plan mutation: jitters every injection's time and magnitude and
/// retargets group/member/enclosure/resource within `bounds`. Identical
/// (plan, bounds, rng state) yields an identical mutant, so a campaign's
/// randomized variants are reproducible from the run seed.
FaultPlan mutate_plan(const FaultPlan& base, const PlanBounds& bounds, Rng& rng);

/// Compiles plans into Simulator events. The binding layer registers one
/// apply (and optional revert) action per FaultKind and one predicate per
/// non-time TriggerKind; arm() then schedules every injection. All events
/// are scheduled through Simulator::schedule_at/schedule_in, so each
/// injection site lands in the replay stream.
class FaultInjector {
 public:
  using ApplyFn = std::function<void(const Injection&)>;
  using PredicateFn = std::function<bool(const Injection&)>;

  explicit FaultInjector(Simulator& sim) : sim_(sim) {}

  /// Register what `kind` does (and, optionally, how it recovers).
  void bind(FaultKind kind, ApplyFn apply, ApplyFn revert = nullptr);
  /// Register the predicate a trigger kind polls.
  void bind_trigger(TriggerKind kind, PredicateFn predicate);
  bool bound(FaultKind kind) const;

  /// Schedule every injection in the plan. Throws std::logic_error if an
  /// injection's kind (or trigger) has no binding.
  void arm(const FaultPlan& plan,
           std::source_location loc = std::source_location::current());

  /// Schedule one injection. The captured source_location is the replay
  /// site carried by the scheduled event(s).
  void inject(const Injection& injection,
              std::source_location loc = std::source_location::current());

  /// One fired apply/revert, in firing order (the campaign log).
  struct Fired {
    SimTime at = 0;
    FaultKind kind = FaultKind::kDiskFail;
    bool revert = false;
  };
  const std::vector<Fired>& log() const { return log_; }
  std::size_t injections_fired() const { return applies_; }
  std::size_t reverts_fired() const { return reverts_; }

 private:
  struct Binding {
    ApplyFn apply;
    ApplyFn revert;
  };

  void validate(const Injection& injection) const;
  void fire(const Injection& injection, std::source_location loc);
  void poll_trigger(Injection injection, std::source_location loc);

  Simulator& sim_;
  Binding bindings_[kFaultKindCount];
  PredicateFn triggers_[kTriggerKindCount];
  std::vector<Fired> log_;
  std::size_t applies_ = 0;
  std::size_t reverts_ = 0;
};

}  // namespace spider::sim
