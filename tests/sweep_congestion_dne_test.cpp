#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "block/sweep.hpp"
#include "common/rng.hpp"
#include "fs/dne.hpp"
#include "net/congestion.hpp"
#include "net/placement.hpp"

namespace spider {
namespace {

// --- fair-lio sweep orchestrator -------------------------------------------------

block::Disk nominal_disk() { return block::Disk(block::DiskParams{}, 0, 1.0, 1e-4); }

TEST(Sweep, CoversTheCrossProduct) {
  block::SweepConfig cfg;
  cfg.duration_s = 0.5;
  const auto points = block::run_sweep(nominal_disk(), cfg);
  EXPECT_EQ(points.size(), cfg.request_sizes.size() * cfg.queue_depths.size() *
                               cfg.write_fractions.size() * cfg.modes.size());
  for (const auto& p : points) EXPECT_GT(p.result.bandwidth, 0.0);
}

TEST(Sweep, ParallelMatchesSerialBitForBit) {
  block::SweepConfig serial;
  serial.duration_s = 0.5;
  serial.threads = 1;
  block::SweepConfig parallel = serial;
  parallel.threads = 8;
  const auto a = block::run_sweep(nominal_disk(), serial);
  const auto b = block::run_sweep(nominal_disk(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].result.bandwidth, b[i].result.bandwidth) << i;
    EXPECT_EQ(a[i].result.requests, b[i].result.requests) << i;
  }
}

TEST(Sweep, SummaryRecoversCalibration) {
  block::SweepConfig cfg;
  cfg.duration_s = 2.0;
  const auto points = block::run_sweep(nominal_disk(), cfg);
  const auto summary = block::summarize_sweep(points);
  EXPECT_GT(summary.best_sequential, summary.best_random);
  EXPECT_NEAR(summary.random_fraction_1mb, 0.22, 0.04);
  EXPECT_GT(summary.worst_p99_s, 0.0);
}

TEST(Sweep, TableHasOneRowPerPoint) {
  block::SweepConfig cfg;
  cfg.request_sizes = {1_MiB};
  cfg.queue_depths = {1};
  cfg.write_fractions = {0.0, 1.0};
  cfg.duration_s = 0.3;
  const auto points = block::run_sweep(nominal_disk(), cfg);
  const auto table = block::sweep_table(points, "test");
  EXPECT_EQ(table.rows(), points.size());
}

TEST(Sweep, GroupSweepRunsToo) {
  Rng rng(1);
  // Healthy population: slow-tail members dominate short group runs with
  // latency outliers (the effect the culling tools key on), which is not
  // what this plumbing test measures.
  block::PopulationModel healthy;
  healthy.slow_fraction = 0.0;
  const auto members =
      block::make_population(10, block::DiskParams{}, healthy, rng);
  block::Raid6Group group(block::RaidParams{}, members);
  block::SweepConfig cfg;
  cfg.request_sizes = {1_MiB, 8_MiB};
  cfg.queue_depths = {4};
  cfg.write_fractions = {1.0};
  cfg.duration_s = 2.0;
  cfg.threads = 4;
  const auto points = block::run_sweep(group, cfg);
  EXPECT_EQ(points.size(), 4u);
  EXPECT_GT(points.front().result.bandwidth, 300.0 * kMBps);
}

// --- congestion analyzer -----------------------------------------------------------

struct CongestionFixture : ::testing::Test {
  net::Torus3D torus{{25, 16, 24}};
  net::PlacementConfig cfg = [] {
    net::PlacementConfig c;
    c.modules = 110;
    c.routers_per_module = 4;
    c.num_groups = 36;
    c.leaf_switches = 36;
    return c;
  }();
  std::vector<net::PlacedRouter> routers =
      net::place_routers(torus, cfg, net::PlacementStrategy::kFgrZoned);
  net::FgrPolicy policy{torus, routers, 36};

  std::vector<int> random_clients(std::size_t n, Rng& rng) const {
    std::vector<int> nodes(n);
    for (auto& node : nodes) {
      node = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(torus.num_nodes())));
    }
    return nodes;
  }
  std::vector<std::size_t> random_leaves(std::size_t n, Rng& rng) const {
    std::vector<std::size_t> leaves(n);
    for (auto& l : leaves) l = rng.uniform_index(36);
    return leaves;
  }
};

TEST_F(CongestionFixture, DemandConservedAcrossLinks) {
  Rng rng(2);
  const auto nodes = random_clients(500, rng);
  const auto leaves = random_leaves(500, rng);
  const double bw = 50e6;
  const auto report = net::analyze_congestion(torus, policy, nodes, leaves, bw,
                                              net::RoutingChoice::kFgr);
  EXPECT_EQ(report.clients, 500u);
  EXPECT_NEAR(report.total_demand, 500.0 * bw, 1.0);
  // Sum over links == demand x mean hops by construction.
  const auto loads = net::link_loads(torus, policy, nodes, leaves, bw,
                                     net::RoutingChoice::kFgr);
  double sum = 0.0;
  for (double l : loads) sum += l;
  EXPECT_NEAR(sum, report.total_demand * report.mean_hops,
              1e-6 * std::max(1.0, sum));
}

TEST_F(CongestionFixture, FgrShorterThanRoundRobin) {
  Rng rng(3);
  const auto nodes = random_clients(800, rng);
  const auto leaves = random_leaves(800, rng);
  const auto fgr = net::analyze_congestion(torus, policy, nodes, leaves, 50e6,
                                           net::RoutingChoice::kFgr);
  const auto rr = net::analyze_congestion(torus, policy, nodes, leaves, 50e6,
                                          net::RoutingChoice::kRoundRobin);
  EXPECT_LT(fgr.mean_hops, rr.mean_hops);
}

TEST_F(CongestionFixture, NearestIsShortestOfAll) {
  Rng rng(4);
  const auto nodes = random_clients(400, rng);
  const auto leaves = random_leaves(400, rng);
  const auto nearest = net::analyze_congestion(
      torus, policy, nodes, leaves, 50e6, net::RoutingChoice::kNearest);
  const auto fgr = net::analyze_congestion(torus, policy, nodes, leaves, 50e6,
                                           net::RoutingChoice::kFgr);
  EXPECT_LE(nearest.mean_hops, fgr.mean_hops + 1e-9);
}

TEST_F(CongestionFixture, HotspotStructureReported) {
  Rng rng(5);
  // All clients in one corner targeting one leaf: a manufactured hotspot.
  std::vector<int> nodes(200, torus.node_id({0, 0, 0}));
  std::vector<std::size_t> leaves(200, 7);
  const auto report = net::analyze_congestion(torus, policy, nodes, leaves,
                                              50e6, net::RoutingChoice::kFgr);
  EXPECT_GT(report.concentration, 0.99);
  EXPECT_GE(report.max_link_load, report.mean_link_load);
  EXPECT_LT(report.hottest_link,
            static_cast<net::LinkId>(torus.num_links()));
}

TEST_F(CongestionFixture, MismatchedSpansRejected) {
  const std::vector<int> nodes{1, 2};
  const std::vector<std::size_t> leaves{0};
  EXPECT_THROW(net::link_loads(torus, policy, nodes, leaves, 1.0,
                               net::RoutingChoice::kFgr),
               std::invalid_argument);
}

// --- DNE -----------------------------------------------------------------------------

TEST(Dne, DirectoriesSpreadAcrossMdts) {
  fs::DneNamespace dne;
  std::vector<std::size_t> hits(dne.mdts(), 0);
  for (std::uint64_t d = 0; d < 4000; ++d) ++hits[dne.mdt_of_dir(d)];
  for (std::size_t h : hits) {
    EXPECT_GT(h, 800u);
    EXPECT_LT(h, 1200u);
  }
}

TEST(Dne, PlacementIsStable) {
  fs::DneNamespace dne;
  for (std::uint64_t d = 0; d < 100; ++d) {
    EXPECT_EQ(dne.mdt_of_dir(d), dne.mdt_of_dir(d));
  }
}

TEST(Dne, CrossMdtOpsPayDistributedTransaction) {
  fs::DneNamespace dne;
  // Find two directories on different MDTs.
  std::uint64_t a = 0, b = 1;
  while (dne.mdt_of_dir(a) == dne.mdt_of_dir(b)) ++b;
  const auto local = dne.account(a, fs::MetaOp::kCreate);
  dne.reset();
  const auto cross = dne.account(a, fs::MetaOp::kCreate, b);
  EXPECT_TRUE(cross.cross_mdt);
  EXPECT_GT(cross.cost, 1.5 * local.cost);
}

TEST(Dne, ManyDirectoriesScaleNearLinearly) {
  fs::DneNamespace dne;
  // 1,000 directories each offering 80 weighted ops/s: 80 kops total over
  // 4 MDTs of 20 kops — hashes spread it, so nearly all of it goes through.
  const std::vector<double> offered(1000, 80.0);
  const double throughput = dne.max_throughput(offered);
  EXPECT_GT(throughput, 0.9 * 80e3);
}

TEST(Dne, HotDirectoryDefeatsDneAlone) {
  // The paper's reason to recommend namespaces *and* DNE: one hot
  // directory lands on a single MDT regardless of shard count.
  fs::DneNamespace dne;
  std::vector<double> offered(1000, 0.0);
  offered[0] = 80e3;  // one job hammering one directory
  const double throughput = dne.max_throughput(offered);
  EXPECT_NEAR(throughput, 20e3, 1.0);  // one MDT's worth, not four
}

TEST(Dne, LoadAccountingAndImbalance) {
  fs::DneNamespace dne;
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    dne.account(rng.uniform_index(5000), fs::MetaOp::kStat);
  }
  EXPECT_LT(dne.imbalance(), 0.1);
  dne.reset();
  EXPECT_DOUBLE_EQ(dne.imbalance(), 0.0);
}

class DneShardSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DneShardSweep, CapacityScalesWithShards) {
  fs::DneParams params;
  params.mdts = GetParam();
  fs::DneNamespace dne(params);
  EXPECT_DOUBLE_EQ(dne.capacity_ops(),
                   params.mdt_ops_per_sec * static_cast<double>(GetParam()));
  // Uniform load across many dirs achieves most of it.
  const std::vector<double> offered(
      2000, dne.capacity_ops() / 2000.0 * 0.8);
  EXPECT_GT(dne.max_throughput(offered), 0.6 * dne.capacity_ops() * 0.8);
}

INSTANTIATE_TEST_SUITE_P(Shards, DneShardSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace spider
