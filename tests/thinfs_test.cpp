#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "block/raid.hpp"
#include "common/rng.hpp"
#include "fs/thinfs.hpp"

namespace spider::fs {
namespace {

struct ThinFixture : ::testing::Test {
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<Ost>> osts;
  std::vector<Ost*> ptrs;
  Rng rng{1};

  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      std::vector<block::Disk> members;
      for (int m = 0; m < 10; ++m) {
        members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
      }
      groups.push_back(std::make_unique<block::Raid6Group>(
          block::RaidParams{}, std::move(members)));
      osts.push_back(std::make_unique<Ost>(i, groups.back().get()));
      ptrs.push_back(osts.back().get());
    }
  }
};

TEST_F(ThinFixture, ReservedCapacityIsSmallFraction) {
  ThinFs thin(ptrs);
  Bytes total = 0;
  for (const Ost* o : ptrs) total += o->capacity();
  EXPECT_NEAR(static_cast<double>(thin.reserved_capacity()),
              0.01 * static_cast<double>(total),
              0.001 * static_cast<double>(total));
}

TEST_F(ThinFixture, BaselineRecordsEveryOst) {
  ThinFs thin(ptrs);
  const auto report = thin.baseline(0, rng);
  EXPECT_EQ(report.osts_tested, 8u);
  EXPECT_TRUE(thin.has_baseline());
  EXPECT_GT(thin.baseline_write_bw(3), 100.0 * kMBps);
  EXPECT_TRUE(report.regressed_osts.empty());
}

TEST_F(ThinFixture, HealthyFleetShowsNoRegression) {
  ThinFs thin(ptrs);
  thin.baseline(0, rng);
  const auto qa = thin.run_qa(sim::kDay, rng);
  EXPECT_TRUE(qa.regressed_osts.empty());
}

TEST_F(ThinFixture, HardwareDegradationIsCaught) {
  ThinFs thin(ptrs);
  thin.baseline(0, rng);
  // OST 2's group loses a member: degraded hardware the thin QA must see.
  ptrs[2]->group().fail_member(4);
  const auto qa = thin.run_qa(sim::kDay, rng);
  ASSERT_EQ(qa.regressed_osts.size(), 1u);
  EXPECT_EQ(qa.regressed_osts[0], 2u);
}

TEST_F(ThinFixture, QaSeesThroughProductionFullness) {
  // The paper's point: the thin region is always freshly formatted, so QA
  // measures hardware, not the production file system's fill state.
  ThinFs thin(ptrs);
  thin.baseline(0, rng);
  for (Ost* o : ptrs) {
    o->set_used(static_cast<Bytes>(static_cast<double>(o->capacity()) * 0.9));
  }
  const auto qa = thin.run_qa(sim::kDay, rng);
  // No false regressions from fullness...
  EXPECT_TRUE(qa.regressed_osts.empty());
  // ...and the fresh-vs-production comparison now shows the aging gap.
  EXPECT_GT(qa.fresh_over_production, 1.3);
}

TEST_F(ThinFixture, FreshEqualsProductionOnEmptySystem) {
  ThinFs thin(ptrs);
  const auto report = thin.baseline(0, rng);
  EXPECT_NEAR(report.fresh_over_production, 1.0, 0.02);
}

TEST_F(ThinFixture, RunQaWithoutBaselineBootstraps) {
  ThinFs thin(ptrs);
  const auto report = thin.run_qa(5 * sim::kDay, rng);
  EXPECT_EQ(report.when, 5 * sim::kDay);
  EXPECT_TRUE(thin.has_baseline());
}

TEST_F(ThinFixture, RejectsBadParams) {
  ThinFsParams bad;
  bad.reserve_fraction = 0.9;
  EXPECT_THROW(ThinFs(ptrs, bad), std::invalid_argument);
  EXPECT_THROW(ThinFs({}), std::invalid_argument);
}

}  // namespace
}  // namespace spider::fs
