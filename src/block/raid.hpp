// RAID-6 (8 data + 2 parity) group — the Lustre OST building block.
//
// Spider II organized 20,160 disks into 2,016 RAID-6 8+2 groups, one per
// OST (Section V-A). The group model captures:
//   - striped performance pinned by the slowest member (why slow-disk
//     culling matters, Lesson 13);
//   - read-modify-write penalty for sub-stripe writes and parity overhead
//     for full-stripe writes;
//   - the failure state machine: up to two concurrent member losses are
//     tolerated, a third loses data (the 2010 incident, Lesson 11);
//   - rebuild windows with degraded delivered bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "block/disk.hpp"
#include "common/units.hpp"

namespace spider::block {

enum class RaidState { kNormal, kDegraded, kRebuilding, kFailed };
enum class MemberState { kOnline, kFailed, kRebuilding };

struct RaidParams {
  std::size_t data_disks = 8;
  std::size_t parity_disks = 2;
  /// Per-disk chunk; full stripe data = chunk * data_disks (1 MiB default,
  /// matching the Lustre 1 MB RPC sweet spot of Figure 3).
  Bytes chunk = 128_KiB;
  /// Per-disk rebuild rate (traditional rebuild; parity-declustered rebuild
  /// multiplies this, see rebuild_speedup).
  Bandwidth rebuild_rate = 50.0 * kMBps;
  /// Delivered-bandwidth multiplier with a failed member (parity reconstruct).
  double degraded_factor = 0.70;
  /// Delivered-bandwidth multiplier while rebuilding.
  double rebuilding_factor = 0.55;
  /// Full-stripe write efficiency (parity generation + controller work).
  double full_stripe_write_eff = 0.90;
  /// Sub-stripe write efficiency (read-modify-write).
  double rmw_eff = 0.25;
  /// Parity-declustering rebuild speedup (vendor feature OLCF pushed for,
  /// Section IV-A); 1.0 = classic rebuild.
  double rebuild_speedup = 1.0;
};

class Raid6Group {
 public:
  /// `members` must have exactly data_disks + parity_disks entries.
  Raid6Group(const RaidParams& params, std::vector<Disk> members);

  std::size_t width() const { return members_.size(); }
  Bytes full_stripe() const { return params_.chunk * params_.data_disks; }
  /// Usable (data) capacity.
  Bytes capacity() const;
  const RaidParams& params() const { return params_; }

  const Disk& member(std::size_t i) const { return members_.at(i); }
  MemberState member_state(std::size_t i) const { return states_.at(i); }
  /// Swap in a replacement unit (slow-disk culling or post-failure spare).
  /// The new member starts Online; callers model rebuild separately.
  void replace_member(std::size_t i, Disk replacement);

  /// Performance factor of the slowest online member; striped bandwidth is
  /// proportional to it.
  double min_member_factor() const;

  /// Degrade one member's performance factor in place (latent slow-disk
  /// onset or partial media failure under fault injection). Forwards to
  /// Disk::degrade; throws std::invalid_argument for factors outside (0, 1].
  void degrade_member(std::size_t i, double factor);

  /// Indices of members that are safe to read from (kOnline). Ordered by
  /// member index, so iteration is deterministic.
  std::vector<std::size_t> readable_members() const;

  /// Record a read served from member `i`. Reads from non-online members are
  /// counted as unsafe — the RAID read-safety oracle asserts this stays 0.
  void note_read(std::size_t i);
  std::uint64_t reads_noted() const { return reads_noted_; }
  std::uint64_t unsafe_reads() const { return unsafe_reads_; }

  /// Delivered bandwidth for a uniform stream of `request_size` requests in
  /// the given mode/direction, at the current state.
  Bandwidth bandwidth(IoMode mode, IoDir dir, Bytes request_size = 1_MiB) const;

  // --- failure machinery -------------------------------------------------
  RaidState state() const;
  std::size_t unavailable_members() const;
  bool data_lost() const { return data_lost_; }

  /// Mark a member failed. More than parity_disks concurrent unavailable
  /// members marks the group's data lost (sticky until rebuilt from backup).
  void fail_member(std::size_t i);
  /// Begin rebuilding a failed member onto a spare.
  void start_rebuild(std::size_t i);
  /// Time to rebuild one member at the configured rate.
  double rebuild_time_s() const;
  /// Rebuild finished: member returns online.
  void finish_rebuild(std::size_t i);
  /// A previously failed member comes back intact (e.g. enclosure restored
  /// before the group exceeded parity).
  void restore_member(std::size_t i);

 private:
  void check_data_loss();

  RaidParams params_;
  std::vector<Disk> members_;
  std::vector<MemberState> states_;
  bool data_lost_ = false;
  std::uint64_t reads_noted_ = 0;
  std::uint64_t unsafe_reads_ = 0;
};

}  // namespace spider::block
