#include "workload/s3d.hpp"

namespace spider::workload {

S3dWorkload::S3dWorkload(const S3dParams& params) : params_(params) {}

Bytes S3dWorkload::bytes_per_output() const {
  return static_cast<Bytes>(params_.ranks) * params_.bytes_per_rank;
}

std::vector<IoBurst> S3dWorkload::generate(double duration_s, Rng& rng) const {
  std::vector<IoBurst> bursts;
  double t = params_.output_interval_s * rng.uniform(0.05, 0.5);
  while (t < duration_s) {
    IoBurst b;
    b.start = sim::from_seconds(t);
    b.clients = params_.ranks;
    b.bytes_per_client = params_.bytes_per_rank;
    b.request_size = params_.request_size;
    b.dir = block::IoDir::kWrite;
    b.files_per_client = 1;
    bursts.push_back(b);
    // Solver time per step varies a little with physics.
    t += params_.output_interval_s * rng.uniform(0.97, 1.03);
  }
  return bursts;
}

}  // namespace spider::workload
