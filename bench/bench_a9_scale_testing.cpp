// Ablation A9 (Section IV-B, Lesson 9): full-scale Lustre release testing.
//
// "Titan is a unique resource that supports testing at extreme scale...
// These tests identify edge cases and problems that would not manifest
// themselves otherwise. Leverage the benefit of external test resources
// that can reveal problems at scale."
//
// The bench runs a candidate-release campaign over a synthetic defect
// population whose manifestation thresholds are log-uniform in scale, with
// and without the full-scale (Titan) stage.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "tools/release_testing.hpp"

int main() {
  using namespace spider;
  using namespace spider::tools;

  bench::banner("A9: release-testing campaigns over 1,000 latent scale defects");

  Table table;
  table.set_columns({"campaign", "caught on testbed", "caught at full scale",
                     "escaped to production"});

  struct Variant {
    const char* name;
    ReleaseCampaign campaign;
  };
  Variant variants[] = {
      {"testbed only (512 clients)", {512, 18688, 10, 0}},
      {"testbed + full-scale Titan runs", {512, 18688, 10, 2}},
      {"big testbed (4096) + Titan runs", {4096, 18688, 10, 2}},
  };

  CampaignResult results[3];
  for (int v = 0; v < 3; ++v) {
    Rng rng(2014);  // identical defect population per variant
    results[v] = simulate_campaign(1000, variants[v].campaign, rng);
    table.add_row({std::string(variants[v].name),
                   static_cast<std::int64_t>(results[v].caught_on_testbed),
                   static_cast<std::int64_t>(results[v].caught_at_full_scale),
                   static_cast<std::int64_t>(results[v].escaped_to_production)});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(results[0].escaped_to_production >
                    2 * results[1].escaped_to_production,
                "full-scale runs cut production escapes by more than half");
  checker.check(results[1].caught_at_full_scale > 100,
                "a large share of defects only manifests at scale (Lesson 9)");
  checker.check(results[2].caught_on_testbed > results[1].caught_on_testbed,
                "a bigger testbed shifts detection earlier");
  return checker.exit_code();
}
