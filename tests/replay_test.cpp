// Deterministic-replay harness tests.
//
// The acceptance property: two runs of the same seeded FlowNetwork scenario
// must produce bit-identical event streams AND bit-identical per-resource
// telemetry. When they don't, the recorder must localize the fork to the
// first mismatching event.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "sim/flow_network.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::sim {
namespace {

// A cancel-heavy, completion-chained scenario exercising every scheduling
// path: arrivals, latency activation, completion rescheduling, mid-run
// capacity changes, and flow cancellation.
ReplayRecorder run_scenario(std::uint64_t seed) {
  Simulator sim;
  FlowNetwork net(sim);
  ReplayRecorder rec;
  rec.attach(sim);

  Rng rng(seed);
  std::vector<ResourceId> disks;
  for (int d = 0; d < 6; ++d) {
    disks.push_back(net.add_resource("disk" + std::to_string(d),
                                     rng.uniform(50.0, 200.0)));
  }
  const ResourceId controller = net.add_resource("ctl", 400.0);

  std::vector<FlowId> started;
  // Completion callbacks chain follow-up flows, so the event stream depends
  // on the full history of the run — any nondeterminism cascades.
  std::function<void(FlowId, SimTime)> chain = [&](FlowId, SimTime) {
    if (net.active_flows() > 24) return;
    FlowDesc d;
    d.path = {{disks[rng.uniform_index(disks.size())], rng.uniform(1.0, 4.0)},
              {controller, 1.0}};
    d.size = rng.uniform(1.0, 50.0);
    if (rng.chance(0.3)) d.latency = from_seconds(rng.uniform(0.0, 0.01));
    if (rng.chance(0.5)) d.on_complete = chain;
    started.push_back(net.start_flow(std::move(d)));
  };

  for (int i = 0; i < 40; ++i) {
    const SimTime at = from_seconds(rng.uniform(0.0, 2.0));
    sim.schedule_at(at, [&, i] {
      FlowDesc d;
      d.path = {{disks[rng.uniform_index(disks.size())], rng.uniform(1.0, 3.0)},
                {controller, 1.0}};
      d.size = rng.uniform(5.0, 80.0);
      d.rate_cap = rng.chance(0.25) ? rng.uniform(5.0, 40.0) : kUnbounded;
      d.on_complete = chain;
      started.push_back(net.start_flow(std::move(d)));
      // Cancel-heavy pressure: sometimes abort an earlier flow, sometimes
      // degrade a disk mid-run (both trigger reschedules).
      if (i % 7 == 3 && !started.empty()) {
        net.cancel_flow(started[rng.uniform_index(started.size())]);
      }
      if (i % 11 == 5) {
        net.set_capacity(disks[rng.uniform_index(disks.size())],
                         rng.uniform(40.0, 220.0));
      }
    });
  }

  sim.run(from_seconds(30.0));
  rec.record_resource_stats(net);
  return rec;
}

TEST(Replay, SameSeedRunsAreBitIdentical) {
  const ReplayRecorder a = run_scenario(42);
  const ReplayRecorder b = run_scenario(42);
  EXPECT_GT(a.events_recorded(), 100u) << "scenario too trivial to prove much";
  EXPECT_EQ(ReplayRecorder::first_divergence(a, b), ReplayRecorder::npos)
      << ReplayRecorder::divergence_report(a, b);
  EXPECT_EQ(a.event_hash(), b.event_hash());
  EXPECT_EQ(a.stats_hash(), b.stats_hash()) << "ResourceStats diverged";
  EXPECT_EQ(a.combined_hash(), b.combined_hash());
  // Machine-readable line for scripts/check.sh, which diffs this value
  // across two fresh processes to catch cross-process nondeterminism (ASLR-
  // dependent hashing, uninitialized reads) that in-process replay misses.
  std::cout << "replay-hash: " << std::hex << a.combined_hash() << " events: "
            << std::dec << a.events_recorded() << "\n";
}

TEST(Replay, DifferentSeedsDivergeAndAreLocalized) {
  const ReplayRecorder a = run_scenario(1);
  const ReplayRecorder b = run_scenario(2);
  ASSERT_NE(a.combined_hash(), b.combined_hash());
  const std::size_t at = ReplayRecorder::first_divergence(a, b);
  ASSERT_NE(at, ReplayRecorder::npos);
  // Divergence is localized: everything before `at` matches.
  for (std::size_t i = 0; i < at; ++i) {
    ASSERT_TRUE(a.records()[i] == b.records()[i]);
  }
  EXPECT_NE(ReplayRecorder::divergence_report(a, b), "identical");
}

TEST(Replay, RecorderObservesEveryEventWithSite) {
  Simulator sim;
  ReplayRecorder rec;
  rec.attach(sim);
  sim.schedule_in(10, [] {});
  sim.schedule_in(20, [] {});
  sim.run();
  ASSERT_EQ(rec.events_recorded(), 2u);
  EXPECT_EQ(rec.records()[0].when, 10);
  EXPECT_EQ(rec.records()[1].when, 20);
  // Both events were scheduled from distinct source lines -> distinct sites.
  EXPECT_NE(rec.records()[0].site, rec.records()[1].site);
}

TEST(Replay, StatsHashCatchesTelemetryDivergence) {
  // Two identical event streams but different telemetry snapshots must
  // produce different stats hashes (and say so in the report).
  Simulator sim_a, sim_b;
  FlowNetwork net_a(sim_a), net_b(sim_b);
  net_a.add_resource("r", 100.0);
  net_b.add_resource("r", 100.0);
  ReplayRecorder a, b;
  FlowDesc da, db;
  da.path = {{0, 1.0}};
  da.size = 10.0;
  db.path = {{0, 1.0}};
  db.size = 20.0;  // double the work -> different served/busy telemetry
  net_a.start_flow(std::move(da));
  net_b.start_flow(std::move(db));
  sim_a.run();
  sim_b.run();
  a.record_resource_stats(net_a);
  b.record_resource_stats(net_b);
  EXPECT_NE(a.stats_hash(), b.stats_hash());
}

TEST(Replay, EmptyRecordersCompareIdentical) {
  ReplayRecorder a, b;
  EXPECT_EQ(ReplayRecorder::first_divergence(a, b), ReplayRecorder::npos);
  EXPECT_EQ(ReplayRecorder::divergence_report(a, b), "identical");
  EXPECT_EQ(a.combined_hash(), b.combined_hash());
}

}  // namespace
}  // namespace spider::sim
