// C1/C3: the Spider II design points.
//   - 1 TB/s peak sequential I/O at the file-system level, derived from
//     checkpointing 75% of Titan's 600 TB in 6 minutes (Section III-A);
//   - 240 GB/s for random I/O workloads (1 MB blocks), derived from disks
//     delivering 20-25% of peak under random I/O.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/checkpoint.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  bench::banner("C1: checkpoint sizing rule");
  workload::CheckpointWorkload checkpoint{workload::CheckpointParams{}};
  const double required = checkpoint.required_bandwidth(360.0);
  std::cout << "75% of 600 TB in 6 minutes requires "
            << to_gbps(required) / 1000.0
            << " TB/s  (SOW rounded this to the 1 TB/s requirement)\n";

  Rng rng(2014);
  core::CenterModel center(core::spider2_config(/*upgraded=*/true), rng);
  center.set_target_namespace(SIZE_MAX);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);

  Table table("measured file-system-level peaks (36 SSUs, upgraded controllers)");
  table.set_columns({"workload", "clients", "aggregate GB/s", "bottleneck"});

  workload::IorConfig seq;
  seq.clients = 4032;
  const auto seq_r = workload::run_ior(center, seq);
  table.add_row({std::string("sequential write, 1 MiB"),
                 static_cast<std::int64_t>(4032), to_gbps(seq_r.aggregate_bw),
                 seq_r.bottleneck});

  workload::IorConfig rnd = seq;
  rnd.mode = block::IoMode::kRandom;
  const auto rnd_r = workload::run_ior(center, rnd);
  table.add_row({std::string("random write, 1 MiB"),
                 static_cast<std::int64_t>(4032), to_gbps(rnd_r.aggregate_bw),
                 rnd_r.bottleneck});

  workload::IorConfig rd = seq;
  rd.dir = block::IoDir::kRead;
  const auto rd_r = workload::run_ior(center, rd);
  table.add_row({std::string("sequential read, 1 MiB"),
                 static_cast<std::int64_t>(4032), to_gbps(rd_r.aggregate_bw),
                 rd_r.bottleneck});
  table.print(std::cout);

  const double checkpoint_time =
      static_cast<double>(checkpoint.bytes_per_checkpoint()) /
      seq_r.aggregate_bw;
  std::cout << "\ncheckpointing 450 TB at the measured peak takes "
            << checkpoint_time / 60.0 << " minutes\n\n";

  bench::ShapeChecker checker;
  checker.check(required >= 1.0 * kTBps,
                "sizing rule demands at least 1 TB/s (paper: 1.25 -> 1 TB/s)");
  checker.check(seq_r.aggregate_bw > 1.0 * kTBps,
                "full system delivers > 1 TB/s sequential (paper: >1 TB/s)");
  const double ratio = rnd_r.aggregate_bw / seq_r.aggregate_bw;
  checker.check(ratio > 0.18 && ratio < 0.40,
                "random delivers roughly a quarter of sequential "
                "(paper requirement: 240 GB/s vs 1 TB/s)");
  checker.check(to_gbps(rnd_r.aggregate_bw) > 240.0,
                "random bandwidth meets the 240 GB/s requirement");
  checker.check(checkpoint_time < 1.3 * 360.0,
                "a 75% memory checkpoint fits the ~6-minute window");
  return checker.exit_code();
}
