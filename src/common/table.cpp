#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spider {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  precision_.assign(columns_.size(), 2);
}

void Table::set_precision(std::size_t column, int digits) {
  precision_.at(column) = digits;
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != column count");
  }
  rows_.push_back(std::move(cells));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

double Table::number_at(std::size_t row, std::size_t col) const {
  const Cell& c = at(row, col);
  if (std::holds_alternative<double>(c)) return std::get<double>(c);
  if (std::holds_alternative<std::int64_t>(c)) {
    return static_cast<double>(std::get<std::int64_t>(c));
  }
  throw std::invalid_argument("Table::number_at: cell is a string");
}

std::string Table::format_cell(std::size_t col, const Cell& cell) const {
  std::ostringstream os;
  if (std::holds_alternative<std::string>(cell)) {
    os << std::get<std::string>(cell);
  } else if (std::holds_alternative<std::int64_t>(cell)) {
    os << std::get<std::int64_t>(cell);
  } else {
    os << std::fixed << std::setprecision(precision_.at(col))
       << std::get<double>(cell);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(c, row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::setw(static_cast<int>(widths[c])) << columns_[c]
       << (c + 1 < columns_.size() ? "  " : "");
  }
  os << "\n";
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& r : rendered) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << r[c]
         << (c + 1 < r.size() ? "  " : "");
    }
    os << "\n";
  }
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "");
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << format_cell(c, row[c]) << (c + 1 < row.size() ? "," : "");
    }
    os << "\n";
  }
}

}  // namespace spider
