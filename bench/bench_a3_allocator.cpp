// Ablation A3: Lustre's QOS (free-space weighted) allocator vs plain
// round-robin under an imbalanced fleet.
//
// Supports Lesson 10's capacity-management story: once OSTs diverge in
// fullness (a purge exemption, a huge project, a replaced OST), blind
// round-robin keeps loading the full OSTs — driving them across the 70%
// knee and toward per-OST ENOSPC while the fleet is nominally half empty.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fs/striping.hpp"

namespace {

using namespace spider;

struct Fleet {
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;

  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<block::Disk> members;
      for (int m = 0; m < 10; ++m) {
        members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
      }
      groups.push_back(std::make_unique<block::Raid6Group>(
          block::RaidParams{}, std::move(members)));
      osts.push_back(std::make_unique<fs::Ost>(static_cast<std::uint32_t>(i),
                                               groups.back().get()));
      ptrs.push_back(osts.back().get());
    }
  }
};

struct Outcome {
  double fullness_stddev = 0.0;
  double max_fullness = 0.0;
  std::size_t failed_creates = 0;
  double degraded_osts = 0.0;  ///< OSTs past the 70% knee
};

Outcome run(fs::AllocatorMode mode, std::uint64_t seed) {
  Fleet fleet(32);
  // Pre-imbalance: a quarter of the fleet starts 65% full.
  for (std::size_t i = 0; i < 8; ++i) {
    fleet.ptrs[i]->set_used(static_cast<Bytes>(
        static_cast<double>(fleet.ptrs[i]->capacity()) * 0.65));
  }
  fs::OstAllocator alloc(fleet.ptrs, mode);
  Rng rng(seed);
  Outcome out;
  // Fill to ~55% fleet average with stripe-1 files.
  for (int f = 0; f < 5200; ++f) {
    if (alloc.allocate(1, 40_GiB, rng).empty()) ++out.failed_creates;
  }
  std::vector<double> fullness;
  for (const auto* o : fleet.ptrs) {
    fullness.push_back(o->fullness());
    out.max_fullness = std::max(out.max_fullness, o->fullness());
    if (o->fullness() > 0.70) out.degraded_osts += 1.0;
  }
  out.fullness_stddev = stddev_of(fullness);
  return out;
}

}  // namespace

int main() {
  using namespace spider;

  bench::banner("A3: QOS (free-space weighted) vs round-robin allocation "
                "on a pre-imbalanced fleet (8 of 32 OSTs start 65% full)");

  Table table;
  table.set_columns({"allocator", "fullness stddev", "max fullness",
                     "OSTs past 70% knee", "failed creates"});
  Outcome results[2];
  int row = 0;
  for (auto mode : {fs::AllocatorMode::kRoundRobin,
                    fs::AllocatorMode::kQosWeighted}) {
    // Average over seeds via merged counters.
    Outcome agg;
    const int seeds = 5;
    for (int s = 0; s < seeds; ++s) {
      const auto o = run(mode, 100 + s);
      agg.fullness_stddev += o.fullness_stddev / seeds;
      agg.max_fullness += o.max_fullness / seeds;
      agg.degraded_osts += o.degraded_osts / seeds;
      agg.failed_creates += o.failed_creates;
    }
    results[row++] = agg;
    table.add_row({std::string(mode == fs::AllocatorMode::kRoundRobin
                                   ? "round-robin"
                                   : "QOS weighted"),
                   agg.fullness_stddev, agg.max_fullness, agg.degraded_osts,
                   static_cast<std::int64_t>(agg.failed_creates)});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(results[1].fullness_stddev < 0.5 * results[0].fullness_stddev,
                "QOS halves the fullness spread");
  checker.check(results[1].max_fullness < results[0].max_fullness,
                "QOS keeps the fullest OST cooler");
  checker.check(results[1].degraded_osts < results[0].degraded_osts,
                "fewer OSTs cross the 70% degradation knee under QOS");
  return checker.exit_code();
}
