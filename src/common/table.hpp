// ASCII/CSV table writer for benchmark output.
//
// Every bench binary prints the paper's table or figure series through this
// class so output is uniform and machine-parseable (`--csv` style output is
// a one-liner for callers).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace spider {

/// A cell is a string, an integer, or a double (formatted with a
/// per-column precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::string title = {});

  /// Define columns; must be called before adding rows.
  void set_columns(std::vector<std::string> names);
  /// Set float precision for one column (default 2).
  void set_precision(std::size_t column, int digits);

  void add_row(std::vector<Cell> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return columns_.size(); }
  const Cell& at(std::size_t row, std::size_t col) const;
  /// Numeric value of a cell; throws if the cell is a string.
  double number_at(std::size_t row, std::size_t col) const;

  /// Render with aligned columns and a rule under the header.
  void print(std::ostream& os) const;
  /// Render as CSV (no title line).
  void print_csv(std::ostream& os) const;

 private:
  std::string format_cell(std::size_t col, const Cell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace spider
