file(REMOVE_RECURSE
  "libspider_fs.a"
)
