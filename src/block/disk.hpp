// Disk model: the 2 TB near-line SAS generation Spider II was built from.
//
// The paper's block-level lessons rest on two facts this model reproduces:
//   1. A single disk achieves only 20-25% of its sequential bandwidth under
//      random I/O with 1 MB blocks (Section III-A) — drove the 240 GB/s
//      random requirement alongside 1 TB/s sequential.
//   2. A population of "fully functioning" disks hides a tail of slow units
//      whose variance drags whole RAID groups (Lesson 13); ~2,000 of 20,160
//      disks were culled. Every disk carries a performance factor drawn from
//      a two-component population (healthy cluster + slow tail) plus a
//      latency-outlier rate that the culling tools key on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace spider::block {

enum class IoMode { kSequential, kRandom };
enum class IoDir { kRead, kWrite };

/// Nominal characteristics of the disk product (before per-unit variance).
struct DiskParams {
  Bandwidth seq_read_bw = 138.0 * kMBps;
  Bandwidth seq_write_bw = 132.0 * kMBps;
  /// Delivered fraction of sequential bandwidth under random I/O with
  /// 1 MB requests. Paper: 20-25%; default mid-range.
  double random_fraction_1mb = 0.22;
  /// Average seek + settle for small random I/O, seconds.
  double seek_s = 8.5e-3;
  /// Half-rotation latency (7.2k rpm), seconds.
  double rotational_s = 4.16e-3;
  /// Duration of a media-retry recovery pause, seconds.
  double outlier_pause_s = 0.35;
  Bytes capacity = 2_TB;
};

/// Distribution of per-unit variance across a shipped population.
struct PopulationModel {
  /// Healthy units: factor ~ Normal(1.0, healthy_sigma), clipped to
  /// [1 - 4*sigma, 1 + 4*sigma].
  double healthy_sigma = 0.015;
  /// Fraction of units in the slow tail (paper culled ~10% over two rounds).
  double slow_fraction = 0.10;
  /// Slow units: factor ~ Uniform(slow_lo, slow_hi).
  double slow_lo = 0.55;
  double slow_hi = 0.92;
  /// Probability that a served request incurs a long recovery pause
  /// (media retries); slow disks have this scaled up by outlier_slow_mult.
  double outlier_rate = 1e-4;
  double outlier_rate_slow = 5e-3;
};

/// One physical disk.
class Disk {
 public:
  Disk(const DiskParams& params, std::uint32_t id, double perf_factor,
       double outlier_rate);

  std::uint32_t id() const { return id_; }
  double perf_factor() const { return perf_factor_; }
  double outlier_rate() const { return outlier_rate_; }
  Bytes capacity() const { return params_.capacity; }
  const DiskParams& params() const { return params_; }

  /// Steady bandwidth for large transfers in the given mode/direction,
  /// excluding outlier pauses. For kRandom this is the asymptotic rate with
  /// `request_size` bytes moved per positioning operation.
  Bandwidth effective_bw(IoMode mode, IoDir dir, Bytes request_size = 1_MiB) const;

  /// Expected service time of a single request, excluding outliers.
  double service_time_s(Bytes size, IoMode mode, IoDir dir) const;

  /// Service time of a single request with stochastic outlier pauses; used
  /// by the fair-lio driver and the culling tools.
  double sample_service_time_s(Bytes size, IoMode mode, IoDir dir, Rng& rng) const;

  /// True if this unit belongs to the slow tail (factor below threshold).
  bool is_slow(double threshold = 0.95) const { return perf_factor_ < threshold; }

  /// Latent degradation onset (fault injection, Lesson 13): multiply the
  /// performance factor by `factor` in (0, 1], clamped to a small positive
  /// floor so the unit slows down without dividing by zero anywhere.
  void degrade(double factor);

 private:
  /// Per-request positioning overhead in random mode, calibrated so that
  /// 1 MiB random delivers exactly random_fraction_1mb of sequential.
  double random_overhead_s() const;

  DiskParams params_;
  std::uint32_t id_;
  double perf_factor_;
  double outlier_rate_;
};

/// Draw a population of `n` disks. Deterministic given the rng state.
std::vector<Disk> make_population(std::size_t n, const DiskParams& params,
                                  const PopulationModel& pop, Rng& rng);

}  // namespace spider::block
