#include "sim/faultplan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace spider::sim {

namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};
constexpr KindName kKindNames[] = {
    {FaultKind::kDiskFail, "disk-fail"},
    {FaultKind::kDiskPartial, "disk-partial"},
    {FaultKind::kSlowDiskOnset, "slow-disk-onset"},
    {FaultKind::kEnclosureLoss, "enclosure-loss"},
    {FaultKind::kControllerFailover, "controller-failover"},
    {FaultKind::kMdsStall, "mds-stall"},
    {FaultKind::kRouterDrop, "router-drop"},
    {FaultKind::kCongestionSpike, "congestion-spike"},
};

struct TriggerName {
  TriggerKind kind;
  std::string_view name;
};
constexpr TriggerName kTriggerNames[] = {
    {TriggerKind::kAtTime, "at-time"},
    {TriggerKind::kOnRebuildActive, "rebuild-active"},
    {TriggerKind::kOnFullnessAbove, "fullness-above"},
};

std::string strip(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "fault plan line " << line_no << ": " << what;
  throw std::invalid_argument(os.str());
}

double parse_double(const std::string& value, std::size_t line_no) {
  std::size_t used = 0;
  double d = 0.0;
  try {
    d = std::stod(value, &used);
  } catch (const std::exception&) {
    parse_error(line_no, "expected a number, got '" + value + "'");
  }
  if (used != value.size()) {
    parse_error(line_no, "trailing junk after number in '" + value + "'");
  }
  return d;
}

std::uint64_t parse_u64(const std::string& value, std::size_t line_no) {
  const double d = parse_double(value, line_no);
  if (d < 0.0 || d != std::floor(d)) {
    parse_error(line_no, "expected a non-negative integer, got '" + value + "'");
  }
  return static_cast<std::uint64_t>(d);
}

std::string unquote(const std::string& value) {
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    return value.substr(1, value.size() - 2);
  }
  return value;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  for (const auto& [k, n] : kKindNames) {
    if (k == kind) return n;
  }
  return "unknown";
}

FaultKind fault_kind_from_string(std::string_view text) {
  for (const auto& [k, n] : kKindNames) {
    if (n == text) return k;
  }
  throw std::invalid_argument("unknown fault kind: " + std::string(text));
}

std::string_view to_string(TriggerKind kind) {
  for (const auto& [k, n] : kTriggerNames) {
    if (k == kind) return n;
  }
  return "unknown";
}

TriggerKind trigger_kind_from_string(std::string_view text) {
  for (const auto& [k, n] : kTriggerNames) {
    if (n == text) return k;
  }
  throw std::invalid_argument("unknown trigger kind: " + std::string(text));
}

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  Injection* current = nullptr;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = strip(raw);
    if (line.empty()) continue;
    if (line == "[[inject]]") {
      plan.injections.emplace_back();
      current = &plan.injections.back();
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      parse_error(line_no, "expected 'key = value' or '[[inject]]'");
    }
    const std::string key = strip(line.substr(0, eq));
    const std::string value = unquote(strip(line.substr(eq + 1)));
    if (key.empty() || value.empty()) {
      parse_error(line_no, "empty key or value");
    }
    try {
      if (current == nullptr) {
        if (key == "name") {
          plan.name = value;
        } else if (key == "seed") {
          plan.seed = parse_u64(value, line_no);
        } else if (key == "horizon_s") {
          plan.horizon_s = parse_double(value, line_no);
        } else {
          parse_error(line_no, "unknown plan key '" + key + "'");
        }
        continue;
      }
      if (key == "kind") {
        current->kind = fault_kind_from_string(value);
      } else if (key == "trigger") {
        current->trigger = trigger_kind_from_string(value);
      } else if (key == "at_s") {
        current->at = from_seconds(parse_double(value, line_no));
      } else if (key == "duration_s") {
        current->duration = from_seconds(parse_double(value, line_no));
      } else if (key == "poll_s") {
        current->poll = from_seconds(parse_double(value, line_no));
      } else if (key == "group") {
        current->group = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "member") {
        current->member = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "enclosure") {
        current->enclosure =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "resource") {
        current->resource =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "magnitude") {
        current->magnitude = parse_double(value, line_no);
      } else if (key == "threshold") {
        current->threshold = parse_double(value, line_no);
      } else {
        parse_error(line_no, "unknown injection key '" + key + "'");
      }
    } catch (const std::invalid_argument& e) {
      // Re-tag kind/trigger vocabulary errors with the line number.
      const std::string what = e.what();
      if (what.rfind("fault plan line", 0) == 0) throw;
      parse_error(line_no, what);
    }
  }
  for (const Injection& inj : plan.injections) {
    if (inj.at < 0) throw std::invalid_argument("injection time must be >= 0");
    if (inj.poll <= 0) throw std::invalid_argument("poll cadence must be > 0");
  }
  return plan;
}

std::string to_plan_text(const FaultPlan& plan) {
  std::ostringstream os;
  os << "name = \"" << plan.name << "\"\n";
  os << "seed = " << plan.seed << "\n";
  os << "horizon_s = " << plan.horizon_s << "\n";
  for (const Injection& inj : plan.injections) {
    os << "[[inject]]\n";
    os << "kind = \"" << to_string(inj.kind) << "\"\n";
    if (inj.trigger != TriggerKind::kAtTime) {
      os << "trigger = \"" << to_string(inj.trigger) << "\"\n";
      os << "threshold = " << inj.threshold << "\n";
    }
    os << "at_s = " << to_seconds(inj.at) << "\n";
    if (inj.duration > 0) os << "duration_s = " << to_seconds(inj.duration) << "\n";
    if (inj.poll != kSecond) os << "poll_s = " << to_seconds(inj.poll) << "\n";
    os << "group = " << inj.group << "\n";
    os << "member = " << inj.member << "\n";
    os << "enclosure = " << inj.enclosure << "\n";
    os << "resource = " << inj.resource << "\n";
    os << "magnitude = " << inj.magnitude << "\n";
  }
  return os.str();
}

FaultPlan mutate_plan(const FaultPlan& base, const PlanBounds& bounds, Rng& rng) {
  FaultPlan out = base;
  out.name += "~mut";
  for (Injection& inj : out.injections) {
    // Jitter timing by up to ±25% (never negative) and magnitude by ±20%;
    // retarget within the bound target spaces. Each draw comes from the
    // caller's rng, so the mutant is a pure function of (plan, bounds, seed).
    inj.at = std::max<SimTime>(
        0, static_cast<SimTime>(static_cast<double>(inj.at) *
                                rng.uniform(0.75, 1.25)));
    if (inj.duration > 0) {
      inj.duration = std::max<SimTime>(
          kMillisecond, static_cast<SimTime>(static_cast<double>(inj.duration) *
                                             rng.uniform(0.75, 1.25)));
    }
    inj.magnitude = std::max(1.0, inj.magnitude * rng.uniform(0.8, 1.2));
    inj.group = static_cast<std::uint32_t>(
        rng.uniform_index(std::max<std::uint32_t>(1, bounds.groups)));
    inj.member = static_cast<std::uint32_t>(
        rng.uniform_index(std::max<std::uint32_t>(1, bounds.members)));
    inj.enclosure = static_cast<std::uint32_t>(
        rng.uniform_index(std::max<std::uint32_t>(1, bounds.enclosures)));
    inj.resource = static_cast<std::uint32_t>(
        rng.uniform_index(std::max<std::uint32_t>(1, bounds.resources)));
  }
  return out;
}

void FaultInjector::bind(FaultKind kind, ApplyFn apply, ApplyFn revert) {
  auto& b = bindings_[static_cast<std::size_t>(kind)];
  b.apply = std::move(apply);
  b.revert = std::move(revert);
}

void FaultInjector::bind_trigger(TriggerKind kind, PredicateFn predicate) {
  triggers_[static_cast<std::size_t>(kind)] = std::move(predicate);
}

bool FaultInjector::bound(FaultKind kind) const {
  return static_cast<bool>(bindings_[static_cast<std::size_t>(kind)].apply);
}

void FaultInjector::arm(const FaultPlan& plan, std::source_location loc) {
  // Validate the whole plan before scheduling anything, so a throwing arm()
  // never leaves a half-armed plan behind.
  for (const Injection& inj : plan.injections) validate(inj);
  for (const Injection& inj : plan.injections) inject(inj, loc);
}

void FaultInjector::validate(const Injection& injection) const {
  if (!bound(injection.kind)) {
    throw std::logic_error("no binding for fault kind " +
                           std::string(to_string(injection.kind)));
  }
  if (injection.trigger != TriggerKind::kAtTime &&
      !triggers_[static_cast<std::size_t>(injection.trigger)]) {
    throw std::logic_error("no predicate bound for trigger " +
                           std::string(to_string(injection.trigger)));
  }
}

void FaultInjector::inject(const Injection& injection, std::source_location loc) {
  validate(injection);
  const SimTime when = std::max(injection.at, sim_.now());
  if (injection.trigger == TriggerKind::kAtTime) {
    sim_.schedule_at(when, [this, injection, loc] { fire(injection, loc); },
                     loc);
  } else {
    sim_.schedule_at(when,
                     [this, injection, loc] { poll_trigger(injection, loc); },
                     loc);
  }
}

void FaultInjector::fire(const Injection& injection, std::source_location loc) {
  const auto& binding = bindings_[static_cast<std::size_t>(injection.kind)];
  binding.apply(injection);
  log_.push_back(Fired{sim_.now(), injection.kind, /*revert=*/false});
  ++applies_;
  if (injection.duration > 0 && binding.revert) {
    sim_.schedule_in(
        injection.duration,
        [this, injection] {
          bindings_[static_cast<std::size_t>(injection.kind)].revert(injection);
          log_.push_back(Fired{sim_.now(), injection.kind, /*revert=*/true});
          ++reverts_;
        },
        loc);
  }
}

void FaultInjector::poll_trigger(Injection injection, std::source_location loc) {
  const auto& predicate = triggers_[static_cast<std::size_t>(injection.trigger)];
  if (predicate(injection)) {
    fire(injection, loc);
    return;
  }
  sim_.schedule_in(injection.poll,
                   [this, injection, loc] { poll_trigger(injection, loc); },
                   loc);
}

}  // namespace spider::sim
