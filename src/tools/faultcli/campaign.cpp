#include "tools/faultcli/campaign.hpp"

#include <algorithm>
#include <sstream>

#include "fs/recovery.hpp"

namespace spider::tools {

namespace {

constexpr double kSlack = 1e-6;

block::SsuParams make_ssu_params(const CampaignConfig& cfg) {
  block::SsuParams params;
  params.raid_groups = cfg.raid_groups;
  params.enclosures = cfg.enclosures;
  return params;
}

void fire(std::vector<sim::OracleViolation>& out, std::string oracle,
          sim::SimTime now, std::string detail) {
  out.push_back(
      sim::OracleViolation{std::move(oracle), now, std::move(detail)});
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

std::string to_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(v >> shift) & 0xf];
  }
  return out;
}

}  // namespace

// --- RebuildTracker --------------------------------------------------------

void RebuildTracker::on_start(std::size_t group, sim::SimTime now,
                              double duration_s) {
  active_[group] = Active{now, duration_s};
  samples_.push_back(Sample{group, 0.0, /*fresh=*/true});
}

void RebuildTracker::on_finish(std::size_t group) {
  if (active_.erase(group) > 0) {
    samples_.push_back(Sample{group, 1.0, /*fresh=*/false});
  }
}

void RebuildTracker::on_abort(std::size_t group) { active_.erase(group); }

void RebuildTracker::sample(sim::SimTime now) {
  for (const auto& [group, active] : active_) {
    const double elapsed = sim::to_seconds(now - active.start);
    const double fraction =
        active.duration_s > 0.0
            ? std::min(1.0, elapsed / active.duration_s)
            : 1.0;
    samples_.push_back(Sample{group, fraction, /*fresh=*/false});
  }
}

// --- oracle factories ------------------------------------------------------

std::unique_ptr<sim::Oracle> make_accounting_oracle(const WriteLedger& ledger) {
  return sim::make_oracle(
      "write-accounting",
      [&ledger, prev_issued = 0.0, prev_acked = 0.0](
          sim::SimTime now, std::vector<sim::OracleViolation>& out) mutable {
        if (ledger.acked > ledger.issued * (1.0 + kSlack) + kSlack) {
          std::ostringstream os;
          os << "acked bytes " << ledger.acked << " exceed issued bytes "
             << ledger.issued;
          fire(out, "write-accounting", now, os.str());
        }
        if (ledger.issued < prev_issued - kSlack) {
          fire(out, "write-accounting", now, "issued bytes went backwards");
        }
        if (ledger.acked < prev_acked - kSlack) {
          fire(out, "write-accounting", now, "acked bytes went backwards");
        }
        prev_issued = ledger.issued;
        prev_acked = ledger.acked;
      });
}

std::unique_ptr<sim::Oracle> make_raid_read_oracle(
    std::vector<const block::Raid6Group*> groups) {
  return sim::make_oracle(
      "raid-read-safety",
      [groups = std::move(groups),
       prev = std::vector<std::uint64_t>{}](
          sim::SimTime now, std::vector<sim::OracleViolation>& out) mutable {
        prev.resize(groups.size(), 0);
        for (std::size_t g = 0; g < groups.size(); ++g) {
          const std::uint64_t unsafe = groups[g]->unsafe_reads();
          if (unsafe > prev[g]) {
            std::ostringstream os;
            os << "group " << g << " served " << (unsafe - prev[g])
               << " read(s) from non-online members";
            fire(out, "raid-read-safety", now, os.str());
          }
          prev[g] = unsafe;
        }
      });
}

std::unique_ptr<sim::Oracle> make_rebuild_monotone_oracle(
    const RebuildTracker& tracker) {
  return sim::make_oracle(
      "rebuild-monotone",
      [&tracker, idx = std::size_t{0},
       last = std::map<std::size_t, double>{}](
          sim::SimTime now, std::vector<sim::OracleViolation>& out) mutable {
        const auto& samples = tracker.samples();
        for (; idx < samples.size(); ++idx) {
          const auto& s = samples[idx];
          if (s.fresh) {
            last[s.group] = s.fraction;
            continue;
          }
          auto it = last.find(s.group);
          if (it != last.end() && s.fraction < it->second - 1e-9) {
            std::ostringstream os;
            os << "group " << s.group << " rebuild progress moved backwards: "
               << it->second << " -> " << s.fraction;
            fire(out, "rebuild-monotone", now, os.str());
          }
          last[s.group] = std::max(it == last.end() ? 0.0 : it->second,
                                   s.fraction);
        }
      });
}

std::unique_ptr<sim::Oracle> make_namespace_journal_oracle(
    const fs::FsNamespace& ns, const OpJournal& journal) {
  return sim::make_oracle(
      "namespace-journal",
      [&ns, &journal](sim::SimTime now,
                      std::vector<sim::OracleViolation>& out) {
        if (ns.total_created() != journal.creates) {
          std::ostringstream os;
          os << "namespace created " << ns.total_created()
             << " files but journal replay says " << journal.creates;
          fire(out, "namespace-journal", now, os.str());
        } else if (journal.unlinks > journal.creates) {
          fire(out, "namespace-journal", now,
               "journal unlinks exceed journal creates");
        } else if (ns.live_files() != journal.creates - journal.unlinks) {
          std::ostringstream os;
          os << "namespace holds " << ns.live_files()
             << " live files but journal replay says "
             << (journal.creates - journal.unlinks);
          fire(out, "namespace-journal", now, os.str());
        }
        if (ns.used() > ns.capacity()) {
          fire(out, "namespace-journal", now,
               "used bytes exceed namespace capacity");
        }
      });
}

std::unique_ptr<sim::Oracle> make_purge_age_oracle(
    const std::vector<fs::PurgeReport>& reports, double window_days) {
  return sim::make_oracle(
      "purge-age",
      [&reports, window_days, idx = std::size_t{0}](
          sim::SimTime now, std::vector<sim::OracleViolation>& out) mutable {
        const double min_age_s = window_days * 86400.0;
        for (; idx < reports.size(); ++idx) {
          const auto& report = reports[idx];
          if (report.purged == 0) continue;  // nothing purged: vacuously safe
          if (!report.has_min_age()) {
            // purged > 0 with no recorded age is a malformed report — the
            // +inf sentinel must never survive a real purge.
            fire(out, "purge-age", now,
                 "sweep purged files but recorded no minimum age");
            continue;
          }
          if (report.min_purged_age_s < min_age_s * (1.0 - kSlack)) {
            std::ostringstream os;
            os << "purge deleted a file aged " << report.min_purged_age_s
               << "s, younger than the " << min_age_s << "s policy window";
            fire(out, "purge-age", now, os.str());
          }
        }
      });
}

// spiderlint: census-ok — checked directly at churn epoch barriers (churn.cpp)
std::unique_ptr<sim::Oracle> make_changelog_oracle(
    const fs::FsNamespace& ns, const fs::OpLog& log,
    fs::ChangelogAccounting& accounting) {
  return sim::make_oracle(
      "changelog-consistency",
      [&ns, &log, &accounting](sim::SimTime now,
                               std::vector<sim::OracleViolation>& out) {
        fs::ConsumeResult res = accounting.consume(log);
        if (res.cursor_ahead) {
          fire(out, "changelog-consistency", now,
               "consumer cursor ahead of the committed prefix (a crash "
               "rewound the log); rebuilding from the committed records");
          res = accounting.rebuild(log);
        }
        if (res.gap) {
          std::ostringstream os;
          os << "changelog has an interior txid gap starting at "
             << res.first_gap_txid << " — accounting is untrustworthy";
          fire(out, "changelog-consistency", now, os.str());
          return;
        }
        // Ground truth: the one namespace walk in the changelog era is the
        // oracle auditing the books, never the query path.
        const auto truth = ns.usage_by_project();
        const auto derived = accounting.usage();
        if (derived != truth) {
          std::ostringstream os;
          os << "changelog-derived usage diverges from namespace ground "
                "truth (" << derived.size() << " vs " << truth.size()
             << " projects";
          for (const auto& [project, bytes] : truth) {
            const auto it = derived.find(project);
            if (it == derived.end() || it->second != bytes) {
              os << "; project " << project << ": derived "
                 << (it == derived.end() ? 0 : it->second) << " truth "
                 << bytes;
              break;
            }
          }
          os << ")";
          fire(out, "changelog-consistency", now, os.str());
        }
        std::uint64_t derived_live = 0;
        for (const auto& [project, row] : accounting.rows()) {
          derived_live += row.files;
        }
        if (derived_live != ns.live_files()) {
          std::ostringstream os;
          os << "changelog-derived live-file count " << derived_live
             << " != namespace " << ns.live_files();
          fire(out, "changelog-consistency", now, os.str());
        }
      });
}

// --- verdicts --------------------------------------------------------------

sim::PlanBounds campaign_bounds(const CampaignConfig& cfg) {
  sim::PlanBounds bounds;
  bounds.groups = static_cast<std::uint32_t>(cfg.raid_groups);
  block::RaidParams raid;
  bounds.members =
      static_cast<std::uint32_t>(raid.data_disks + raid.parity_disks);
  bounds.enclosures = static_cast<std::uint32_t>(cfg.enclosures);
  bounds.resources = static_cast<std::uint32_t>(cfg.raid_groups) + 2;
  return bounds;
}

std::uint64_t stream_hash(const sim::ReplayRecorder& recorder) {
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& record : recorder.records()) {
    fold(static_cast<std::uint64_t>(record.when));
    fold(record.id);
  }
  return h;
}

std::string verdict_json(const RunVerdict& verdict) {
  std::ostringstream os;
  os << "{\"plan\": \"";
  json_escape(os, verdict.plan);
  os << "\", \"seed\": " << verdict.seed
     << ", \"replay_hash\": \"" << to_hex(verdict.replay_hash)
     << "\", \"stream_hash\": \"" << to_hex(verdict.stream_hash)
     << "\", \"events\": " << verdict.events
     << ", \"injections\": " << verdict.injections_fired
     << ", \"reverts\": " << verdict.reverts_fired
     << ", \"files_created\": " << verdict.files_created
     << ", \"files_purged\": " << verdict.files_purged
     << ", \"delivered\": " << verdict.delivered
     << ", \"data_lost\": " << (verdict.data_lost ? "true" : "false")
     << ", \"clean\": " << (verdict.clean() ? "true" : "false");
  if (verdict.repair.ran) {
    os << ", \"repair\": {\"findings\": " << verdict.repair.findings
       << ", \"repairs\": " << verdict.repair.repairs << ", \"kinds\": [";
    for (std::size_t i = 0; i < verdict.repair.kinds.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"";
      json_escape(os, verdict.repair.kinds[i]);
      os << "\"";
    }
    os << "], \"findings_hash\": \"" << to_hex(verdict.repair.findings_hash)
       << "\", \"state_hash\": \"" << to_hex(verdict.repair.state_hash)
       << "\", \"post_violations\": " << verdict.repair.post_violations
       << ", \"post_repair_clean\": "
       << (verdict.repair.post_clean ? "true" : "false") << "}";
  }
  os << ", \"violations\": " << sim::violations_json(verdict.violations)
     << "}";
  return os.str();
}

// --- FaultCampaign ---------------------------------------------------------

FaultCampaign::FaultCampaign(const sim::FaultPlan& plan, std::uint64_t seed,
                             const CampaignConfig& cfg)
    : FaultCampaign(plan, seed, cfg, nullptr) {}

FaultCampaign::FaultCampaign(const sim::FaultPlan& plan, std::uint64_t seed,
                             const CampaignConfig& cfg, sim::Simulator& sim)
    : FaultCampaign(plan, seed, cfg, &sim) {}

FaultCampaign::FaultCampaign(const sim::FaultPlan& plan, std::uint64_t seed,
                             const CampaignConfig& cfg,
                             sim::Simulator* external)
    : plan_(plan),
      seed_(seed),
      cfg_(cfg),
      owned_sim_(external ? nullptr : std::make_unique<sim::Simulator>()),
      sim_(external ? *external : *owned_sim_),
      rng_(seed),
      ssu_(make_ssu_params(cfg), 0, rng_),
      net_(sim_),
      injector_(sim_),
      suite_(sim_) {
  horizon_ = sim::from_seconds(cfg_.horizon_s > 0.0 ? cfg_.horizon_s
                                                    : plan_.horizon_s);
  osts_.reserve(ssu_.groups());
  std::vector<fs::Ost*> ost_ptrs;
  for (std::size_t g = 0; g < ssu_.groups(); ++g) {
    osts_.emplace_back(static_cast<std::uint32_t>(g), &ssu_.group(g));
  }
  for (auto& ost : osts_) ost_ptrs.push_back(&ost);
  ns_ = std::make_unique<fs::FsNamespace>("campaign", std::move(ost_ptrs));
  // The namespace journals its own creates/unlinks now (ROADMAP item 2);
  // the mask keeps the record stream byte-identical to the era when the
  // campaign appended records by hand (no setattr/resize noise), which the
  // golden verdict hashes pin. Commit cadence stays the campaign's job.
  ns_->attach_oplog(&oplog_, fs::kLogCreate | fs::kLogUnlink);
  for (std::size_t g = 0; g < ssu_.groups(); ++g) {
    ost_res_.push_back(net_.add_resource(
        "ost" + std::to_string(g),
        osts_[g].bandwidth(block::IoMode::kSequential, block::IoDir::kWrite)));
  }
  controller_res_ =
      net_.add_resource("controller", ssu_.controller().delivered_bw());
  router_base_capacity_ = ssu_.controller().delivered_bw();
  router_res_ = net_.add_resource("router", router_base_capacity_);
  recorder_.attach(sim_);
  bind_faults();
  bind_triggers();
  add_oracles();
}

void FaultCampaign::sync_network() {
  for (std::size_t g = 0; g < ost_res_.size(); ++g) {
    net_.set_capacity(
        ost_res_[g],
        osts_[g].bandwidth(block::IoMode::kSequential, block::IoDir::kWrite));
  }
  net_.set_capacity(controller_res_, ssu_.controller().delivered_bw());
}

void FaultCampaign::start_rebuild(std::size_t g, std::size_t m) {
  auto& group = ssu_.group(g);
  if (group.member_state(m) != block::MemberState::kFailed) return;
  group.start_rebuild(m);
  const double duration_s = group.rebuild_time_s();
  rebuilds_.on_start(g, sim_.now(), duration_s);
  sim_.schedule_in(sim::from_seconds(duration_s), [this, g, m] {
    auto& group = ssu_.group(g);
    // An enclosure restore (or data loss) may have changed the member's
    // state since the rebuild began; finish only a still-running rebuild.
    if (group.member_state(m) == block::MemberState::kRebuilding) {
      group.finish_rebuild(m);
      rebuilds_.on_finish(g);
    } else {
      rebuilds_.on_abort(g);
    }
    sync_network();
    suite_.check_now();
  });
}

void FaultCampaign::bind_faults() {
  using sim::FaultKind;
  using sim::Injection;
  const auto edge = [this] {
    sync_network();
    suite_.check_now();
  };

  injector_.bind(FaultKind::kDiskFail, [this, edge](const Injection& inj) {
    const std::size_t g = inj.group % ssu_.groups();
    auto& group = ssu_.group(g);
    const std::size_t m = inj.member % group.width();
    if (group.member_state(m) == block::MemberState::kOnline) {
      group.fail_member(m);
      if (!group.data_lost()) start_rebuild(g, m);
    }
    edge();
  });

  injector_.bind(FaultKind::kDiskPartial, [this, edge](const Injection& inj) {
    const std::size_t g = inj.group % ssu_.groups();
    auto& group = ssu_.group(g);
    const std::size_t m = inj.member % group.width();
    group.degrade_member(m,
                         std::min(1.0, 1.0 / std::max(1.0, inj.magnitude)));
    edge();
  });

  injector_.bind(FaultKind::kSlowDiskOnset, [this, edge](const Injection& inj) {
    const std::size_t g = inj.group % ssu_.groups();
    auto& group = ssu_.group(g);
    const std::size_t m = inj.member % group.width();
    group.degrade_member(
        m, std::clamp(1.0 - 0.05 * inj.magnitude, 0.5, 1.0));
    edge();
  });

  injector_.bind(
      FaultKind::kEnclosureLoss,
      [this, edge](const Injection& inj) {
        ssu_.enclosure_down(static_cast<std::uint32_t>(
            inj.enclosure % ssu_.params().enclosures));
        edge();
      },
      [this, edge](const Injection& inj) {
        ssu_.enclosure_up(static_cast<std::uint32_t>(
            inj.enclosure % ssu_.params().enclosures));
        edge();
      });

  injector_.bind(
      FaultKind::kControllerFailover,
      [this, edge](const Injection&) {
        ssu_.controller().fail_one();
        edge();
      },
      [this, edge](const Injection&) {
        ssu_.controller().recover();
        edge();
      });

  injector_.bind(
      FaultKind::kMdsStall,
      [this, edge](const Injection&) {
        ns_->mds().set_stalled(true);
        edge();
      },
      [this, edge](const Injection&) {
        ns_->mds().set_stalled(false);
        edge();
      });

  injector_.bind(
      FaultKind::kRouterDrop,
      [this, edge](const Injection&) {
        net_.set_capacity(router_res_, 0.0);
        edge();
      },
      [this, edge](const Injection&) {
        net_.set_capacity(router_res_, router_base_capacity_);
        edge();
      });

  injector_.bind(
      FaultKind::kCongestionSpike,
      [this, edge](const Injection& inj) {
        net_.set_capacity(router_res_,
                          router_base_capacity_ / std::max(1.0, inj.magnitude));
        edge();
      },
      [this, edge](const Injection&) {
        net_.set_capacity(router_res_, router_base_capacity_);
        edge();
      });
}

void FaultCampaign::bind_triggers() {
  injector_.bind_trigger(
      sim::TriggerKind::kOnRebuildActive, [this](const sim::Injection&) {
        for (std::size_t g = 0; g < ssu_.groups(); ++g) {
          if (ssu_.group(g).state() == block::RaidState::kRebuilding) {
            return true;
          }
        }
        return false;
      });
  injector_.bind_trigger(
      sim::TriggerKind::kOnFullnessAbove, [this](const sim::Injection& inj) {
        return ns_->fullness() > inj.threshold;
      });
}

void FaultCampaign::add_oracles() {
  suite_.add(sim::make_flow_conservation_oracle(net_));
  suite_.add(make_accounting_oracle(ledger_));
  std::vector<const block::Raid6Group*> groups;
  for (std::size_t g = 0; g < ssu_.groups(); ++g) {
    groups.push_back(&ssu_.group(g));
  }
  suite_.add(make_raid_read_oracle(std::move(groups)));
  suite_.add(make_rebuild_monotone_oracle(rebuilds_));
  suite_.add(make_namespace_journal_oracle(*ns_, journal_));
  suite_.add(make_purge_age_oracle(purge_reports_, cfg_.purge_window_days));
}

void FaultCampaign::every(sim::SimTime interval, std::function<void()> fn) {
  drivers_.emplace_back();
  std::function<void()>& slot = drivers_.back();
  slot = [this, interval, fn = std::move(fn), &slot] {
    fn();
    if (sim_.now() + interval <= horizon_) sim_.schedule_in(interval, slot);
  };
  sim_.schedule_in(interval, slot);
}

void FaultCampaign::do_create() {
  // A stalled MDS serves no creates; the op queues behind the stall (the
  // campaign simply skips it, keeping journal and namespace in agreement).
  if (ns_->mds().stalled()) return;
  const Bytes size = (4 + rng_.uniform_index(61)) * 1_MiB;
  const auto project = static_cast<std::uint32_t>(rng_.uniform_index(4));
  const fs::FileId id = ns_->create_file(project, size, sim_.now(), rng_);
  if (id == fs::kNoFile) return;
  ++journal_.creates;
  // create_file already appended the kCreate record (attached changelog);
  // the campaign models the MDS commit boundary after each op.
  oplog_.commit(oplog_.last_txid());
  files_.push_back(id);
  const auto stripes = ns_->stripes_of(ns_->file(id));
  const std::size_t g =
      stripes.empty() ? 0 : stripes.front() % ost_res_.size();
  const double bytes = static_cast<double>(size);
  ledger_.issued += bytes;
  sim::FlowDesc flow;
  flow.path = {{ost_res_[g], 1.0}, {controller_res_, 1.0}, {router_res_, 1.0}};
  flow.size = bytes;
  flow.on_complete = [this, bytes](sim::FlowId, sim::SimTime) {
    ledger_.acked += bytes;
  };
  net_.start_flow(std::move(flow));
}

void FaultCampaign::do_read() {
  if (!files_.empty()) {
    const fs::FileId id = files_[rng_.uniform_index(files_.size())];
    if (ns_->exists(id) && !ns_->mds().stalled()) {
      ns_->read_file(id, sim_.now());
    }
  }
  // Block-layer read: only from members the group reports as safe.
  auto& group = ssu_.group(rng_.uniform_index(ssu_.groups()));
  const auto readable = group.readable_members();
  if (!readable.empty()) {
    group.note_read(readable[rng_.uniform_index(readable.size())]);
  }
}

void FaultCampaign::do_purge() {
  fs::PurgePolicy policy;
  policy.window_days = cfg_.purge_window_days;
  // Every unlink the sweep performs lands in the op journal through the
  // attached changelog (state only — no simulator events — so replay
  // hashes are untouched); the campaign commits the batch afterwards,
  // modeling one MDS transaction per sweep.
  const fs::PurgeReport report = fs::run_purge(*ns_, sim_.now(), policy);
  journal_.unlinks += report.purged;
  oplog_.commit(oplog_.last_txid());
  purge_reports_.push_back(report);
}

FsckTarget FaultCampaign::fsck_target() {
  FsckTarget target;
  target.ns = ns_.get();
  target.journal = &oplog_;
  return target;
}

FaultCampaign::FsckOutcome FaultCampaign::fsck_and_reverify(
    const FsckOptions& options) {
  FsckOutcome out;
  FsckOptions repair_opts = options;
  repair_opts.repair = true;
  const FsckTarget target = fsck_target();
  out.report = run_fsck(target, repair_opts);

  FsckOptions recheck;
  recheck.jobs = 1;
  recheck.shards = repair_opts.shards;
  out.converged = run_fsck(target, recheck).clean();

  // The namespace-journal oracle watches the campaign's counters; rebuild
  // them from the repaired op log so the re-sweep judges repaired state.
  const fs::OpLogSummary summary = fs::replay_op_log(oplog_);
  journal_.creates = summary.creates;
  journal_.unlinks = summary.unlinks;

  out.post_violations = suite_.recheck_now();
  return out;
}

void FaultCampaign::prepare() {
  injector_.arm(plan_);
  suite_.schedule_checks(cfg_.oracle_interval, horizon_);
  every(cfg_.create_interval, [this] { do_create(); });
  every(cfg_.read_interval, [this] { do_read(); });
  every(cfg_.purge_interval, [this] { do_purge(); });
  every(cfg_.oracle_interval, [this] { rebuilds_.sample(sim_.now()); });
}

RunVerdict FaultCampaign::run() {
  prepare();
  sim_.run(horizon_);
  return finish();
}

RunVerdict FaultCampaign::run_with(sim::ShardedSimulator& engine) {
  prepare();
  engine.run(horizon_);
  return finish();
}

RunVerdict FaultCampaign::finish() {
  recorder_.record_resource_stats(net_);

  RunVerdict verdict;
  verdict.plan = plan_.name;
  verdict.seed = seed_;
  verdict.replay_hash = recorder_.combined_hash();
  verdict.stream_hash = tools::stream_hash(recorder_);
  verdict.events = recorder_.events_recorded();
  verdict.injections_fired = injector_.injections_fired();
  verdict.reverts_fired = injector_.reverts_fired();
  verdict.files_created = ns_->total_created();
  verdict.files_purged = journal_.unlinks;
  verdict.delivered = net_.total_delivered();
  for (std::size_t g = 0; g < ssu_.groups(); ++g) {
    verdict.data_lost = verdict.data_lost || ssu_.group(g).data_lost();
  }
  verdict.violations = suite_.violations();
  return verdict;
}

RunVerdict run_campaign(const sim::FaultPlan& plan, std::uint64_t seed,
                        const CampaignConfig& cfg) {
  FaultCampaign campaign(plan, seed, cfg);
  return campaign.run();
}

namespace {

/// Fold one fsck stage outcome into a verdict's repair section.
void fill_repair(RunVerdict& verdict, const FaultCampaign::FsckOutcome& out) {
  verdict.repair.ran = true;
  verdict.repair.findings = out.report.findings.size();
  verdict.repair.repairs = out.report.repairs_applied;
  for (const Finding& f : out.report.findings) {
    const std::string name(finding_kind_name(f.kind));
    if (verdict.repair.kinds.empty() || verdict.repair.kinds.back() != name) {
      verdict.repair.kinds.push_back(name);
    }
  }
  verdict.repair.findings_hash = out.report.findings_hash;
  verdict.repair.state_hash = out.report.state_hash;
  verdict.repair.post_violations = out.post_violations.size();
  verdict.repair.post_clean = out.post_clean();
}

}  // namespace

RunVerdict run_campaign_checked(const sim::FaultPlan& plan, std::uint64_t seed,
                                const CampaignConfig& cfg,
                                const FsckOptions& fsck) {
  FaultCampaign campaign(plan, seed, cfg);
  RunVerdict verdict = campaign.run();
  fill_repair(verdict, campaign.fsck_and_reverify(fsck));
  return verdict;
}

RunVerdict run_campaign_sharded_checked(const sim::FaultPlan& plan,
                                        std::uint64_t seed,
                                        const CampaignConfig& cfg,
                                        std::size_t shards,
                                        std::size_t workers,
                                        const FsckOptions& fsck) {
  constexpr sim::SimTime kCampaignLookahead = 1 * sim::kSecond;
  sim::ShardedConfig scfg;
  scfg.lookahead = kCampaignLookahead;
  scfg.workers = workers;
  sim::ShardedSimulator engine(shards, scfg);
  FaultCampaign campaign(plan, seed, cfg, engine.shard(0));
  RunVerdict verdict = campaign.run_with(engine);
  fill_repair(verdict, campaign.fsck_and_reverify(fsck));
  return verdict;
}

RunVerdict run_campaign_sharded(const sim::FaultPlan& plan, std::uint64_t seed,
                                const CampaignConfig& cfg, std::size_t shards,
                                std::size_t workers) {
  // Campaign cadence is seconds-scale (create/read/oracle intervals), so a
  // one-second lookahead keeps the barrier count proportional to event
  // clusters rather than the horizon. The campaign sends no cross-shard
  // messages, so any positive lookahead is causally safe here.
  constexpr sim::SimTime kCampaignLookahead = 1 * sim::kSecond;
  sim::ShardedConfig scfg;
  scfg.lookahead = kCampaignLookahead;
  scfg.workers = workers;
  sim::ShardedSimulator engine(shards, scfg);
  FaultCampaign campaign(plan, seed, cfg, engine.shard(0));
  return campaign.run_with(engine);
}

}  // namespace spider::tools
