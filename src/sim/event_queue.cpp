#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace spider::sim {

namespace {
// Below this heap size compaction is pointless; the lazy pop path handles
// small queues fine and the threshold keeps compact() out of microbenchmarks.
constexpr std::size_t kCompactMinHeap = 64;
}  // namespace

EventId EventQueue::schedule(SimTime when, EventFn fn, std::uint64_t site) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id});
  std::push_heap(heap_.begin(), heap_.end(), later);
  callbacks_.emplace(id, Pending{std::move(fn), site});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  // Cancelling the front entry (e.g. an event due *now*, during fault churn)
  // must not leave a stale head: next_time()/pop() assume the front is live
  // after their own sweep, and an eager drop keeps that sweep O(1) amortized.
  drop_cancelled();
  // Deeper stale entries stay behind; once they dominate, sweep them all so
  // memory stays proportional to live events.
  if (heap_.size() >= kCompactMinHeap && heap_.size() > 2 * live_) compact();
  return true;
}

void EventQueue::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               return !callbacks_.contains(e.id);
                             }),
              heap_.end());
  heap_.shrink_to_fit();
  std::make_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  auto it = callbacks_.find(e.id);
  assert(it != callbacks_.end());
  Fired fired{e.when, e.id, it->second.site, std::move(it->second.fn)};
  callbacks_.erase(it);
  --live_;
  return fired;
}

}  // namespace spider::sim
