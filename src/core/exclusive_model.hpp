// Machine-exclusive vs data-centric comparison (Sections I-II, VII).
//
// The quantitative case for the data-centric model, as the paper states it:
//   - machine-exclusive scratch "can easily exceed 10% of the total
//     acquisition cost" per platform, plus a data-movement cluster;
//   - scientific workflows (simulate -> analyze -> visualize) must stage
//     data between islands, paying transfer time and user attention;
//   - a platform downtime takes its island's data offline with it.
// compare_workflow computes end-to-end pipeline time under both models;
// availability_of_data estimates the fraction of time a dataset is
// reachable from the analysis side.
#pragma once

#include "common/units.hpp"

namespace spider::core {

struct WorkflowSpec {
  /// Dataset produced by the simulation stage.
  Bytes dataset = 50_TB;
  /// Simulation write bandwidth to its scratch (either model).
  Bandwidth sim_write_bw = 400.0 * kGBps;
  /// Analysis cluster's read bandwidth from its local scratch.
  Bandwidth analysis_read_bw = 60.0 * kGBps;
  /// Data-movement cluster bandwidth between exclusive file systems.
  Bandwidth mover_bw = 10.0 * kGBps;
  /// Pure compute time of the analysis stage.
  double analysis_compute_s = 1800.0;
  /// Pure render time of the visualization stage.
  double viz_compute_s = 600.0;
  /// Visualization read bandwidth.
  Bandwidth viz_read_bw = 30.0 * kGBps;
  /// Fraction of the dataset the analysis stage reduces to for viz.
  double reduction_factor = 0.05;
};

struct WorkflowResult {
  double datacentric_s = 0.0;
  double exclusive_s = 0.0;
  /// Fraction of the exclusive pipeline spent purely moving data between
  /// islands.
  double movement_fraction = 0.0;
  double speedup = 0.0;
};

WorkflowResult compare_workflow(const WorkflowSpec& spec);

struct AvailabilitySpec {
  /// Flagship availability (scheduled + unscheduled).
  double machine_availability = 0.95;
  /// Center-wide PFS availability.
  double pfs_availability = 0.99;
};

struct AvailabilityResult {
  /// Probability the dataset is reachable from an analysis cluster.
  double exclusive = 0.0;    ///< data lives on the flagship's island
  double datacentric = 0.0;  ///< data lives on the center-wide PFS
};

/// Lesson: "a scheduled or an unscheduled downtime on a supercomputer can
/// render all data on a localized file system unavailable". Under the
/// machine-exclusive model the dataset is reachable only when both the
/// owning machine's file system (mounted through it) and the PFS are up.
AvailabilityResult compare_availability(const AvailabilitySpec& spec);

}  // namespace spider::core
