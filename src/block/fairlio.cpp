#include "block/fairlio.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace spider::block {

namespace {

/// Queue-depth reordering gain: with Q requests visible, the drive's
/// elevator shortens average positioning. Modelled as a positioning-time
/// divisor growing with log2(Q), saturating at 2.2x — consistent with
/// NCQ-era measurements on nearline drives.
double elevator_gain(unsigned queue_depth) {
  if (queue_depth <= 1) return 1.0;
  return std::min(2.2, 1.0 + 0.28 * std::log2(static_cast<double>(queue_depth)));
}

FairLioResult summarize(const std::vector<double>& latencies, double elapsed_s,
                        Bytes request_size) {
  FairLioResult r;
  r.requests = latencies.size();
  if (elapsed_s <= 0.0 || latencies.empty()) return r;
  r.iops = static_cast<double>(r.requests) / elapsed_s;
  r.bandwidth = r.iops * static_cast<double>(request_size);
  r.mean_latency_s = mean_of(latencies);
  r.p99_latency_s = percentile(latencies, 99.0);
  return r;
}

}  // namespace

FairLioResult run_fairlio(const Disk& disk, const FairLioConfig& cfg, Rng& rng) {
  // A single spindle serves one request at a time; queue depth contributes
  // elevator gain on positioning plus queueing delay in observed latency.
  const double gain =
      cfg.mode == IoMode::kRandom ? elevator_gain(cfg.queue_depth) : 1.0;
  std::vector<double> latencies;
  double t = 0.0;
  while (t < cfg.duration_s) {
    const IoDir dir = rng.chance(cfg.write_fraction) ? IoDir::kWrite : IoDir::kRead;
    double service = disk.sample_service_time_s(cfg.request_size, cfg.mode, dir, rng);
    if (cfg.mode == IoMode::kRandom) {
      const double media = static_cast<double>(cfg.request_size) /
                           disk.effective_bw(IoMode::kSequential, dir);
      const double positioning = std::max(0.0, service - media);
      service = media + positioning / gain;
    }
    t += service;
    // Observed latency includes waiting behind queued requests.
    latencies.push_back(service * static_cast<double>(cfg.queue_depth));
  }
  return summarize(latencies, t, cfg.request_size);
}

FairLioResult run_fairlio(const Raid6Group& group, const FairLioConfig& cfg,
                          Rng& rng) {
  // Each group request fans one chunk per data disk (at least chunk-sized);
  // the request completes when the slowest member finishes. Members work on
  // consecutive requests back to back, so throughput is paced by the
  // expected maximum of member service times.
  const auto& p = group.params();
  const Bytes per_disk =
      std::max<Bytes>(p.chunk, cfg.request_size / p.data_disks);
  const double gain =
      cfg.mode == IoMode::kRandom ? elevator_gain(cfg.queue_depth) : 1.0;
  std::vector<double> latencies;
  double t = 0.0;
  while (t < cfg.duration_s) {
    const IoDir dir = rng.chance(cfg.write_fraction) ? IoDir::kWrite : IoDir::kRead;
    double slowest = 0.0;
    for (std::size_t m = 0; m < group.width(); ++m) {
      if (group.member_state(m) != MemberState::kOnline) continue;
      double s = group.member(m).sample_service_time_s(per_disk, cfg.mode, dir, rng);
      if (cfg.mode == IoMode::kRandom) {
        const double media =
            static_cast<double>(per_disk) /
            group.member(m).effective_bw(IoMode::kSequential, dir);
        const double positioning = std::max(0.0, s - media);
        s = media + positioning / gain;
      }
      slowest = std::max(slowest, s);
    }
    // Write efficiency (parity / read-modify-write) stretches service time.
    if (dir == IoDir::kWrite) {
      const double eff = cfg.request_size >= group.full_stripe()
                             ? p.full_stripe_write_eff
                             : p.rmw_eff;
      slowest /= eff;
    }
    t += slowest;
    latencies.push_back(slowest * static_cast<double>(std::max(1u, cfg.queue_depth)));
  }
  return summarize(latencies, t, cfg.request_size);
}

}  // namespace spider::block
