# Empty compiler generated dependencies file for bench_c2_disk_envelope.
# This may be replaced when dependencies are built.
