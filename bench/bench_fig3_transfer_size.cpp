// Figure 3: IOR write bandwidth vs transfer size, single Spider II
// namespace (pre-upgrade controllers), file-per-process, fixed client
// count, 30 s stonewall.
//
// Paper finding: "the best performance for writes can be obtained by using
// a 1 MB transfer size."
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  // Figures 3-4 were measured before the controller upgrade.
  core::CenterModel center(core::spider2_config(/*upgraded=*/false), rng);
  center.set_target_namespace(0);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  bench::banner(
      "Figure 3: IOR write bandwidth vs transfer size "
      "(single namespace, 2016 clients, file-per-process, stonewall 30 s)");

  const std::vector<Bytes> sizes{4_KiB,   16_KiB, 64_KiB, 256_KiB,
                                 512_KiB, 1_MiB,  4_MiB,  16_MiB};
  Table table;
  table.set_columns({"transfer size", "aggregate GB/s", "per-client MB/s",
                     "bottleneck"});
  std::vector<double> agg;
  for (Bytes size : sizes) {
    workload::IorConfig cfg;
    cfg.clients = 2016;
    cfg.transfer_size = size;
    const auto r = workload::run_ior(center, cfg);
    agg.push_back(r.aggregate_bw);
    std::string label = size >= 1_MiB
                            ? std::to_string(size / 1_MiB) + " MiB"
                            : std::to_string(size / 1_KiB) + " KiB";
    table.add_row({label, to_gbps(r.aggregate_bw), to_mbps(r.mean_client_bw),
                   r.bottleneck});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  const std::size_t mb_idx = 5;  // 1 MiB
  checker.check(agg[mb_idx] > agg[0] * 10.0,
                "1 MiB transfers are an order of magnitude above 4 KiB");
  bool monotone_rise = true;
  for (std::size_t i = 1; i <= mb_idx; ++i) {
    monotone_rise &= agg[i] >= agg[i - 1];
  }
  checker.check(monotone_rise, "bandwidth rises monotonically up to 1 MiB");
  checker.check(agg[mb_idx] >= agg[6] && agg[mb_idx] >= agg[7],
                "peak write bandwidth is at the 1 MiB transfer size (paper)");
  return checker.exit_code();
}
