#include "tools/libpio.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace spider::tools {

LibPio::LibPio(StorageTopology topology, LibPioWeights weights)
    : topology_(std::move(topology)), weights_(weights) {
  if (topology_.ost_to_oss.empty() || topology_.oss_to_leaf.empty() ||
      topology_.router_to_leaf.empty()) {
    throw std::invalid_argument("LibPio: incomplete topology");
  }
  for (std::uint32_t oss : topology_.ost_to_oss) {
    if (oss >= topology_.oss_to_leaf.size()) {
      throw std::out_of_range("LibPio: ost_to_oss references unknown OSS");
    }
  }
}

double LibPio::ost_score(std::uint32_t ost, const LoadSnapshot& loads) const {
  const std::uint32_t oss = topology_.ost_to_oss[ost];
  double s = 0.0;
  if (ost < loads.ost_load.size()) s += weights_.ost_weight * loads.ost_load[ost];
  if (oss < loads.oss_load.size()) s += weights_.oss_weight * loads.oss_load[oss];
  return s;
}

std::size_t LibPio::best_router_for_leaf(
    std::size_t leaf, const LoadSnapshot& loads,
    std::span<const double> extra_router_load) const {
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t r = 0; r < topology_.router_to_leaf.size(); ++r) {
    const bool on_leaf = topology_.router_to_leaf[r] == leaf;
    double score = r < loads.router_load.size() ? loads.router_load[r] : 0.0;
    score += extra_router_load[r];
    // Routers not on the destination leaf cross the core: heavy penalty but
    // still usable as overflow.
    if (!on_leaf) score += 10.0;
    if (score < best_score) {
      best_score = score;
      best = r;
      found = true;
    }
  }
  return found ? best : 0;
}

std::vector<PlacementSuggestion> LibPio::place_job(
    std::size_t writers, const LoadSnapshot& loads) const {
  const std::size_t n_ost = topology_.ost_to_oss.size();
  // Rank OSTs by combined OST+OSS load, then deal writers across the ranked
  // list while limiting how many land on the same OSS in one pass.
  std::vector<std::uint32_t> order(n_ost);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> scores(n_ost);
  for (std::uint32_t o = 0; o < n_ost; ++o) scores[o] = ost_score(o, loads);
  std::stable_sort(order.begin(), order.end(), [&scores](auto a, auto b) {
    return scores[a] < scores[b];
  });

  std::vector<double> oss_extra(topology_.oss_to_leaf.size(), 0.0);
  std::vector<double> ost_extra(n_ost, 0.0);
  std::vector<double> router_extra(topology_.router_to_leaf.size(), 0.0);

  std::vector<PlacementSuggestion> out;
  out.reserve(writers);
  for (std::size_t w = 0; w < writers; ++w) {
    // Re-rank lazily: pick the best OST accounting for what this job has
    // already placed (self-interference matters at scale).
    std::uint32_t best_ost = order.front();
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t o : order) {
      const std::uint32_t oss = topology_.ost_to_oss[o];
      const double s = scores[o] + weights_.ost_weight * ost_extra[o] +
                       weights_.oss_weight * oss_extra[oss];
      if (s < best) {
        best = s;
        best_ost = o;
      }
    }
    const std::uint32_t oss = topology_.ost_to_oss[best_ost];
    const std::size_t leaf = topology_.oss_to_leaf[oss];
    PlacementSuggestion sug;
    sug.ost = best_ost;
    sug.router = best_router_for_leaf(leaf, loads, router_extra);
    out.push_back(sug);
    ost_extra[best_ost] += 1.0;
    oss_extra[oss] += 0.3;
    router_extra[sug.router] += 0.2;
  }
  return out;
}

std::vector<PlacementSuggestion> LibPio::place_default(std::size_t writers,
                                                       Rng& rng) const {
  std::vector<PlacementSuggestion> out;
  out.reserve(writers);
  const std::size_t n_ost = topology_.ost_to_oss.size();
  const std::size_t n_router = topology_.router_to_leaf.size();
  std::size_t ost_cursor = rng.uniform_index(n_ost);
  std::size_t router_cursor = rng.uniform_index(n_router);
  for (std::size_t w = 0; w < writers; ++w) {
    PlacementSuggestion sug;
    sug.ost = static_cast<std::uint32_t>(ost_cursor);
    sug.router = router_cursor;
    out.push_back(sug);
    ost_cursor = (ost_cursor + 1) % n_ost;
    router_cursor = (router_cursor + 1) % n_router;
  }
  return out;
}

}  // namespace spider::tools
