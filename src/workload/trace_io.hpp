// Request-trace serialization.
//
// The paper's workload study [14] analyzed production server-side logs;
// this module round-trips IoRequest traces through a simple CSV format so
// the characterization pipeline (workload/characterize) and the generators
// can exchange data with external tooling, and so benches can persist the
// traces they analyzed.
//
// Format: one header line, then one line per request:
//   time_ns,client,size_bytes,dir,mode
// with dir in {R,W} and mode in {S,R}.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "workload/pattern.hpp"

namespace spider::workload {

/// Write a trace as CSV.
void write_trace_csv(std::ostream& os, std::span<const IoRequest> trace);

/// Parse a CSV trace. Throws std::runtime_error on malformed input
/// (wrong column count, bad enum letters, non-numeric fields). The header
/// line is required.
std::vector<IoRequest> read_trace_csv(std::istream& is);

/// Convenience: serialize to / parse from a string.
std::string trace_to_string(std::span<const IoRequest> trace);
std::vector<IoRequest> trace_from_string(const std::string& csv);

}  // namespace spider::workload
