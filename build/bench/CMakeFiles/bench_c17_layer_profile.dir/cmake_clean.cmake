file(REMOVE_RECURSE
  "CMakeFiles/bench_c17_layer_profile.dir/bench_c17_layer_profile.cpp.o"
  "CMakeFiles/bench_c17_layer_profile.dir/bench_c17_layer_profile.cpp.o.d"
  "bench_c17_layer_profile"
  "bench_c17_layer_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c17_layer_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
