// Units and quantities used throughout spiderpfs.
//
// Conventions:
//   - bytes are uint64_t; helper literals give KiB/MiB/GiB/TiB/PiB (binary)
//     and KB/MB/GB/TB/PB (decimal, as used by disk vendors and the paper's
//     "1 TB/s" figures).
//   - bandwidth is double bytes/second.
//   - simulated time is int64_t nanoseconds (see sim/time.hpp); wall-clock
//     style helpers here convert seconds/minutes/hours to nanoseconds.
#pragma once

#include <cstdint>

namespace spider {

using Bytes = std::uint64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ULL; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL; }
inline constexpr Bytes operator""_TiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL * 1024ULL; }
inline constexpr Bytes operator""_PiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL * 1024ULL * 1024ULL; }

inline constexpr Bytes operator""_KB(unsigned long long v) { return v * 1000ULL; }
inline constexpr Bytes operator""_MB(unsigned long long v) { return v * 1000ULL * 1000ULL; }
inline constexpr Bytes operator""_GB(unsigned long long v) { return v * 1000ULL * 1000ULL * 1000ULL; }
inline constexpr Bytes operator""_TB(unsigned long long v) { return v * 1000ULL * 1000ULL * 1000ULL * 1000ULL; }
inline constexpr Bytes operator""_PB(unsigned long long v) { return v * 1000ULL * 1000ULL * 1000ULL * 1000ULL * 1000ULL; }

/// Bandwidth in bytes per second.
using Bandwidth = double;

/// Fractional byte volume (averages, rate×time integrals) where the exact
/// integer `Bytes` is not meaningful. Still bytes — the name carries the
/// unit so spiderlint rule L3 (raw-unit-double) can hold declarations to it.
using ByteVolume = double;

/// A duration in seconds, for quantities outside the simulator's integer
/// nanosecond clock (sim/time.hpp) — wall-time estimates, measured
/// latencies, statistical summaries.
using Seconds = double;

inline constexpr Bandwidth kMiBps = 1024.0 * 1024.0;
inline constexpr Bandwidth kMBps = 1e6;
inline constexpr Bandwidth kGBps = 1e9;
inline constexpr Bandwidth kTBps = 1e12;

/// Wall-time conversion factors for paths that work in raw double seconds
/// rather than the simulator's integer nanoseconds (sim/time.hpp). Named so
/// calibration arithmetic stays greppable (spiderlint L8).
inline constexpr double kMillisPerSecond = 1e3;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kHoursPerYear = 8766.0;  // 365.25 * 24

/// Convert bytes/second to GB/s (decimal) for reporting.
inline constexpr double to_gbps(Bandwidth b) { return b / kGBps; }
/// Convert bytes/second to MB/s (decimal) for reporting.
inline constexpr double to_mbps(Bandwidth b) { return b / kMBps; }

/// Convert a byte count to GiB for reporting.
inline constexpr double to_gib(Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0 * 1024.0); }
/// Convert a byte count to decimal TB for reporting.
inline constexpr double to_tb(Bytes b) { return static_cast<double>(b) / 1e12; }
/// Convert a byte count to decimal PB for reporting.
inline constexpr double to_pb(Bytes b) { return static_cast<double>(b) / 1e15; }

}  // namespace spider
