// Ablation A5 (Section VII): the Lustre striping best practices.
//
// "Placing small files or directories containing many small files on a
// single OST by setting the striping count to 1 ... improves the stat
// performance since every stat operation must communicate with every OST
// which contains file or directory data. Other examples include employing
// large and stripe-aligned I/O requests whenever possible."
//
// Two sides of the tradeoff: metadata cost of a stat storm vs the
// single-file bandwidth a wide stripe buys for large files.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "fs/mds.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  bench::banner("A5a: stat-storm cost vs stripe count (interactive `ls -l` "
                "over 100k small files)");
  fs::Mds mds;
  Table stat_table;
  stat_table.set_columns({"stripe count", "weighted ops per stat",
                          "storm cost kops", "storm wall s (idle MDS)"});
  double storm_s[4];
  int row = 0;
  for (std::uint32_t stripes : {1u, 4u, 8u, 16u}) {
    const double per_stat = mds.op_cost(fs::MetaOp::kStat, stripes);
    const double storm = per_stat * 100e3;
    storm_s[row++] = storm / mds.capacity_ops();
    stat_table.add_row({static_cast<std::int64_t>(stripes), per_stat,
                        storm / 1e3, storm / mds.capacity_ops()});
  }
  stat_table.print(std::cout);

  bench::banner("A5b: single large file bandwidth vs stripe count "
                "(one writer process per stripe, 1 MiB aligned)");
  Rng rng(2014);
  core::CenterModel center(core::spider2_config(), rng);
  center.set_target_namespace(0);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);
  Table bw_table;
  bw_table.set_columns({"stripe count", "file bandwidth GB/s"});
  double file_bw[4];
  row = 0;
  for (std::size_t stripes : {1u, 4u, 8u, 16u}) {
    // A shared file striped over N OSTs served by N writer processes: one
    // flow per stripe.
    center.reset_flows();
    auto& solver = center.solver();
    for (std::size_t s = 0; s < stripes; ++s) {
      auto df = center.data_flow(s, s, block::IoDir::kWrite,
                                 block::IoMode::kSequential, 1_MiB);
      solver.add_flow(std::move(df.path), df.rate_cap);
    }
    solver.solve();
    file_bw[row++] = solver.aggregate_rate();
    bw_table.add_row({static_cast<std::int64_t>(stripes),
                      to_gbps(solver.aggregate_rate())});
  }
  bw_table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(storm_s[3] > 2.0 * storm_s[0],
                "wide striping multiplies the stat storm (stripe-1 rule)");
  checker.check(file_bw[3] > 8.0 * file_bw[0],
                "wide striping multiplies large-file bandwidth");
  checker.check(storm_s[0] < 10.0,
                "stripe-1 keeps a 100k stat storm interactive");
  return checker.exit_code();
}
