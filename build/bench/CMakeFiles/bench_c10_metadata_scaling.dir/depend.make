# Empty dependencies file for bench_c10_metadata_scaling.
# This may be replaced when dependencies are built.
