// G1: two generations of the data-centric model — Spider I (2008) vs
// Spider II (2013).
//
// Paper touchstones: Spider I provided 240 GB/s and 10 PB over four
// namespaces (and carried the 5-enclosure failure-domain design the 2010
// incident exposed); Spider II provides >1 TB/s and 32 PB over two
// namespaces with the corrected 10-enclosure design. "The original Spider I
// file system met a similar capacity target and supported all compute
// systems in the facility without the need for an upgrade."
#include <iostream>

#include "bench_util.hpp"
#include "block/failure.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "tools/capacity_planner.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  bench::banner("G1: Spider I (2008) vs Spider II (2013)");

  struct Generation {
    const char* name;
    core::CenterConfig cfg;
    double paper_bw_gbps;
    double paper_capacity_pb;
  };
  Generation gens[] = {
      {"Spider I", core::spider1_config(), 240.0, 10.0},
      {"Spider II", core::spider2_config(), 1000.0, 32.0},
  };

  Table table;
  table.set_columns({"system", "namespaces", "OSTs", "capacity PB (paper)",
                     "peak GB/s (paper)", "enclosure design",
                     "incident outcome"});
  double measured_bw[2];
  double measured_pb[2];
  for (int g = 0; g < 2; ++g) {
    Rng rng(2014);
    core::CenterModel center(gens[g].cfg, rng);
    center.set_target_namespace(SIZE_MAX);
    center.set_client_placement(core::ClientPlacement::kOptimal, rng);
    workload::IorConfig ior;
    ior.clients = center.total_osts() * 2;
    const auto r = workload::run_ior(center, ior);
    measured_bw[g] = to_gbps(r.aggregate_bw);
    measured_pb[g] = to_pb(center.filesystem().capacity());

    Rng irng(7);
    block::IncidentConfig incident;
    incident.enclosures = gens[g].cfg.ssu.enclosures;
    const auto outcome = block::replay_incident_2010(incident, irng);

    table.add_row(
        {std::string(gens[g].name),
         static_cast<std::int64_t>(gens[g].cfg.namespaces),
         static_cast<std::int64_t>(center.total_osts()),
         std::to_string(measured_pb[g]).substr(0, 5) + " (" +
             std::to_string(static_cast<int>(gens[g].paper_capacity_pb)) + ")",
         std::to_string(measured_bw[g]).substr(0, 6) + " (" +
             std::to_string(static_cast<int>(gens[g].paper_bw_gbps)) + ")",
         std::to_string(gens[g].cfg.ssu.enclosures) + " enclosures",
         std::string(outcome.data_lost ? "DATA LOST" : "tolerated")});
  }
  table.print(std::cout);

  // The 30x capacity rule held for both generations without an upgrade.
  std::cout << "\ncapacity targets: Spider I vs ~270 TB attached memory -> "
            << to_pb(tools::capacity_target_from_memory(270_TB))
            << " PB needed; Spider II vs 770 TB -> "
            << to_pb(tools::capacity_target_from_memory(770_TB))
            << " PB needed\n\n";

  bench::ShapeChecker checker;
  checker.check(std::abs(measured_bw[0] - 240.0) < 60.0,
                "Spider I generation delivers ~240 GB/s");
  checker.check(measured_bw[1] > 1000.0,
                "Spider II generation delivers > 1 TB/s");
  checker.check(measured_bw[1] / measured_bw[0] > 3.5,
                "one generation bought ~4x bandwidth");
  checker.check(std::abs(measured_pb[0] - 10.0) < 4.0 &&
                    std::abs(measured_pb[1] - 32.0) < 2.0,
                "capacities land on the paper's 10 PB / 32 PB");
  return checker.exit_code();
}
