// Discrete-event simulator driver.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace spider::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedule at an absolute time (must be >= now()).
  EventId schedule_at(SimTime when, EventFn fn);
  /// Schedule `dt` after now (dt >= 0).
  EventId schedule_in(SimTime dt, EventFn fn);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or `until` is reached, whichever is first.
  /// The clock stops at the last executed event (or exactly at `until` if
  /// the run was cut off). Returns the number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Execute exactly one event, if any. Returns true if one ran.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace spider::sim
