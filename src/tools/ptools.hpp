// Scalable file tools: dcp / dfind / dtar vs their serial ancestors
// (Section VI-C, Lesson 19).
//
// "Standard Linux tools do not work well at scale... cp, tar, find are
// single threaded commands, designed to run on a single file system
// client." The OLCF/LLNL/LANL/DDN collaboration produced parallel
// replacements. The models here compute makespan for tree walks and data
// movement as a function of tool parallelism, client bandwidth, MDS
// capacity, and file-system bandwidth — showing both the parallel speedup
// and where it saturates (the MDS for find, the FS for cp).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace spider::tools {

/// Synthetic dataset description the tool operates on.
struct TreeSpec {
  std::uint64_t files = 1'000'000;
  std::uint64_t directories = 50'000;
  Bytes mean_file_size = 8_MiB;

  Bytes total_bytes() const { return files * mean_file_size; }
};

/// Capacities of the system the tool runs against.
struct ToolEnvironment {
  /// Metadata ops/sec the MDS can spend on this tool (after production
  /// traffic).
  double mds_ops_per_sec = 15e3;
  /// Weighted op cost per item visited (lookup + stat).
  double ops_per_item = 1.6;
  /// One client node's data bandwidth.
  Bandwidth client_bw = 1.2 * kGBps;
  /// File-system aggregate bandwidth available to the tool.
  Bandwidth fs_bw = 240.0 * kGBps;
  /// Round-trip latency of one serial metadata op, seconds (a serial tool
  /// is latency-bound long before it is throughput-bound).
  double metadata_rtt_s = 400e-6;
};

struct ToolRunResult {
  double wall_s = 0.0;
  std::uint64_t items = 0;
  Bytes bytes_moved = 0;
  double mds_utilization = 0.0;  ///< during the run
};

/// find(1): serial, latency-bound tree walk.
ToolRunResult run_serial_find(const TreeSpec& tree, const ToolEnvironment& env);
/// dfind: `ranks` walkers; throughput-bound by min(rank capacity, MDS).
ToolRunResult run_dfind(const TreeSpec& tree, const ToolEnvironment& env,
                        unsigned ranks);

/// cp -r: serial walk + single-client data funnel.
ToolRunResult run_serial_cp(const TreeSpec& tree, const ToolEnvironment& env);
/// dcp: parallel walk + `ranks` client nodes moving data.
ToolRunResult run_dcp(const TreeSpec& tree, const ToolEnvironment& env,
                      unsigned ranks);

/// tar -c: serial walk + serial read + single output stream.
ToolRunResult run_serial_tar(const TreeSpec& tree, const ToolEnvironment& env);
/// dtar: parallel read, striped archive output.
ToolRunResult run_dtar(const TreeSpec& tree, const ToolEnvironment& env,
                       unsigned ranks);

}  // namespace spider::tools
