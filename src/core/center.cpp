#include "core/center.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>

namespace spider::core {

CenterModel::CenterModel(const CenterConfig& config, Rng& rng)
    : config_(config),
      torus_(config.torus),
      fabric_(config.fabric),
      filesystem_(config.name) {
  routers_ = net::place_routers(torus_, config_.placement,
                                config_.placement_strategy);
  fgr_ = std::make_unique<net::FgrPolicy>(torus_, routers_,
                                          config_.fabric.leaf_switches);
  build_fleet(rng);
  build_filesystem();
  set_client_placement(ClientPlacement::kRandom, rng);
  build_solver();
}

void CenterModel::build_fleet(Rng& rng) {
  ssus_.reserve(config_.ssus);
  for (std::size_t s = 0; s < config_.ssus; ++s) {
    ssus_.emplace_back(config_.ssu, static_cast<std::uint32_t>(s), rng);
  }
  const std::size_t n_ost = config_.ssus * config_.ssu.raid_groups;
  osts_.reserve(n_ost);
  for (std::size_t o = 0; o < n_ost; ++o) {
    const std::size_t s = o / config_.ssu.raid_groups;
    const std::size_t g = o % config_.ssu.raid_groups;
    osts_.emplace_back(static_cast<std::uint32_t>(o), &ssus_[s].group(g),
                       config_.ost);
  }
  oss_.reserve(config_.oss_count);
  const std::size_t per_oss =
      (n_ost + config_.oss_count - 1) / config_.oss_count;
  for (std::size_t i = 0; i < config_.oss_count; ++i) {
    oss_.emplace_back(static_cast<std::uint32_t>(i), config_.oss,
                      fabric_.leaf_of_oss(i, config_.oss_count));
  }
  for (std::size_t o = 0; o < n_ost; ++o) {
    oss_[std::min(o / per_oss, oss_.size() - 1)].attach(&osts_[o]);
  }
}

void CenterModel::build_filesystem() {
  const std::size_t n_ost = osts_.size();
  const std::size_t per_ns = n_ost / config_.namespaces;
  for (std::size_t n = 0; n < config_.namespaces; ++n) {
    std::vector<fs::Ost*> slice;
    const std::size_t base = n * per_ns;
    const std::size_t end = n + 1 == config_.namespaces ? n_ost : base + per_ns;
    for (std::size_t o = base; o < end; ++o) slice.push_back(&osts_[o]);
    filesystem_.add_namespace(std::make_unique<fs::FsNamespace>(
        config_.name + "-ns" + std::to_string(n), std::move(slice), config_.mds,
        config_.allocator_mode, config_.default_stripe));
  }
}

std::size_t CenterModel::oss_of_ost(std::size_t global_ost) const {
  const std::size_t per_oss =
      (osts_.size() + oss_.size() - 1) / oss_.size();
  return std::min(global_ost / per_oss, oss_.size() - 1);
}

std::size_t CenterModel::ssu_of_ost(std::size_t global_ost) const {
  return global_ost / config_.ssu.raid_groups;
}

std::size_t CenterModel::namespace_of_ost(std::size_t global_ost) const {
  const std::size_t per_ns = osts_.size() / config_.namespaces;
  return std::min(global_ost / per_ns, config_.namespaces - 1);
}

std::size_t CenterModel::leaf_of_ost(std::size_t global_ost) const {
  return oss_[oss_of_ost(global_ost)].ib_leaf();
}

int CenterModel::node_of_client(std::size_t client) const {
  return node_of_client_.at(client % node_of_client_.size());
}

void CenterModel::set_client_placement(ClientPlacement placement, Rng& rng) {
  placement_mode_ = placement;
  node_of_client_.assign(config_.clients, 0);
  if (placement == ClientPlacement::kOptimal) {
    // Co-locate each client with a router node (zero-hop I/O path).
    for (std::size_t c = 0; c < node_of_client_.size(); ++c) {
      node_of_client_[c] = routers_[c % routers_.size()].node;
    }
    return;
  }
  // Scheduler placement: clients land on a random permutation of node
  // slots (clients_per_node per node), optimized for compute locality, not
  // for I/O.
  std::vector<int> slots;
  slots.reserve(static_cast<std::size_t>(torus_.num_nodes()) *
                config_.clients_per_node);
  for (int n = 0; n < torus_.num_nodes(); ++n) {
    for (std::uint32_t k = 0; k < config_.clients_per_node; ++k) {
      slots.push_back(n);
    }
  }
  // Fisher-Yates with our deterministic rng.
  for (std::size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1], slots[rng.uniform_index(i)]);
  }
  for (std::size_t c = 0; c < node_of_client_.size(); ++c) {
    node_of_client_[c] = slots[c % slots.size()];
  }
}

double CenterModel::ost_capacity_ref(std::size_t global_ost) const {
  return osts_[global_ost].bandwidth(block::IoMode::kSequential,
                                     block::IoDir::kWrite, config_.max_rpc);
}

double CenterModel::controller_capacity(std::size_t ssu) const {
  return ssus_[ssu].controller().delivered_bw();
}

namespace {
/// Adapter so the same registration code serves SteadyStateSolver and
/// FlowNetwork (both expose add_resource(name, capacity)).
template <typename Net>
ResourceMap register_all(Net& net, const CenterConfig& cfg,
                         const net::Torus3D& torus, std::size_t routers,
                         bool include_torus_links,
                         const std::vector<double>& oss_bw,
                         const std::vector<double>& ctrl_bw,
                         const std::vector<double>& ost_ref) {
  ResourceMap map;
  map.has_torus_links = include_torus_links;
  map.node_nic.reserve(static_cast<std::size_t>(torus.num_nodes()));
  for (int n = 0; n < torus.num_nodes(); ++n) {
    map.node_nic.push_back(
        net.add_resource("nic" + std::to_string(n), cfg.node_injection_bw));
  }
  if (include_torus_links) {
    map.torus_link.reserve(static_cast<std::size_t>(torus.num_links()));
    for (int l = 0; l < torus.num_links(); ++l) {
      map.torus_link.push_back(
          net.add_resource("tl" + std::to_string(l), cfg.torus_link_bw));
    }
  }
  for (std::size_t r = 0; r < routers; ++r) {
    map.router.push_back(
        net.add_resource("rtr" + std::to_string(r), cfg.router_bw));
  }
  for (std::size_t l = 0; l < cfg.fabric.leaf_switches; ++l) {
    map.ib_leaf.push_back(
        net.add_resource("leaf" + std::to_string(l), cfg.fabric.leaf_bw));
  }
  for (std::size_t c = 0; c < cfg.fabric.core_switches; ++c) {
    map.ib_core.push_back(
        net.add_resource("core" + std::to_string(c), cfg.fabric.core_bw));
  }
  for (std::size_t i = 0; i < oss_bw.size(); ++i) {
    map.oss.push_back(net.add_resource("oss" + std::to_string(i), oss_bw[i]));
  }
  for (std::size_t s = 0; s < ctrl_bw.size(); ++s) {
    map.controller.push_back(
        net.add_resource("ctrl" + std::to_string(s), ctrl_bw[s]));
  }
  for (std::size_t o = 0; o < ost_ref.size(); ++o) {
    map.ost.push_back(net.add_resource("ost" + std::to_string(o), ost_ref[o]));
  }
  return map;
}
}  // namespace

std::vector<double> CenterModel::current_ost_refs() const {
  std::vector<double> refs(osts_.size());
  for (std::size_t o = 0; o < osts_.size(); ++o) {
    refs[o] = ost_capacity_ref(o);
  }
  return refs;
}

void CenterModel::build_solver() {
  ost_ref_bw_ = current_ost_refs();
  std::vector<double> oss_bw;
  for (const auto& s : oss_) oss_bw.push_back(s.node_bw());
  std::vector<double> ctrl_bw;
  for (std::size_t s = 0; s < ssus_.size(); ++s) {
    ctrl_bw.push_back(controller_capacity(s));
  }
  steady_map_ = register_all(solver_, config_, torus_, routers_.size(),
                             /*include_torus_links=*/true, oss_bw, ctrl_bw,
                             ost_ref_bw_);
}

ResourceMap CenterModel::register_into(sim::FlowNetwork& net,
                                       bool include_torus_links) const {
  std::vector<double> oss_bw;
  for (const auto& s : oss_) oss_bw.push_back(s.node_bw());
  std::vector<double> ctrl_bw;
  for (std::size_t s = 0; s < ssus_.size(); ++s) {
    ctrl_bw.push_back(controller_capacity(s));
  }
  return register_all(net, config_, torus_, routers_.size(),
                      include_torus_links, oss_bw, ctrl_bw, current_ost_refs());
}

void CenterModel::refresh_capacities() {
  for (std::size_t s = 0; s < ssus_.size(); ++s) {
    solver_.set_capacity(steady_map_.controller[s], controller_capacity(s));
  }
  for (std::size_t o = 0; o < osts_.size(); ++o) {
    ost_ref_bw_[o] = ost_capacity_ref(o);
    solver_.set_capacity(steady_map_.ost[o], ost_ref_bw_[o]);
  }
}

void CenterModel::upgrade_controllers(const block::ControllerParams& params) {
  for (auto& s : ssus_) s.controller().upgrade(params);
  refresh_capacities();
}

void CenterModel::set_fleet_fullness(double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  for (auto& o : osts_) {
    o.set_used(static_cast<Bytes>(static_cast<double>(o.capacity()) * fraction));
  }
  refresh_capacities();
}

void CenterModel::set_target_namespace(std::size_t ns) {
  if (ns != SIZE_MAX && ns >= config_.namespaces) {
    throw std::out_of_range("set_target_namespace: bad namespace");
  }
  target_ns_ = ns;
}

std::size_t CenterModel::ns_base_ost(std::size_t ns) const {
  if (ns == SIZE_MAX) return 0;
  return ns * (osts_.size() / config_.namespaces);
}

std::size_t CenterModel::num_osts() const {
  if (target_ns_ == SIZE_MAX) return osts_.size();
  const std::size_t per_ns = osts_.size() / config_.namespaces;
  return target_ns_ + 1 == config_.namespaces
             ? osts_.size() - ns_base_ost(target_ns_)
             : per_ns;
}

std::size_t CenterModel::select_router(int client_node, std::size_t dest_leaf) {
  switch (routing_) {
    case RoutingPolicy::kFgr:
      return fgr_->select_fgr(client_node, dest_leaf);
    case RoutingPolicy::kNearest:
      return fgr_->select_nearest(client_node);
    case RoutingPolicy::kRoundRobin:
      return fgr_->select_round_robin(rr_counter_++);
  }
  return 0;
}

workload::DataFlow CenterModel::data_flow(std::size_t client, std::size_t ost,
                                          block::IoDir dir, block::IoMode mode,
                                          Bytes request_size) {
  return make_flow(steady_map_, client, ns_base_ost(target_ns_) + ost, dir,
                   mode, request_size);
}

workload::DataFlow CenterModel::make_flow(const ResourceMap& map,
                                          std::size_t client,
                                          std::size_t global_ost,
                                          block::IoDir dir, block::IoMode mode,
                                          Bytes request_size) {
  workload::DataFlow flow;
  const std::size_t dest_leaf = leaf_of_ost(global_ost);
  int node;
  std::size_t router_idx;
  if (placement_mode_ == ClientPlacement::kOptimal) {
    // Hand-placed for I/O (the paper's 1,008-client peak run): each client
    // sits on the node of a router that uplinks to its destination leaf,
    // so the torus path is zero hops by construction.
    const auto& candidates = fgr_->routers_for_leaf(dest_leaf);
    if (!candidates.empty()) {
      router_idx = candidates[client % candidates.size()];
    } else {
      router_idx = select_router(node_of_client(client), dest_leaf);
    }
    node = routers_[router_idx].node;
  } else {
    node = node_of_client(client);
    router_idx = select_router(node, dest_leaf);
  }
  const net::PlacedRouter& router = routers_[router_idx];
  const int hops = torus_.hop_count(node, router.node);

  // Placement-quality ceiling: see CenterConfig::per_hop_penalty.
  const double stream =
      config_.client_stream_bw /
      (1.0 + config_.per_hop_penalty * static_cast<double>(hops));
  flow.rate_cap = workload::transfer_size_rate_cap(
      request_size, stream, config_.rpc_knee, config_.max_rpc,
      config_.oversize_penalty);

  auto& path = flow.path;
  path.push_back({map.node_nic[static_cast<std::size_t>(node)], 1.0});
  if (map.has_torus_links) {
    for (net::LinkId l : torus_.route(node, router.node)) {
      path.push_back({map.torus_link[l], 1.0});
    }
  }
  path.push_back({map.router[router_idx], 1.0});
  if (router.ib_leaf != dest_leaf) {
    const auto info = fabric_.path(router.ib_leaf, dest_leaf);
    path.push_back({map.ib_leaf[router.ib_leaf], 1.0});
    path.push_back({map.ib_core[info.core_index], 1.0});
  }
  path.push_back({map.ib_leaf[dest_leaf], 1.0});
  path.push_back({map.oss[oss_of_ost(global_ost)], 1.0});
  path.push_back({map.controller[ssu_of_ost(global_ost)], 1.0});

  // OST hop: capacity is the sequential-write reference; the cost factor
  // converts the actual (mode, dir, size) efficiency into extra capacity
  // consumed per delivered byte.
  const Bytes rpc = std::min<Bytes>(request_size, config_.max_rpc);
  const double actual = osts_[global_ost].bandwidth(mode, dir, rpc);
  const double ref = ost_ref_bw_.empty()
                         ? actual
                         : ost_ref_bw_[global_ost];
  if (actual <= 0.0) {
    flow.rate_cap = 0.0;
    path.push_back({map.ost[global_ost], 1.0});
  } else {
    path.push_back({map.ost[global_ost], std::max(1e-3, ref / actual)});
  }
  return flow;
}

tools::LoadSnapshot CenterModel::loads_from_solver() const {
  tools::LoadSnapshot snap;
  snap.ost_load.reserve(steady_map_.ost.size());
  for (auto id : steady_map_.ost) snap.ost_load.push_back(solver_.utilization(id));
  for (auto id : steady_map_.oss) snap.oss_load.push_back(solver_.utilization(id));
  for (auto id : steady_map_.router) {
    snap.router_load.push_back(solver_.utilization(id));
  }
  return snap;
}

tools::LoadSnapshot CenterModel::loads_from_network(
    const sim::FlowNetwork& net, const ResourceMap& map) const {
  tools::LoadSnapshot snap;
  for (auto id : map.ost) snap.ost_load.push_back(net.stats(id).current_load);
  for (auto id : map.oss) snap.oss_load.push_back(net.stats(id).current_load);
  for (auto id : map.router) {
    snap.router_load.push_back(net.stats(id).current_load);
  }
  return snap;
}

tools::StorageTopology CenterModel::storage_topology() const {
  tools::StorageTopology topo;
  topo.ost_to_oss.reserve(osts_.size());
  for (std::size_t o = 0; o < osts_.size(); ++o) {
    topo.ost_to_oss.push_back(static_cast<std::uint32_t>(oss_of_ost(o)));
  }
  for (const auto& s : oss_) topo.oss_to_leaf.push_back(s.ib_leaf());
  for (const auto& r : routers_) topo.router_to_leaf.push_back(r.ib_leaf);
  return topo;
}

CenterModel::LayerProfile CenterModel::layer_profile(block::IoMode mode,
                                                     block::IoDir dir,
                                                     Bytes request_size) const {
  LayerProfile p;
  for (const auto& ssu : ssus_) {
    for (std::size_t g = 0; g < ssu.groups(); ++g) {
      const auto& grp = ssu.group(g);
      for (std::size_t m = 0; m < grp.width(); ++m) {
        p.disks += grp.member(m).effective_bw(mode, dir, request_size);
      }
      p.raid += grp.bandwidth(mode, dir, request_size);
    }
    p.controllers += ssu.controller().delivered_bw();
  }
  for (const auto& o : osts_) p.obdfilter += o.bandwidth(mode, dir, request_size);
  for (const auto& s : oss_) p.oss += s.node_bw();
  p.routers = static_cast<double>(routers_.size()) * config_.router_bw;
  p.ib_leaves = static_cast<double>(config_.fabric.leaf_switches) *
                config_.fabric.leaf_bw;
  p.clients = static_cast<double>(config_.clients) *
              workload::transfer_size_rate_cap(request_size,
                                               config_.client_stream_bw,
                                               config_.rpc_knee,
                                               config_.max_rpc,
                                               config_.oversize_penalty);
  p.end_to_end = std::min({p.obdfilter, p.controllers, p.oss, p.routers,
                           p.ib_leaves, p.clients});
  return p;
}

}  // namespace spider::core
