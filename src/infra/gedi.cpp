#include "infra/gedi.hpp"

#include <algorithm>
#include <cmath>

namespace spider::infra {

GediProvisioner::GediProvisioner(GediParams params) : params_(params) {}

void GediProvisioner::add_boot_script(BootScript script) {
  scripts_.push_back(std::move(script));
  std::stable_sort(scripts_.begin(), scripts_.end(),
                   [](const BootScript& a, const BootScript& b) {
                     if (a.order != b.order) return a.order < b.order;
                     return a.name < b.name;
                   });
}

BootRecord GediProvisioner::boot_node(std::uint32_t node, Rng& rng) const {
  BootRecord rec;
  rec.node = node;
  rec.image_version = image_.version;
  double t = params_.post_s * rng.uniform(0.95, 1.05);
  t += static_cast<double>(image_.size) / params_.control_net_bw;
  t += params_.kernel_init_s;
  for (const auto& s : scripts_) {
    rec.script_order.push_back(s.name);
    rec.generated_files.insert(rec.generated_files.end(),
                               s.generated_files.begin(),
                               s.generated_files.end());
    t += s.runtime_s;
  }
  rec.boot_time_s = t;
  return rec;
}

double GediProvisioner::fleet_boot_time_s(std::size_t nodes) const {
  if (nodes == 0) return 0.0;
  // POST and scripts run fully parallel; image transfers are limited by the
  // boot server's stream count, in waves.
  const double per_node_serial =
      params_.post_s + params_.kernel_init_s +
      [this] {
        double s = 0.0;
        for (const auto& script : scripts_) s += script.runtime_s;
        return s;
      }();
  const double transfer_s =
      static_cast<double>(image_.size) / params_.control_net_bw;
  const auto waves = static_cast<double>(
      (nodes + params_.parallel_streams - 1) / params_.parallel_streams);
  return per_node_serial + waves * transfer_s;
}

DisklessSavings diskless_savings(std::size_t nodes,
                                 const DiskfulHardwareCost& cost) {
  DisklessSavings s;
  s.per_node_acquisition = cost.raid_controller + cost.backplane +
                           cost.cabling + cost.carriers + cost.boot_drives;
  s.fleet_acquisition = s.per_node_acquisition * static_cast<double>(nodes);
  s.fleet_annual_maintenance =
      s.fleet_acquisition * cost.annual_maintenance_fraction;
  return s;
}

MttrComparison repair_mttr(const GediProvisioner& gedi, double reinstall_s,
                           double manual_config_s) {
  MttrComparison m;
  Rng rng(0);  // MTTR estimate uses the nominal boot
  m.diskless_s = gedi.boot_node(0, rng).boot_time_s;
  m.diskful_s = m.diskless_s + reinstall_s + manual_config_s;
  return m;
}

}  // namespace spider::infra
