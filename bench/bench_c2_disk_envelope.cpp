// C2: the fair-lio benchmark suite (Section III-B) and the single-disk
// random-performance envelope.
//
// Paper: "a single SATA or near line SAS hard disk drive can achieve
// 20-25% of its peak performance under random I/O workloads (with 1 MB I/O
// block sizes)". Vendors ran this exact parameter sweep to answer the RFP.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "block/disk.hpp"
#include "block/fairlio.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

int main() {
  using namespace spider;
  using namespace spider::block;

  Rng rng(2014);
  const Disk disk(DiskParams{}, 0, 1.0, 1e-4);

  bench::banner("C2: fair-lio parameter sweep on one 2 TB NL-SAS disk");
  Table table;
  table.set_columns({"request", "mode", "qd", "MB/s", "IOPS", "p99 ms"});
  struct Point {
    Bytes size;
    IoMode mode;
    unsigned qd;
  };
  std::vector<Point> points;
  for (Bytes size : {4_KiB, 64_KiB, 512_KiB, 1_MiB, 4_MiB}) {
    for (IoMode mode : {IoMode::kSequential, IoMode::kRandom}) {
      for (unsigned qd : {1u, 16u}) points.push_back({size, mode, qd});
    }
  }
  double seq_1m = 0.0, rnd_1m = 0.0;
  for (const auto& p : points) {
    FairLioConfig cfg;
    cfg.request_size = p.size;
    cfg.mode = p.mode;
    cfg.queue_depth = p.qd;
    cfg.duration_s = 4.0;
    cfg.write_fraction = 0.0;
    const auto r = run_fairlio(disk, cfg, rng);
    if (p.size == 1_MiB && p.qd == 1) {
      (p.mode == IoMode::kSequential ? seq_1m : rnd_1m) = r.bandwidth;
    }
    std::string label = p.size >= 1_MiB
                            ? std::to_string(p.size / 1_MiB) + " MiB"
                            : std::to_string(p.size / 1_KiB) + " KiB";
    table.add_row({label,
                   std::string(p.mode == IoMode::kSequential ? "seq" : "rand"),
                   static_cast<std::int64_t>(p.qd), to_mbps(r.bandwidth),
                   r.iops, r.p99_latency_s * 1e3});
  }
  table.print(std::cout);

  bench::banner("C2: RAID-6 8+2 group under the same sweep");
  Rng pop_rng(7);
  const auto members =
      make_population(10, DiskParams{}, PopulationModel{}, pop_rng);
  Raid6Group group(RaidParams{}, members);
  Table gtable;
  gtable.set_columns({"request", "mode", "write MB/s", "read MB/s"});
  for (Bytes size : {128_KiB, 1_MiB, 8_MiB}) {
    FairLioConfig cfg;
    cfg.request_size = size;
    cfg.duration_s = 3.0;
    cfg.mode = IoMode::kSequential;
    cfg.write_fraction = 1.0;
    const auto w = run_fairlio(group, cfg, rng);
    cfg.write_fraction = 0.0;
    const auto r = run_fairlio(group, cfg, rng);
    gtable.add_row({std::to_string(size / 1_KiB) + " KiB", std::string("seq"),
                    to_mbps(w.bandwidth), to_mbps(r.bandwidth)});
  }
  gtable.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  const double fraction = rnd_1m / seq_1m;
  std::cout << "random(1 MiB) / sequential = " << fraction << "\n";
  checker.check(fraction > 0.18 && fraction < 0.27,
                "single disk random(1 MB) is 20-25% of sequential (paper)");
  checker.check(seq_1m > 120.0 * kMBps && seq_1m < 150.0 * kMBps,
                "sequential rate matches the 2 TB NL-SAS generation");
  return checker.exit_code();
}
