#include "tools/lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace spider::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

const std::vector<RuleInfo> kRules = {
    {"L1", "unordered-iteration", Severity::kError,
     "unordered_map/unordered_set in sim-critical directories "
     "(src/sim, src/block, src/fs, src/net): iteration and float-sum order "
     "depend on hash/rehash history",
     "ordered-ok",
     "use std::map or sorted-key iteration; a pure lookup table whose order "
     "never leaks may be justified with // spiderlint: ordered-ok"},
    {"L2", "nondet-source", Severity::kError,
     "wall-clock or ambient randomness in src/ (std::random_device, rand, "
     "time(), *_clock, mt19937 outside common/rng)",
     "nondet-ok",
     "draw randomness from a seeded spider::Rng (common/rng.hpp) and time "
     "from Simulator::now(); justify true host-time uses with "
     "// spiderlint: nondet-ok"},
    {"L3", "raw-unit-double", Severity::kWarning,
     "raw double in a public header whose name carries a unit "
     "(*_bytes, *_seconds, *_bw, latency*)",
     "units-ok",
     "use the units.hpp vocabulary (Bytes, ByteVolume, Bandwidth, Seconds) "
     "so the unit lives in the type; dimensionless factors may be justified "
     "with // spiderlint: units-ok"},
    {"L4", "replay-site", Severity::kError,
     "schedule()/reschedule()/inject()/arm() without a scheduling site: "
     "replay divergence cannot be localized to the call site",
     "site-ok",
     "pass a std::source_location (or site hash) through the scheduling "
     "call, or use Simulator::schedule_at/schedule_in (and "
     "FaultInjector::inject/arm) which capture it automatically"},
};

/// Extract the text between the '(' at (line_index, col) and its matching
/// ')', spanning lines if necessary. Returns what was collected even if the
/// file ends first.
std::string balanced_args(const SourceFile& file, std::size_t line_index,
                          std::size_t open_col) {
  std::string args;
  int depth = 0;
  const std::size_t max_lines = 40;
  for (std::size_t l = line_index;
       l < file.lines.size() && l < line_index + max_lines; ++l) {
    const std::string& code = file.lines[l].code;
    std::size_t i = (l == line_index) ? open_col : 0;
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // skip the outer '('
      } else if (c == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args.push_back(c);
    }
    args.push_back(' ');  // line break inside the argument list
  }
  return args;
}

void add_finding(std::vector<Finding>& out, const RuleInfo& info,
                 const SourceFile& file, std::size_t line_index,
                 std::size_t col, std::string message) {
  Finding f;
  f.rule = std::string(info.id);
  f.severity = info.severity;
  f.file = file.path;
  f.line = line_index + 1;
  f.column = col + 1;
  f.message = std::move(message);
  f.hint = std::string(info.hint);
  out.push_back(std::move(f));
}

// --- L1: unordered containers in sim-critical code -------------------------

/// Names of variables (members, locals, params) declared with an unordered
/// container type in `file`.
std::set<std::string> unordered_idents(const SourceFile& file) {
  std::set<std::string> idents;
  for (const Line& line : file.lines) {
    const std::string& code = line.code;
    for (std::string_view tok : {"unordered_map", "unordered_set"}) {
      std::size_t pos = find_word(code, tok);
      while (pos != std::string::npos) {
        std::size_t i = pos + tok.size();
        if (i < code.size() && code[i] == '<') {
          // Balance template args on this line to find the declared name.
          int depth = 0;
          for (; i < code.size(); ++i) {
            if (code[i] == '<') ++depth;
            if (code[i] == '>' && --depth == 0) {
              ++i;
              break;
            }
          }
          while (i < code.size() && (code[i] == ' ' || code[i] == '&')) ++i;
          std::size_t j = i;
          while (j < code.size() && ident_char(code[j])) ++j;
          if (j > i && ident_start(code[i])) {
            std::size_t k = j;
            while (k < code.size() && code[k] == ' ') ++k;
            // `name(` is a function returning the container, not a variable.
            if (k >= code.size() || code[k] != '(') {
              idents.insert(std::string(code.substr(i, j - i)));
            }
          }
        }
        pos = find_word(code, tok, pos + 1);
      }
    }
  }
  return idents;
}

void run_l1(const SourceFile& file, const SourceFile* paired_header,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L1");
  std::set<std::string> tracked = unordered_idents(file);
  if (paired_header != nullptr) {
    std::set<std::string> from_header = unordered_idents(*paired_header);
    tracked.insert(from_header.begin(), from_header.end());
  }

  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    if (is_preprocessor(line)) continue;  // #include <unordered_map> et al.
    const std::string& code = line.code;

    // Any use of the type itself.
    for (std::string_view tok : {"unordered_map", "unordered_set"}) {
      const std::size_t pos = find_word(code, tok);
      if (pos == std::string::npos) continue;
      if (has_suppression(file, l, info.suppression)) continue;
      add_finding(out, info, file, l, pos,
                  "std::" + std::string(tok) + " in sim-critical code");
    }

    // Iteration over a tracked identifier: range-for (`: ident`) or an
    // explicit iterator walk (`ident.begin()`).
    for (const std::string& ident : tracked) {
      std::size_t pos = find_word(code, ident);
      while (pos != std::string::npos) {
        bool iterates = false;
        // `for (... : ident)` — previous non-space is a lone ':'.
        std::size_t p = pos;
        while (p > 0 && code[p - 1] == ' ') --p;
        if (p > 0 && code[p - 1] == ':' && (p < 2 || code[p - 2] != ':') &&
            find_word(code, "for") != std::string::npos) {
          iterates = true;
        }
        // `ident.begin()` / `.cbegin()` / `.rbegin()`.
        const std::string_view after =
            std::string_view(code).substr(pos + ident.size());
        if (after.starts_with(".begin(") || after.starts_with(".cbegin(") ||
            after.starts_with(".rbegin(")) {
          iterates = true;
        }
        if (iterates && !has_suppression(file, l, info.suppression)) {
          add_finding(out, info, file, l, pos,
                      "iteration over unordered container '" + ident + "'");
          break;  // one finding per line per identifier is enough
        }
        pos = find_word(code, ident, pos + 1);
      }
    }
  }
}

// --- L2: nondeterminism sources --------------------------------------------

void run_l2(const SourceFile& file, const FileClass& cls,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L2");
  struct Token {
    std::string_view text;
    bool needs_call;  // must be followed by '('
  };
  static const Token kTokens[] = {
      {"random_device", false}, {"rand", true},
      {"srand", true},          {"time", true},
      {"clock", true},          {"gettimeofday", false},
      {"clock_gettime", false}, {"system_clock", false},
      {"steady_clock", false},  {"high_resolution_clock", false},
  };

  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    if (is_preprocessor(line)) continue;
    const std::string& code = line.code;

    for (const Token& tok : kTokens) {
      std::size_t pos = find_word(code, tok.text);
      while (pos != std::string::npos) {
        std::size_t i = pos + tok.text.size();
        while (i < code.size() && code[i] == ' ') ++i;
        const bool is_call = i < code.size() && code[i] == '(';
        if ((!tok.needs_call || is_call) &&
            !has_suppression(file, l, info.suppression)) {
          add_finding(out, info, file, l, pos,
                      "nondeterminism source '" + std::string(tok.text) +
                          "' — simulations must not read ambient "
                          "randomness or wall-clock time");
          break;
        }
        pos = find_word(code, tok.text, pos + 1);
      }
    }

    // mt19937 / mt19937_64: allowed only inside common/rng (the one place
    // engines may live); elsewhere RNGs must come through spider::Rng.
    if (!cls.rng_home) {
      std::size_t pos = code.find("mt19937");
      while (pos != std::string::npos) {
        if ((pos == 0 || !ident_char(code[pos - 1])) &&
            !has_suppression(file, l, info.suppression)) {
          add_finding(out, info, file, l, pos,
                      "mt19937 constructed outside common/rng — use "
                      "spider::Rng so seeding stays explicit");
          break;
        }
        pos = code.find("mt19937", pos + 1);
      }
    }
  }
}

// --- L3: raw unit-bearing doubles in public headers ------------------------

bool unit_bearing_name(std::string_view ident) {
  return ident.ends_with("_bytes") || ident.ends_with("_seconds") ||
         ident.ends_with("_bw") || ident.starts_with("latency") ||
         ident == "bytes" || ident == "seconds" || ident == "bw";
}

void run_l3(const SourceFile& file, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L3");
  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    if (is_preprocessor(line)) continue;
    const std::string& code = line.code;

    std::size_t pos = find_word(code, "double");
    while (pos != std::string::npos) {
      std::size_t i = pos + 6;
      while (i < code.size() && code[i] == ' ') ++i;
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      if (j > i && ident_start(code[i])) {
        const std::string_view ident = std::string_view(code).substr(i, j - i);
        if (unit_bearing_name(ident) &&
            !has_suppression(file, l, info.suppression)) {
          add_finding(out, info, file, l, pos,
                      "raw double '" + std::string(ident) +
                          "' carries a unit in its name");
        }
      }
      pos = find_word(code, "double", pos + 1);
    }
  }
}

// --- L4: scheduling sites ---------------------------------------------------

bool args_carry_site(std::string_view args) {
  return args.find("site") != std::string_view::npos ||
         args.find("source_location") != std::string_view::npos ||
         find_word(args, "loc") != std::string_view::npos;
}

void run_l4(const SourceFile& file, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L4");
  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    if (is_preprocessor(line)) continue;
    const std::string& code = line.code;

    // Call sites: obj.schedule(...) / obj->reschedule(...).
    for (std::string_view tok : {"schedule", "reschedule"}) {
      std::size_t pos = find_word(code, tok);
      while (pos != std::string::npos) {
        const bool member_call =
            (pos >= 1 && code[pos - 1] == '.') ||
            (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
        std::size_t i = pos + tok.size();
        if (member_call && i < code.size() && code[i] == '(') {
          const std::string args = balanced_args(file, l, i);
          if (!args_carry_site(args) &&
              !has_suppression(file, l, info.suppression)) {
            add_finding(out, info, file, l, pos,
                        "call to " + std::string(tok) +
                            "() drops the scheduling site");
          }
        }
        pos = find_word(code, tok, pos + 1);
      }
    }

    // Declarations/definitions of scheduling entry points taking a callback
    // (or a fault-plan payload, which compiles into scheduled events): the
    // parameter list must carry a source_location or site hash. inject/arm
    // are checked at the declaration only — call sites legitimately rely on
    // the defaulted source_location::current() argument.
    for (std::string_view tok :
         {"schedule", "reschedule", "schedule_at", "schedule_in", "inject",
          "arm"}) {
      std::size_t pos = find_word(code, tok);
      while (pos != std::string::npos) {
        const bool qualified =
            pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':';
        const bool after_type = pos >= 2 && code[pos - 1] == ' ' &&
                                ident_char(code[pos - 2]);
        std::size_t i = pos + tok.size();
        if ((qualified || after_type) && i < code.size() && code[i] == '(') {
          const std::string args = balanced_args(file, l, i);
          const bool takes_callback =
              args.find("EventFn") != std::string::npos ||
              args.find("std::function") != std::string::npos ||
              args.find("Injection") != std::string::npos ||
              args.find("FaultPlan") != std::string::npos;
          if (takes_callback && !args_carry_site(args) &&
              !has_suppression(file, l, info.suppression)) {
            add_finding(out, info, file, l, pos,
                        std::string(tok) +
                            "() takes a callback but no scheduling site "
                            "parameter");
          }
        }
        pos = find_word(code, tok, pos + 1);
      }
    }
  }
}

}  // namespace

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rules() { return kRules; }

const RuleInfo* rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

bool RuleSet::enabled(std::string_view id) const {
  if (id == "L1") return l1;
  if (id == "L2") return l2;
  if (id == "L3") return l3;
  if (id == "L4") return l4;
  return false;
}

FileClass classify_path(std::string_view path) {
  FileClass cls;
  // Split on '/' and look for the "src" component.
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] != "src") continue;
    cls.in_src = true;
    if (i + 1 < parts.size()) {
      const std::string_view sub = parts[i + 1];
      cls.sim_critical =
          sub == "sim" || sub == "block" || sub == "fs" || sub == "net";
      cls.rng_home = sub == "common" && i + 2 < parts.size() &&
                     (parts[i + 2] == "rng.cpp" || parts[i + 2] == "rng.hpp");
    }
    break;
  }
  if (!parts.empty()) {
    const std::string_view base = parts.back();
    cls.is_header = base.ends_with(".hpp") || base.ends_with(".h") ||
                    base.ends_with(".hh");
  }
  return cls;
}

std::vector<Finding> lint_file(const SourceFile& file, const FileClass& cls,
                               const SourceFile* paired_header,
                               const RuleSet& enabled) {
  std::vector<Finding> out;
  if (enabled.l1 && cls.sim_critical) run_l1(file, paired_header, out);
  if (enabled.l2 && cls.in_src) run_l2(file, cls, out);
  if (enabled.l3 && cls.in_src && cls.is_header) run_l3(file, out);
  if (enabled.l4 && cls.in_src) run_l4(file, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace spider::lint
