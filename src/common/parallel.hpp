// Minimal task parallelism: a fixed thread pool plus parallel_for.
//
// Benchmarks sweep large parameter spaces (Lesson 15 warns scaling studies
// are expensive); independent sweep points run concurrently across hardware
// threads. Simulations themselves stay single-threaded and deterministic —
// parallelism is only across independent runs.
//
// parallel_for no longer spawns threads: every call routes through one
// process-wide shared ThreadPool (see shared_pool()), so sweep benches and
// spiderfault --jobs=N pay thread creation once per process instead of once
// per batch. The calling thread participates in its own batch, which both
// speeds small batches up and makes nested calls from a worker thread
// deadlock-free (they simply run inline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace spider {

/// Fixed-size worker pool. Tasks are void() callables. An exception escaping
/// a task does not kill the worker: the first exception per batch is
/// captured and rethrown from the next wait_idle() call; later exceptions in
/// the same batch are dropped.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  /// Enqueue onto one specific worker's pinned queue (FIFO per worker,
  /// drained ahead of the shared queue). Pinning gives repeat submitters —
  /// like the sharded simulator running the same shard every epoch — cache
  /// affinity: shard state stays warm on one OS thread across barriers.
  /// Pinned tasks count toward wait_idle() like shared ones. Throws
  /// std::out_of_range when `worker` >= size().
  void submit_to(std::size_t worker, std::function<void()> task);
  /// Block until every task submitted so far — including follow-up tasks
  /// that running tasks submit — has finished, then rethrow the first
  /// exception any task in the batch raised (clearing it, so the pool stays
  /// usable for the next batch). Completion is counted against
  /// submitted-vs-finished totals, not a momentarily drained queue: a task
  /// that submit()s more work bumps the submitted count before it retires,
  /// so wait_idle() cannot slip through the gap between "queue empty" and
  /// "follow-up enqueued".
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Ids of the pool's worker threads. Lets tests prove that consecutive
  /// parallel_for batches reuse the same OS threads instead of spawning.
  std::vector<std::thread::id> worker_ids() const;

  /// True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

 private:
  void worker_loop(std::size_t index);
  /// Wake wait_idle() when every submitted task has finished. Caller holds
  /// mu_ — the predicate check and the notification must be serialized or
  /// the wakeup can be lost.
  void notify_if_idle_locked() SPIDER_REQUIRES(mu_);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> tasks_ SPIDER_GUARDED_BY(mu_);
  /// One pinned FIFO per worker, serviced before the shared queue.
  std::vector<std::queue<std::function<void()>>> pinned_ SPIDER_GUARDED_BY(mu_);
  std::exception_ptr first_error_ SPIDER_GUARDED_BY(mu_);
  std::uint64_t submitted_ SPIDER_GUARDED_BY(mu_) = 0;
  std::uint64_t finished_ SPIDER_GUARDED_BY(mu_) = 0;
  bool stop_ SPIDER_GUARDED_BY(mu_) = false;
};

/// The process-wide pool parallel_for drains into. Created on first use and
/// alive until process exit. Sized to hardware_concurrency() - 1 (minimum
/// one worker): the calling thread participates in every parallel_for
/// batch, so workers + caller together fill the machine exactly — a pool of
/// hardware_concurrency workers plus the caller oversubscribed by one.
ThreadPool& shared_pool();

/// Run fn(i) for i in [0, n) across up to `threads` concurrent participants
/// (pool workers plus the calling thread, which joins its own batch).
/// `threads` == 0 means "auto": one lane per shared-pool worker plus the
/// caller — the whole machine, no oversubscription. The effective fan-out
/// never exceeds shared_pool().size() + 1 regardless of `threads`. Blocks
/// until all iterations complete. With threads == 1 (or n == 1), or when
/// called from a shared-pool worker thread (nested parallelism), runs
/// inline — which keeps single-threaded determinism trivially available.
/// If any iteration throws, remaining un-started iterations are skipped and
/// the first exception is rethrown on the calling thread after the batch
/// drains.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace spider
