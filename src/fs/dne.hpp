// DNE: the Lustre 2.4 Distributed Namespace model (Section IV-C).
//
// "The authors acknowledge that the Lustre 2.4 version introduced the
// Distributed Namespace (DNE) feature. Currently, some legacy Lustre
// clients block implementation of this feature at OLCF. We recommend using
// both DNE and multiple namespaces, concurrently."
//
// DNE phase 1 assigns whole directories to metadata targets (MDTs), so
// independent directories scale metadata nearly linearly — but a single
// hot directory still lands on one MDT, and cross-MDT operations (renames
// between shards, remote creates) pay extra RPCs. Those two properties are
// exactly why the paper recommends DNE *and* multiple namespaces rather
// than DNE alone; the model reproduces both.
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "fs/mds.hpp"

namespace spider::fs {

struct DneParams {
  std::size_t mdts = 4;
  /// Weighted ops/sec of one MDT.
  double mdt_ops_per_sec = 20e3;
  /// Cost multiplier for an op whose directory lives on a remote MDT
  /// relative to the client's transaction (extra RPC leg).
  double remote_penalty = 1.25;
  /// Cost multiplier for cross-MDT ops (rename/link across shards: a
  /// distributed transaction).
  double cross_mdt_penalty = 2.0;
};

class DneNamespace {
 public:
  explicit DneNamespace(const DneParams& params = {});

  const DneParams& params() const { return params_; }
  std::size_t mdts() const { return params_.mdts; }

  /// MDT owning a directory (DNE phase 1: hash placement at mkdir time).
  std::size_t mdt_of_dir(std::uint64_t dir_id) const;

  /// Account one op in `dir`. `linked_dir` marks a cross-directory op
  /// (rename/link); when it maps to a different MDT the distributed-
  /// transaction penalty applies.
  struct OpOutcome {
    std::size_t mdt = 0;
    double cost = 0.0;
    bool cross_mdt = false;
  };
  OpOutcome account(std::uint64_t dir_id, MetaOp op,
                    std::uint64_t linked_dir = UINT64_MAX)
      SPIDER_JOURNALED("MDT load accounting is telemetry, not namespace "
                       "state; fsck recomputes drift from the op stream");

  /// Accumulated weighted load per MDT.
  const std::vector<double>& load() const { return load_; }
  /// Load of one MDT, bounds-checked — the stable per-shard walk spiderfsck
  /// uses (index order is MDT id order, deterministic at any scan fan-out).
  double load_of(std::size_t mdt) const;
  /// Overwrite one MDT's accounted load (spiderfsck drift repair, and the
  /// seeded corruptions its tests inject).
  void fsck_set_load(std::size_t mdt, double load);
  /// max/mean - 1 over MDT loads.
  double imbalance() const;
  void reset()
      SPIDER_JOURNALED("clears telemetry counters between experiment runs; "
                       "no namespace record corresponds to a reset");

  /// Aggregate weighted capacity.
  double capacity_ops() const;

  /// Achievable throughput for an offered load distribution: the busiest
  /// MDT saturates first (throughput = offered scaled until the hottest
  /// shard hits its rate). `offered_per_dir[i]` is weighted ops/sec
  /// directed at directory i (hashed to its MDT).
  double max_throughput(const std::vector<double>& offered_per_dir) const;

 private:
  DneParams params_;
  MdsParams op_costs_;  ///< reuse the per-op cost table
  std::vector<double> load_;
};

}  // namespace spider::fs
