#include "tools/lint/rules.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include <cctype>
#include <optional>

#include "tools/lint/callgraph.hpp"
#include "tools/lint/include_graph.hpp"
#include "tools/lint/symbols.hpp"
#include "tools/lint/token.hpp"

namespace spider::lint {

namespace {

const std::vector<RuleInfo> kRules = {
    {"L1", "unordered-iteration", Severity::kError,
     "unordered_map/unordered_set in sim-critical directories "
     "(src/sim, src/block, src/fs, src/net) or tests/bench: iteration and "
     "float-sum order depend on hash/rehash history",
     "ordered-ok",
     "use std::map or sorted-key iteration; a pure lookup table whose order "
     "never leaks may be justified with // spiderlint: ordered-ok"},
    {"L2", "nondet-source", Severity::kError,
     "wall-clock or ambient randomness in src/ (std::random_device, rand, "
     "time(), *_clock, mt19937 outside common/rng)",
     "nondet-ok",
     "draw randomness from a seeded spider::Rng (common/rng.hpp) and time "
     "from Simulator::now(); justify true host-time uses with "
     "// spiderlint: nondet-ok"},
    {"L3", "raw-unit-double", Severity::kWarning,
     "raw double in a public header whose name carries a unit "
     "(*_bytes, *_seconds, *_bw, latency*)",
     "units-ok",
     "use the units.hpp vocabulary (Bytes, ByteVolume, Bandwidth, Seconds) "
     "so the unit lives in the type; dimensionless factors may be justified "
     "with // spiderlint: units-ok"},
    {"L4", "replay-site", Severity::kError,
     "schedule()/reschedule()/inject()/arm() without a scheduling site: "
     "replay divergence cannot be localized to the call site",
     "site-ok",
     "pass a std::source_location (or site hash) through the scheduling "
     "call, or use Simulator::schedule_at/schedule_in (and "
     "FaultInjector::inject/arm) which capture it automatically"},
    {"L5", "layer-violation", Severity::kError,
     "include edge points up the architectural layering "
     "(common -> sim -> {block,fs,net} -> workload -> core -> {tools,infra}) "
     "or participates in an include cycle",
     "layer-ok",
     "invert the dependency: move the shared declaration down a layer, or "
     "pass the upper-layer behaviour in as a callback/interface; justified "
     "exceptions carry // spiderlint: layer-ok"},
    {"L6", "lock-discipline", Severity::kError,
     "member annotated SPIDER_GUARDED_BY(m) accessed in a function that "
     "neither locks m nor is annotated SPIDER_REQUIRES(m)",
     "lock-ok",
     "take std::lock_guard/std::unique_lock on the guard mutex before "
     "touching the member, or annotate the helper SPIDER_REQUIRES(m) and "
     "make every caller hold the lock"},
    {"L7", "schedule-site-flow", Severity::kError,
     "schedule_at()/schedule_in()/schedule_cross() called from a non-public "
     "helper without forwarding an explicit site: the defaulted "
     "std::source_location collapses every event from this helper to one "
     "site",
     "flow-ok",
     "thread a std::source_location parameter from the public entry point "
     "down to the scheduling call (see Simulator::schedule_at's and "
     "ShardedSimulator::schedule_cross's defaulted loc arguments)"},
    {"L8", "calibration-constant", Severity::kWarning,
     "bare numeric literal >= 1000 inside a function body in "
     "src/{block,fs,net}: bandwidth/latency/size calibration constants must "
     "have greppable provenance",
     "calib-ok",
     "hoist the literal into a named constant in the subsystem's config "
     "header (or use the units.hpp constants/literals) so the calibration "
     "source is documented once"},
    {"L9", "shard-escape", Severity::kError,
     "closure handed to a schedule call captures (or reaches through "
     "this/helper calls) a SPIDER_SHARD_OWNED member by reference: the "
     "event runs on a shard lane and only the owning shard's events may "
     "touch the state",
     "shard-ok",
     "capture a copy of the value (init-capture), or deliver the update "
     "through ShardedSimulator::schedule_cross so the owning shard's own "
     "event applies it"},
    {"L10", "cross-shard-schedule", Severity::kError,
     "event running on one shard calls schedule_at/schedule_in on a "
     "Simulator& obtained for a different shard index: that races the "
     "other shard's queue and breaks the epoch contract",
     "cross-ok",
     "route the event through ShardedSimulator::schedule_cross(from, to, "
     "when, fn) — the mailbox drains at the barrier in canonical order, "
     "direct scheduling across shards does not"},
    {"L11", "lookahead-provenance", Severity::kError,
     "`when` argument of schedule_cross built from bare numeric constants: "
     "cross-shard delays must come from net/lookahead.hpp symbols (or "
     "epoch_end/lookahead expressions) so the conservative contract stays "
     "provable",
     "lookahead-ok",
     "derive the delay from net/lookahead.hpp (kTorusHopLatency, "
     "kIbSwitchHopLatency, kLnetRouterTransit, cross_zone_lookahead, "
     "min_lookahead) or the engine's lookahead()/epoch_end() instead of a "
     "literal"},
    {"L12", "pool-capture-discipline", Severity::kError,
     "closure handed to parallel_for/submit/submit_to captures by "
     "reference state that is neither SPIDER_GUARDED_BY a mutex, "
     "std::atomic, SPIDER_SHARD_OWNED, nor a join-protected local",
     "pool-ok",
     "capture by value, guard the member (SPIDER_GUARDED_BY + lock, or "
     "std::atomic), or join the pool (wait_idle()/condition-variable wait "
     "in the submitting function) before captured locals go out of scope"},
    {"L13", "repair-confinement", Severity::kError,
     "a repair-only mutator (fsck_set_*, records_mutable, truncate_to, "
     "SPIDER_REPAIR_ONLY) is reachable through the global call graph from "
     "outside tools/spiderfsck/, tools/faultcli/, tests/, or bench/",
     "repair-ok",
     "route the state change through the normal mutation API (it journals "
     "and maintains invariants), move the caller into a repair tool, or "
     "annotate a deliberate escape hatch with // spiderlint: repair-ok"},
    {"L14", "journal-before-mutation", Severity::kError,
     "a member function of a repair-surfaced class under src/fs/ mutates "
     "member state without an earlier OpLog append in the same body",
     "journal-ok",
     "append the operation's OpRecord to the journal before touching "
     "state (crash between journal and mutation replays; the reverse "
     "order loses the op), or annotate SPIDER_JOURNALED(why) when another "
     "layer owns the journaling"},
    {"L15", "census-exhaustiveness", Severity::kError,
     "a FindingKind enumerator lacks an inject_corruption case, a repair "
     "case, or a test mention; a FaultKind enumerator lacks an injector "
     "binding or a test mention; or a make_*_oracle factory is never "
     "registered — the kind would ship half-wired",
     "census-ok",
     "wire the new kind end to end: add the inject_corruption case, the "
     "repair-switch case (or bind()/add() registration), and a test that "
     "names the enumerator"},
    {"L16", "determinism-taint", Severity::kError,
     "a value derived from a nondeterminism source (wall clock, rand, "
     "thread id, pointer identity) flows into a scheduled delay, a hash "
     "input, or a journal record",
     "taint-ok",
     "derive the value from simulation state (sim.now(), seeded Rng, "
     "stable ids) instead; host-side nondeterminism in these sinks makes "
     "replay hashes and journals irreproducible"},
};

/// True when a flattened argument list carries a scheduling site.
bool args_carry_site(std::string_view args) {
  return args.find("site") != std::string_view::npos ||
         args.find("source_location") != std::string_view::npos ||
         find_word(args, "loc") != std::string_view::npos;
}

/// Join [begin, end) token texts with spaces.
std::string flatten(const std::vector<Tok>& t, std::size_t begin,
                    std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (!out.empty()) out.push_back(' ');
    out += t[i].text;
  }
  return out;
}

void add_finding(std::vector<Finding>& out, const RuleInfo& info,
                 const std::string& path, std::size_t line_index,
                 std::size_t col, std::string message) {
  Finding f;
  f.rule = std::string(info.id);
  f.severity = info.severity;
  f.file = path;
  f.line = line_index + 1;
  f.column = col + 1;
  f.message = std::move(message);
  f.hint = std::string(info.hint);
  out.push_back(std::move(f));
}

// --- L1: unordered containers in sim-critical code -------------------------

/// Names of variables (members, locals, params) declared with an unordered
/// container type, from the token stream (declarations may span lines).
std::set<std::string> unordered_idents(const TokenStream& stream) {
  std::set<std::string> idents;
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
    std::size_t j = matching_close(t, i + 1);
    if (j >= t.size()) continue;
    ++j;
    while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*") ||
                            is_ident(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        (j + 1 >= t.size() || !is_punct(t[j + 1], "("))) {
      idents.insert(t[j].text);
    }
  }
  return idents;
}

void run_l1(const SourceFile& file, const TokenStream& stream,
            const TokenStream* header_stream, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L1");
  std::set<std::string> tracked = unordered_idents(stream);
  if (header_stream != nullptr) {
    std::set<std::string> from_header = unordered_idents(*header_stream);
    tracked.insert(from_header.begin(), from_header.end());
  }

  const std::vector<Tok>& t = stream.tokens;
  // One finding per line per trigger, mirroring the line scanner.
  std::set<std::pair<std::size_t, std::string>> flagged;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;

    // Any use of the type itself.
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
      if (flagged.emplace(t[i].line, t[i].text).second &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    "std::" + t[i].text + " in sim-critical code");
      }
      continue;
    }

    // Iteration over a tracked identifier: range-for (`: ident`) or an
    // explicit iterator walk (`ident.begin()`).
    if (tracked.count(t[i].text) == 0) continue;
    bool iterates = false;
    if (i >= 1 && is_punct(t[i - 1], ":") &&
        find_word(file.lines[t[i].line].code, "for") != std::string::npos) {
      iterates = true;
    }
    if (i + 2 < t.size() && is_punct(t[i + 1], ".") &&
        (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin") ||
         is_ident(t[i + 2], "rbegin"))) {
      iterates = true;
    }
    if (iterates && flagged.emplace(t[i].line, "it:" + t[i].text).second &&
        !has_suppression(file, t[i].line, info.suppression)) {
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "iteration over unordered container '" + t[i].text + "'");
    }
  }
}

// --- L2: nondeterminism sources --------------------------------------------

void run_l2(const SourceFile& file, const TokenStream& stream,
            const FileClass& cls, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L2");
  struct Trigger {
    std::string_view text;
    bool needs_call;  // must be followed by '('
  };
  static const Trigger kTriggers[] = {
      {"random_device", false}, {"rand", true},
      {"srand", true},          {"time", true},
      {"clock", true},          {"gettimeofday", false},
      {"clock_gettime", false}, {"system_clock", false},
      {"steady_clock", false},  {"high_resolution_clock", false},
  };

  const std::vector<Tok>& t = stream.tokens;
  std::set<std::pair<std::size_t, std::string>> flagged;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;

    for (const Trigger& trig : kTriggers) {
      if (t[i].text != trig.text) continue;
      const bool is_call = i + 1 < t.size() && is_punct(t[i + 1], "(");
      if ((!trig.needs_call || is_call) &&
          flagged.emplace(t[i].line, t[i].text).second &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    "nondeterminism source '" + t[i].text +
                        "' — simulations must not read ambient "
                        "randomness or wall-clock time");
      }
    }

    // mt19937 / mt19937_64: allowed only inside common/rng (the one place
    // engines may live); elsewhere RNGs must come through spider::Rng.
    if (!cls.rng_home && t[i].text.starts_with("mt19937") &&
        flagged.emplace(t[i].line, "mt19937").second &&
        !has_suppression(file, t[i].line, info.suppression)) {
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "mt19937 constructed outside common/rng — use "
                  "spider::Rng so seeding stays explicit");
    }
  }
}

// --- L3: raw unit-bearing doubles in public headers ------------------------

bool unit_bearing_name(std::string_view ident) {
  return ident.ends_with("_bytes") || ident.ends_with("_seconds") ||
         ident.ends_with("_bw") || ident.starts_with("latency") ||
         ident == "bytes" || ident == "seconds" || ident == "bw";
}

void run_l3(const SourceFile& file, const TokenStream& stream,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L3");
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "double") || t[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    if (unit_bearing_name(t[i + 1].text) &&
        !has_suppression(file, t[i].line, info.suppression)) {
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "raw double '" + t[i + 1].text +
                      "' carries a unit in its name");
    }
  }
}

// --- L4: scheduling sites ---------------------------------------------------

void run_l4(const SourceFile& file, const TokenStream& stream,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L4");
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& name = t[i].text;
    const bool call_name = name == "schedule" || name == "reschedule";
    const bool decl_name = call_name || name == "schedule_at" ||
                           name == "schedule_in" || name == "schedule_cross" ||
                           name == "inject" || name == "arm";
    if (!decl_name || i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
    const std::size_t close = matching_close(t, i + 1);
    if (close >= t.size()) continue;
    const std::string args = flatten(t, i + 2, close);

    // Call sites: obj.schedule(...) / obj->reschedule(...).
    const bool member_call =
        i >= 1 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    if (call_name && member_call) {
      if (!args_carry_site(args) &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    "call to " + name + "() drops the scheduling site");
      }
      continue;
    }

    // Declarations/definitions of scheduling entry points taking a callback
    // (or a fault-plan payload, which compiles into scheduled events): the
    // parameter list must carry a source_location or site hash. inject/arm
    // are checked at the declaration only — call sites legitimately rely on
    // the defaulted source_location::current() argument.
    const bool qualified = i >= 1 && is_punct(t[i - 1], "::");
    const bool after_type = i >= 1 && t[i - 1].kind == TokKind::kIdent;
    if (qualified || after_type) {
      const bool takes_callback =
          find_word(args, "EventFn") != std::string::npos ||
          find_word(args, "function") != std::string::npos ||
          find_word(args, "Injection") != std::string::npos ||
          find_word(args, "FaultPlan") != std::string::npos;
      if (takes_callback && !args_carry_site(args) &&
          !has_suppression(file, t[i].line, info.suppression)) {
        add_finding(out, info, file.path, t[i].line, t[i].col,
                    name +
                        "() takes a callback but no scheduling site "
                        "parameter");
      }
    }
  }
}

// --- L6: lock discipline ----------------------------------------------------

/// True when the body token range acquires `mutex`: a lock_guard/
/// unique_lock/scoped_lock constructed over it, or an explicit
/// `mutex.lock()`.
bool body_locks(const std::vector<Tok>& t, std::size_t begin, std::size_t end,
                std::string_view mutex) {
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "lock_guard" || t[i].text == "unique_lock" ||
        t[i].text == "scoped_lock") {
      // Find the constructor's argument list within a short window (past an
      // optional template-argument list and the variable name).
      for (std::size_t p = i + 1; p < end && p < i + 16; ++p) {
        if (is_punct(t[p], "<")) {
          p = matching_close(t, p);
          continue;
        }
        if (is_punct(t[p], "(") || is_punct(t[p], "{")) {
          const std::size_t close = matching_close(t, p);
          if (find_word(flatten(t, p + 1, close), mutex) !=
              std::string::npos) {
            return true;
          }
          break;
        }
        if (is_punct(t[p], ";")) break;
      }
    }
    if (t[i].text == mutex && i + 3 < end && is_punct(t[i + 1], ".") &&
        is_ident(t[i + 2], "lock") && is_punct(t[i + 3], "(")) {
      return true;
    }
  }
  return false;
}

/// Declaration-side annotations for an out-of-line definition: the matching
/// declaration's SPIDER_REQUIRES list, looked up by (class, name).
const FunctionSym* find_declaration(const FileSymbols* syms,
                                    const FunctionSym& def) {
  if (syms == nullptr) return nullptr;
  for (const FunctionSym& fn : syms->functions) {
    if (!fn.is_definition && fn.cls == def.cls && fn.name == def.name) {
      return &fn;
    }
  }
  return nullptr;
}

void run_l6(const SourceFile& file, const TokenStream& stream,
            const FileSymbols& syms, const FileSymbols* header_syms,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L6");
  std::vector<GuardedMember> guarded = syms.guarded;
  if (header_syms != nullptr) {
    guarded.insert(guarded.end(), header_syms->guarded.begin(),
                   header_syms->guarded.end());
  }
  if (guarded.empty()) return;

  const std::vector<Tok>& t = stream.tokens;
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition || fn.ctor_or_dtor || fn.cls.empty()) continue;

    std::vector<std::string> requires_list = fn.requires_mutexes;
    if (const FunctionSym* decl = find_declaration(header_syms, fn)) {
      requires_list.insert(requires_list.end(), decl->requires_mutexes.begin(),
                           decl->requires_mutexes.end());
    }
    if (const FunctionSym* decl = find_declaration(&syms, fn)) {
      requires_list.insert(requires_list.end(), decl->requires_mutexes.begin(),
                           decl->requires_mutexes.end());
    }

    for (const GuardedMember& g : guarded) {
      if (g.cls != fn.cls) continue;
      const bool annotated =
          std::find(requires_list.begin(), requires_list.end(), g.mutex) !=
          requires_list.end();
      if (annotated || body_locks(t, fn.body_begin, fn.body_end, g.mutex)) {
        continue;
      }
      for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size();
           ++i) {
        if (!is_ident(t[i], g.name)) continue;
        if (!has_suppression(file, t[i].line, info.suppression)) {
          add_finding(out, info, file.path, t[i].line, t[i].col,
                      "member '" + g.name + "' guarded by '" + g.mutex +
                          "' accessed in '" + fn.cls + "::" + fn.name +
                          "' without holding the lock");
        }
        break;  // one finding per function per member
      }
    }
  }
}

// --- L7: schedule-site flow -------------------------------------------------

void run_l7(const SourceFile& file, const TokenStream& stream,
            const FileSymbols& syms, const FileSymbols* header_syms,
            std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L7");
  const std::vector<Tok>& t = stream.tokens;
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition) continue;

    bool nonpublic = false;
    if (!fn.cls.empty()) {
      Access acc = fn.access;
      if (const FunctionSym* decl = find_declaration(header_syms, fn)) {
        acc = decl->access;
      } else if (const FunctionSym* local = find_declaration(&syms, fn)) {
        acc = local->access;
      }
      nonpublic = acc != Access::kPublic;
    } else {
      nonpublic = fn.in_anon_namespace;
    }
    if (!nonpublic) continue;

    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end && i < t.size();
         ++i) {
      if (t[i].kind != TokKind::kIdent ||
          (t[i].text != "schedule_at" && t[i].text != "schedule_in" &&
           t[i].text != "schedule_cross")) {
        continue;
      }
      const bool member_call =
          i >= 1 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
      if (!member_call || !is_punct(t[i + 1], "(")) continue;
      const std::size_t close = matching_close(t, i + 1);
      if (close >= t.size()) continue;
      if (args_carry_site(flatten(t, i + 2, close))) continue;
      if (has_suppression(file, t[i].line, info.suppression)) continue;
      const std::string where =
          fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  t[i].text + "() in non-public '" + where +
                      "' relies on the defaulted source_location — thread "
                      "the site from the public entry point");
    }
  }
}

// --- L8: calibration-constant provenance ------------------------------------

/// Numeric magnitude of a pp-number token; -1 when it is not a plain
/// decimal literal (hex/binary, or a unit-literal suffix with '_').
double literal_magnitude(std::string_view text) {
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X' || text[1] == 'b' || text[1] == 'B')) {
    return -1.0;
  }
  if (text.find('_') != std::string_view::npos) return -1.0;  // 64_KiB etc.
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char c : text) {
    if (c != '\'') cleaned.push_back(c);
  }
  return std::strtod(cleaned.c_str(), nullptr);
}

void run_l8(const SourceFile& file, const TokenStream& stream,
            const FileSymbols& syms, std::vector<Finding>& out) {
  const RuleInfo& info = *rule("L8");
  const std::vector<Tok>& t = stream.tokens;
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition) continue;
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (t[i].kind != TokKind::kNumber) continue;
      if (literal_magnitude(t[i].text) < 1000.0) continue;
      // A constexpr statement IS a named-constant definition.
      if (find_word(file.lines[t[i].line].code, "constexpr") !=
          std::string::npos) {
        continue;
      }
      if (has_suppression(file, t[i].line, info.suppression)) continue;
      add_finding(out, info, file.path, t[i].line, t[i].col,
                  "numeric literal '" + t[i].text +
                      "' is a calibration-scale constant without a named "
                      "source");
    }
  }
}

// --- L9-L12 shared concurrency analysis -------------------------------------
//
// All four shard/pool rules act only on precise, identifier-level evidence
// (the engine's design rule: a misparse degrades to a missed finding, never
// a spurious one). The shared inputs: the file's lambdas with parsed
// capture lists, the per-TU call graph, and the annotation vocabulary
// merged from the file and its paired header.

struct ConcurrencyInfo {
  std::vector<LambdaSym> lambdas;
  CallGraph graph;
  std::set<std::string> shard_owned;  ///< SPIDER_SHARD_OWNED member names
  std::set<std::string> guarded;      ///< SPIDER_GUARDED_BY member names
  std::set<std::string> atomics;      ///< members declared std::atomic<...>

  ConcurrencyInfo(const TokenStream& stream, const FileSymbols& syms,
                  const TokenStream* header_stream,
                  const FileSymbols* header_syms,
                  std::vector<ShardOwnedMember> merged_owned)
      : lambdas(find_lambdas(stream)), graph(stream, syms, merged_owned) {
    for (const ShardOwnedMember& m : merged_owned) shard_owned.insert(m.name);
    for (const GuardedMember& g : syms.guarded) guarded.insert(g.name);
    if (header_syms != nullptr) {
      for (const GuardedMember& g : header_syms->guarded) guarded.insert(g.name);
    }
    collect_atomics(stream);
    if (header_stream != nullptr) collect_atomics(*header_stream);
  }

 private:
  /// Names declared with a synchronization type — `std::atomic<...>`,
  /// atomic_flag, mutexes, condition variables — exempt from L12's
  /// unguarded-capture check: they ARE the synchronization.
  void collect_atomics(const TokenStream& stream) {
    const std::vector<Tok>& t = stream.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent ||
          (!t[i].text.starts_with("atomic") &&
           !t[i].text.ends_with("mutex") &&
           !t[i].text.starts_with("condition_variable"))) {
        continue;
      }
      std::size_t j = i + 1;
      if (is_punct(t[j], "<")) {
        j = matching_close(t, j);
        if (j >= t.size()) continue;
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        atomics.insert(t[j].text);
      }
    }
  }
};

/// Merged SPIDER_SHARD_OWNED members from a file and its paired header.
std::vector<ShardOwnedMember> merged_shard_owned(
    const FileSymbols& syms, const FileSymbols* header_syms) {
  std::vector<ShardOwnedMember> merged = syms.shard_owned;
  if (header_syms != nullptr) {
    merged.insert(merged.end(), header_syms->shard_owned.begin(),
                  header_syms->shard_owned.end());
  }
  return merged;
}

/// Lambdas whose introducer lies strictly inside (open, close) — i.e. the
/// argument range of a call. Nested lambdas are included: they execute as
/// part of the outer closure, so capture discipline applies transitively.
std::vector<const LambdaSym*> lambdas_in(const std::vector<LambdaSym>& lams,
                                         std::size_t open, std::size_t close) {
  std::vector<const LambdaSym*> out;
  for (const LambdaSym& lam : lams) {
    if (lam.intro > open && lam.intro < close) out.push_back(&lam);
  }
  return out;
}

/// True when the identifier at `i` reads as a member of the enclosing
/// object: unqualified, or explicitly qualified by `this`.
bool this_member_use(const std::vector<Tok>& t, std::size_t i) {
  if (i == 0) return true;
  if (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) {
    return i >= 2 && is_ident(t[i - 2], "this");
  }
  return true;
}

/// The function whose body token range contains `i`, if any.
const FunctionSym* enclosing_function(const FileSymbols& syms, std::size_t i) {
  for (const FunctionSym& fn : syms.functions) {
    if (fn.is_definition && i >= fn.body_begin && i < fn.body_end) return &fn;
  }
  return nullptr;
}

/// True when the function body shows a join the submitted work cannot
/// outlive: a wait_idle() call or a condition-variable `.wait(` on it.
bool body_has_join(const std::vector<Tok>& t, const FunctionSym& fn) {
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end && i + 1 < t.size();
       ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "wait_idle") return true;
    if (t[i].text == "wait" && is_punct(t[i + 1], "(") && i >= 1 &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
      return true;
    }
  }
  return false;
}

/// Words (identifier-like runs) of a flattened expression ending in `_` —
/// the member-naming convention — for init-capture alias checks.
std::vector<std::string> member_words(std::string_view flat) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < flat.size()) {
    if (std::isalpha(static_cast<unsigned char>(flat[i])) || flat[i] == '_') {
      std::size_t j = i;
      while (j < flat.size() &&
             (std::isalnum(static_cast<unsigned char>(flat[j])) ||
              flat[j] == '_')) {
        ++j;
      }
      if (flat[j - 1] == '_') words.emplace_back(flat.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return words;
}

// --- L9: shard-escape --------------------------------------------------------

void run_l9(const SourceFile& file, const TokenStream& stream,
            const ConcurrencyInfo& info, std::vector<Finding>& out) {
  const RuleInfo& inf = *rule("L9");
  if (info.shard_owned.empty()) return;
  const std::vector<Tok>& t = stream.tokens;
  std::set<std::pair<std::size_t, std::string>> flagged;
  auto flag = [&](std::size_t line, std::size_t col, const std::string& key,
                  std::string msg) {
    if (!flagged.emplace(line, key).second) return;
    if (has_suppression(file, line, inf.suppression)) return;
    add_finding(out, inf, file.path, line, col, std::move(msg));
  };

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !is_punct(t[i + 1], "(")) continue;
    const std::string& name = t[i].text;
    if (name != "schedule_at" && name != "schedule_in" &&
        name != "schedule_cross" && name != "schedule_sited" &&
        name != "Task") {
      continue;
    }
    const std::size_t close = matching_close(t, i + 1);
    if (close >= t.size()) continue;

    for (const LambdaSym* lam : lambdas_in(info.lambdas, i + 1, close)) {
      if (!lam->parsed) continue;
      for (const LambdaCapture& cap : lam->captures) {
        if (cap.kind != CaptureKind::kByRef) continue;
        if (info.shard_owned.count(cap.name) != 0) {
          flag(cap.line, t[lam->intro].col, cap.name,
               "scheduled closure captures shard-owned member '" + cap.name +
                   "' by reference");
        } else if (cap.init) {
          for (const std::string& word : member_words(cap.init_expr)) {
            if (info.shard_owned.count(word) != 0) {
              flag(cap.line, t[lam->intro].col, word,
                   "scheduled closure init-capture '&" + cap.name +
                       "' aliases shard-owned member '" + word + "'");
            }
          }
        }
      }
      if (!lam->captures_this()) continue;
      for (std::size_t b = lam->body_begin; b < lam->body_end && b < t.size();
           ++b) {
        if (t[b].kind != TokKind::kIdent) continue;
        if (info.shard_owned.count(t[b].text) != 0 &&
            this_member_use(t, b)) {
          flag(t[b].line, t[b].col, t[b].text,
               "scheduled closure touches shard-owned member '" + t[b].text +
                   "' through its captured this");
          continue;
        }
        if (b + 1 < lam->body_end && is_punct(t[b + 1], "(")) {
          const std::set<std::string>& touched =
              info.graph.touched_shard_owned(t[b].text);
          if (!touched.empty()) {
            flag(t[b].line, t[b].col, "call:" + t[b].text,
                 "scheduled closure reaches shard-owned member '" +
                     *touched.begin() + "' via call to '" + t[b].text + "'");
          }
        }
      }
    }
  }
}

// --- L10: cross-shard-schedule ----------------------------------------------

/// Worklist scanner over "shard context regions": token ranges known to
/// execute as events of one shard (scheduled-lambda bodies, and helper
/// bodies entered with the context index threaded through a parameter).
struct L10Scanner {
  const SourceFile& file;
  const std::vector<Tok>& t;
  const FileSymbols& syms;
  const ConcurrencyInfo& info;
  std::vector<Finding>& out;
  const RuleInfo& inf = *rule("L10");

  struct Region {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::string context;
  };
  std::vector<Region> work{};
  std::set<std::pair<std::size_t, std::string>> visited{};
  std::set<std::pair<std::size_t, std::string>> flagged{};
  /// Local `Simulator& s = handle(IDX)...` bindings: name -> reduced index
  /// (cleared on conflicting rebinds).
  std::map<std::string, std::string> bindings{};

  void run() {
    collect_bindings();
    // Discovery pass: every scheduled lambda in the file gets a region with
    // its target-shard spelling. No checks fire without a context.
    scan(0, t.size(), "");
    while (!work.empty()) {
      const Region r = work.back();
      work.pop_back();
      scan(r.begin, r.end, r.context);
    }
  }

  void collect_bindings() {
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!is_ident(t[i], "Simulator") && !is_ident(t[i], "auto")) continue;
      if (!is_punct(t[i + 1], "&")) continue;
      if (t[i + 2].kind != TokKind::kIdent || !is_punct(t[i + 3], "=")) {
        continue;
      }
      const std::string& name = t[i + 2].text;
      std::string idx;
      for (std::size_t k = i + 4; k < t.size() && !is_punct(t[k], ";"); ++k) {
        if (t[k].kind == TokKind::kIdent &&
            info.graph.is_handle_fn(t[k].text) && k + 1 < t.size() &&
            is_punct(t[k + 1], "(")) {
          const std::size_t c = matching_close(t, k + 1);
          if (c < t.size()) idx = reduce_index(t, k + 2, c);
        }
      }
      if (idx.empty()) continue;
      const auto [it, inserted] = bindings.emplace(name, idx);
      if (!inserted && it->second != idx) it->second.clear();
    }
  }

  void flag(std::size_t tok, const std::string& key, std::string msg) {
    if (!flagged.emplace(t[tok].line, key).second) return;
    if (has_suppression(file, t[tok].line, inf.suppression)) return;
    add_finding(out, inf, file.path, t[tok].line, t[tok].col, std::move(msg));
  }

  /// Enqueue the scheduled lambdas of a call range as regions running on
  /// shard `ctx`, and mark their bodies skipped for the current scan.
  void enqueue_lambdas(std::size_t open, std::size_t close,
                       const std::string& ctx,
                       std::vector<std::pair<std::size_t, std::size_t>>& skips) {
    for (const LambdaSym* lam : lambdas_in(info.lambdas, open, close)) {
      skips.emplace_back(lam->body_begin, lam->body_end);
      if (ctx.empty() || !lam->parsed) continue;
      if (visited.emplace(lam->body_begin, ctx).second) {
        work.push_back(Region{lam->body_begin, lam->body_end, ctx});
      }
    }
  }

  void scan(std::size_t begin, std::size_t end, const std::string& ctx) {
    std::vector<std::pair<std::size_t, std::size_t>> skips;
    for (std::size_t i = begin; i + 1 < end && i + 1 < t.size(); ++i) {
      bool skipped = true;
      while (skipped) {
        skipped = false;
        for (const auto& [sb, se] : skips) {
          if (i >= sb && i < se) {
            i = se;
            skipped = true;
          }
        }
      }
      if (i + 1 >= end || i + 1 >= t.size()) break;
      if (t[i].kind != TokKind::kIdent || !is_punct(t[i + 1], "(")) continue;
      const std::size_t close = matching_close(t, i + 1);
      if (close >= t.size()) continue;
      const std::string& name = t[i].text;

      // handle(IDX).schedule_at/..._in(...): the scheduled lambda runs on
      // IDX; from context `ctx`, a differing spelling is a cross-shard raw
      // schedule.
      if (info.graph.is_handle_fn(name) && close + 3 < t.size() &&
          is_punct(t[close + 1], ".") &&
          (is_ident(t[close + 2], "schedule_at") ||
           is_ident(t[close + 2], "schedule_in")) &&
          is_punct(t[close + 3], "(")) {
        const std::string idx = reduce_index(t, i + 2, close);
        const std::size_t sched_close = matching_close(t, close + 3);
        if (sched_close >= t.size()) continue;
        if (!ctx.empty() && !idx.empty() && idx != ctx) {
          flag(close + 2, "handle:" + idx,
               "event running on shard '" + ctx + "' calls " +
                   t[close + 2].text + "() directly on shard '" + idx +
                   "' — use schedule_cross");
        }
        enqueue_lambdas(close + 3, sched_close, idx, skips);
        continue;
      }

      // bound.schedule_at(...) through a local `Simulator& bound = ...`.
      if ((name == "schedule_at" || name == "schedule_in") && i >= 2 &&
          (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
          t[i - 2].kind == TokKind::kIdent) {
        const auto bound = bindings.find(t[i - 2].text);
        if (bound != bindings.end() && !bound->second.empty()) {
          if (!ctx.empty() && bound->second != ctx) {
            flag(i, "bound:" + bound->second,
                 "event running on shard '" + ctx + "' calls " + name +
                     "() on '" + t[i - 2].text + "' (shard '" +
                     bound->second + "') — use schedule_cross");
          }
          enqueue_lambdas(i + 1, close, bound->second, skips);
          continue;
        }
      }

      // schedule_cross(FROM, TO, ...): lambdas run on TO; FROM must match
      // the sending context (the mailbox is keyed by true sender).
      if (name == "schedule_cross") {
        const std::vector<ArgRange> args = split_args(t, i + 1, close);
        if (args.size() < 4) continue;
        const std::string from = reduce_index(t, args[0].begin, args[0].end);
        const std::string to = reduce_index(t, args[1].begin, args[1].end);
        if (!ctx.empty() && !from.empty() && from != ctx) {
          flag(i, "from:" + from,
               "schedule_cross claims source shard '" + from +
                   "' but the sending event runs on shard '" + ctx + "'");
        }
        enqueue_lambdas(i + 1, close, to, skips);
        continue;
      }

      // Helper call: check arguments against the callee's sched-params, and
      // thread the context into its body when passed along unchanged.
      if (ctx.empty()) continue;
      const std::vector<std::size_t>& sp = info.graph.sched_params(name);
      const std::vector<ArgRange> args = split_args(t, i + 1, close);
      for (const std::size_t j : sp) {
        if (j >= args.size()) continue;
        const std::string r = reduce_index(t, args[j].begin, args[j].end);
        if (!r.empty() && r != ctx) {
          flag(i, "arg:" + name + ":" + r,
               "event running on shard '" + ctx + "' passes shard index '" +
                   r + "' into '" + name +
                   "', which schedules directly on that shard — use "
                   "schedule_cross");
        }
      }
      for (const FunctionSym* def : info.graph.definitions(name)) {
        const std::vector<std::string>& pnames = info.graph.params_of(*def);
        for (std::size_t p = 0; p < pnames.size() && p < args.size(); ++p) {
          if (pnames[p].empty()) continue;
          const std::string r = reduce_index(t, args[p].begin, args[p].end);
          if (r != ctx) continue;
          if (visited.emplace(def->body_begin, pnames[p]).second) {
            work.push_back(
                Region{def->body_begin, def->body_end, pnames[p]});
          }
        }
      }
    }
  }
};

void run_l10(const SourceFile& file, const TokenStream& stream,
             const FileSymbols& syms, const ConcurrencyInfo& info,
             std::vector<Finding>& out) {
  L10Scanner scanner{file, stream.tokens, syms, info, out};
  scanner.run();
}

// --- L11: lookahead-provenance ----------------------------------------------

/// Value of the sim/time.hpp unit constants, for the tiny delay evaluator.
std::optional<double> unit_value(std::string_view ident) {
  if (ident == "kNanosecond") return 1.0;
  if (ident == "kMicrosecond") return 1e3;
  if (ident == "kMillisecond") return 1e6;
  if (ident == "kSecond") return 1e9;
  if (ident == "kMinute") return 60e9;
  if (ident == "kHour") return 3600e9;
  if (ident == "kDay") return 86400e9;
  return std::nullopt;
}

/// Recursive-descent evaluator over numbers, unit constants, + - * / and
/// parens. nullopt for anything else.
struct DelayEval {
  const std::vector<Tok>& t;
  std::size_t pos;
  std::size_t end;

  std::optional<double> expr() {
    std::optional<double> v = term();
    while (v.has_value() && pos < end &&
           (is_punct(t[pos], "+") || is_punct(t[pos], "-"))) {
      const bool add = t[pos].text == "+";
      ++pos;
      const std::optional<double> rhs = term();
      if (!rhs.has_value()) return std::nullopt;
      v = add ? *v + *rhs : *v - *rhs;
    }
    return v;
  }
  std::optional<double> term() {
    std::optional<double> v = factor();
    while (v.has_value() && pos < end &&
           (is_punct(t[pos], "*") || is_punct(t[pos], "/"))) {
      const bool mul = t[pos].text == "*";
      ++pos;
      const std::optional<double> rhs = factor();
      if (!rhs.has_value() || (!mul && *rhs == 0.0)) return std::nullopt;
      v = mul ? *v * *rhs : *v / *rhs;
    }
    return v;
  }
  std::optional<double> factor() {
    if (pos >= end) return std::nullopt;
    if (is_punct(t[pos], "(")) {
      const std::size_t close = matching_close(t, pos);
      if (close >= end) return std::nullopt;
      DelayEval inner{t, pos + 1, close};
      const std::optional<double> v = inner.expr();
      if (!v.has_value() || inner.pos != close) return std::nullopt;
      pos = close + 1;
      return v;
    }
    if (t[pos].kind == TokKind::kNumber) {
      const double v = literal_magnitude(t[pos].text);
      if (v < 0.0) return std::nullopt;
      ++pos;
      return v;
    }
    if (t[pos].kind == TokKind::kIdent) {
      const std::optional<double> v = unit_value(t[pos].text);
      if (v.has_value()) ++pos;
      return v;
    }
    return std::nullopt;
  }
};

std::optional<double> eval_delay(const std::vector<Tok>& t, std::size_t begin,
                                 std::size_t end) {
  DelayEval e{t, begin, end};
  const std::optional<double> v = e.expr();
  return e.pos == end ? v : std::nullopt;
}

/// True when the token range mentions a lookahead/latency provenance
/// symbol: a net/lookahead.hpp name, anything spelled *lookahead*/*latency*,
/// or the engine's epoch_end.
bool mentions_provenance(const std::vector<Tok>& t, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    std::string lower;
    for (const char c : t[i].text) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower.find("lookahead") != std::string::npos ||
        lower.find("latency") != std::string::npos ||
        lower.find("epoch_end") != std::string::npos ||
        lower.find("transit") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void run_l11(const SourceFile& file, const TokenStream& stream,
             std::vector<Finding>& out) {
  const RuleInfo& inf = *rule("L11");
  // Mirror of net::kTorusHopLatency, the smallest latency floor any
  // cross-domain channel has (keep in sync with net/lookahead.hpp).
  constexpr double kFloorNs = 105.0;
  const std::vector<Tok>& t = stream.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "schedule_cross") || !is_punct(t[i + 1], "(")) {
      continue;
    }
    const std::size_t close = matching_close(t, i + 1);
    if (close >= t.size()) continue;
    const std::vector<ArgRange> args = split_args(t, i + 1, close);
    if (args.size() < 4) continue;
    const ArgRange when = args[2];

    bool has_number = false;
    for (std::size_t k = when.begin; k < when.end; ++k) {
      if (t[k].kind == TokKind::kNumber) has_number = true;
    }
    if (!has_number) continue;  // symbolic time: provenance is upstream
    if (mentions_provenance(t, when.begin, when.end)) continue;
    if (has_suppression(file, t[i].line, inf.suppression)) continue;

    // Evaluate the constant part: the sum of the top-level addends that are
    // pure number/unit arithmetic (the rest, e.g. `sim.now()`, is the
    // symbolic base the delay is added to).
    double const_part = 0.0;
    bool evaluable = false;
    {
      std::size_t seg = when.begin;
      int depth = 0;
      double sign = 1.0;
      auto close_segment = [&](std::size_t seg_end, double s) {
        const std::optional<double> v = eval_delay(t, seg, seg_end);
        if (v.has_value()) {
          const_part += s * *v;
          evaluable = true;
        }
      };
      double cur_sign = 1.0;
      for (std::size_t k = when.begin; k < when.end; ++k) {
        if (t[k].kind == TokKind::kPunct && t[k].text.size() == 1) {
          const char c = t[k].text[0];
          if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
          if (depth == 0 && (c == '+' || c == '-') && k > seg) {
            close_segment(k, cur_sign);
            cur_sign = c == '-' ? -1.0 : 1.0;
            seg = k + 1;
          }
        }
      }
      close_segment(when.end, cur_sign);
      (void)sign;
    }

    std::string msg;
    if (evaluable && const_part < kFloorNs) {
      msg = "schedule_cross delay has a bare constant component of " +
            std::to_string(static_cast<long long>(const_part)) +
            " ns — below the torus hop floor (kTorusHopLatency = 105 ns), a "
            "certain lookahead breach";
    } else {
      msg =
          "schedule_cross delay built from bare numeric constants — derive "
          "it from net/lookahead.hpp so the conservative contract stays "
          "provable";
    }
    add_finding(out, inf, file.path, t[i].line, t[i].col, std::move(msg));
  }
}

// --- L12: pool-capture-discipline -------------------------------------------

void run_l12(const SourceFile& file, const TokenStream& stream,
             const FileSymbols& syms, const ConcurrencyInfo& info,
             std::vector<Finding>& out) {
  const RuleInfo& inf = *rule("L12");
  const std::vector<Tok>& t = stream.tokens;
  std::set<std::pair<std::size_t, std::string>> flagged;
  auto flag = [&](std::size_t line, std::size_t col, const std::string& key,
                  std::string msg) {
    if (!flagged.emplace(line, key).second) return;
    if (has_suppression(file, line, inf.suppression)) return;
    add_finding(out, inf, file.path, line, col, std::move(msg));
  };
  auto exempt_member = [&](const std::string& name) {
    return info.guarded.count(name) != 0 || info.atomics.count(name) != 0 ||
           info.shard_owned.count(name) != 0;
  };

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !is_punct(t[i + 1], "(")) continue;
    const std::string& name = t[i].text;
    const bool forkjoin = name == "parallel_for";
    const bool pool_submit = name == "submit" || name == "submit_to";
    if (!forkjoin && !pool_submit) continue;
    // submit/submit_to only as member calls — free functions of that name
    // elsewhere are not the pool.
    if (pool_submit &&
        (i == 0 || (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->")))) {
      continue;
    }
    const std::size_t close = matching_close(t, i + 1);
    if (close >= t.size()) continue;

    // parallel_for joins before returning by contract; submit needs a
    // visible join in the submitting function or captured refs may dangle.
    bool joined = forkjoin;
    if (!joined) {
      const FunctionSym* fn = enclosing_function(syms, i);
      joined = fn != nullptr && body_has_join(t, *fn);
    }

    for (const LambdaSym* lam : lambdas_in(info.lambdas, i + 1, close)) {
      if (!lam->parsed) continue;
      for (const LambdaCapture& cap : lam->captures) {
        if (cap.kind != CaptureKind::kByRef) continue;
        const bool is_member = !cap.name.empty() && cap.name.back() == '_';
        if (is_member) {
          if (!exempt_member(cap.name)) {
            flag(cap.line, t[lam->intro].col, cap.name,
                 "pool closure captures member '" + cap.name +
                     "' by reference without SPIDER_GUARDED_BY/std::atomic");
          }
        } else if (cap.init) {
          for (const std::string& word : member_words(cap.init_expr)) {
            if (!exempt_member(word)) {
              flag(cap.line, t[lam->intro].col, word,
                   "pool closure init-capture '&" + cap.name +
                       "' aliases member '" + word +
                       "' without SPIDER_GUARDED_BY/std::atomic");
            }
          }
        } else if (!joined) {
          flag(cap.line, t[lam->intro].col, "local:" + cap.name,
               "closure handed to " + name + "() captures local '" +
                   cap.name +
                   "' by reference with no visible join in the submitting "
                   "function");
        }
      }
      if (lam->has_ref_default() && !joined) {
        flag(t[lam->intro].line, t[lam->intro].col, "default-ref",
             "default by-reference capture handed to " + name +
                 "() with no visible join in the submitting function");
      }
      if (lam->captures_this()) {
        for (std::size_t b = lam->body_begin;
             b < lam->body_end && b < t.size(); ++b) {
          if (t[b].kind != TokKind::kIdent || t[b].text.size() < 2 ||
              t[b].text.back() != '_') {
            continue;
          }
          if (!this_member_use(t, b)) continue;
          if (exempt_member(t[b].text)) continue;
          flag(t[b].line, t[b].col, t[b].text,
               "pool closure touches member '" + t[b].text +
                   "' through its captured this without "
                   "SPIDER_GUARDED_BY/std::atomic");
        }
      }
    }
  }
}

void sort_findings(std::vector<Finding>& out) {
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  });
}

}  // namespace

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rules() { return kRules; }

const RuleInfo* rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

bool RuleSet::enabled(std::string_view id) const {
  if (id == "L1") return l1;
  if (id == "L2") return l2;
  if (id == "L3") return l3;
  if (id == "L4") return l4;
  if (id == "L5") return l5;
  if (id == "L6") return l6;
  if (id == "L7") return l7;
  if (id == "L8") return l8;
  if (id == "L9") return l9;
  if (id == "L10") return l10;
  if (id == "L11") return l11;
  if (id == "L12") return l12;
  if (id == "L13") return l13;
  if (id == "L14") return l14;
  if (id == "L15") return l15;
  if (id == "L16") return l16;
  return false;
}

RuleSet RuleSet::none() {
  RuleSet off;
  off.l1 = off.l2 = off.l3 = off.l4 = off.l5 = off.l6 = false;
  off.l7 = off.l8 = off.l9 = off.l10 = off.l11 = off.l12 = false;
  off.l13 = off.l14 = off.l15 = off.l16 = false;
  return off;
}

FileClass classify_path(std::string_view path) {
  FileClass cls;
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  // The LAST src/tests/bench component wins, so fixture trees like
  // tests/lint_fixtures/l5_layering/src/... classify as src.
  std::size_t root = parts.size();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" || parts[i] == "tests" || parts[i] == "bench") {
      root = i;
    }
  }
  if (root < parts.size()) {
    if (parts[root] == "src") {
      cls.in_src = true;
      if (root + 1 < parts.size()) {
        const std::string_view sub = parts[root + 1];
        cls.sim_critical =
            sub == "sim" || sub == "block" || sub == "fs" || sub == "net";
        cls.calib_scope = sub == "block" || sub == "fs" || sub == "net";
        cls.fs_scope = sub == "fs";
        cls.rng_home = sub == "common" && root + 2 < parts.size() &&
                       (parts[root + 2] == "rng.cpp" ||
                        parts[root + 2] == "rng.hpp");
      }
    } else if (parts[root] == "tests") {
      cls.in_tests = true;
    } else {
      cls.in_bench = true;
    }
  }
  if (!parts.empty()) {
    const std::string_view base = parts.back();
    cls.is_header = base.ends_with(".hpp") || base.ends_with(".h") ||
                    base.ends_with(".hh");
  }
  return cls;
}

std::vector<Finding> lint_file(const SourceFile& file, const FileClass& cls,
                               const SourceFile* paired_header,
                               const RuleSet& enabled) {
  std::vector<Finding> out;
  const TokenStream stream = tokenize(file);
  TokenStream header_stream;
  if (paired_header != nullptr) header_stream = tokenize(*paired_header);
  const TokenStream* header =
      paired_header != nullptr ? &header_stream : nullptr;

  if (cls.in_tests || cls.in_bench) {
    // Tests and benches get the hygiene rules only: no unordered iteration,
    // no ambient nondeterminism. Style/flow rules stay src-scoped.
    if (enabled.l1) run_l1(file, stream, header, out);
    if (enabled.l2) run_l2(file, stream, cls, out);
    sort_findings(out);
    return out;
  }

  if (enabled.l1 && cls.sim_critical) run_l1(file, stream, header, out);
  if (enabled.l2 && cls.in_src) run_l2(file, stream, cls, out);
  if (enabled.l3 && cls.in_src && cls.is_header) run_l3(file, stream, out);
  if (enabled.l4 && cls.in_src) run_l4(file, stream, out);

  const bool concurrency_rules =
      enabled.l9 || enabled.l10 || enabled.l11 || enabled.l12;
  if (cls.in_src &&
      (enabled.l6 || enabled.l7 || enabled.l8 || concurrency_rules)) {
    const FileSymbols syms = index_symbols(stream);
    FileSymbols header_syms;
    const FileSymbols* hsyms = nullptr;
    if (header != nullptr) {
      header_syms = index_symbols(*header);
      hsyms = &header_syms;
    }
    if (enabled.l6) run_l6(file, stream, syms, hsyms, out);
    if (enabled.l7) run_l7(file, stream, syms, hsyms, out);
    if (enabled.l8 && cls.calib_scope) run_l8(file, stream, syms, out);
    if (concurrency_rules) {
      const ConcurrencyInfo info(stream, syms, header, hsyms,
                                 merged_shard_owned(syms, hsyms));
      if (enabled.l9) run_l9(file, stream, info, out);
      if (enabled.l10) run_l10(file, stream, syms, info, out);
      if (enabled.l11) run_l11(file, stream, out);
      if (enabled.l12) run_l12(file, stream, syms, info, out);
    }
  }

  sort_findings(out);
  return out;
}

std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const RuleSet& enabled) {
  std::vector<Finding> out;
  if (!enabled.l5) return out;
  const RuleInfo& info = *rule("L5");

  IncludeGraph graph;
  for (const SourceFile& f : files) {
    graph.add_file(include_key(f.path), &f);
  }

  // Upward includes: checkable per edge from the include spelling alone.
  for (const auto& [key, src] : graph.files()) {
    const int from = layer_of(key);
    if (from < 0) continue;
    for (const IncludeEdge& e : quoted_includes(*src)) {
      const int to = layer_of(e.target);
      if (to < 0 || to <= from) continue;
      if (has_suppression(*src, e.line, info.suppression)) continue;
      add_finding(out, info, src->path, e.line, 0,
                  "include of '" + e.target + "' (" +
                      std::string(layer_name(to)) + ") from layer '" +
                      std::string(layer_name(from)) +
                      "' points up the architecture");
    }
  }

  // Cycles among the registered files.
  for (const std::vector<std::string>& cycle : graph.cycles()) {
    if (cycle.size() < 2) continue;
    const SourceFile* head = graph.files().at(cycle[0]);
    // Anchor the finding at the include that opens the cycle.
    std::size_t line = 0;
    for (const IncludeEdge& e : quoted_includes(*head)) {
      if (e.target == cycle[1]) {
        line = e.line;
        break;
      }
    }
    if (has_suppression(*head, line, info.suppression)) continue;
    std::string path_text;
    for (const std::string& node : cycle) {
      if (!path_text.empty()) path_text += " -> ";
      path_text += node;
    }
    add_finding(out, info, head->path, line, 0,
                "include cycle: " + path_text);
  }

  sort_findings(out);
  return out;
}

}  // namespace spider::lint
