// Fixture for spiderlint rule L4 (replay-site).
//
// Linted as if it lived under src/: a bare schedule() call that carries no
// scheduling site (std::source_location / site hash) fires.
namespace fixture {

struct Queue {
  void schedule(long when, int id, int site);
};

inline void arm(Queue& q) {
  q.schedule(100, 1);
}

}  // namespace fixture
