#include <gtest/gtest.h>

#include <vector>

#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"

namespace spider::sim {
namespace {

struct Fixture : ::testing::Test {
  Simulator sim;
  FlowNetwork net{sim};
};

TEST_F(Fixture, SingleFlowCompletesAtCapacityTime) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 1000.0;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 10.0, 1e-3);
  EXPECT_NEAR(net.total_delivered(), 1000.0, 1e-6);
}

TEST_F(Fixture, RateCapSlowsFlow) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.rate_cap = 10.0;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 10.0, 1e-3);
}

TEST_F(Fixture, TwoFlowsShareThenSpeedUp) {
  // Two equal flows share 100 u/s; after the first finishes at t=2 (100
  // units each at 50 u/s), the second's remaining 100 units run at full
  // rate, finishing at t=3.
  const auto r = net.add_resource("link", 100.0);
  std::vector<double> done;
  for (double size : {100.0, 200.0}) {
    FlowDesc d;
    d.path = {{r, 1.0}};
    d.size = size;
    d.on_complete = [&](FlowId, SimTime t) { done.push_back(to_seconds(t)); };
    net.start_flow(std::move(d));
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-3);
  EXPECT_NEAR(done[1], 3.0, 1e-3);
}

TEST_F(Fixture, LatencyDelaysActivation) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.latency = 5 * kSecond;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  EXPECT_EQ(net.active_flows(), 0u);  // not yet activated
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 6.0, 1e-3);
}

TEST_F(Fixture, CapacityChangeMidFlight) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 1000.0;  // 10 s at full rate
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  // Halve capacity at t=5: 500 units left at 50 u/s -> 10 more seconds.
  sim.schedule_in(5 * kSecond, [&] { net.set_capacity(r, 50.0); });
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 15.0, 1e-2);
}

TEST_F(Fixture, CancelFlowSkipsCallback) {
  const auto r = net.add_resource("link", 10.0);
  bool fired = false;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.on_complete = [&](FlowId, SimTime) { fired = true; };
  const FlowId id = net.start_flow(std::move(d));
  sim.schedule_in(kSecond, [&] { net.cancel_flow(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(Fixture, CompletionCallbackCanStartNewFlow) {
  const auto r = net.add_resource("link", 100.0);
  int completions = 0;
  FlowDesc first;
  first.path = {{r, 1.0}};
  first.size = 100.0;
  first.on_complete = [&](FlowId, SimTime) {
    ++completions;
    FlowDesc second;
    second.path = {{r, 1.0}};
    second.size = 100.0;
    second.on_complete = [&](FlowId, SimTime) { ++completions; };
    net.start_flow(std::move(second));
  };
  net.start_flow(std::move(first));
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_NEAR(to_seconds(sim.now()), 2.0, 1e-3);
}

TEST_F(Fixture, TelemetryAccumulatesServedUnits) {
  const auto r = net.add_resource("link", 100.0);
  FlowDesc d;
  d.path = {{r, 2.0}};  // cost 2: consumes 2 units per delivered unit
  d.size = 100.0;
  net.start_flow(std::move(d));
  sim.run();
  EXPECT_NEAR(net.stats(r).served, 200.0, 1e-3);
  EXPECT_EQ(net.stats(r).flows_seen, 1u);
}

TEST_F(Fixture, AggregateRateReflectsActiveFlows) {
  const auto r = net.add_resource("link", 100.0);
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 500.0;
  net.start_flow(std::move(d));
  sim.run(kSecond);  // mid-flight
  EXPECT_NEAR(net.aggregate_rate(), 100.0, 1e-6);
  sim.run();
  EXPECT_NEAR(net.aggregate_rate(), 0.0, 1e-9);
}

TEST_F(Fixture, StarvedFlowWakesOnCapacityRestore) {
  const auto r = net.add_resource("link", 0.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  sim.schedule_in(10 * kSecond, [&] { net.set_capacity(r, 100.0); });
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 11.0, 1e-2);
}

TEST_F(Fixture, RejectsInvalidFlows) {
  const auto r = net.add_resource("link", 10.0);
  FlowDesc bad_size;
  bad_size.path = {{r, 1.0}};
  bad_size.size = 0.0;
  EXPECT_THROW(net.start_flow(std::move(bad_size)), std::invalid_argument);
  FlowDesc bad_path;
  bad_path.path = {{42, 1.0}};
  bad_path.size = 1.0;
  EXPECT_THROW(net.start_flow(std::move(bad_path)), std::out_of_range);
}

TEST_F(Fixture, ManyFlowsConserveBytes) {
  const auto a = net.add_resource("a", 250.0);
  const auto b = net.add_resource("b", 400.0);
  double expected = 0.0;
  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    FlowDesc d;
    d.path = i % 2 ? std::vector<PathHop>{{a, 1.0}}
                   : std::vector<PathHop>{{a, 1.0}, {b, 1.0}};
    d.size = 10.0 * (i + 1);
    expected += d.size;
    d.on_complete = [&](FlowId, SimTime) { ++completions; };
    net.start_flow(std::move(d));
  }
  sim.run();
  EXPECT_EQ(completions, 50);
  EXPECT_NEAR(net.total_delivered(), expected, expected * 1e-5);
  EXPECT_NEAR(net.stats(a).served, expected, expected * 2e-5);
}

}  // namespace
}  // namespace spider::sim
