// Fixture for spiderlint rule L10 (cross-shard-schedule).
//
// Inside an event scheduled onto shard X, a direct schedule_at/schedule_in
// on a Simulator& obtained for shard Y races Y's queue: cross-shard events
// must go through schedule_cross. The same-shard re-arm, the honest
// schedule_cross, the same-shard helper call, and the same-shard binding
// are engineered false positives.
namespace fixture {

struct Simulator {
  void schedule_at(long when, int payload);
  void schedule_in(long delta, int payload);
};

struct Engine {
  Simulator& shard(unsigned s);
  void schedule_cross(unsigned from, unsigned to, long when, int payload);
};

struct Scenario {
  void start(unsigned zone, unsigned target, long due) {
    engine_.shard(zone).schedule_at(due, [this, zone, target, due] {
      // Same-shard re-arm: legal. Must NOT be flagged.
      engine_.shard(zone).schedule_in(due, 1);
      // Direct scheduling on another shard from inside this event. Flagged.
      engine_.shard(target).schedule_at(due, 2);  // L10
      // The honest way across. Must NOT be flagged.
      engine_.schedule_cross(zone, target, due, 3);
      // Lying about the source shard corrupts mailbox order. Flagged.
      engine_.schedule_cross(target, zone, due, 4);  // L10
      // Threading a foreign index through a helper is traced. Flagged here.
      rearm(target);  // L10
      // Threading the event's own shard through the same helper is fine.
      rearm(zone);
      // A Simulator& bound to another shard is still that shard. Flagged.
      Simulator& far = engine_.shard(target);
      far.schedule_at(due, 6);  // L10
      // ...and one bound to this shard is not. Must NOT be flagged.
      Simulator& near = engine_.shard(zone);
      near.schedule_in(due, 7);
    });
  }

  void rearm(unsigned s) { engine_.shard(s).schedule_at(horizon_, 5); }

  Engine engine_;
  long horizon_ = 0;
};

}  // namespace fixture
