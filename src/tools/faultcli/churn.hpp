// Billion-entry churn runner: the changelog era's acceptance harness.
//
// Drives core::ChurnScenario (DNE namespaces under create/unlink/touch/
// resize/setproject churn, cohort-scaled past 1e9 logical files) on the
// sharded engine, with the full consumer stack attached:
//
//   - tools::LustreDu following every namespace's changelog,
//   - one fs::PurgeEngine per namespace sweeping on an epoch cadence,
//   - the changelog-consistency oracle (campaign.hpp) auditing
//     changelog-derived accounting against namespace ground truth at
//     every epoch barrier.
//
// The query path is fenced with FsNamespace::full_walks(): every du query
// and purge sweep runs inside a window where the walk counter must not
// move — the O(Δ)-not-O(N) claim, asserted, not assumed. Oracle audits
// and post-crash resyncs walk deliberately, outside the fence.
//
// --churn-crash injects an MDS crash at an epoch barrier: one namespace's
// log is truncated below its committed cursor (this is why the runner
// lives in faultcli — spiderlint L13 confines truncate_to to the fault
// tooling). Consumers must *detect* the rewind (cursor_ahead), resync
// from ground truth, and be green again at the next barrier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/churn_scenario.hpp"
#include "sim/oracle.hpp"

namespace spider::tools {

struct ChurnRunConfig {
  core::ChurnParams params;
  /// Sharded-engine fan-out hosting the scenario.
  std::size_t engine_shards = 4;
  /// Engine lanes (0 = auto, 1 = serial). Totals are lane-invariant.
  std::size_t workers = 0;
  /// Barriers at which consumers poll, queries run, and oracles audit.
  std::size_t epochs = 8;
  /// ChangelogAccounting shard fan-out inside each consumer.
  std::uint32_t accounting_shards = 4;
  /// Purge policy window; sweeps fire every `purge_every` epochs (0 = off).
  /// The default (~86ms of sim time) is tuned to the default think/ops
  /// shape so sweeps actually purge: idle files age out within a run.
  double purge_window_days = 1e-6;
  std::size_t purge_every = 2;
  /// Purge class scope: only this project is swept (the scratch area).
  /// UINT32_MAX sweeps every project — with the tight default window that
  /// razes the whole population, so scope it when asserting 1B+ residents.
  std::uint32_t purge_project = 0;
  /// du queries per epoch (projects 0..query_projects-1).
  std::size_t query_projects = 4;
  /// Inject a log-rewind crash on namespace 0 after `crash_epoch` runs.
  bool crash = false;
  std::size_t crash_epoch = 3;
  /// Verdict fails below this logical-file floor (0 = don't check).
  std::uint64_t min_logical_files = 0;
};

struct ChurnVerdict {
  bool ok = false;
  std::uint64_t epochs = 0;
  std::uint64_t events = 0;
  std::uint64_t logical_files = 0;
  Bytes logical_bytes = 0;
  core::ChurnTotals totals;
  /// Changelog records folded into consumers (du + purge engines).
  std::uint64_t records_applied = 0;
  /// Namespace walks observed inside query/sweep fences. Must be zero:
  /// the whole point of the changelog is that answering costs no walk.
  std::uint64_t query_walks = 0;
  /// Walks spent on recovery resyncs (crash runs expect exactly these).
  std::uint64_t recovery_walks = 0;
  bool crash_injected = false;
  /// The rewind was detected via cursor_ahead — never silently absorbed.
  bool crash_detected = false;
  std::uint64_t purged = 0;
  Bytes purge_freed = 0;
  std::vector<sim::OracleViolation> violations;
};

/// Run the scenario; deterministic in (cfg) — engine shards and workers
/// never change the outcome, only the wall clock.
ChurnVerdict run_churn(const ChurnRunConfig& cfg);

/// One-line JSON verdict, shaped like the campaign's verdict lines.
std::string churn_verdict_json(const ChurnRunConfig& cfg,
                               const ChurnVerdict& verdict);

}  // namespace spider::tools
