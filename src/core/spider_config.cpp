#include "core/spider_config.hpp"

#include <algorithm>
#include <cmath>

namespace spider::core {

CenterConfig spider2_config(bool upgraded_controllers) {
  CenterConfig cfg;
  cfg.name = upgraded_controllers ? "spider2" : "spider2-preupgrade";
  cfg.placement.modules = 110;
  cfg.placement.routers_per_module = 4;
  cfg.placement.num_groups = 36;
  cfg.placement.leaf_switches = 36;
  cfg.ssu.raid_groups = 56;
  cfg.ssu.enclosures = 10;  // the corrected failure-domain design
  cfg.ssu.controller = upgraded_controllers ? block::upgraded_controller_params()
                                            : block::ControllerParams{};
  return cfg;
}

CenterConfig spider1_config() {
  CenterConfig cfg;
  cfg.name = "spider1";
  // Jaguar-era: 25x16x24 SeaStar torus approximated with the same dims but
  // fewer clients; 192 routers.
  cfg.clients = 18688 / 2;
  cfg.placement.modules = 48;
  cfg.placement.routers_per_module = 4;
  cfg.placement.num_groups = 24;
  cfg.placement.leaf_switches = 24;
  cfg.fabric.leaf_switches = 24;
  cfg.router_bw = 1.6 * kGBps;
  // 13,440 1 TB SATA disks -> 48 smaller SSUs, 240 GB/s aggregate.
  cfg.ssus = 48;
  cfg.ssu.raid_groups = 28;
  cfg.ssu.enclosures = 5;  // the design the 2010 incident exposed
  cfg.ssu.disk.seq_read_bw = 90.0 * kMBps;
  cfg.ssu.disk.seq_write_bw = 85.0 * kMBps;
  cfg.ssu.disk.capacity = 1_TB;
  block::ControllerParams ctrl;
  ctrl.per_controller_bw = 2.8 * kGBps;  // DDN S2A9900 couplet class
  ctrl.per_controller_iops = 80e3;
  cfg.ssu.controller = ctrl;
  cfg.oss_count = 192;
  cfg.namespaces = 4;
  cfg.client_stream_bw = 350.0 * kMBps;
  return cfg;
}

CenterConfig scaled_config(CenterConfig cfg, double f) {
  f = std::clamp(f, 1e-3, 1.0);
  auto scale_count = [f](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(
                                        static_cast<double>(n) * f)));
  };
  cfg.name += "-scaled";
  cfg.clients = static_cast<std::uint32_t>(
      std::max<std::size_t>(4, scale_count(cfg.clients)));
  cfg.ssus = scale_count(cfg.ssus);
  cfg.oss_count = scale_count(cfg.oss_count);
  cfg.placement.modules = scale_count(cfg.placement.modules);
  // Keep group count aligned with leaf switches where possible.
  cfg.placement.num_groups =
      std::max<std::size_t>(1, scale_count(cfg.placement.num_groups));
  cfg.placement.leaf_switches = cfg.placement.num_groups;
  cfg.fabric.leaf_switches = cfg.placement.num_groups;
  // Shrink the torus by cbrt(f) per dimension so node count scales ~f.
  const double lin = std::cbrt(f);
  auto scale_dim = [lin](int d) {
    return std::max(2, static_cast<int>(std::llround(d * lin)));
  };
  cfg.torus.x = scale_dim(cfg.torus.x);
  cfg.torus.y = scale_dim(cfg.torus.y);
  cfg.torus.z = scale_dim(cfg.torus.z);
  return cfg;
}

}  // namespace spider::core
