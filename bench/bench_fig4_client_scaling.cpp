// Figure 4: IOR write bandwidth vs number of clients, single Spider II
// namespace (pre-upgrade), 1 MiB transfers, scheduler (random) placement.
//
// Paper finding: "a single namespace can scale almost linearly up to 6,000
// clients and then provide relatively steady performance with respect to
// increasing number of clients."
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(core::spider2_config(/*upgraded=*/false), rng);
  center.set_target_namespace(0);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  bench::banner(
      "Figure 4: IOR write bandwidth vs client count "
      "(single namespace, 1 MiB transfers, random placement, stonewall 30 s)");

  const std::vector<std::size_t> clients{32,   128,  512,  1024, 2048, 4096,
                                         6144, 8192, 12288, 16384};
  Table table;
  table.set_columns(
      {"clients", "aggregate GB/s", "per-client MB/s", "bottleneck"});
  std::vector<double> agg;
  for (std::size_t n : clients) {
    workload::IorConfig cfg;
    cfg.clients = n;
    const auto r = workload::run_ior(center, cfg);
    agg.push_back(r.aggregate_bw);
    table.add_row({static_cast<std::int64_t>(n), to_gbps(r.aggregate_bw),
                   to_mbps(r.mean_client_bw), r.bottleneck});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  // Near-linear region: 32 -> 4096 clients scales by > 100x.
  checker.check(agg[5] > 100.0 * agg[0],
                "near-linear scaling through the low-client region");
  checker.check(agg[6] > 1.25 * agg[5],
                "still gaining meaningfully at 6,144 clients");
  // Plateau: 16,384 clients deliver within 15% of 8,192.
  checker.check(agg[9] < 1.15 * agg[7],
                "steady performance beyond the ~6,000-client knee");
  checker.check(to_gbps(agg[9]) > 280.0 && to_gbps(agg[9]) < 360.0,
                "plateau sits at the pre-upgrade namespace ceiling (~320 GB/s)");
  return checker.exit_code();
}
