#include "common/rng.hpp"

#include <cmath>

namespace spider {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 significant bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire's multiply-shift rejection method. __int128 is a GNU extension,
  // hence the pedantic-warning escape hatch around it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
  using U128 = unsigned __int128;
#pragma GCC diagnostic pop
  std::uint64_t x = (*this)();
  U128 m = static_cast<U128>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<U128>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  // Inverse transform; uniform() < 1 so log argument is > 0.
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t seed = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(seed);
}

}  // namespace spider
