#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "block/controller.hpp"
#include "block/disk.hpp"
#include "block/enclosure.hpp"
#include "block/fairlio.hpp"
#include "block/raid.hpp"
#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace spider::block {
namespace {

Disk nominal_disk(double factor = 1.0) {
  return Disk(DiskParams{}, 0, factor, 1e-4);
}

TEST(Disk, SequentialBandwidthMatchesParams) {
  const Disk d = nominal_disk();
  EXPECT_DOUBLE_EQ(d.effective_bw(IoMode::kSequential, IoDir::kRead),
                   DiskParams{}.seq_read_bw);
  EXPECT_DOUBLE_EQ(d.effective_bw(IoMode::kSequential, IoDir::kWrite),
                   DiskParams{}.seq_write_bw);
}

TEST(Disk, RandomAt1MiBIsCalibratedFraction) {
  // The paper: a single disk achieves 20-25% of peak under 1 MB random I/O.
  const Disk d = nominal_disk();
  const double ratio = d.effective_bw(IoMode::kRandom, IoDir::kRead, 1_MiB) /
                       d.effective_bw(IoMode::kSequential, IoDir::kRead);
  EXPECT_NEAR(ratio, DiskParams{}.random_fraction_1mb, 0.01);
}

TEST(Disk, SmallerRandomRequestsAreWorse) {
  const Disk d = nominal_disk();
  EXPECT_LT(d.effective_bw(IoMode::kRandom, IoDir::kRead, 64_KiB),
            d.effective_bw(IoMode::kRandom, IoDir::kRead, 1_MiB));
}

TEST(Disk, PerfFactorScalesEverything) {
  const Disk slow = nominal_disk(0.5);
  const Disk fast = nominal_disk(1.0);
  EXPECT_NEAR(slow.effective_bw(IoMode::kSequential, IoDir::kRead) * 2.0,
              fast.effective_bw(IoMode::kSequential, IoDir::kRead), 1e-6);
}

TEST(Disk, ServiceTimeRandomIncludesPositioning) {
  const Disk d = nominal_disk();
  EXPECT_GT(d.service_time_s(4_KiB, IoMode::kRandom, IoDir::kRead),
            d.service_time_s(4_KiB, IoMode::kSequential, IoDir::kRead) + 1e-3);
}

TEST(Disk, RejectsNonPositiveFactor) {
  EXPECT_THROW(Disk(DiskParams{}, 0, 0.0, 0.0), std::invalid_argument);
}

TEST(Disk, PopulationHasConfiguredSlowTail) {
  Rng rng(1);
  PopulationModel pop;
  pop.slow_fraction = 0.10;
  const auto disks = make_population(20000, DiskParams{}, pop, rng);
  std::size_t slow = 0;
  for (const auto& d : disks) {
    if (d.is_slow()) ++slow;
  }
  EXPECT_NEAR(static_cast<double>(slow) / 20000.0, 0.10, 0.02);
}

TEST(Disk, SampledServiceTimeJittersAroundMean) {
  Rng rng(2);
  const Disk d = nominal_disk();
  const double mean = d.service_time_s(1_MiB, IoMode::kSequential, IoDir::kRead);
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    rs.add(d.sample_service_time_s(1_MiB, IoMode::kSequential, IoDir::kRead, rng));
  }
  EXPECT_NEAR(rs.mean(), mean, 0.05 * mean);
}

// --- RAID --------------------------------------------------------------------

std::vector<Disk> members(std::size_t n, double factor = 1.0) {
  std::vector<Disk> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(DiskParams{}, static_cast<std::uint32_t>(i), factor, 1e-4);
  }
  return out;
}

TEST(Raid, RequiresExactWidth) {
  EXPECT_THROW(Raid6Group(RaidParams{}, members(9)), std::invalid_argument);
  EXPECT_NO_THROW(Raid6Group(RaidParams{}, members(10)));
}

TEST(Raid, CapacityIsDataDisksTimesDiskCapacity) {
  Raid6Group g(RaidParams{}, members(10));
  EXPECT_EQ(g.capacity(), 8 * DiskParams{}.capacity);
}

TEST(Raid, SlowestMemberPacesTheStripe) {
  auto m = members(10);
  m[3] = Disk(DiskParams{}, 3, 0.5, 1e-4);
  Raid6Group g(RaidParams{}, std::move(m));
  Raid6Group healthy(RaidParams{}, members(10));
  const double ratio =
      g.bandwidth(IoMode::kSequential, IoDir::kRead) /
      healthy.bandwidth(IoMode::kSequential, IoDir::kRead);
  EXPECT_NEAR(ratio, 0.5, 0.01);
  EXPECT_NEAR(g.min_member_factor(), 0.5, 1e-9);
}

TEST(Raid, SubStripeWritePaysReadModifyWrite) {
  Raid6Group g(RaidParams{}, members(10));
  const double full = g.bandwidth(IoMode::kSequential, IoDir::kWrite, 1_MiB);
  const double sub = g.bandwidth(IoMode::kSequential, IoDir::kWrite, 64_KiB);
  EXPECT_LT(sub, 0.5 * full);
}

TEST(Raid, ReadsDoNotPayParityOverhead) {
  Raid6Group g(RaidParams{}, members(10));
  EXPECT_GT(g.bandwidth(IoMode::kSequential, IoDir::kRead, 1_MiB),
            g.bandwidth(IoMode::kSequential, IoDir::kWrite, 1_MiB));
}

TEST(Raid, StateMachineNormalDegradedRebuilding) {
  Raid6Group g(RaidParams{}, members(10));
  EXPECT_EQ(g.state(), RaidState::kNormal);
  g.fail_member(2);
  EXPECT_EQ(g.state(), RaidState::kDegraded);
  g.start_rebuild(2);
  EXPECT_EQ(g.state(), RaidState::kRebuilding);
  g.finish_rebuild(2);
  EXPECT_EQ(g.state(), RaidState::kNormal);
  EXPECT_FALSE(g.data_lost());
}

TEST(Raid, DegradedAndRebuildingBandwidthPenalties) {
  Raid6Group normal(RaidParams{}, members(10));
  Raid6Group g(RaidParams{}, members(10));
  const double base = normal.bandwidth(IoMode::kSequential, IoDir::kRead);
  g.fail_member(0);
  EXPECT_LT(g.bandwidth(IoMode::kSequential, IoDir::kRead), base);
  g.start_rebuild(0);
  EXPECT_LT(g.bandwidth(IoMode::kSequential, IoDir::kRead),
            base * RaidParams{}.degraded_factor + 1.0);
}

TEST(Raid, TwoFailuresSurviveThirdLosesData) {
  Raid6Group g(RaidParams{}, members(10));
  g.fail_member(0);
  g.fail_member(1);
  EXPECT_FALSE(g.data_lost());
  g.fail_member(2);
  EXPECT_TRUE(g.data_lost());
  EXPECT_EQ(g.state(), RaidState::kFailed);
  EXPECT_DOUBLE_EQ(g.bandwidth(IoMode::kSequential, IoDir::kRead), 0.0);
  // Loss is sticky.
  g.restore_member(0);
  EXPECT_TRUE(g.data_lost());
}

TEST(Raid, RestoreBeforeThirdFailureRecovers) {
  Raid6Group g(RaidParams{}, members(10));
  g.fail_member(0);
  g.fail_member(1);
  g.restore_member(1);
  g.fail_member(2);
  EXPECT_FALSE(g.data_lost());
}

TEST(Raid, RebuildTimeAndDeclusteringSpeedup) {
  RaidParams classic;
  Raid6Group g1(classic, members(10));
  RaidParams declustered;
  declustered.rebuild_speedup = 4.0;
  Raid6Group g2(declustered, members(10));
  EXPECT_NEAR(g1.rebuild_time_s() / g2.rebuild_time_s(), 4.0, 1e-9);
  // 2 TB at 50 MB/s ~ 11.1 hours.
  EXPECT_NEAR(g1.rebuild_time_s() / 3600.0, 11.1, 0.2);
}

TEST(Raid, ReplaceMemberRestoresSpeed) {
  auto m = members(10);
  m[0] = Disk(DiskParams{}, 0, 0.6, 1e-4);
  Raid6Group g(RaidParams{}, std::move(m));
  const double before = g.bandwidth(IoMode::kSequential, IoDir::kRead);
  g.replace_member(0, nominal_disk());
  EXPECT_GT(g.bandwidth(IoMode::kSequential, IoDir::kRead), before * 1.5);
}

TEST(Raid, InvalidRebuildTransitionsThrow) {
  Raid6Group g(RaidParams{}, members(10));
  EXPECT_THROW(g.start_rebuild(0), std::logic_error);   // not failed
  EXPECT_THROW(g.finish_rebuild(0), std::logic_error);  // not rebuilding
}

// --- enclosure layout --------------------------------------------------------

class EnclosureLayoutP
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(EnclosureLayoutP, EveryMemberMappedAndBalanced) {
  const auto [members_per_group, enclosures] = GetParam();
  EnclosureLayout layout(8, members_per_group, enclosures);
  for (std::size_t g = 0; g < 8; ++g) {
    std::size_t total = 0;
    for (std::uint32_t e = 0; e < enclosures; ++e) {
      const auto in_e = layout.members_in(g, e);
      total += in_e.size();
      EXPECT_LE(in_e.size(), layout.max_members_per_enclosure());
      for (std::size_t m : in_e) EXPECT_EQ(layout.enclosure_of(g, m), e);
    }
    EXPECT_EQ(total, members_per_group);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EnclosureLayoutP,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 5},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{10, 2},
                      std::pair<std::size_t, std::size_t>{8, 4}));

TEST(EnclosureLayout, FiveEnclosuresHouseTwoMembersEach) {
  EnclosureLayout l(1, 10, 5);
  EXPECT_EQ(l.max_members_per_enclosure(), 2u);
  EXPECT_EQ(l.members_in(0, 0).size(), 2u);
}

TEST(EnclosureLayout, TenEnclosuresHouseOneMemberEach) {
  EnclosureLayout l(1, 10, 10);
  EXPECT_EQ(l.max_members_per_enclosure(), 1u);
  EXPECT_EQ(l.members_in(0, 3).size(), 1u);
}

// --- controller pair ---------------------------------------------------------

TEST(Controller, ActiveActiveDeliversDouble) {
  ControllerPair p(ControllerParams{});
  EXPECT_DOUBLE_EQ(p.delivered_bw(), 2.0 * ControllerParams{}.per_controller_bw);
}

TEST(Controller, FailoverHalvesAndRecovers) {
  ControllerPair p(ControllerParams{});
  p.fail_one();
  EXPECT_EQ(p.state(), PairState::kFailedOver);
  EXPECT_DOUBLE_EQ(p.delivered_bw(), ControllerParams{}.per_controller_bw);
  p.recover();
  EXPECT_EQ(p.state(), PairState::kActiveActive);
}

TEST(Controller, GracefulOfflineFlushesJournal) {
  ControllerPair p(ControllerParams{});
  p.journal_add(1000);
  EXPECT_EQ(p.take_offline(/*graceful=*/true), 0u);
  EXPECT_EQ(p.journal_entries(), 0u);
  EXPECT_EQ(p.journal_lost_total(), 0u);
}

TEST(Controller, UngracefulOfflineDropsJournal) {
  ControllerPair p(ControllerParams{});
  p.journal_add(1'200'000);
  EXPECT_EQ(p.take_offline(/*graceful=*/false), 1'200'000u);
  EXPECT_EQ(p.journal_lost_total(), 1'200'000u);
  EXPECT_DOUBLE_EQ(p.delivered_bw(), 0.0);
  p.bring_online();
  EXPECT_GT(p.delivered_bw(), 0.0);
}

TEST(Controller, UpgradeRaisesBandwidth) {
  ControllerPair p(ControllerParams{});
  const double before = p.delivered_bw();
  p.upgrade(upgraded_controller_params());
  EXPECT_GT(p.delivered_bw(), before * 1.5);
}

// --- SSU -----------------------------------------------------------------------

TEST(Ssu, InventoryMatchesParams) {
  Rng rng(3);
  SsuParams params;
  Ssu ssu(params, 0, rng);
  EXPECT_EQ(ssu.groups(), 56u);
  EXPECT_EQ(ssu.total_disks(), 560u);
  // 56 groups x 8 data disks x 2 TB.
  EXPECT_EQ(ssu.capacity(), 56u * 8u * 2_TB);
}

TEST(Ssu, DeliveredBwIsMinOfDisksAndController) {
  Rng rng(4);
  SsuParams params;
  Ssu ssu(params, 0, rng);
  double disk_side = 0.0;
  for (const auto bw :
       ssu.group_bandwidths(IoMode::kSequential, IoDir::kWrite)) {
    disk_side += bw;
  }
  const double delivered =
      ssu.delivered_bw(IoMode::kSequential, IoDir::kWrite);
  EXPECT_NEAR(delivered,
              std::min(disk_side, ssu.controller().delivered_bw()), 1.0);
}

TEST(Ssu, EnclosureDownDegradesAllGroups) {
  Rng rng(5);
  SsuParams params;
  params.enclosures = 10;
  Ssu ssu(params, 0, rng);
  ssu.enclosure_down(0);
  for (std::size_t g = 0; g < ssu.groups(); ++g) {
    EXPECT_EQ(ssu.group(g).unavailable_members(), 1u);
    EXPECT_FALSE(ssu.group(g).data_lost());
  }
  ssu.enclosure_up(0);
  for (std::size_t g = 0; g < ssu.groups(); ++g) {
    EXPECT_EQ(ssu.group(g).state(), RaidState::kNormal);
  }
}

TEST(Ssu, ReplaceDiskDrawsHealthyUnit) {
  Rng rng(6);
  SsuParams params;
  Ssu ssu(params, 0, rng);
  ssu.replace_disk(0, 0, rng);
  EXPECT_GT(ssu.group(0).member(0).perf_factor(), 0.9);
}

// --- fair-lio ------------------------------------------------------------------

TEST(FairLio, SequentialBandwidthNearDiskRate) {
  Rng rng(7);
  const Disk d = nominal_disk();
  FairLioConfig cfg;
  cfg.mode = IoMode::kSequential;
  cfg.write_fraction = 0.0;
  cfg.duration_s = 5.0;
  const auto res = run_fairlio(d, cfg, rng);
  EXPECT_NEAR(res.bandwidth, DiskParams{}.seq_read_bw,
              0.05 * DiskParams{}.seq_read_bw);
  EXPECT_GT(res.requests, 100u);
}

TEST(FairLio, RandomMuchSlowerThanSequential) {
  Rng rng(8);
  const Disk d = nominal_disk();
  FairLioConfig seq;
  seq.duration_s = 3.0;
  FairLioConfig rnd = seq;
  rnd.mode = IoMode::kRandom;
  rnd.queue_depth = 1;
  const auto s = run_fairlio(d, seq, rng);
  const auto r = run_fairlio(d, rnd, rng);
  EXPECT_LT(r.bandwidth, 0.35 * s.bandwidth);
}

TEST(FairLio, QueueDepthImprovesRandomThroughput) {
  Rng rng(9);
  const Disk d = nominal_disk();
  FairLioConfig shallow;
  shallow.mode = IoMode::kRandom;
  shallow.queue_depth = 1;
  shallow.duration_s = 3.0;
  FairLioConfig deep = shallow;
  deep.queue_depth = 32;
  const auto a = run_fairlio(d, shallow, rng);
  const auto b = run_fairlio(d, deep, rng);
  EXPECT_GT(b.bandwidth, a.bandwidth * 1.3);
  EXPECT_GT(b.p99_latency_s, a.p99_latency_s);  // latency pays for depth
}

TEST(FairLio, GroupRunPacedBySlowestMember) {
  Rng rng(10);
  auto slow_members = members(10);
  slow_members[5] = Disk(DiskParams{}, 5, 0.6, 1e-4);
  Raid6Group slow(RaidParams{}, std::move(slow_members));
  Raid6Group fast(RaidParams{}, members(10));
  FairLioConfig cfg;
  cfg.duration_s = 2.0;
  cfg.write_fraction = 0.0;
  const auto a = run_fairlio(slow, cfg, rng);
  const auto b = run_fairlio(fast, cfg, rng);
  EXPECT_LT(a.bandwidth, 0.75 * b.bandwidth);
}

TEST(FairLio, MixedReadWriteBetweenPureRates) {
  Rng rng(11);
  const Disk d = nominal_disk();
  FairLioConfig cfg;
  cfg.duration_s = 3.0;
  FairLioConfig reads = cfg;
  reads.write_fraction = 0.0;
  FairLioConfig writes = cfg;
  writes.write_fraction = 1.0;
  FairLioConfig mixed = cfg;
  mixed.write_fraction = 0.6;  // the paper's production mix
  const auto r = run_fairlio(d, reads, rng);
  const auto w = run_fairlio(d, writes, rng);
  const auto m = run_fairlio(d, mixed, rng);
  EXPECT_LE(m.bandwidth, std::max(r.bandwidth, w.bandwidth) * 1.02);
  EXPECT_GE(m.bandwidth, std::min(r.bandwidth, w.bandwidth) * 0.98);
}

}  // namespace
}  // namespace spider::block
