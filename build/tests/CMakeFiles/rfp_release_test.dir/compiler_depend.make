# Empty compiler generated dependencies file for rfp_release_test.
# This may be replaced when dependencies are built.
