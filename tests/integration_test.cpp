// Cross-module integration tests: the subsystems working together the way
// the benches and examples use them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "fs/purge.hpp"
#include "infra/config_mgmt.hpp"
#include "infra/gedi.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "tools/capacity_planner.hpp"
#include "tools/iosi.hpp"
#include "tools/libpio.hpp"
#include "tools/scheduler.hpp"
#include "tools/slowdisk.hpp"
#include "workload/ior.hpp"

namespace spider {
namespace {

core::CenterConfig small_config() {
  return core::scaled_config(core::spider2_config(), 0.1);
}

// --- steady-state vs DES cross-validation ----------------------------------------

TEST(Integration, SteadySolverAndFlowNetworkAgree) {
  // The same static flow population must get identical rates from the
  // steady solver and from the dynamic network at t=0+.
  Rng rng(1);
  core::CenterModel center(small_config(), rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  // Steady side.
  center.reset_flows();
  auto& solver = center.solver();
  std::vector<workload::DataFlow> flows;
  for (std::size_t c = 0; c < 200; ++c) {
    flows.push_back(center.data_flow(c, c % center.num_osts(),
                                     block::IoDir::kWrite,
                                     block::IoMode::kSequential, 1_MiB));
  }
  for (const auto& f : flows) {
    solver.add_flow(f.path, f.rate_cap);
  }
  solver.solve();
  const double steady_aggregate = solver.aggregate_rate();

  // DES side: same flows via make_flow against a network WITH torus links
  // (same fidelity as the steady map).
  sim::Simulator sim;
  sim::FlowNetwork net(sim);
  const auto map = center.register_into(net, /*include_torus_links=*/true);
  for (std::size_t c = 0; c < 200; ++c) {
    auto df = center.make_flow(map, c, c % center.num_osts(),
                               block::IoDir::kWrite,
                               block::IoMode::kSequential, 1_MiB);
    sim::FlowDesc desc;
    desc.path = std::move(df.path);
    desc.size = 1e12;  // long-running
    desc.rate_cap = df.rate_cap;
    net.start_flow(std::move(desc));
  }
  sim.run(sim::kMillisecond);  // let the initial resolve land
  EXPECT_NEAR(net.aggregate_rate(), steady_aggregate,
              1e-6 * steady_aggregate);
}

// --- culling improves the center end to end ----------------------------------------

TEST(Integration, CullingRaisesCenterPeak) {
  Rng rng(2);
  auto cfg = small_config();
  // Make the storage layer the only bottleneck so culling is visible end
  // to end (at 0.1 scale, optimal placement concentrates clients on few
  // router-node NICs otherwise).
  cfg.ssu.controller.per_controller_bw = 30.0 * kGBps;
  cfg.node_injection_bw = 12.0 * kGBps;
  cfg.router_bw = 12.0 * kGBps;
  cfg.oss.net_bw = 12.0 * kGBps;
  cfg.oss.cpu_bw = 12.0 * kGBps;
  core::CenterModel center(cfg, rng);
  center.set_target_namespace(SIZE_MAX);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);

  workload::IorConfig ior;
  ior.clients = center.total_osts() * 2;
  const auto before = workload::run_ior(center, ior);

  // Cull through the center's own SSUs: replace members lagging their
  // group's best (the disk-level signal the culling tools key on).
  std::size_t replaced = 0;
  for (std::size_t s = 0; s < center.num_ssus(); ++s) {
    auto& ssu = center.ssu(s);
    for (std::size_t g = 0; g < ssu.groups(); ++g) {
      auto& grp = ssu.group(g);
      double best = 0.0;
      for (std::size_t m = 0; m < grp.width(); ++m) {
        best = std::max(best, grp.member(m).perf_factor());
      }
      for (std::size_t m = 0; m < grp.width(); ++m) {
        if (grp.member(m).perf_factor() < best - 0.05) {
          ssu.replace_disk(g, m, rng);
          ++replaced;
        }
      }
    }
  }
  center.refresh_capacities();
  const auto after = workload::run_ior(center, ior);

  EXPECT_GT(replaced, 0u);
  EXPECT_GT(after.aggregate_bw, before.aggregate_bw * 1.05);
}

// --- enclosure failure propagates to delivered bandwidth ---------------------------

TEST(Integration, EnclosureLossDegradesAndRestores) {
  Rng rng(3);
  auto cfg = small_config();
  cfg.ssu.controller.per_controller_bw = 30.0 * kGBps;  // storage-bound
  cfg.node_injection_bw = 12.0 * kGBps;
  cfg.router_bw = 12.0 * kGBps;
  cfg.oss.net_bw = 12.0 * kGBps;
  cfg.oss.cpu_bw = 12.0 * kGBps;
  core::CenterModel center(cfg, rng);
  center.set_target_namespace(SIZE_MAX);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);
  workload::IorConfig ior;
  ior.clients = center.total_osts() * 2;
  const auto healthy = workload::run_ior(center, ior);

  center.ssu(0).enclosure_down(3);
  center.refresh_capacities();
  const auto degraded = workload::run_ior(center, ior);
  EXPECT_LT(degraded.aggregate_bw, healthy.aggregate_bw);

  center.ssu(0).enclosure_up(3);
  center.refresh_capacities();
  const auto restored = workload::run_ior(center, ior);
  EXPECT_NEAR(restored.aggregate_bw, healthy.aggregate_bw,
              1e-6 * healthy.aggregate_bw);
}

// --- capacity planner drives the file system ---------------------------------------

TEST(Integration, PlannerBalancesProjectUsageAcrossNamespaces) {
  Rng rng(4);
  core::CenterModel center(small_config(), rng);
  auto& fs = center.filesystem();

  std::vector<tools::ProjectRequirement> projects;
  for (std::uint32_t p = 0; p < 30; ++p) {
    tools::ProjectRequirement req;
    req.id = p;
    req.capacity = static_cast<Bytes>(rng.uniform(5.0, 80.0)) * 1_TiB;
    req.bandwidth = rng.uniform(1.0, 20.0) * kGBps;
    projects.push_back(req);
  }
  const auto plan = tools::plan_namespaces(projects, fs.namespaces());
  for (std::size_t i = 0; i < projects.size(); ++i) {
    fs.assign_project(projects[i].id, plan.assignment[i]);
  }
  // Create each project's capacity worth of files; namespaces should end up
  // with balanced usage.
  for (const auto& req : projects) {
    const Bytes file_size = 10_GiB;
    const auto files = req.capacity / file_size;
    for (Bytes f = 0; f < files; ++f) {
      fs.create_file(req.id, file_size, 0, rng);
    }
  }
  const double a = static_cast<double>(fs.ns(0).used());
  const double b = static_cast<double>(fs.ns(1).used());
  EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.15);
}

// --- libPIO consumes live DES telemetry --------------------------------------------

TEST(Integration, LibPioReadsNetworkLoads) {
  Rng rng(5);
  core::CenterModel center(small_config(), rng);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);
  sim::Simulator sim;
  core::ScenarioRunner runner(center, sim);

  // Load the first quarter of the OSTs.
  workload::IoBurst burst;
  burst.start = sim::kSecond;
  burst.clients = 512;
  burst.bytes_per_client = 4_GiB;
  const std::size_t hot = center.total_osts() / 4;
  runner.submit_burst(burst, [hot](std::size_t f) { return f % hot; },
                      nullptr, 16);
  sim.run(5 * sim::kSecond);

  const auto loads = center.loads_from_network(runner.network(), runner.map());
  tools::LibPio pio(center.storage_topology());
  const auto placement = pio.place_job(center.total_osts() / 4, loads);
  // Every suggested OST should be outside (or at worst lightly inside) the
  // hot zone.
  std::size_t in_hot = 0;
  for (const auto& s : placement) {
    if (s.ost < hot) ++in_hot;
  }
  EXPECT_LT(in_hot, placement.size() / 4);
}

// --- IOSI + scheduler round trip ----------------------------------------------------

TEST(Integration, IosiSignatureFeedsScheduler) {
  // Extract a signature from synthetic periodic logs, then let the
  // scheduler de-overlap two instances of the discovered application.
  Rng rng(6);
  std::vector<std::vector<double>> logs;
  for (int run = 0; run < 3; ++run) {
    std::vector<double> log;
    for (int bin = 0; bin < 720; ++bin) {
      const double t = bin * 5.0;
      double v = 1e8 * (0.5 + rng.uniform());
      if (std::fmod(t, 300.0) < 20.0) v += 2e10;
      log.push_back(v);
    }
    logs.push_back(std::move(log));
  }
  const auto sig = tools::extract_signature(logs, 5.0);
  ASSERT_TRUE(sig.found);
  EXPECT_NEAR(sig.period_s, 300.0, 15.0);

  const std::vector<tools::IosiSignature> apps{sig, sig};
  const auto schedule = tools::schedule_applications(apps);
  EXPECT_NEAR(schedule.peak_reduction, 2.0, 0.1);
}

// --- provisioning + config management lifecycle ------------------------------------

TEST(Integration, FleetUpgradeLifecycle) {
  // A Lustre version bump: staged config rollout, then a rolling reboot of
  // the diskless fleet; every node converges with zero drift.
  infra::GediProvisioner gedi;
  gedi.add_boot_script({10, "S10-network", {"/etc/sysconfig/network"}, 0.5});
  infra::ConfigManager mgr("spider-oss", 288);
  mgr.spec().set("lustre", "2.3.0");
  mgr.converge();

  infra::ConfigSpec next = mgr.spec();
  next.set("lustre", "2.4.1");
  Rng rng(7);
  const auto rollout = mgr.staged_rollout(next, 0.05, 0.0, rng);
  ASSERT_TRUE(rollout.success);

  infra::NodeImage image;
  image.version = 2;  // image rebuilt with the new Lustre
  gedi.set_image(image);
  const double reboot = gedi.fleet_boot_time_s(288);
  EXPECT_LT(reboot / 60.0, 30.0);  // the whole fleet cycles within a shift
  EXPECT_EQ(mgr.audit().drifted_nodes, 0u);
}

// --- purge keeps a live center below the knee ---------------------------------------

TEST(Integration, PurgeKeepsCenterNamespaceHealthy) {
  Rng rng(8);
  core::CenterModel center(small_config(), rng);
  auto& ns = center.filesystem().ns(0);
  // Aggressive creation sized to cross 50% in ~10 days without purge.
  const Bytes daily = ns.capacity() / 20;
  const Bytes file_size = 20_GiB;
  for (int day = 0; day < 40; ++day) {
    const auto now = static_cast<sim::SimTime>(day) * sim::kDay;
    for (Bytes b = 0; b + file_size <= daily; b += file_size) {
      ns.create_file(1 + day % 5, file_size, now, rng);
    }
    fs::run_purge(ns, now, fs::PurgePolicy{14.0});
    EXPECT_LT(ns.fullness(), 0.80) << "day " << day;
  }
  // Steady state: ~15 days of production.
  EXPECT_NEAR(ns.fullness(), 0.75, 0.10);
}

}  // namespace
}  // namespace spider
