# Empty dependencies file for bench_c6_controller_upgrade.
# This may be replaced when dependencies are built.
