// IOR driver (Section V-C, Figures 3 and 4).
//
// "We used IOR, a common synthetic I/O benchmark tool. ... We used IOR in
// the file-per-process mode" with a 30-second stonewall. The driver runs in
// steady state: every client streams continuously against its OST through
// the full center path, and the max-min solve gives the aggregate — the
// quantity Figures 3 and 4 plot against transfer size and client count.
//
// The driver is decoupled from the center model through IoPathProvider so
// it can run against anything that can produce solver flows (unit tests
// use toy systems).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "block/disk.hpp"
#include "common/units.hpp"
#include "sim/steady_state.hpp"

namespace spider::workload {

/// One client's transfer: the resource path it crosses and its own rate
/// ceiling (Lustre client pipeline + placement quality).
struct DataFlow {
  std::vector<sim::PathHop> path;
  double rate_cap = sim::kUnbounded;
};

/// Source of solver resources and data flows; implemented by
/// core::CenterModel.
class IoPathProvider {
 public:
  virtual ~IoPathProvider() = default;

  /// Maximum addressable clients (compute nodes x processes).
  virtual std::size_t max_clients() const = 0;
  /// OSTs reachable in the target namespace.
  virtual std::size_t num_osts() const = 0;
  /// Drop all flows from the solver (resources persist).
  virtual void reset_flows() = 0;
  virtual sim::SteadyStateSolver& solver() = 0;
  /// Full path + rate cap for `client` transferring to `ost` (namespace-
  /// local index) with the given request size and mode.
  virtual DataFlow data_flow(std::size_t client, std::size_t ost,
                             block::IoDir dir, block::IoMode mode,
                             Bytes request_size) = 0;
};

struct IorConfig {
  std::size_t clients = 1008;
  Bytes transfer_size = 1_MiB;
  block::IoDir dir = block::IoDir::kWrite;
  block::IoMode mode = block::IoMode::kSequential;
  /// Stonewall seconds (all numbers are steady-state, the stonewall only
  /// scales the bytes-moved report).
  double stonewall_s = 30.0;
};

struct IorResult {
  Bandwidth aggregate_bw = 0.0;
  Bandwidth mean_client_bw = 0.0;
  Bandwidth min_client_bw = 0.0;
  Bytes bytes_moved = 0;
  std::string bottleneck;
};

/// File-per-process run: client i targets OST (i mod num_osts).
IorResult run_ior(IoPathProvider& provider, const IorConfig& cfg);

/// Per-process rate ceiling as a function of transfer size. Transfers are
/// carried as RPCs of at most `max_rpc` bytes; the ceiling ramps with
/// transfer size (half rate at `knee`), is flat above the RPC size, and
/// transfers above it pay a small alignment penalty — together producing
/// Figure 3's peak at the 1 MB RPC size.
double transfer_size_rate_cap(Bytes transfer_size, Bandwidth stream_bw,
                              Bytes knee = 192_KiB, Bytes max_rpc = 1_MiB,
                              double oversize_penalty = 0.97);

}  // namespace spider::workload
