file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_ioaware_scheduling.dir/bench_a6_ioaware_scheduling.cpp.o"
  "CMakeFiles/bench_a6_ioaware_scheduling.dir/bench_a6_ioaware_scheduling.cpp.o.d"
  "bench_a6_ioaware_scheduling"
  "bench_a6_ioaware_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_ioaware_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
