// Dynamic flow network coupled to the discrete-event simulator.
//
// Flows arrive and depart over simulated time; on every change the max-min
// allocation is re-solved and the next completion is scheduled. This gives
// exact flow-level dynamics with O(completions) events, which is what makes
// month-long purge simulations and checkpoint-interference studies cheap.
//
// Each resource additionally records telemetry (cumulative units served,
// busy-time integral, current load) feeding the monitoring tools (DDN tool,
// health checks) and libPIO's load-aware placement.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::sim {

using FlowId = std::uint64_t;

/// Telemetry accumulated per resource while the simulation runs.
struct ResourceStats {
  double served = 0.0;         ///< cumulative units delivered through this resource
  double busy_integral = 0.0;  ///< integral of utilization over seconds
  double current_load = 0.0;   ///< instantaneous utilization in [0, 1]
  std::uint64_t flows_seen = 0;
};

/// Description of a flow to start.
struct FlowDesc {
  std::vector<PathHop> path;
  double size = 0.0;            ///< total units to transfer (> 0)
  double rate_cap = kUnbounded; ///< flow's own rate limit
  SimTime latency = 0;          ///< fixed path latency before transfer begins
  /// Called when the last byte is delivered.
  std::function<void(FlowId, SimTime)> on_complete;
};

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator& sim) : sim_(sim) {}

  ResourceId add_resource(std::string name, double capacity);
  /// Change capacity mid-simulation (controller failover, rebuild windows,
  /// upgrades). Re-solves immediately.
  void set_capacity(ResourceId id, double capacity);
  double capacity(ResourceId id) const { return capacity_.at(id); }
  const std::string& name(ResourceId id) const { return names_.at(id); }
  const ResourceStats& stats(ResourceId id) const { return stats_.at(id); }
  std::size_t resources() const { return capacity_.size(); }

  /// Start a flow now; completion fires after latency + transfer.
  FlowId start_flow(FlowDesc desc);
  /// Abort a flow (no completion callback). No-op for unknown ids.
  void cancel_flow(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }
  /// Rate of an active flow in units/sec (0 if unknown/not yet active).
  double flow_rate(FlowId id) const;
  /// Sum of active flow rates.
  double aggregate_rate() const { return aggregate_rate_; }
  /// Sum of completed flow sizes.
  double total_delivered() const { return total_delivered_; }

 private:
  struct ActiveFlow {
    std::vector<PathHop> path;
    double size;
    double remaining;
    double rate_cap;
    double rate = 0.0;
    std::function<void(FlowId, SimTime)> on_complete;
  };

  /// Integrate progress of all active flows since last_update_.
  void advance_progress();
  /// Re-solve rates and schedule the next completion event.
  void resolve();
  void on_completion_event();

  Simulator& sim_;
  std::vector<std::string> names_;
  std::vector<double> capacity_;
  std::vector<ResourceStats> stats_;
  /// Ordered by FlowId so every walk — progress integration, solver input,
  /// completion collection — visits flows in the same sequence regardless of
  /// insertion/cancellation history. Float accumulation order is therefore a
  /// function of the live flow set alone, never of hash-table state.
  std::map<FlowId, ActiveFlow> flows_;
  FlowId next_flow_id_ = 1;
  SimTime last_update_ = 0;
  EventId completion_event_ = 0;
  bool completion_scheduled_ = false;
  double aggregate_rate_ = 0.0;
  double total_delivered_ = 0.0;
};

}  // namespace spider::sim
