// Monitoring stack: Lustre Health Checker, Nagios-style checks, and the
// DDN controller poller (Section IV-A "Monitoring", Lesson 8).
//
// Three pieces the paper describes:
//  - Lustre Health Checker: "a coherent collection of associated errors
//    from a Lustre failure condition", coalescing raw events into
//    incidents and discriminating hardware events from Lustre software
//    issues.
//  - Nagios-style checks: pluggable check functions with OK/WARNING/
//    CRITICAL results run on a schedule.
//  - DDN Tool: "polls each controller for various pieces of information
//    (e.g. I/O request sizes, write and read bandwidths) at regular rates
//    and stores this information in a MySQL database" — modelled as a
//    time-series store with the standardized queries admins use.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/time.hpp"

namespace spider::tools {

enum class EventSource { kLustre, kHardware, kNetwork };
enum class Severity { kInfo, kWarning, kCritical };

struct HealthEvent {
  sim::SimTime time = 0;
  EventSource source = EventSource::kLustre;
  Severity severity = Severity::kInfo;
  std::string component;  ///< e.g. "oss017", "ib-leaf-12", "ost0421"
  std::string message;
};

/// A coalesced failure condition: events on the same component within the
/// coalescing window.
struct Incident {
  sim::SimTime first = 0;
  sim::SimTime last = 0;
  std::string component;
  std::vector<HealthEvent> events;
  bool hardware_related = false;
  Severity worst = Severity::kInfo;
};

class HealthMonitor {
 public:
  void ingest(HealthEvent ev);
  std::size_t events_seen() const { return events_.size(); }

  /// Coalesce ingested events into incidents: same component, gaps below
  /// `window`. An incident is hardware_related when any member event came
  /// from kHardware — the discrimination Lesson 8 calls out.
  std::vector<Incident> coalesce(sim::SimTime window) const;

 private:
  std::vector<HealthEvent> events_;
};

// --- Nagios-style check framework ------------------------------------------

enum class CheckStatus { kOk, kWarning, kCritical };

struct CheckResult {
  CheckStatus status = CheckStatus::kOk;
  std::string detail;
};

struct Check {
  std::string name;
  std::function<CheckResult()> probe;
};

class CheckScheduler {
 public:
  void add_check(Check check);
  std::size_t checks() const { return checks_.size(); }

  struct Report {
    std::size_t ok = 0;
    std::size_t warning = 0;
    std::size_t critical = 0;
    std::vector<std::pair<std::string, CheckResult>> failing;
  };
  /// Run every check once.
  Report run_all() const;

 private:
  std::vector<Check> checks_;
};

// --- DDN tool: controller telemetry store -----------------------------------

struct ControllerSample {
  sim::SimTime time = 0;
  std::uint32_t controller = 0;
  Bandwidth read_bw = 0.0;
  Bandwidth write_bw = 0.0;
  Bytes avg_request_size = 0;
};

class DdnPoller {
 public:
  explicit DdnPoller(std::size_t retention = 100'000) : retention_(retention) {}

  void record(ControllerSample sample);
  std::size_t samples() const { return samples_.size(); }

  /// Standardized queries (the "reports" admins pull from the database).
  Bandwidth mean_write_bw(std::uint32_t controller, sim::SimTime since) const;
  Bandwidth mean_read_bw(std::uint32_t controller, sim::SimTime since) const;
  Bandwidth peak_total_bw(sim::SimTime since) const;

 private:
  std::deque<ControllerSample> samples_;
  std::size_t retention_;
};

}  // namespace spider::tools
