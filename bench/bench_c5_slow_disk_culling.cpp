// C5 (Lesson 13): slow-disk identification and culling over the full
// 20,160-disk Spider II fleet.
//
// Paper: variance envelope of 5% (intra-SSU, and fleet-wide around the
// mean) enforced through multiple benchmark-and-replace rounds; ~1,500
// disks replaced during deployment plus ~500 at the file-system level —
// about 10% of the fleet; production later relaxed the envelope to 7.5%.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "tools/slowdisk.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  std::vector<block::Ssu> fleet;
  block::SsuParams params;  // 56 groups x 10 disks per SSU
  fleet.reserve(36);
  for (int s = 0; s < 36; ++s) fleet.emplace_back(params, s, rng);
  const double total_disks = 36.0 * 56.0 * 10.0;

  bench::banner("C5: slow-disk culling on the 20,160-disk fleet");
  tools::CullingConfig cfg;
  cfg.intra_ssu_threshold = 0.075;  // production envelope
  cfg.fleet_threshold = 0.075;

  const auto before = tools::measure_fleet(fleet, cfg);
  const auto report = tools::run_culling(fleet, cfg, rng);

  Table table;
  table.set_columns({"round", "fleet mean MB/s per group", "worst intra-SSU spread",
                     "fleet spread", "disks replaced"});
  for (const auto& r : report.rounds) {
    table.add_row({static_cast<std::int64_t>(r.round), to_mbps(r.fleet_mean_bw),
                   r.worst_intra_ssu_spread, r.fleet_spread,
                   static_cast<std::int64_t>(r.disks_replaced)});
  }
  table.print(std::cout);

  const auto after = tools::measure_fleet(fleet, cfg);
  std::cout << "\ntotal disks replaced: " << report.total_disks_replaced
            << " of " << static_cast<long>(total_disks) << " ("
            << 100.0 * static_cast<double>(report.total_disks_replaced) / total_disks
            << "%; paper: ~2,000 of 20,160)\n"
            << "fleet mean per-group bandwidth: " << to_mbps(before.fleet_mean_bw)
            << " -> " << to_mbps(after.fleet_mean_bw) << " MB/s ("
            << 100.0 * (after.fleet_mean_bw / before.fleet_mean_bw - 1.0)
            << "% aggregate improvement)\n\n";

  bench::ShapeChecker checker;
  checker.check(report.converged, "culling converges to the variance envelope");
  checker.check(after.worst_intra_ssu_spread <= cfg.intra_ssu_threshold + 1e-9,
                "intra-SSU spread within 7.5% (production envelope)");
  checker.check(after.fleet_spread <= cfg.fleet_threshold + 1e-9,
                "fleet-wide spread within 7.5% of the mean");
  const double frac =
      static_cast<double>(report.total_disks_replaced) / total_disks;
  checker.check(frac > 0.05 && frac < 0.20,
                "replaced fraction in the ~10% range the paper reports");
  checker.check(after.fleet_mean_bw > before.fleet_mean_bw * 1.05,
                "culling materially improves aggregate bandwidth");
  return checker.exit_code();
}
