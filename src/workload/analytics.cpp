#include "workload/analytics.hpp"

#include <algorithm>
#include <cmath>

#include "common/distributions.hpp"

namespace spider::workload {

AnalyticsWorkload::AnalyticsWorkload(const AnalyticsParams& params)
    : params_(params) {}

std::vector<IoRequest> AnalyticsWorkload::generate(double duration_s,
                                                   Rng& rng) const {
  // Pareto with mean == think_time_s: scale = mean * (alpha-1)/alpha.
  const double scale =
      params_.think_time_s * (params_.think_alpha - 1.0) / params_.think_alpha;
  const Pareto think(params_.think_alpha, scale);
  const double lo = std::log2(static_cast<double>(params_.read_lo));
  const double hi = std::log2(static_cast<double>(params_.read_hi));

  std::vector<IoRequest> trace;
  for (std::uint32_t c = 0; c < params_.clients; ++c) {
    Rng local = rng.fork(1000 + c);
    double t = think.sample(local);
    while (t < duration_s) {
      IoRequest req;
      req.issue_time = sim::from_seconds(t);
      req.client = c;
      req.size = static_cast<Bytes>(std::exp2(local.uniform(lo, hi)));
      req.dir = block::IoDir::kRead;
      req.mode = block::IoMode::kRandom;  // scattered analysis reads
      trace.push_back(req);
      t += think.sample(local);
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const IoRequest& a, const IoRequest& b) {
              if (a.issue_time != b.issue_time) return a.issue_time < b.issue_time;
              return a.client < b.client;
            });
  return trace;
}

}  // namespace spider::workload
