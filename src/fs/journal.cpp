#include "fs/journal.hpp"

#include <algorithm>

namespace spider::fs {

double JournalModel::write_efficiency() const {
  switch (mode) {
    case JournalMode::kSyncOnData:
      return 0.70;  // measured class of loss that motivated the work
    case JournalMode::kAsync:
      return 0.88;
    case JournalMode::kHighPerformance:
      return 0.97;
  }
  return 1.0;
}

double JournalModel::commit_latency_s() const {
  switch (mode) {
    case JournalMode::kSyncOnData:
      return 12e-3;  // seek to the journal region and back
    case JournalMode::kAsync:
      return 3e-3;
    case JournalMode::kHighPerformance:
      return 0.5e-3;
  }
  return 0.0;
}

// --- OpLog ------------------------------------------------------------------

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate: return "create";
    case OpKind::kUnlink: return "unlink";
    case OpKind::kSetattr: return "setattr";
    case OpKind::kResize: return "resize";
    case OpKind::kSetProject: return "setproject";
  }
  return "unknown";
}

std::uint64_t OpLog::append(OpKind kind, std::uint64_t file,
                            std::uint32_t project, Bytes size,
                            std::int64_t at, std::uint32_t prev_project,
                            Bytes prev_size) {
  OpRecord rec;
  rec.txid = next_txid_++;
  rec.kind = kind;
  rec.file = file;
  rec.project = project;
  rec.size = size;
  rec.at = at;
  rec.prev_project = prev_project;
  rec.prev_size = prev_size;
  records_.push_back(rec);
  return rec.txid;
}

void OpLog::commit(std::uint64_t txid) {
  committed_ = std::max(committed_, std::min(txid, last_txid()));
}

void OpLog::truncate_to(std::uint64_t txid) {
  if (txid >= last_txid()) return;
  while (!records_.empty() && records_.back().txid > txid) {
    records_.pop_back();
  }
  next_txid_ = txid + 1;
  committed_ = std::min(committed_, txid);
}

}  // namespace spider::fs
