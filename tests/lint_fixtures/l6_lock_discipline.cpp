// Fixture for spiderlint rule L6 (lock-discipline).
//
// `count_` is annotated SPIDER_GUARDED_BY(mu_): touching it in a function
// that neither locks mu_ nor is annotated SPIDER_REQUIRES(mu_) fires; the
// locked and annotated variants are engineered false positives that must
// stay silent.
#include <mutex>

#include "common/annotations.hpp"

namespace fixture {

class Pool {
 public:
  void unsafe_touch() { count_ += 1; }  // L6: no lock, no annotation

  void locked_touch() {
    std::lock_guard<std::mutex> lk(mu_);
    count_ += 1;  // guarded: lock held
  }

  void annotated_touch() SPIDER_REQUIRES(mu_) {
    count_ += 1;  // guarded: caller holds mu_ by contract
  }

 private:
  std::mutex mu_;
  int count_ SPIDER_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
