file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_libpio.dir/bench_c7_libpio.cpp.o"
  "CMakeFiles/bench_c7_libpio.dir/bench_c7_libpio.cpp.o.d"
  "bench_c7_libpio"
  "bench_c7_libpio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_libpio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
