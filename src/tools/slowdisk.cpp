#include "tools/slowdisk.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/stats.hpp"

namespace spider::tools {

namespace {

struct GroupRef {
  std::size_t ssu;
  std::size_t group;
  double bw;
};

std::vector<GroupRef> benchmark_fleet(std::span<const block::Ssu> ssus,
                                      const CullingConfig& cfg) {
  std::vector<GroupRef> refs;
  for (std::size_t s = 0; s < ssus.size(); ++s) {
    for (std::size_t g = 0; g < ssus[s].groups(); ++g) {
      refs.push_back(GroupRef{
          s, g,
          ssus[s].group(g).bandwidth(block::IoMode::kSequential,
                                     block::IoDir::kWrite, cfg.request_size)});
    }
  }
  return refs;
}

CullingRound summarize(std::span<const block::Ssu> ssus,
                       const std::vector<GroupRef>& refs) {
  CullingRound round;
  RunningStats fleet;
  for (const auto& r : refs) fleet.add(r.bw);
  round.fleet_mean_bw = fleet.mean();
  // Fleet spread: max deviation from the mean, as a fraction of the mean.
  double max_dev = 0.0;
  for (const auto& r : refs) {
    max_dev = std::max(max_dev, std::abs(r.bw - fleet.mean()) / fleet.mean());
  }
  round.fleet_spread = max_dev;
  // Worst intra-SSU spread: (fastest - slowest) / fastest.
  double worst = 0.0;
  for (std::size_t s = 0; s < ssus.size(); ++s) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (const auto& r : refs) {
      if (r.ssu != s) continue;
      lo = std::min(lo, r.bw);
      hi = std::max(hi, r.bw);
    }
    if (hi > 0.0) worst = std::max(worst, (hi - lo) / hi);
  }
  round.worst_intra_ssu_spread = worst;
  return round;
}

}  // namespace

CullingRound measure_fleet(std::span<const block::Ssu> ssus,
                           const CullingConfig& cfg) {
  const auto refs = benchmark_fleet(ssus, cfg);
  return summarize(ssus, refs);
}

MemberLatencyReport measure_member_latencies(const block::Raid6Group& group,
                                             Bytes request_size,
                                             std::size_t samples, Rng& rng) {
  MemberLatencyReport report;
  report.median_s.resize(group.width());
  report.p99_s.resize(group.width());
  std::vector<double> lat(samples);
  for (std::size_t m = 0; m < group.width(); ++m) {
    if (group.member_state(m) != block::MemberState::kOnline) {
      report.median_s[m] = 0.0;
      report.p99_s[m] = 0.0;
      continue;
    }
    for (std::size_t s = 0; s < samples; ++s) {
      lat[s] = group.member(m).sample_service_time_s(
          request_size, block::IoMode::kSequential, block::IoDir::kWrite, rng);
    }
    report.median_s[m] = percentile(lat, 50.0);
    report.p99_s[m] = percentile(lat, 99.0);
  }
  std::vector<double> medians;
  for (double v : report.median_s) {
    if (v > 0.0) medians.push_back(v);
  }
  report.group_median_s = medians.empty() ? 0.0 : percentile(medians, 50.0);
  return report;
}

std::vector<std::size_t> flag_slow_members(const MemberLatencyReport& report,
                                           double flag_factor) {
  std::vector<std::size_t> flagged;
  for (std::size_t m = 0; m < report.median_s.size(); ++m) {
    if (report.median_s[m] > report.group_median_s * flag_factor) {
      flagged.push_back(m);
    }
  }
  return flagged;
}

CullingReport run_culling(std::span<block::Ssu> ssus, const CullingConfig& cfg,
                          Rng& rng) {
  CullingReport report;
  for (std::size_t round_no = 0; round_no < cfg.max_rounds; ++round_no) {
    auto refs = benchmark_fleet(ssus, cfg);
    CullingRound round = summarize(ssus, refs);
    round.round = round_no;
    if (round_no == 0) report.initial_fleet_mean_bw = round.fleet_mean_bw;

    const bool within =
        round.worst_intra_ssu_spread <= cfg.intra_ssu_threshold &&
        round.fleet_spread <= cfg.fleet_threshold;
    if (within) {
      report.rounds.push_back(round);
      report.converged = true;
      break;
    }

    // Bin groups by bandwidth; examine the lowest bin(s) at disk level.
    std::sort(refs.begin(), refs.end(),
              [](const GroupRef& a, const GroupRef& b) { return a.bw < b.bw; });
    const std::size_t per_bin = std::max<std::size_t>(1, refs.size() / cfg.bins);
    const auto examine =
        static_cast<std::size_t>(static_cast<double>(per_bin) * cfg.examine_fraction);

    std::size_t replaced = 0;
    for (std::size_t i = 0; i < std::min(examine, refs.size()); ++i) {
      auto& ssu = ssus[refs[i].ssu];
      auto& grp = ssu.group(refs[i].group);
      // Disk-level statistics, measured the way the paper did it: per-member
      // service-latency sampling; members with outlying medians get pulled.
      const auto latencies = measure_member_latencies(grp, cfg.request_size,
                                                      cfg.latency_samples, rng);
      for (std::size_t m :
           flag_slow_members(latencies, cfg.latency_flag_factor)) {
        ssu.replace_disk(refs[i].group, m, rng);
        ++replaced;
      }
    }
    round.disks_replaced = replaced;
    report.total_disks_replaced += replaced;
    report.rounds.push_back(round);
    if (replaced == 0 && !within) {
      // No more candidates under the current criteria; stop.
      break;
    }
  }
  if (!report.rounds.empty()) {
    report.final_fleet_mean_bw = report.rounds.back().fleet_mean_bw;
  }
  return report;
}

}  // namespace spider::tools
