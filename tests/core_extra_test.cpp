// Second round of center-model tests: path composition details, config
// presets, scaled-config invariants, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/arrivals.hpp"
#include "workload/ior.hpp"
#include "workload/trace_io.hpp"

namespace spider::core {
namespace {

CenterConfig tiny() { return scaled_config(spider2_config(), 0.08); }

TEST(CenterPaths, FgrFlowsStayOffTheCore) {
  Rng rng(1);
  CenterModel c(tiny(), rng);
  c.set_routing_policy(RoutingPolicy::kFgr);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  const auto& map = c.steady_map();
  const std::set<sim::ResourceId> core_ids(map.ib_core.begin(),
                                           map.ib_core.end());
  for (std::size_t cl = 0; cl < 64; ++cl) {
    auto df = c.data_flow(cl, cl % c.num_osts(), block::IoDir::kWrite,
                          block::IoMode::kSequential, 1_MiB);
    for (const auto& hop : df.path) {
      EXPECT_FALSE(core_ids.contains(hop.resource))
          << "FGR flow crossed the IB core";
    }
  }
}

TEST(CenterPaths, RoundRobinFlowsOftenCrossTheCore) {
  Rng rng(2);
  CenterModel c(tiny(), rng);
  c.set_routing_policy(RoutingPolicy::kRoundRobin);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  const auto& map = c.steady_map();
  const std::set<sim::ResourceId> core_ids(map.ib_core.begin(),
                                           map.ib_core.end());
  std::size_t crossings = 0;
  for (std::size_t cl = 0; cl < 64; ++cl) {
    auto df = c.data_flow(cl, cl % c.num_osts(), block::IoDir::kWrite,
                          block::IoMode::kSequential, 1_MiB);
    for (const auto& hop : df.path) {
      if (core_ids.contains(hop.resource)) {
        ++crossings;
        break;
      }
    }
  }
  EXPECT_GT(crossings, 32u);  // most leaves won't match by luck
}

TEST(CenterPaths, PathStartsAtNicAndEndsAtOst) {
  Rng rng(3);
  CenterModel c(tiny(), rng);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  const auto& map = c.steady_map();
  auto df = c.data_flow(5, 7, block::IoDir::kRead, block::IoMode::kRandom,
                        512_KiB);
  ASSERT_GE(df.path.size(), 5u);
  const int node = c.node_of_client(5);
  EXPECT_EQ(df.path.front().resource,
            map.node_nic[static_cast<std::size_t>(node)]);
  EXPECT_EQ(df.path.back().resource, map.ost[7]);
  // Random-mode read pays an OST cost factor > 1.
  EXPECT_GT(df.path.back().cost, 1.5);
}

TEST(CenterPaths, TorusLinksAppearOnlyWhenRegistered) {
  Rng rng(4);
  CenterModel c(tiny(), rng);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  sim::Simulator sim;
  sim::FlowNetwork with_links(sim), without_links(sim);
  const auto map_with = c.register_into(with_links, true);
  const auto map_without = c.register_into(without_links, false);
  EXPECT_TRUE(map_with.has_torus_links);
  EXPECT_FALSE(map_without.has_torus_links);
  EXPECT_EQ(map_with.torus_link.size(),
            static_cast<std::size_t>(c.torus().num_links()));
  EXPECT_TRUE(map_without.torus_link.empty());
  auto a = c.make_flow(map_with, 9, 3, block::IoDir::kWrite,
                       block::IoMode::kSequential, 1_MiB);
  auto b = c.make_flow(map_without, 9, 3, block::IoDir::kWrite,
                       block::IoMode::kSequential, 1_MiB);
  EXPECT_GE(a.path.size(), b.path.size());
  EXPECT_DOUBLE_EQ(a.rate_cap, b.rate_cap);  // penalty uses hops either way
}

TEST(CenterPaths, FlowsAreDeterministic) {
  Rng rng(5);
  CenterModel c(tiny(), rng);
  c.set_client_placement(ClientPlacement::kRandom, rng);
  auto a = c.data_flow(11, 13, block::IoDir::kWrite,
                       block::IoMode::kSequential, 1_MiB);
  auto b = c.data_flow(11, 13, block::IoDir::kWrite,
                       block::IoMode::kSequential, 1_MiB);
  ASSERT_EQ(a.path.size(), b.path.size());
  for (std::size_t i = 0; i < a.path.size(); ++i) {
    EXPECT_EQ(a.path[i].resource, b.path[i].resource);
    EXPECT_DOUBLE_EQ(a.path[i].cost, b.path[i].cost);
  }
  EXPECT_DOUBLE_EQ(a.rate_cap, b.rate_cap);
}

TEST(CenterConfigs, Spider1Preset) {
  const auto cfg = spider1_config();
  EXPECT_EQ(cfg.namespaces, 4u);
  EXPECT_EQ(cfg.ssu.enclosures, 5u);  // the incident design
  EXPECT_EQ(cfg.ssus, 48u);
  Rng rng(6);
  CenterModel c(cfg, rng);
  EXPECT_EQ(c.filesystem().namespaces(), 4u);
  // 10 PB class.
  EXPECT_NEAR(to_pb(c.filesystem().capacity()), 10.0, 2.0);
}

class ScaledConfigP : public ::testing::TestWithParam<double> {};

TEST_P(ScaledConfigP, BuildsAndStaysProportional) {
  const double f = GetParam();
  const auto cfg = scaled_config(spider2_config(), f);
  Rng rng(7);
  CenterModel c(cfg, rng);
  // OST count scales with SSUs.
  EXPECT_EQ(c.total_osts(), cfg.ssus * cfg.ssu.raid_groups);
  // Everything maps in range.
  for (std::size_t o : {std::size_t{0}, c.total_osts() - 1}) {
    EXPECT_LT(c.oss_of_ost(o), c.num_oss());
    EXPECT_LT(c.leaf_of_ost(o), cfg.fabric.leaf_switches);
    EXPECT_LT(c.namespace_of_ost(o), cfg.namespaces);
  }
  // A solve works and delivers something sane.
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  c.set_target_namespace(SIZE_MAX);
  workload::IorConfig ior;
  ior.clients = std::min<std::size_t>(cfg.clients, c.total_osts() * 2);
  const auto r = workload::run_ior(c, ior);
  EXPECT_GT(r.aggregate_bw, 0.0);
  const auto prof =
      c.layer_profile(block::IoMode::kSequential, block::IoDir::kWrite);
  EXPECT_LE(r.aggregate_bw, prof.end_to_end * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaledConfigP,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

TEST(CenterKnobs2, RefreshPicksUpControllerFailover) {
  Rng rng(8);
  auto cfg = tiny();
  cfg.ssu.controller.per_controller_bw = 20.0 * kGBps;  // controller-bound
  CenterModel c(cfg, rng);
  c.set_target_namespace(SIZE_MAX);
  c.set_client_placement(ClientPlacement::kOptimal, rng);
  workload::IorConfig ior;
  ior.clients = c.total_osts() * 2;
  const auto before = workload::run_ior(c, ior);
  c.ssu(0).controller().fail_one();
  c.refresh_capacities();
  const auto failed = workload::run_ior(c, ior);
  EXPECT_LT(failed.aggregate_bw, before.aggregate_bw);
  c.ssu(0).controller().recover();
  c.refresh_capacities();
  const auto recovered = workload::run_ior(c, ior);
  EXPECT_NEAR(recovered.aggregate_bw, before.aggregate_bw,
              1e-9 * before.aggregate_bw);
}

// --- trace round trip --------------------------------------------------------------

TEST(TraceIo, RoundTripPreservesEverything) {
  Rng rng(9);
  const auto trace =
      workload::generate_trace(workload::WorkloadMixParams{}, 4, 5.0, rng);
  const auto csv = workload::trace_to_string(trace);
  const auto back = workload::trace_from_string(csv);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].issue_time, trace[i].issue_time);
    EXPECT_EQ(back[i].client, trace[i].client);
    EXPECT_EQ(back[i].size, trace[i].size);
    EXPECT_EQ(back[i].dir, trace[i].dir);
    EXPECT_EQ(back[i].mode, trace[i].mode);
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(workload::trace_from_string("not,a,header\n"),
               std::runtime_error);
  EXPECT_THROW(workload::trace_from_string(
                   "time_ns,client,size_bytes,dir,mode\n1,2,3,W\n"),
               std::runtime_error);
  EXPECT_THROW(workload::trace_from_string(
                   "time_ns,client,size_bytes,dir,mode\n1,2,3,X,S\n"),
               std::runtime_error);
  EXPECT_THROW(workload::trace_from_string(
                   "time_ns,client,size_bytes,dir,mode\nx,2,3,W,S\n"),
               std::runtime_error);
}

TEST(TraceIo, EmptyTraceIsJustAHeader) {
  const auto csv = workload::trace_to_string({});
  EXPECT_EQ(csv, "time_ns,client,size_bytes,dir,mode\n");
  EXPECT_TRUE(workload::trace_from_string(csv).empty());
}

}  // namespace
}  // namespace spider::core
