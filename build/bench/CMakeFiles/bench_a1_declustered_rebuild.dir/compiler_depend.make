# Empty compiler generated dependencies file for bench_a1_declustered_rebuild.
# This may be replaced when dependencies are built.
