// Lustre journaling model.
//
// Section IV-D: OLCF direct-funded "high-performance Lustre journaling"
// because stock ldiskfs journal commits serialized small synchronous writes
// on the data spindles and cost double-digit write bandwidth. The model
// expresses journaling as a write-efficiency factor plus a commit latency,
// with three modes: synchronous on-data-disk journal (worst), asynchronous
// commit (stock tuning), and the OLCF hardware/async journaling work (best).
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/units.hpp"

namespace spider::fs {

enum class JournalMode {
  /// Journal on the data disks, synchronous transactions.
  kSyncOnData,
  /// Asynchronous journal commit (batched transactions).
  kAsync,
  /// OLCF-funded high-performance journaling (dedicated device + async).
  kHighPerformance,
};

struct JournalModel {
  JournalMode mode = JournalMode::kHighPerformance;

  /// Multiplier on OST write bandwidth from journal traffic.
  double write_efficiency() const;
  /// Added latency per write RPC batch, seconds.
  double commit_latency_s() const;
};

// --- metadata op journal ----------------------------------------------------
//
// The MDS changelog (ROADMAP item 2, Robinhood direction): every namespace
// mutation lands here with a monotone transaction id, and a committed cursor
// marks the durable prefix. Consumers (fs/changelog.hpp accounting tables,
// the incremental purge engine, tools::LustreDu) rebuild namespace-level
// state by replaying the committed prefix instead of rescanning the
// namespace — the scan-free policy path that keeps working at 1e9 entries,
// where full MDS sweeps stop (docs/metadata-changelog.md). spiderfsck
// (tools/spiderfsck) cross-references the same log against the inode table.

enum class OpKind : std::uint8_t {
  kCreate,
  kUnlink,
  /// Touch: mtime/atime advance (`at` is the new last-touch time). Records
  /// carry the file's current project/size so consumers stay stateless.
  kSetattr,
  /// Size change: `size` is the new size, `prev_size` the old one, so a
  /// consumer can apply the delta without a lookup.
  kResize,
  /// Project reassignment: `project` is the new owner, `prev_project` the
  /// old one; `size` is the file's current size (it moves between owners).
  kSetProject,
};

/// Canonical lowercase name ("create", "setattr", ...) for reports.
const char* op_kind_name(OpKind kind);

/// One journaled metadata operation. `file` is the fs::FileId value (kept as
/// a raw integer here so the journal stays below fs_namespace.hpp in the
/// include graph).
struct OpRecord {
  std::uint64_t txid = 0;  ///< monotone from 1; gaps mean lost records
  OpKind kind = OpKind::kCreate;
  std::uint64_t file = 0;
  std::uint32_t project = 0;
  Bytes size = 0;
  std::int64_t at = 0;  ///< sim::SimTime value of the operation
  std::uint32_t prev_project = 0;  ///< kSetProject: owner before the move
  Bytes prev_size = 0;             ///< kResize: size before the change
};

// Which mutation paths an attached namespace emits into its changelog.
// Mirrors Lustre's changelog record mask: atime-only updates (reads) are
// costly at scale and masked off by default, exactly as `lctl changelog`
// ships; scenarios that drive atime-based purge opt in with kLogAtime.
using ChangelogMask = std::uint32_t;
inline constexpr ChangelogMask kLogCreate = 1u << 0;
inline constexpr ChangelogMask kLogUnlink = 1u << 1;
inline constexpr ChangelogMask kLogSetattr = 1u << 2;  ///< touch (mtime)
inline constexpr ChangelogMask kLogResize = 1u << 3;
inline constexpr ChangelogMask kLogSetProject = 1u << 4;
inline constexpr ChangelogMask kLogAtime = 1u << 5;  ///< read-path atime bumps
inline constexpr ChangelogMask kLogDefault =
    kLogCreate | kLogUnlink | kLogSetattr | kLogResize | kLogSetProject;
inline constexpr ChangelogMask kLogAll = kLogDefault | kLogAtime;

/// Append-only op journal with a committed cursor. Records are held in txid
/// order; truncate_to models a crash that loses the uncommitted tail, and
/// records_mutable lets seeded-corruption tests drop interior records (the
/// breaches spiderfsck must detect).
class OpLog {
 public:
  /// Append one record; returns its txid. The prev_* fields only matter for
  /// kResize (prev_size) and kSetProject (prev_project) and default to 0.
  std::uint64_t append(OpKind kind, std::uint64_t file, std::uint32_t project,
                       Bytes size, std::int64_t at,
                       std::uint32_t prev_project = 0, Bytes prev_size = 0)
      SPIDER_JOURNALED("this IS the journal append: OpLog is the durability "
                       "point itself, not a consumer of one");

  const std::vector<OpRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::uint64_t last_txid() const { return next_txid_ - 1; }

  /// Durable prefix: records with txid <= committed() survived the crash.
  std::uint64_t committed() const { return committed_; }
  /// Advance the cursor (clamped to last_txid; never moves backwards).
  void commit(std::uint64_t txid)
      SPIDER_JOURNALED("cursor advance over records already appended; the "
                       "append itself was the journaled mutation");

  /// Crash-lose every record with txid > `txid`; the cursor clamps and the
  /// next append reuses txid + 1 (the tail genuinely never happened).
  void truncate_to(std::uint64_t txid);

  /// Corruption surface for fsck tests: direct record access. Dropping an
  /// interior record leaves a txid gap the checker must notice via the
  /// namespace cross-reference.
  std::vector<OpRecord>& records_mutable() { return records_; }

 private:
  std::vector<OpRecord> records_;
  std::uint64_t next_txid_ = 1;
  std::uint64_t committed_ = 0;
};

}  // namespace spider::fs
