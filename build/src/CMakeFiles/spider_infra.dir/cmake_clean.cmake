file(REMOVE_RECURSE
  "CMakeFiles/spider_infra.dir/infra/config_mgmt.cpp.o"
  "CMakeFiles/spider_infra.dir/infra/config_mgmt.cpp.o.d"
  "CMakeFiles/spider_infra.dir/infra/gedi.cpp.o"
  "CMakeFiles/spider_infra.dir/infra/gedi.cpp.o.d"
  "libspider_infra.a"
  "libspider_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
