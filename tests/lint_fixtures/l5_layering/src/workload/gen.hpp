// L5 fixture: workload depending on common is a legal downward edge.
#pragma once

#include "common/base.hpp"

namespace fixture {
struct Gen {
  Base seed = 0;
};
}  // namespace fixture
