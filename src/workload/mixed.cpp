#include "workload/mixed.hpp"

#include <algorithm>

namespace spider::workload {

std::vector<IoRequest> merge_traces(std::vector<std::vector<IoRequest>> traces) {
  std::vector<IoRequest> out;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  out.reserve(total);
  for (auto& t : traces) {
    out.insert(out.end(), t.begin(), t.end());
  }
  std::sort(out.begin(), out.end(), [](const IoRequest& a, const IoRequest& b) {
    if (a.issue_time != b.issue_time) return a.issue_time < b.issue_time;
    return a.client < b.client;
  });
  return out;
}

double offered_bandwidth(const std::vector<IoRequest>& trace) {
  if (trace.empty()) return 0.0;
  double bytes = 0.0;
  for (const auto& r : trace) bytes += static_cast<double>(r.size);
  const double span =
      sim::to_seconds(trace.back().issue_time - trace.front().issue_time);
  return span > 0.0 ? bytes / span : 0.0;
}

std::vector<double> bandwidth_timeline(const std::vector<IoRequest>& trace,
                                       double bin_s, double duration_s) {
  const auto bins = static_cast<std::size_t>(duration_s / bin_s) + 1;
  std::vector<double> timeline(bins, 0.0);
  for (const auto& r : trace) {
    const double t = sim::to_seconds(r.issue_time);
    if (t < 0.0 || t >= duration_s) continue;
    timeline[static_cast<std::size_t>(t / bin_s)] += static_cast<double>(r.size);
  }
  for (auto& b : timeline) b /= bin_s;  // bytes -> bytes/sec
  return timeline;
}

}  // namespace spider::workload
