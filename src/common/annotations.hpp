// Thread-safety annotations, checkable on two levels.
//
// Under clang the macros expand to the thread-safety-analysis attributes,
// so `-Wthread-safety` proves the discipline at compile time; under gcc
// they expand to nothing. Either way spiderlint rule L6 (lock-discipline)
// reads the spelling lexically: a member marked SPIDER_GUARDED_BY(m) may
// only be touched inside functions that visibly lock `m` (lock_guard/
// unique_lock/scoped_lock/m.lock()) or are annotated SPIDER_REQUIRES(m).
// The TSan ctest preset (SPIDER_SANITIZE=thread) provides the dynamic
// backstop for anything the lexical pass cannot see.
//
//   class Counter {
//     void bump() { std::lock_guard<std::mutex> lk(mu_); ++n_; }
//     void bump_locked() SPIDER_REQUIRES(mu_) { ++n_; }  // caller holds mu_
//     std::mutex mu_;
//     int n_ SPIDER_GUARDED_BY(mu_) = 0;
//   };
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SPIDER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPIDER_THREAD_ANNOTATION(x)  // no-op on gcc/msvc
#endif

/// Member data that may only be read or written while holding `m`.
#define SPIDER_GUARDED_BY(m) SPIDER_THREAD_ANNOTATION(guarded_by(m))

/// Function that must be called with the listed mutexes already held.
#define SPIDER_REQUIRES(...) \
  SPIDER_THREAD_ANNOTATION(exclusive_locks_required(__VA_ARGS__))

/// Function that must NOT be called with the listed mutexes held
/// (it acquires them itself).
#define SPIDER_EXCLUDES(...) \
  SPIDER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Member data owned by one simulation shard (sim/sharded_sim.hpp): it may
/// only be touched by the owning shard's own events or by the single-
/// threaded barrier code between epochs. `owner` is a human-readable owner
/// expression ("shard", "shard(from)", "barrier") — documentation, not code.
///
/// No compiler lowering exists for shard ownership, so the macro expands to
/// nothing everywhere; it is a lexical marker for spiderlint rules L9
/// (shard-escape) and L12 (pool-capture-discipline), which forbid closures
/// scheduled onto a shard — or handed to the thread pool — from capturing
/// annotated members by reference.
#define SPIDER_SHARD_OWNED(owner)  // lexical marker (spiderlint L9/L12)

/// Function that exists only so fsck/fault tooling can rewrite state that is
/// otherwise immutable (the `fsck_set_*` family, `OpLog::truncate_to`,
/// `OpLog::records_mutable`). Placed after the parameter list, like
/// SPIDER_REQUIRES. spiderlint rule L13 walks the whole-program call graph
/// and reports any path that reaches an annotated function (or one matching
/// the repair vocabulary) from outside `tools/spiderfsck/`,
/// `tools/faultcli/`, `tests/`, or `bench/`.
///
/// No compiler lowering exists; the macro expands to nothing everywhere.
#define SPIDER_REPAIR_ONLY  // lexical marker (spiderlint L13)

/// Declares that a mutating `fs/` member function is *intentionally* not
/// journaled — the `why` string names who owns the op journal instead (the
/// campaign layer, the journal itself, telemetry-only state...). spiderlint
/// rule L14 requires every state-mutating member of a crash-consistency-
/// critical class (one that exposes repair mutators) to either append to an
/// OpLog earlier in the same body or carry this annotation. Placed after the
/// parameter list, like SPIDER_REQUIRES.
///
/// No compiler lowering exists; the macro expands to nothing everywhere.
#define SPIDER_JOURNALED(why)  // lexical marker (spiderlint L14)
