# Empty dependencies file for bench_a9_scale_testing.
# This may be replaced when dependencies are built.
