# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/flow_network_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/infra_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_congestion_dne_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/thinfs_test[1]_include.cmake")
include("/root/repo/build/tests/core_extra_test[1]_include.cmake")
include("/root/repo/build/tests/rfp_release_test[1]_include.cmake")
include("/root/repo/build/tests/standard_checks_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/production_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_property_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_extras_test[1]_include.cmake")
