// Move-only small-buffer-optimized callable for the event hot path.
//
// std::function<void()> costs the discrete-event core twice: libstdc++ only
// stores captures up to 16 bytes inline (and only when trivially copyable),
// so the flow-network and campaign callbacks — an object pointer plus a
// couple of ids — heap-allocate on every schedule; and its copyability
// forces capture-by-value closures to stay copyable. sim::Task fixes both:
// 48 bytes of inline storage (comfortably above every hot-path capture in
// this repo), move-only semantics, and a three-entry vtable (invoke /
// relocate / destroy) so the whole object moves with two pointer-size loads.
//
// Contract (see docs/performance.md#sbo-task-contract):
//   * a callable is stored inline iff sizeof(F) <= kInlineBytes,
//     alignof(F) <= alignof(std::max_align_t), and F is nothrow move
//     constructible — anything else falls back to one heap allocation;
//   * Task is move-only; moving transfers the callable and empties the
//     source; invoking an empty Task is undefined (assert in debug);
//   * relocation of inline callables uses F's move constructor, so inline
//     eligibility requires it to be noexcept (the queue's heap operations
//     must not throw mid-swap).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace spider::sim {

class Task {
 public:
  /// Inline capture budget in bytes. Sized so an object pointer plus a few
  /// 64-bit ids (the typical scheduling capture) never allocates, with room
  /// to spare for a std::function being wrapped during migration.
  static constexpr std::size_t kInlineBytes = 48;

  /// True when a callable of type F is stored in the inline buffer rather
  /// than on the heap. Exposed so tests can pin the SBO contract.
  template <typename F>
  static constexpr bool stores_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  Task() noexcept = default;
  Task(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() {
    assert(vtable_ != nullptr && "invoking an empty Task");
    vtable_->invoke(storage_);
  }

  /// Destroy the stored callable (no-op when empty).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-construct the callable into dst from src, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); }};

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* dst, void* src) noexcept {
        // The stored representation is a plain pointer; relocation copies it
        // (ownership moves with the Task holding the vtable).
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); }};

  void move_from(Task& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace spider::sim
