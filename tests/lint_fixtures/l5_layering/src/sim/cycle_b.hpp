// L5 fixture: second half of the include cycle.
#pragma once

#include "sim/cycle_a.hpp"

namespace fixture {
struct CycleB {};
}  // namespace fixture
