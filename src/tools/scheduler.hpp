// I/O-aware scheduling on top of IOSI signatures (Lesson 18).
//
// "IOSI can be used to dynamically detect I/O patterns and aid users and
// administrators to allocate resources in an efficient manner" and "Smart
// I/O-aware tools can be built for load balancing, resource allocation,
// and scheduling." Given the burst signatures IOSI extracted for a set of
// periodic applications, the scheduler picks start-time phase offsets that
// de-overlap their bursts, flattening the aggregate demand the shared file
// system sees.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tools/iosi.hpp"

namespace spider::tools {

struct ScheduleResult {
  /// Chosen phase offset (seconds) per application, parallel to the input.
  std::vector<double> offsets;
  /// Peak aggregate burst bandwidth with everything at phase 0.
  Bandwidth naive_peak_bw = 0.0;
  /// Peak aggregate burst bandwidth with the chosen offsets.
  Bandwidth scheduled_peak_bw = 0.0;
  /// naive/scheduled peak ratio (>1 means the schedule helped).
  double peak_reduction = 1.0;
};

struct SchedulerConfig {
  /// Grid resolution for the load timeline.
  double grid_s = 5.0;
  /// Offsets are searched at this granularity within each app's period.
  double offset_step_s = 30.0;
  /// Horizon over which overlap is evaluated (one hyper-period is ideal;
  /// this is a practical cap).
  double horizon_s = 7200.0;
};

/// Greedy de-overlap: place applications in descending burst-bandwidth
/// order; each takes the offset minimizing the running peak.
ScheduleResult schedule_applications(std::span<const IosiSignature> apps,
                                     const SchedulerConfig& cfg = {});

/// Aggregate burst-bandwidth timeline for a set of (signature, offset)
/// pairs — exposed for tests and for driving DES ablations.
std::vector<double> aggregate_timeline(std::span<const IosiSignature> apps,
                                       std::span<const double> offsets,
                                       const SchedulerConfig& cfg);

}  // namespace spider::tools
