// I/O request vocabulary and the published Spider I workload mix.
//
// Section II, citing the Spider I workload study [14]: the shared file
// system sees ~60% write / 40% read requests; request sizes are bimodal —
// "either small (under 16 KB) or large (multiples of 1 MB)"; inter-arrival
// and idle-time distributions are long-tailed and well modelled as Pareto.
// RequestSizeModel and WorkloadMixParams encode exactly that
// characterization and are the ground truth the generators sample from and
// the characterization bench must recover.
#pragma once

#include <cstdint>
#include <vector>

#include "block/disk.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/time.hpp"

namespace spider::workload {

struct IoRequest {
  sim::SimTime issue_time = 0;
  std::uint32_t client = 0;
  Bytes size = 0;
  block::IoDir dir = block::IoDir::kWrite;
  block::IoMode mode = block::IoMode::kSequential;
};

struct WorkloadMixParams {
  /// Fraction of requests that are writes (paper: 60/40).
  double write_fraction = 0.60;
  /// Fraction of requests in the small mode (< 16 KB).
  double small_fraction = 0.45;
  Bytes small_lo = 512;
  Bytes small_hi = 16_KiB;
  /// Large requests are k x 1 MB with k Zipf-distributed in [1, max_mb].
  std::size_t large_max_mb = 16;
  double large_zipf_s = 1.1;
  /// Pareto tail indices for inter-arrival gaps and idle periods.
  double arrival_alpha = 1.35;
  double arrival_scale_s = 1.5e-3;
  double idle_alpha = 1.15;
  double idle_scale_s = 0.4;
  /// Mean requests per busy burst before an idle period.
  double burst_mean_requests = 400.0;
};

/// Samples the bimodal request-size distribution.
class RequestSizeModel {
 public:
  explicit RequestSizeModel(const WorkloadMixParams& mix);

  Bytes sample(Rng& rng) const;
  const WorkloadMixParams& mix() const { return mix_; }

 private:
  WorkloadMixParams mix_;
};

/// Direction sampler honoring the write fraction.
block::IoDir sample_dir(const WorkloadMixParams& mix, Rng& rng);

}  // namespace spider::workload
