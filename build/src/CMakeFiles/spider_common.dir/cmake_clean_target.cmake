file(REMOVE_RECURSE
  "libspider_common.a"
)
