// Golden-trace regression for the fault path.
//
// Two traces are pinned under fixed seeds:
//   1. bench_c13_incident_replay's computation — replay_incident_2010 under
//      Rng(2014) for the 5- and 10-enclosure designs — with its final
//      telemetry folded into one FNV-1a hash.
//   2. A fault-campaign run (storm plan, seed 2014) — its site-free stream
//      hash and final telemetry.
//
// These values change ONLY when fault-path behavior changes. A refactor that
// trips this test must update the goldens deliberately (and say why in the
// commit); see docs/fault-injection.md#golden-traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "block/failure.hpp"
#include "common/rng.hpp"
#include "sim/faultplan.hpp"
#include "tools/faultcli/campaign.hpp"

namespace {

using namespace spider;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv(std::uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t outcome_hash(const block::IncidentOutcome& outcome) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv(h, outcome.enclosures);
  h = fnv(h, outcome.data_lost ? 1 : 0);
  h = fnv(h, outcome.groups_lost);
  h = fnv(h, outcome.journal_files_lost);
  h = fnv(h, static_cast<std::uint64_t>(outcome.recovered_fraction * 1e6));
  h = fnv(h, static_cast<std::uint64_t>(outcome.recovery_days * 1e6));
  for (const std::string& line : outcome.timeline) h = fnv(h, line);
  return h;
}

block::IncidentOutcome replay(std::size_t enclosures) {
  Rng rng(2014);
  block::IncidentConfig cfg;
  cfg.enclosures = enclosures;
  return replay_incident_2010(cfg, rng);
}

TEST(IncidentGolden, FiveEnclosureDesignTelemetryIsPinned) {
  const block::IncidentOutcome outcome = replay(5);
  EXPECT_TRUE(outcome.data_lost);
  EXPECT_EQ(outcome.groups_lost, 1u);
  EXPECT_EQ(outcome.journal_files_lost, 1'200'000u);
  EXPECT_DOUBLE_EQ(outcome.recovered_fraction, 0.95);
  EXPECT_EQ(outcome_hash(outcome), 0xcf4671747726fd31ull)
      << "actual: 0x" << std::hex << outcome_hash(outcome);
}

TEST(IncidentGolden, TenEnclosureDesignTelemetryIsPinned) {
  const block::IncidentOutcome outcome = replay(10);
  EXPECT_FALSE(outcome.data_lost);
  EXPECT_EQ(outcome.groups_lost, 0u);
  EXPECT_EQ(outcome.journal_files_lost, 0u);
  EXPECT_EQ(outcome_hash(outcome), 0xf919a8f805da0a6cull)
      << "actual: 0x" << std::hex << outcome_hash(outcome);
}

TEST(IncidentGolden, IncidentReplayIsSeedDeterministic) {
  EXPECT_EQ(outcome_hash(replay(5)), outcome_hash(replay(5)));
  EXPECT_EQ(outcome_hash(replay(10)), outcome_hash(replay(10)));
}

sim::FaultPlan golden_storm_plan() {
  return sim::parse_fault_plan(R"(
name = "golden-storm"
horizon_s = 120
[[inject]]
kind = "disk-fail"
at_s = 20
group = 1
member = 2
[[inject]]
kind = "enclosure-loss"
trigger = "rebuild-active"
at_s = 20
duration_s = 40
enclosure = 7
[[inject]]
kind = "congestion-spike"
at_s = 80
duration_s = 20
magnitude = 8
)");
}

TEST(IncidentGolden, CampaignStreamHashIsPinned) {
  const sim::FaultPlan plan = golden_storm_plan();
  const tools::RunVerdict verdict = tools::run_campaign(plan, 2014);
  EXPECT_TRUE(verdict.clean()) << tools::verdict_json(verdict);
  // The site-free stream hash pins event (time, id) order; telemetry pins
  // the workload outcome. Both are independent of source line numbers.
  EXPECT_EQ(verdict.stream_hash, 0x0710faa19bdba7aaull)
      << "actual: 0x" << std::hex << verdict.stream_hash << "\n"
      << tools::verdict_json(verdict);
  EXPECT_EQ(verdict.events, 273u) << tools::verdict_json(verdict);
  EXPECT_EQ(verdict.files_created, 60u) << tools::verdict_json(verdict);
  EXPECT_EQ(verdict.injections_fired, 3u);
  EXPECT_EQ(verdict.reverts_fired, 2u);
}

TEST(IncidentGolden, CorruptRepairTraceIsPinned) {
  // Golden corrupt -> repair trace (docs/fsck.md): the storm campaign's
  // final state is damaged by a fixed seeded corruption set, then repaired
  // by spiderfsck. The findings hash pins what the detectors see; the state
  // hash pins what the repairers leave behind. Like the stream-hash pins
  // above, these change ONLY when fsck behavior changes — update them
  // deliberately and say why in the commit.
  tools::FaultCampaign campaign(golden_storm_plan(), 2014);
  const tools::RunVerdict verdict = campaign.run();
  ASSERT_TRUE(verdict.clean()) << tools::verdict_json(verdict);
  // The fsck stage runs outside the simulation: the pinned stream hash must
  // be untouched by journaling the campaign's creates and purge-unlinks.
  ASSERT_EQ(verdict.stream_hash, 0x0710faa19bdba7aaull);

  Rng rng(2014);
  for (const tools::FindingKind kind :
       {tools::FindingKind::kBadRecordId, tools::FindingKind::kDanglingStripe,
        tools::FindingKind::kJournalMissingCreate,
        tools::FindingKind::kLiveCountDrift,
        tools::FindingKind::kOrphanObjects}) {
    ASSERT_FALSE(
        tools::inject_corruption(campaign.fsck_target(), kind, rng).empty());
  }

  const tools::FaultCampaign::FsckOutcome out = campaign.fsck_and_reverify();
  EXPECT_TRUE(out.post_clean()) << tools::fsck_report_json(out.report);
  // Six findings from five injections: the dangling-stripe repair reclaims
  // the pruned ref's bytes as an orphan-objects finding on the victim OST.
  EXPECT_EQ(out.report.repairs_applied, 6u)
      << tools::fsck_report_json(out.report);
  EXPECT_EQ(out.report.findings_hash, 0xeb00dba43860647full)
      << "actual: 0x" << std::hex << out.report.findings_hash << "\n"
      << tools::fsck_report_json(out.report);
  EXPECT_EQ(out.report.state_hash, 0xf54f6b019c57f2ffull)
      << "actual: 0x" << std::hex << out.report.state_hash;
  EXPECT_EQ(tools::fsck_state_hash(campaign.fsck_target()),
            out.report.state_hash);
}

TEST(IncidentGolden, ShardedCampaignReproducesSerialGolden) {
  // The sharded engine's acceptance bar: the same campaign hosted on a
  // ShardedSimulator must reproduce the pinned serial goldens — verdict JSON
  // included — at every shard count. The epoch barriers are invisible in the
  // replay stream.
  const sim::FaultPlan plan = golden_storm_plan();
  const std::string serial_json =
      tools::verdict_json(tools::run_campaign(plan, 2014));
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const tools::RunVerdict verdict =
        tools::run_campaign_sharded(plan, 2014, {}, shards, /*workers=*/1);
    EXPECT_EQ(verdict.stream_hash, 0x0710faa19bdba7aaull)
        << "shards=" << shards << " actual: 0x" << std::hex
        << verdict.stream_hash;
    EXPECT_EQ(verdict.events, 273u) << "shards=" << shards;
    EXPECT_EQ(tools::verdict_json(verdict), serial_json)
        << "shards=" << shards;
  }
  // And with the epoch fan-out actually enabled (workers = auto).
  const tools::RunVerdict fanned =
      tools::run_campaign_sharded(plan, 2014, {}, 4, 0);
  EXPECT_EQ(tools::verdict_json(fanned), serial_json);
}

}  // namespace
