// Simulated time: signed 64-bit nanoseconds.
//
// Nanosecond resolution covers sub-microsecond network hops while still
// representing ~292 years, enough for multi-month purge-policy simulations.
#pragma once

#include <cstdint>

namespace spider::sim {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;

/// Convert (possibly fractional) seconds to SimTime.
inline constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Convert SimTime to fractional seconds.
// spiderlint: units-ok — this IS the unit boundary: SimTime -> raw seconds
inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Convert SimTime to fractional hours.
inline constexpr double to_hours(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kHour);
}

/// Convert SimTime to fractional days.
inline constexpr double to_days(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kDay);
}

}  // namespace spider::sim
