// Configuration and change management (BCFG2 class; Lessons 6-7).
//
// "The process is integrated with the center's change and configuration
// management system, BCFG2, so that the effects of specific changes are
// easily determined... OLCF modifications to BCFG2 support diskless
// clients allowing for fast convergence to a node's configuration."
//
// Lesson 6's centralization argument is made measurable here: one shared
// spec serving every fleet (centralized) vs per-fleet spec copies that
// drift apart (the pre-2010 separate-instance structure). The model
// supports declarative specs, drift auditing, convergence, and staged
// (canary) rollouts with rollback — the "repeatable, reliable processes"
// of Lesson 7.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace spider::infra {

/// Declarative desired state: key -> value (file contents, package
/// versions, service states — all reduced to entries).
class ConfigSpec {
 public:
  ConfigSpec() = default;

  void set(const std::string& key, const std::string& value);
  const std::string* get(const std::string& key) const;
  std::size_t entries() const { return entries_.size(); }
  std::uint32_t version() const { return version_; }
  const std::map<std::string, std::string>& all() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
  std::uint32_t version_ = 0;
};

/// A node's actual configuration state.
class ManagedNode {
 public:
  explicit ManagedNode(std::uint32_t id) : id_(id) {}

  std::uint32_t id() const { return id_; }

  /// Entries differing from (or missing vs) the spec.
  std::size_t drift_against(const ConfigSpec& spec) const;
  /// Converge to the spec; returns entries changed.
  std::size_t apply(const ConfigSpec& spec);
  /// Out-of-band local change (the thing audits exist to catch).
  void mutate(const std::string& key, const std::string& value);

 private:
  std::uint32_t id_;
  std::map<std::string, std::string> state_;
};

struct DriftReport {
  std::size_t nodes_audited = 0;
  std::size_t drifted_nodes = 0;
  std::size_t drifted_entries = 0;
};

struct RolloutResult {
  bool success = false;
  bool rolled_back = false;
  std::size_t canary_nodes = 0;
  std::size_t converged_nodes = 0;
};

/// One fleet (e.g. "spider-oss", "spider-routers") under one spec.
class ConfigManager {
 public:
  explicit ConfigManager(std::string fleet_name, std::size_t nodes);

  const std::string& fleet() const { return fleet_name_; }
  std::size_t nodes() const { return nodes_.size(); }
  ConfigSpec& spec() { return spec_; }
  const ConfigSpec& spec() const { return spec_; }
  ManagedNode& node(std::size_t i) { return nodes_.at(i); }

  DriftReport audit() const;
  /// Converge every node to the spec; returns total entries changed.
  std::size_t converge();

  /// Staged rollout of `next`: apply to a canary fraction first and
  /// validate (each canary fails with `failure_prob`); on any canary
  /// failure the change is rolled back fleet-wide. On success the
  /// remainder converges. This is the change-management discipline that
  /// keeps effects of specific changes "easily determined".
  RolloutResult staged_rollout(const ConfigSpec& next, double canary_fraction,
                               double failure_prob, Rng& rng);

 private:
  std::string fleet_name_;
  ConfigSpec spec_;
  std::vector<ManagedNode> nodes_;
};

// --- Lesson 6: centralized vs separate infrastructure -----------------------

struct CentralizationComparison {
  /// Specs maintained (1 centralized vs one per fleet).
  std::size_t specs_centralized = 0;
  std::size_t specs_separate = 0;
  /// Entries that differ between fleets' specs after independent edits —
  /// the inconsistencies Lesson 6 wants eliminated.
  std::size_t inconsistent_entries = 0;
  /// Annual admin effort, in spec-edit units.
  double edits_centralized = 0.0;
  double edits_separate = 0.0;
};

/// Simulate `edits_per_year` config changes maintained either once
/// (centralized) or per fleet with probability `miss_prob` of a fleet being
/// forgotten on each change.
CentralizationComparison compare_centralization(std::size_t fleets,
                                                std::size_t edits_per_year,
                                                double miss_prob, Rng& rng);

}  // namespace spider::infra
