#include "fs/recovery.hpp"

#include <algorithm>
#include <map>

namespace spider::fs {

FailoverOutcome simulate_oss_failover(const RecoveryParams& params) {
  FailoverOutcome out;

  // Detection: how long until clients know the OSS moved.
  if (params.asymmetric_router_notification) {
    // Routers see the dead path and broadcast; no RPC timeout.
    out.detection_s = params.notification_s;
  } else if (params.imperative_recovery) {
    // The failover server boots its targets and pings clients; still pays
    // the failover partner's takeover delay, not the full RPC timeout.
    out.detection_s = params.notification_s + 0.1 * params.rpc_timeout_s;
  } else {
    // Classic: mean RPC timeout plus detection spread.
    out.detection_s = params.rpc_timeout_s + 0.5 * params.detection_spread_s;
  }

  // Reconnect storm: all clients stream reconnect RPCs into one server.
  out.reconnect_s =
      static_cast<double>(params.clients) / params.reconnect_rate;

  // Straggler gating: classic recovery keeps the window open until the
  // last known client returns or the window expires. Imperative recovery
  // evicts non-responding clients quickly instead of waiting.
  if (params.imperative_recovery) {
    out.straggler_wait_s = std::min(10.0, params.recovery_window_s);
  } else if (params.straggler_fraction > 0.0) {
    out.straggler_wait_s = params.recovery_window_s;
  }

  out.total_outage_s = out.detection_s + out.reconnect_s + out.straggler_wait_s;
  return out;
}

// --- journal-cursor replay --------------------------------------------------

OpLogSummary replay_op_log(const OpLog& log) {
  OpLogSummary out;
  // File ids are unique for a file's lifetime (slot reuse bumps the
  // generation), so each id sees at most one create and one unlink; an
  // id-ordered map keeps the replayed live set deterministic.
  std::map<std::uint64_t, Bytes> live;
  for (const OpRecord& rec : log.records()) {
    switch (rec.kind) {
      case OpKind::kCreate:
        ++out.creates;
        live.emplace(rec.file, rec.size);
        break;
      case OpKind::kUnlink:
        ++out.unlinks;
        live.erase(rec.file);
        break;
      case OpKind::kSetattr:
        ++out.setattrs;  // touch: no live-set or size effect
        break;
      case OpKind::kResize: {
        ++out.resizes;
        const auto it = live.find(rec.file);
        if (it != live.end()) it->second = rec.size;
        break;
      }
      case OpKind::kSetProject:
        ++out.setprojects;  // ownership move: live set and sizes unchanged
        break;
    }
  }
  out.live.reserve(live.size());
  for (const auto& [file, size] : live) {
    out.live.push_back(file);
    out.live_bytes += size;
  }
  out.last_txid = log.last_txid();
  return out;
}

JournalReplayOutcome replay_from_cursor(const OpLog& log,
                                        std::uint64_t cursor) {
  JournalReplayOutcome out;
  if (cursor > log.last_txid()) {
    // The records this cursor consumed no longer exist (crash-truncated
    // tail). Clamp back rather than carry a position a future append will
    // silently reuse.
    out.cursor_ahead = true;
    out.new_cursor = log.last_txid();
    return out;
  }
  std::uint64_t expect = cursor + 1;
  for (const OpRecord& rec : log.records()) {
    if (rec.txid <= cursor) continue;
    if (rec.txid != expect && !out.gap) {
      out.gap = true;
      out.first_gap_txid = expect;
    }
    expect = rec.txid + 1;
    ++out.replayed;
  }
  if (expect <= log.last_txid() && !out.gap) {
    out.gap = true;
    out.first_gap_txid = expect;
  }
  out.new_cursor = log.last_txid();
  return out;
}

}  // namespace spider::fs
