#include <gtest/gtest.h>

#include "block/failure.hpp"
#include "common/rng.hpp"

namespace spider::block {
namespace {

TEST(Incident2010, FiveEnclosureDesignLosesData) {
  Rng rng(1);
  IncidentConfig cfg;
  cfg.enclosures = 5;
  const auto out = replay_incident_2010(cfg, rng);
  EXPECT_TRUE(out.data_lost);
  EXPECT_GE(out.groups_lost, 1u);
  EXPECT_EQ(out.journal_files_lost, cfg.journal_files);
  EXPECT_NEAR(out.recovered_fraction, 0.95, 1e-9);
  EXPECT_GT(out.recovery_days, 14.0);
  EXPECT_GE(out.timeline.size(), 4u);
}

TEST(Incident2010, TenEnclosureDesignTolerates) {
  Rng rng(1);
  IncidentConfig cfg;
  cfg.enclosures = 10;
  const auto out = replay_incident_2010(cfg, rng);
  EXPECT_FALSE(out.data_lost);
  EXPECT_EQ(out.groups_lost, 0u);
  EXPECT_DOUBLE_EQ(out.recovered_fraction, 1.0);
}

TEST(Incident2010, DeterministicAcrossSeedsForConclusion) {
  // The conclusion (loss vs no loss) is a geometry property, not luck.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    IncidentConfig five;
    five.enclosures = 5;
    EXPECT_TRUE(replay_incident_2010(five, rng).data_lost) << seed;
    Rng rng2(seed);
    IncidentConfig ten;
    ten.enclosures = 10;
    EXPECT_FALSE(replay_incident_2010(ten, rng2).data_lost) << seed;
  }
}

TEST(RandomFailures, PromptRebuildsPreventLoss) {
  Rng rng(2);
  SsuParams params;
  params.raid_groups = 8;  // keep the sweep fast
  Ssu ssu(params, 0, rng);
  // 3% AFR over half a year of operation.
  const auto stats = inject_random_failures(ssu, 0.5, 0.03, rng);
  EXPECT_GT(stats.disk_failures, 0u);
  EXPECT_EQ(stats.groups_lost, 0u);
}

TEST(RandomFailures, AbsurdFailureRateEventuallyLosesGroups) {
  Rng rng(3);
  SsuParams params;
  params.raid_groups = 4;
  params.raid.rebuild_rate = 0.5 * kMBps;  // pathologically slow rebuild
  Ssu ssu(params, 0, rng);
  const auto stats = inject_random_failures(ssu, 1.0, 40.0, rng);
  EXPECT_GT(stats.double_failures, 0u);
  EXPECT_GT(stats.groups_lost, 0u);
}

}  // namespace
}  // namespace spider::block
