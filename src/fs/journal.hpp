// Lustre journaling model.
//
// Section IV-D: OLCF direct-funded "high-performance Lustre journaling"
// because stock ldiskfs journal commits serialized small synchronous writes
// on the data spindles and cost double-digit write bandwidth. The model
// expresses journaling as a write-efficiency factor plus a commit latency,
// with three modes: synchronous on-data-disk journal (worst), asynchronous
// commit (stock tuning), and the OLCF hardware/async journaling work (best).
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/units.hpp"

namespace spider::fs {

enum class JournalMode {
  /// Journal on the data disks, synchronous transactions.
  kSyncOnData,
  /// Asynchronous journal commit (batched transactions).
  kAsync,
  /// OLCF-funded high-performance journaling (dedicated device + async).
  kHighPerformance,
};

struct JournalModel {
  JournalMode mode = JournalMode::kHighPerformance;

  /// Multiplier on OST write bandwidth from journal traffic.
  double write_efficiency() const;
  /// Added latency per write RPC batch, seconds.
  double commit_latency_s() const;
};

// --- metadata op journal ----------------------------------------------------
//
// The redo log spiderfsck (tools/spiderfsck) cross-references against the
// namespace: every create/unlink lands here with a monotone transaction id,
// and a committed cursor marks the durable prefix. Consumers rebuild
// namespace-level counters by replaying the log (fs/recovery.hpp,
// replay_op_log) instead of rescanning the namespace — the Robinhood-style
// changelog direction from ROADMAP item 2, grown here just far enough to
// close the inject -> detect -> fsck -> re-verify loop.

enum class OpKind : std::uint8_t {
  kCreate,
  kUnlink,
};

/// One journaled metadata operation. `file` is the fs::FileId value (kept as
/// a raw integer here so the journal stays below fs_namespace.hpp in the
/// include graph).
struct OpRecord {
  std::uint64_t txid = 0;  ///< monotone from 1; gaps mean lost records
  OpKind kind = OpKind::kCreate;
  std::uint64_t file = 0;
  std::uint32_t project = 0;
  Bytes size = 0;
  std::int64_t at = 0;  ///< sim::SimTime value of the operation
};

/// Append-only op journal with a committed cursor. Records are held in txid
/// order; truncate_to models a crash that loses the uncommitted tail, and
/// records_mutable lets seeded-corruption tests drop interior records (the
/// breaches spiderfsck must detect).
class OpLog {
 public:
  /// Append one record; returns its txid.
  std::uint64_t append(OpKind kind, std::uint64_t file, std::uint32_t project,
                       Bytes size, std::int64_t at)
      SPIDER_JOURNALED("this IS the journal append: OpLog is the durability "
                       "point itself, not a consumer of one");

  const std::vector<OpRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::uint64_t last_txid() const { return next_txid_ - 1; }

  /// Durable prefix: records with txid <= committed() survived the crash.
  std::uint64_t committed() const { return committed_; }
  /// Advance the cursor (clamped to last_txid; never moves backwards).
  void commit(std::uint64_t txid)
      SPIDER_JOURNALED("cursor advance over records already appended; the "
                       "append itself was the journaled mutation");

  /// Crash-lose every record with txid > `txid`; the cursor clamps and the
  /// next append reuses txid + 1 (the tail genuinely never happened).
  void truncate_to(std::uint64_t txid);

  /// Corruption surface for fsck tests: direct record access. Dropping an
  /// interior record leaves a txid gap the checker must notice via the
  /// namespace cross-reference.
  std::vector<OpRecord>& records_mutable() { return records_; }

 private:
  std::vector<OpRecord> records_;
  std::uint64_t next_txid_ = 1;
  std::uint64_t committed_ = 0;
};

}  // namespace spider::fs
