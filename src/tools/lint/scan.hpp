// spiderlint source scanner: a lightweight, line-oriented C++ lexer.
//
// spiderlint deliberately avoids libclang: the rules it enforces (see
// rules.hpp) are lexical properties — "this token appears on this line in
// this directory" — so a comment/string-aware line scanner is sufficient,
// builds in milliseconds, and has no dependency the CI image must carry.
//
// The scanner splits each physical line into:
//   - `code`: the line with comment bodies and string/char-literal contents
//     blanked out (replaced by spaces, preserving column positions), so
//     rules never fire on prose or on tokens quoted inside literals;
//   - `comment`: the concatenated comment text of the line, where
//     suppression directives (`spiderlint: <token>`) live.
//
// Handled lexical forms: `//` and `/* */` (including multi-line), string
// and character literals with escapes, and raw strings `R"delim(...)delim"`.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace spider::lint {

/// One physical source line after lexical classification.
struct Line {
  std::string raw;      ///< original text (no trailing newline)
  std::string code;     ///< literals/comments blanked; columns preserved
  std::string comment;  ///< concatenated comment text on this line
};

/// A scanned source file.
struct SourceFile {
  std::string path;
  std::vector<Line> lines;
};

/// Lex `contents` into classified lines. Never fails: unterminated
/// constructs are treated as extending to end-of-file.
SourceFile scan_source(std::string path, std::string_view contents);

/// True when the line's first non-space code character is `#`.
bool is_preprocessor(const Line& line);

/// True when line `index` (0-based) carries the suppression `token`
/// (e.g. "ordered-ok"). Four scopes, from narrowest to widest:
///   flagged_code();             // spiderlint: ordered-ok — reason
///   // spiderlint: ordered-ok — reason        (comment-only line above)
///   // spiderlint-next-line: ordered-ok — reason   (any line above)
///   // spiderlint-file: ordered-ok — reason   (anywhere: whole file)
bool has_suppression(const SourceFile& file, std::size_t index,
                     std::string_view token);

/// True when `text[pos, pos+len)` is a whole identifier-like token: the
/// characters on both sides are not `[A-Za-z0-9_]`.
bool is_word_at(std::string_view text, std::size_t pos, std::size_t len);

/// Find the next whole-word occurrence of `word` in `text` at or after
/// `from`; npos when absent.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from = 0);

}  // namespace spider::lint
