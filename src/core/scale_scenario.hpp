// Center-scale macro scenario on the sharded engine.
//
// ROADMAP item 1's scaling study: drive a Spider II-shaped population of
// clients against SSU-aligned failure/routing zones at 1x/4x/16x scale, with
// the event space partitioned across a ShardedSimulator. Each zone is one
// domain in the ShardMap — its clients issue requests, its OSTs serve them,
// and a fraction of completions trigger FGR-style cross-zone transfers,
// which travel through schedule_cross mailboxes with the fabric's real
// latency floor (net/lookahead.hpp) so the epoch contract holds by
// construction.
//
// Every random draw comes from the owning zone's private Rng, every local
// event lands in the owning zone's shard, and cross-zone messages capture
// their service draw at the sender — so the merged replay stream depends
// only on (params, seed, shard assignment), never on worker count or
// (empty-)shard count. bench_macro_scale measures events/sec on exactly
// this scenario; tests/scale_scenario_test.cpp pins the determinism claims.
#pragma once

#include <cstdint>
#include <source_location>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/spider_config.hpp"
#include "net/fabric.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/time.hpp"

namespace spider::core {

struct ScaleParams {
  /// Failure/routing domains; one per SSU for Spider II (36).
  std::size_t zones = 36;
  /// Clients issuing I/O per zone at scale 1.0.
  std::size_t clients_per_zone = 16;
  /// Center scale multiplier (1x/4x/16x Spider II) — multiplies the client
  /// population per zone.
  double scale = 1.0;
  /// Mean client think time between requests (jittered ±50%).
  sim::SimTime think = 20 * sim::kMillisecond;
  /// Mean service time of one request on the zone's OSTs (jittered ±50%).
  sim::SimTime service = 2 * sim::kMillisecond;
  /// Bytes moved per local request.
  Bytes request_bytes = 1_MiB;
  /// Every remote_every-th completion in a zone notifies a peer zone — an
  /// FGR cross-zone transfer. 0 disables cross traffic.
  std::size_t remote_every = 8;
  /// Minimum payload of a cross-zone transfer; its wire time is what makes
  /// the engine lookahead (and so the epochs) usefully wide.
  Bytes notify_bytes = 16_MiB;
  std::uint64_t seed = 2014;
};

/// Scenario-wide counters, aggregated over zones.
struct ScaleTotals {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t remote_sent = 0;
  std::uint64_t remote_served = 0;
  ByteVolume bytes_moved = 0.0;
};

class ScaleScenario {
 public:
  /// `map` assigns zone -> shard and must cover params.zones domains within
  /// engine.shards(). The engine's lookahead must not exceed
  /// required_lookahead(fabric, params) or start() refuses.
  ScaleScenario(const ScaleParams& params, const net::IbFabric& fabric,
                sim::ShardedSimulator& engine, const sim::ShardMap& map);

  /// Seed every client's first issue event. Call once, before engine.run().
  void start();

  ScaleTotals totals() const;
  /// Latency carried by each cross-zone notify (the fabric floor plus the
  /// notify payload's wire time) — the upper bound for engine lookahead.
  sim::SimTime cross_latency() const { return cross_latency_; }
  std::size_t clients_per_zone() const;

  /// The widest causally safe lookahead for this scenario's cross traffic.
  static sim::SimTime required_lookahead(const net::IbFabric& fabric,
                                         const ScaleParams& params);
  /// Derive zone/client shape from a center config: one zone per SSU, the
  /// client population split evenly, scaled by `scale`.
  static ScaleParams from_center(const CenterConfig& cfg, double scale);

 private:
  struct Zone {
    Rng rng;
    ScaleTotals totals;
  };

  sim::Simulator& zone_sim(std::size_t z);
  /// Jittered duration in [mean/2, 3*mean/2), drawn from `rng`.
  static sim::SimTime jittered(Rng& rng, sim::SimTime mean);
  void client_issue(std::size_t z, std::source_location loc);
  void client_complete(std::size_t z, std::source_location loc);
  void remote_serve(std::size_t z, sim::SimTime service_time,
                    std::source_location loc);

  ScaleParams params_;
  sim::ShardedSimulator& engine_;
  sim::ShardMap map_;
  sim::SimTime cross_latency_ = 0;
  std::vector<Zone> zones_;
};

}  // namespace spider::core
