#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

namespace spider {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  pinned_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    ++submitted_;
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::submit_to(std::size_t worker, std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (worker >= pinned_.size()) {
      throw std::out_of_range("submit_to: worker index out of range");
    }
    ++submitted_;
    pinned_[worker].push(std::move(task));
  }
  // notify_all: notify_one could wake a worker other than the pinned target,
  // which would go back to sleep and strand the task.
  cv_task_.notify_all();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    // submitted_ == finished_ implies the queue is empty AND nothing is
    // mid-flight: a running task that submits follow-up work increments
    // submitted_ before it retires (finished_ lags), so the predicate stays
    // false across the handoff. The old `queue empty && nothing running`
    // predicate could momentarily hold between a task draining the queue
    // and its follow-up submission landing.
    cv_idle_.wait(lock, [this] { return submitted_ == finished_; });
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

std::vector<std::thread::id> ThreadPool::worker_ids() const {
  std::vector<std::thread::id> ids;
  ids.reserve(workers_.size());
  for (const auto& w : workers_) ids.push_back(w.get_id());
  return ids;
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this, index] {
        return stop_ || !pinned_[index].empty() || !tasks_.empty();
      });
      // The pinned queue drains first: affinity work (one shard, every
      // epoch) should not queue behind unrelated shared-pool batches.
      if (!pinned_[index].empty()) {
        task = std::move(pinned_[index].front());
        pinned_[index].pop();
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        return;  // stop_ set and nothing left for this worker
      }
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      ++finished_;
      assert(finished_ <= submitted_);  // accounting must balance
      if (err && !first_error_) first_error_ = std::move(err);
      notify_if_idle_locked();
    }
  }
}

void ThreadPool::notify_if_idle_locked() {
  if (submitted_ == finished_) cv_idle_.notify_all();
}

ThreadPool& shared_pool() {
  // Meyers singleton: constructed on first use, joined during static
  // destruction (workers are idle by then — nothing submits after main
  // returns), and LSan-clean under the ASan gate.
  //
  // Sized to hardware_concurrency() - 1 (minimum one worker): parallel_for's
  // calling thread participates in its own batch, so a pool of
  // hardware_concurrency workers would oversubscribe the machine by one
  // thread on every batch. Workers + caller now fill the machine exactly.
  const unsigned hw = std::thread::hardware_concurrency();
  static ThreadPool pool(hw > 1 ? hw - 1 : 1);
  return pool;
}

namespace {

/// Shared state of one parallel_for batch. Helpers submitted to the shared
/// pool hold the state via shared_ptr so a helper scheduled late (after the
/// caller already finished the index space and returned) still has valid
/// state to decrement.
struct BatchState {
  const std::function<void(std::size_t)>* fn = nullptr;  // caller-owned
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done;
  std::size_t helpers_left SPIDER_GUARDED_BY(mu) = 0;
  std::exception_ptr first_error SPIDER_GUARDED_BY(mu);

  /// Claim-and-run indices until the space is exhausted or a failure stops
  /// the batch. `fn` stays valid for every helper: the caller blocks until
  /// helpers_left reaches zero before returning.
  void run_range() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        {
          std::lock_guard lock(mu);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  ThreadPool& pool = shared_pool();
  // threads == 0 is "auto": one lane per pool worker plus the caller — the
  // machine's full width with no oversubscription.
  if (threads == 0) threads = pool.size() + 1;
  // Inline paths: explicit serial request, trivial batch, or a nested call
  // from a pool worker (waiting on helpers from inside the pool could
  // deadlock if every worker did it; inline is deterministic and safe).
  if (threads <= 1 || n == 1 || pool.on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t lanes = std::min({threads, n, pool.size() + 1});
  const std::size_t helpers = lanes - 1;  // the caller is lane 0
  auto state = std::make_shared<BatchState>();
  state->fn = &fn;
  state->n = n;
  {
    std::lock_guard lock(state->mu);
    state->helpers_left = helpers;
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state] {
      state->run_range();
      std::lock_guard lock(state->mu);
      if (--state->helpers_left == 0) state->done.notify_all();
    });
  }

  state->run_range();

  std::exception_ptr err;
  {
    std::unique_lock lock(state->mu);
    state->done.wait(lock, [&] { return state->helpers_left == 0; });
    err = std::exchange(state->first_error, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace spider
