#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "tools/release_testing.hpp"
#include "tools/rfp.hpp"

namespace spider::tools {
namespace {

// --- RFP / SOW evaluation --------------------------------------------------------

Proposal good_block_offer() {
  Proposal p;
  p.vendor = "BlockCo";
  p.model = ResponseModel::kBlockStorage;
  p.ssu_sequential_bw = 28.4 * kGBps;
  p.ssu_random_bw = 8.9 * kGBps;
  p.ssu_capacity = 896_TB;
  p.price_per_ssu = 1.2;
  p.measured_variance = 0.045;
  p.schedule_months = 15.0;
  p.past_performance = 0.85;
  return p;
}

TEST(Rfp, SsuCountDrivenByHardestTarget) {
  const SowTargets sow;
  const auto score = evaluate_proposal(sow, good_block_offer());
  // 1 TB/s / 28.4 GB/s = 36 SSUs; capacity 32 PB / 896 TB = 36; random
  // 240 / 8.9 = 27 — sequential/capacity dominate.
  EXPECT_EQ(score.ssus_needed, 36u);
  EXPECT_TRUE(score.meets_targets);
  EXPECT_TRUE(score.within_budget);
}

TEST(Rfp, RandomTargetCanDominate) {
  SowTargets sow;
  auto p = good_block_offer();
  p.ssu_random_bw = 2.0 * kGBps;  // weak random performance
  const auto score = evaluate_proposal(sow, p);
  EXPECT_EQ(score.ssus_needed, 120u);  // 240 GB/s / 2 GB/s
  EXPECT_FALSE(score.within_budget);
}

TEST(Rfp, VarianceEnvelopeDisqualifies) {
  const SowTargets sow;
  auto p = good_block_offer();
  p.measured_variance = 0.09;
  const auto score = evaluate_proposal(sow, p);
  EXPECT_FALSE(score.meets_targets);
  EXPECT_NE(std::find(score.notes.begin(), score.notes.end(),
                      "variance envelope exceeded"),
            score.notes.end());
}

TEST(Rfp, AppliancePremiumVsBlockIntegrationOverhead) {
  const SowTargets sow;
  auto block = good_block_offer();
  auto appliance = good_block_offer();
  appliance.vendor = "TurnkeyCo";
  appliance.model = ResponseModel::kAppliance;
  const auto bs = evaluate_proposal(sow, block);
  const auto as = evaluate_proposal(sow, appliance);
  // Same hardware; the appliance premium exceeds the buyer's integration
  // overhead, so the block model is cheaper in total (the OLCF outcome).
  EXPECT_DOUBLE_EQ(bs.hardware_cost, as.hardware_cost);
  EXPECT_LT(bs.total_cost, as.total_cost);
}

TEST(Rfp, BestValuePicksQualifiedHighScore) {
  const SowTargets sow;
  auto cheap_but_bad = good_block_offer();
  cheap_but_bad.vendor = "CheapCo";
  cheap_but_bad.price_per_ssu = 0.7;
  cheap_but_bad.measured_variance = 0.12;  // disqualified
  auto solid = good_block_offer();
  auto pricey = good_block_offer();
  pricey.vendor = "GoldCo";
  pricey.price_per_ssu = 1.6;
  const std::vector<Proposal> proposals{cheap_but_bad, solid, pricey};
  std::vector<ProposalScore> scores;
  const std::size_t winner = best_value(proposals, sow, {}, &scores);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(winner, 1u);
  EXPECT_FALSE(scores[0].meets_targets);
  EXPECT_GT(scores[1].total, scores[2].total);
}

TEST(Rfp, NothingQualifiesReturnsSentinel) {
  SowTargets sow;
  sow.budget = 1.0;  // impossible
  const std::vector<Proposal> proposals{good_block_offer()};
  EXPECT_EQ(best_value(proposals, sow), SIZE_MAX);
}

// --- release testing (Lesson 9) ----------------------------------------------------

TEST(ReleaseTesting, NoDetectionBelowThreshold) {
  ScaleDefect defect;
  defect.threshold_clients = 4096;
  EXPECT_DOUBLE_EQ(detection_probability(defect, 512), 0.0);
  EXPECT_GT(detection_probability(defect, 8192), 0.0);
}

TEST(ReleaseTesting, DetectionGrowsWithScale) {
  ScaleDefect defect;
  defect.threshold_clients = 1000;
  EXPECT_LT(detection_probability(defect, 1100),
            detection_probability(defect, 18688));
  EXPECT_LE(detection_probability(defect, 1 << 30), defect.manifest_prob);
}

TEST(ReleaseTesting, FullScaleStageCatchesWhatTestbedCannot) {
  Rng rng(1);
  ReleaseCampaign campaign;
  const auto result = simulate_campaign(400, campaign, rng);
  EXPECT_EQ(result.defects, 400u);
  EXPECT_GT(result.caught_on_testbed, 0u);
  // The paper's point: a meaningful share of defects only manifests at
  // full scale.
  EXPECT_GT(result.caught_at_full_scale, result.defects / 10);
  EXPECT_EQ(result.caught_on_testbed + result.caught_at_full_scale +
                result.escaped_to_production,
            result.defects);
}

TEST(ReleaseTesting, BiggerTestbedCatchesMore) {
  Rng a(2), b(2);
  ReleaseCampaign small;
  small.testbed_clients = 128;
  ReleaseCampaign big;
  big.testbed_clients = 8192;
  const auto rs = simulate_campaign(400, small, a);
  const auto rb = simulate_campaign(400, big, b);
  EXPECT_GT(rb.caught_on_testbed, rs.caught_on_testbed);
}

}  // namespace
}  // namespace spider::tools
