// Workload characterization study: the Spider I server-log analysis that
// shaped Spider II's design (Section II, study [14]).
//
// Generates a production-day request stream from the published parameters,
// runs the characterization pipeline on it — write/read mix, bimodal
// request sizes, Pareto tail indices via the Hill estimator — and exports
// the trace as CSV for external tooling. These are exactly the statistics
// the paper says fed the metadata-server optimization and the 240 GB/s
// random-I/O requirement.
#include <fstream>
#include <iostream>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterize.hpp"
#include "workload/mixed.hpp"
#include "workload/trace_io.hpp"

int main() {
  using namespace spider;
  using namespace spider::workload;

  Rng rng(1404);  // the study year, backwards

  // The published mix: 60/40 write/read; sizes either < 16 KB or k x 1 MB;
  // long-tailed inter-arrival and idle periods.
  const WorkloadMixParams mix;
  std::cout << "generating 10 simulated minutes of center traffic from 128 "
               "client streams...\n";
  const auto trace = generate_trace(mix, 128, 600.0, rng);
  std::cout << trace.size() << " requests ("
            << offered_bandwidth(trace) / 1e9 << " GB/s offered)\n\n";

  const auto stats = characterize(trace);
  std::cout << "characterization (paper values in parentheses):\n"
            << "  write fraction:        " << stats.write_fraction
            << "  (0.60)\n"
            << "  requests < 16 KB:      " << stats.small_fraction
            << "  (small mode)\n"
            << "  requests = k x 1 MB:   " << stats.mb_multiple_fraction
            << "  (large mode)\n"
            << "  inter-arrival alpha:   " << stats.interarrival_tail_alpha
            << "  (Pareto, long tail)\n"
            << "  idle-period alpha:     " << stats.idle_tail_alpha
            << "  (Pareto, long tail)\n\n";

  std::cout << "request-size histogram (log2 bins):\n"
            << stats.size_histogram.to_string() << "\n";

  // The server-side bandwidth timeline (what the DDN tool database holds).
  const auto timeline = bandwidth_timeline(trace, 10.0, 600.0);
  double peak = 0.0, sum = 0.0;
  for (double b : timeline) {
    peak = std::max(peak, b);
    sum += b;
  }
  std::cout << "bandwidth timeline: mean "
            << sum / static_cast<double>(timeline.size()) / 1e9
            << " GB/s, peak " << peak / 1e9
            << " GB/s (bursty, as the study found)\n";

  // Export for external analysis.
  const char* path = "workload_trace.csv";
  std::ofstream out(path);
  write_trace_csv(out, trace);
  std::cout << "\ntrace exported to " << path << " ("
            << trace.size() << " rows)\n";
  return 0;
}
