// Invariant oracles: continuous safety checks over a running simulation.
//
// Fault campaigns (sim/faultplan.hpp) are only useful if something *checks*
// the system while it is being broken. An Oracle states one conservation or
// safety property ("flow throughput never exceeds capacity", "purge never
// deletes a file younger than the policy window"); an OracleSuite registers
// a set of oracles on a Simulator and sweeps them on a fixed cadence — plus
// on demand at injection edges — collecting every violation with the
// simulated time it was observed at. Oracle sweeps are ordinary scheduled
// events, so they sit inside the deterministic-replay stream: a violation
// report is reproducible from the (plan, seed) pair that produced it.
//
// Subsystem-specific oracles (RAID read safety, rebuild monotonicity,
// namespace/journal agreement, purge age) are built by the campaign layer
// (tools/faultcli/campaign.hpp) out of make_oracle(); the flow-network
// conservation oracle lives here because FlowNetwork is a sim-layer type.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::sim {

class FlowNetwork;

/// One observed invariant breach.
struct OracleViolation {
  std::string oracle;  ///< name of the oracle that fired
  SimTime at = 0;      ///< simulated time of the failing sweep
  std::string detail;  ///< human-readable description of the breach
};

/// One invariant. check() appends a violation per breach observed since the
/// previous sweep; stateful oracles (monotonicity, deltas) keep their own
/// last-seen snapshots.
class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string_view name() const = 0;
  virtual void check(SimTime now, std::vector<OracleViolation>& out) = 0;
};

using OracleCheckFn = std::function<void(SimTime, std::vector<OracleViolation>&)>;

/// Wrap a named lambda as an oracle.
std::unique_ptr<Oracle> make_oracle(std::string name, OracleCheckFn check);

/// A set of oracles swept together over one simulation.
class OracleSuite {
 public:
  explicit OracleSuite(Simulator& sim) : sim_(sim) {}

  Oracle& add(std::unique_ptr<Oracle> oracle);
  std::size_t oracles() const { return oracles_.size(); }

  /// Sweep every oracle now (campaign engines call this at injection edges
  /// so capacity changes line up with check windows).
  void check_now();

  /// Sweep every oracle now but return the findings instead of folding them
  /// into the suite's violation log — the post-repair re-verification path
  /// (tools/spiderfsck): the in-run verdict stays what the run observed,
  /// while the caller learns whether the repaired state is invariant-clean.
  /// Stateful oracles advance their cursors exactly as in check_now(), so
  /// the suite remains re-runnable afterwards.
  std::vector<OracleViolation> recheck_now();

  /// Schedule periodic sweeps every `interval` until `until` (inclusive of
  /// a final sweep at the horizon). Uses ordinary simulator events, so the
  /// sweep cadence is part of the replay stream; the caller's location is
  /// threaded through every repeating tick so each sweep chain keeps a
  /// distinct replay site (spiderlint L7).
  void schedule_checks(
      SimTime interval, SimTime until,
      std::source_location loc = std::source_location::current());

  bool clean() const { return violations_.empty(); }
  const std::vector<OracleViolation>& violations() const { return violations_; }
  /// Distinct names of oracles that fired, in first-fired order.
  std::vector<std::string> fired_oracles() const;

 private:
  void tick(SimTime interval, SimTime until, std::source_location loc);

  Simulator& sim_;
  std::vector<std::unique_ptr<Oracle>> oracles_;
  std::vector<OracleViolation> violations_;
};

/// Render violations as a JSON array (stable field order; empty -> "[]").
std::string violations_json(const std::vector<OracleViolation>& violations);

/// Flow-network conservation oracle:
///   - per-resource utilization stays within [0, 1] and finite;
///   - per-resource served work is monotone and never exceeds the cumulative
///     capacity budget ∫capacity·dt accrued across sweeps (cumulative, not
///     per-window, because FlowNetwork integrates progress lazily);
///   - total delivered volume is monotone;
///   - aggregate flow rate never exceeds the sum of resource capacities.
/// Capacity changes between sweeps are only sound if sweeps align with the
/// change (the campaign engine calls check_now() at injection edges).
std::unique_ptr<Oracle> make_flow_conservation_oracle(const FlowNetwork& net);

}  // namespace spider::sim
