// Fixture for spiderlint suppressions: the same constructs that fire in the
// violation fixtures stay quiet when carrying a justified suppression
// comment, either trailing or on the line directly above.
#include <unordered_map>

namespace fixture {

struct LookupOnly {
  // Pure lookup table, never iterated.
  // spiderlint: ordered-ok
  std::unordered_map<int, double> by_id_;

  double get(int id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? 0.0 : it->second;
  }
};

struct Sample {
  double window_seconds = 0.0;  // spiderlint: units-ok — config knob, stays raw
};

}  // namespace fixture
