file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_declustered_rebuild.dir/bench_a1_declustered_rebuild.cpp.o"
  "CMakeFiles/bench_a1_declustered_rebuild.dir/bench_a1_declustered_rebuild.cpp.o.d"
  "bench_a1_declustered_rebuild"
  "bench_a1_declustered_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_declustered_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
