# Empty dependencies file for bench_c17_layer_profile.
# This may be replaced when dependencies are built.
