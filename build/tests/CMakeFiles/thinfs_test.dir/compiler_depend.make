# Empty compiler generated dependencies file for thinfs_test.
# This may be replaced when dependencies are built.
