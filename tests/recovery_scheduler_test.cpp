#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fs/recovery.hpp"
#include "tools/scheduler.hpp"

namespace spider {
namespace {

// --- Lustre failover recovery (Section IV-D) -----------------------------------

TEST(Recovery, ClassicRecoveryGatedByTimeoutAndStragglers) {
  fs::RecoveryParams params;
  const auto out = fs::simulate_oss_failover(params);
  EXPECT_GT(out.detection_s, params.rpc_timeout_s * 0.9);
  EXPECT_NEAR(out.straggler_wait_s, params.recovery_window_s, 1e-9);
  EXPECT_GT(out.total_outage_s, 400.0);  // minutes of outage at Titan scale
}

TEST(Recovery, ImperativeRecoveryCutsDetectionAndWindow) {
  fs::RecoveryParams classic;
  fs::RecoveryParams imperative = classic;
  imperative.imperative_recovery = true;
  const auto a = fs::simulate_oss_failover(classic);
  const auto b = fs::simulate_oss_failover(imperative);
  EXPECT_LT(b.detection_s, 0.2 * a.detection_s);
  EXPECT_LT(b.straggler_wait_s, 0.1 * a.straggler_wait_s);
  EXPECT_LT(b.total_outage_s, 0.3 * a.total_outage_s);
}

TEST(Recovery, RouterNotificationRemovesRpcTimeout) {
  fs::RecoveryParams params;
  params.imperative_recovery = true;
  params.asymmetric_router_notification = true;
  const auto out = fs::simulate_oss_failover(params);
  EXPECT_NEAR(out.detection_s, params.notification_s, 1e-9);
}

TEST(Recovery, ReconnectStormScalesWithClients) {
  fs::RecoveryParams small;
  small.clients = 1000;
  fs::RecoveryParams big;
  big.clients = 18688;
  EXPECT_NEAR(fs::simulate_oss_failover(big).reconnect_s /
                  fs::simulate_oss_failover(small).reconnect_s,
              18.688, 0.01);
}

TEST(Recovery, AllFeaturesOutageIsSeconds) {
  fs::RecoveryParams params;
  params.imperative_recovery = true;
  params.asymmetric_router_notification = true;
  params.reconnect_rate = 5000.0;
  const auto out = fs::simulate_oss_failover(params);
  EXPECT_LT(out.total_outage_s, 30.0);
}

// --- IOSI-driven scheduling (Lesson 18) ------------------------------------------

tools::IosiSignature app(double period_s, double burst_s, double burst_gb) {
  tools::IosiSignature sig;
  sig.found = true;
  sig.period_s = period_s;
  sig.burst_duration_s = burst_s;
  sig.burst_bytes = burst_gb * 1e9;
  sig.confidence = 1.0;
  return sig;
}

TEST(Scheduler, TwoIdenticalAppsDeoverlapPerfectly) {
  const std::vector<tools::IosiSignature> apps{app(600, 60, 300),
                                               app(600, 60, 300)};
  const auto result = tools::schedule_applications(apps);
  // Naive: both burst together (peak = 2x rate); scheduled: disjoint.
  EXPECT_NEAR(result.peak_reduction, 2.0, 0.05);
  EXPECT_GT(std::abs(result.offsets[0] - result.offsets[1]), 60.0);
}

TEST(Scheduler, FourAppsFlattenTheTimeline) {
  std::vector<tools::IosiSignature> apps;
  for (int i = 0; i < 4; ++i) apps.push_back(app(1200, 90, 400));
  const auto result = tools::schedule_applications(apps);
  EXPECT_GT(result.peak_reduction, 3.0);
}

TEST(Scheduler, TimelineConservesBurstVolume) {
  const std::vector<tools::IosiSignature> apps{app(600, 60, 300)};
  const std::vector<double> offsets{0.0};
  tools::SchedulerConfig cfg;
  const auto timeline = tools::aggregate_timeline(apps, offsets, cfg);
  double integral = 0.0;
  for (double v : timeline) integral += v * cfg.grid_s;
  // 12 bursts in the 7200 s horizon x 300 GB each (grid quantization adds
  // one extra bin per burst).
  EXPECT_NEAR(integral, 12.0 * 300e9, 0.15 * 12.0 * 300e9);
}

TEST(Scheduler, MismatchedPeriodsStillImprove) {
  const std::vector<tools::IosiSignature> apps{
      app(600, 60, 300), app(900, 120, 200), app(450, 30, 150)};
  const auto result = tools::schedule_applications(apps);
  EXPECT_GE(result.peak_reduction, 1.3);
  EXPECT_LE(result.scheduled_peak_bw, result.naive_peak_bw);
}

TEST(Scheduler, UnfoundSignaturesAreIgnored) {
  std::vector<tools::IosiSignature> apps{app(600, 60, 300)};
  apps.push_back(tools::IosiSignature{});  // not found
  const auto result = tools::schedule_applications(apps);
  EXPECT_EQ(result.offsets.size(), 2u);
  EXPECT_DOUBLE_EQ(result.offsets[1], 0.0);
  EXPECT_GT(result.naive_peak_bw, 0.0);
}

TEST(Scheduler, RejectsMismatchedSpans) {
  const std::vector<tools::IosiSignature> apps{app(600, 60, 300)};
  const std::vector<double> offsets{0.0, 1.0};
  EXPECT_THROW(tools::aggregate_timeline(apps, offsets, {}),
               std::invalid_argument);
}

class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, NeverWorseThanNaive) {
  const int n = GetParam();
  std::vector<tools::IosiSignature> apps;
  for (int i = 0; i < n; ++i) {
    apps.push_back(app(300.0 + 150.0 * i, 30.0 + 10.0 * i, 100.0 + 50.0 * i));
  }
  const auto result = tools::schedule_applications(apps);
  EXPECT_GE(result.peak_reduction, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AppCounts, SchedulerSweep, ::testing::Range(1, 8));

}  // namespace
}  // namespace spider
