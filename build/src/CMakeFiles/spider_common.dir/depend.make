# Empty dependencies file for spider_common.
# This may be replaced when dependencies are built.
