// Shared helpers for the reproduction benches.
//
// Every bench prints the paper's table/series through spider::Table and
// finishes with explicit shape checks ([PASS]/[FAIL]) against the paper's
// qualitative claims. A bench exits non-zero if any shape check fails.
#pragma once

#include <iostream>
#include <string>

namespace spider::bench {

class ShapeChecker {
 public:
  void check(bool ok, const std::string& label) {
    std::cout << (ok ? "[PASS] " : "[FAIL] ") << label << "\n";
    if (!ok) ++failures_;
  }
  int exit_code() const { return failures_ == 0 ? 0 : 1; }

 private:
  int failures_ = 0;
};

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace spider::bench
