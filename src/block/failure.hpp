// Failure injection and the 2010 incident replay (Section IV-E, Lesson 11).
//
// Timeline of the incident:
//   1. A disk is replaced in a storage enclosure; its RAID-6 group starts
//      rebuilding.
//   2. During the rebuild, the controller-to-enclosure connection fails;
//      the pair fails over as designed and the unit returns to production
//      while still rebuilding (within design specification).
//   3. Eighteen hours later the affected array is taken offline — still in
//      rebuild mode — losing the controller pair's journal for over a
//      million files.
// With 5 enclosures per controller pair (two members of each group per
// enclosure), the offline enclosure plus the rebuilding member exceeds
// RAID-6 parity: data loss, and the recovery took more than two weeks with
// a 95% success rate. With 10 enclosures, one member per group per
// enclosure, the same event stays within parity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "block/ssu.hpp"
#include "common/rng.hpp"

namespace spider::block {

struct IncidentOutcome {
  std::size_t enclosures = 0;
  bool data_lost = false;
  std::size_t groups_lost = 0;
  std::uint64_t journal_files_lost = 0;
  /// Files eventually recovered from the lost journal (paper: 95%).
  double recovered_fraction = 0.0;
  /// Wall-clock recovery effort (paper: more than two weeks).
  double recovery_days = 0.0;
  std::vector<std::string> timeline;
};

struct IncidentConfig {
  /// Enclosures per controller pair: 5 replays the Spider I design, 10 the
  /// corrected one.
  std::size_t enclosures = 5;
  std::size_t raid_groups = 56;
  /// Journal entries (files) pending on the controller pair when it is
  /// taken offline; the paper reports "more than a million".
  std::uint64_t journal_files = 1'200'000;
  /// Hours between the failover and the array being taken offline.
  double offline_after_hours = 18.0;
};

/// Replay the incident against an SSU built with the given enclosure count.
IncidentOutcome replay_incident_2010(const IncidentConfig& cfg, Rng& rng);

/// General random failure injection: drive `years` of simulated operation
/// with the given annualized disk failure rate; returns how many groups ever
/// exceeded parity (should be ~0 with prompt rebuilds).
struct FailureStats {
  std::uint64_t disk_failures = 0;
  std::uint64_t double_failures = 0;  ///< rebuilds with a second loss in flight
  std::uint64_t groups_lost = 0;
};
FailureStats inject_random_failures(Ssu& ssu, double years, double afr, Rng& rng);

}  // namespace spider::block
