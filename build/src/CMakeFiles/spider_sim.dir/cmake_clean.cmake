file(REMOVE_RECURSE
  "CMakeFiles/spider_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/spider_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/spider_sim.dir/sim/flow_network.cpp.o"
  "CMakeFiles/spider_sim.dir/sim/flow_network.cpp.o.d"
  "CMakeFiles/spider_sim.dir/sim/resource.cpp.o"
  "CMakeFiles/spider_sim.dir/sim/resource.cpp.o.d"
  "CMakeFiles/spider_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/spider_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/spider_sim.dir/sim/steady_state.cpp.o"
  "CMakeFiles/spider_sim.dir/sim/steady_state.cpp.o.d"
  "libspider_sim.a"
  "libspider_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
