// Billion-entry metadata churn on the sharded engine (ROADMAP item 2).
//
// The Robinhood lesson: namespace scans stop working around 1e9 entries, so
// policy tools must consume a changelog instead. This scenario builds that
// regime — a DNE-style federation of namespaces, one per shard-mapped
// domain, each with its own OpLog attached — and drives create/unlink/
// touch/resize/setproject churn from per-namespace private Rng streams.
// Every record stands for a `cohort` of identical logical files, so a few
// thousand physical records per namespace model a population past 1e9
// logical entries without 1e9 allocations.
//
// Commit cadence is the scenario's (the namespace never commits, see
// fs/fs_namespace.hpp): every commit_every ops the namespace's log commits
// its tail, giving consumers a committed prefix that trails the mutation
// stream the way a real MDS transaction boundary does.
//
// The scenario never walks a namespace and never touches repair surfaces
// (truncate_to / records_mutable are confined to the fault tooling by
// spiderlint L13); crash injection and the changelog-consistency oracle
// live in tools/faultcli's churn runner, which drives exactly this class.
#pragma once

#include <cstdint>
#include <memory>
#include <source_location>
#include <vector>

#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/journal.hpp"
#include "fs/ost.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/time.hpp"

namespace spider::core {

struct ChurnParams {
  /// DNE namespaces; each is one domain in the ShardMap.
  std::size_t namespaces = 8;
  std::size_t osts_per_namespace = 4;
  /// Physical records seeded per namespace before churn starts.
  std::size_t initial_files = 2048;
  /// Logical files each physical record stands for. The default puts the
  /// default shape at namespaces * initial_files * cohort > 1e9 logical
  /// entries — the scan-stops-working regime.
  std::uint64_t cohort = 65536;
  /// Concurrent churn streams per namespace.
  std::size_t actors_per_namespace = 4;
  /// Ops each actor performs before going quiet (bounds the run).
  std::size_t ops_per_actor = 256;
  /// Mean gap between one actor's ops (jittered ±50%).
  sim::SimTime think = 5 * sim::kMillisecond;
  Bytes file_bytes = 8_MiB;
  std::uint32_t projects = 16;
  /// Ops between oplog commits, per namespace. 1 commits every op.
  std::size_t commit_every = 8;
  std::uint64_t seed = 2026;
};

/// Aggregated op counts (physical records, not cohort-scaled).
struct ChurnTotals {
  std::uint64_t creates = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t touches = 0;
  std::uint64_t resizes = 0;
  std::uint64_t setprojects = 0;
  /// Mutations refused by the namespace (allocator full, dead id).
  std::uint64_t refused = 0;
};

class ChurnScenario {
 public:
  /// `map` assigns namespace -> shard and must cover params.namespaces
  /// domains within engine.shards(). No cross-shard traffic is generated,
  /// so any engine lookahead is causally safe here.
  ChurnScenario(const ChurnParams& params, sim::ShardedSimulator& engine,
                const sim::ShardMap& map);

  /// Create the initial population (committed) — call before start().
  void seed_population();
  /// Schedule every actor's first op. Call once, before engine.run().
  void start();
  /// Commit every namespace's tail — the runner calls this after run() so
  /// consumers can drain the final partial batch.
  void commit_all();

  std::size_t namespace_count() const { return shards_.size(); }
  fs::FsNamespace& ns(std::size_t i) { return *shards_.at(i).ns; }
  const fs::FsNamespace& ns(std::size_t i) const { return *shards_.at(i).ns; }
  fs::OpLog& log(std::size_t i) { return shards_.at(i).log; }
  const fs::OpLog& log(std::size_t i) const { return shards_.at(i).log; }

  ChurnTotals totals() const;
  /// Live logical files across the federation: physical live * cohort.
  std::uint64_t logical_files() const;
  /// Live logical bytes across the federation.
  Bytes logical_bytes() const;
  const ChurnParams& params() const { return params_; }

 private:
  /// One DNE namespace with its private OST fleet, log, and Rng stream.
  struct Shard {
    std::vector<std::unique_ptr<block::Raid6Group>> groups;
    std::vector<std::unique_ptr<fs::Ost>> osts;
    std::unique_ptr<fs::FsNamespace> ns;
    fs::OpLog log;
    Rng rng;
    /// Live ids, swap-removed on unlink: O(1) random victim selection
    /// without ever walking the namespace.
    std::vector<fs::FileId> pool;
    ChurnTotals totals;
    std::size_t ops_since_commit = 0;
  };

  sim::Simulator& shard_sim(std::size_t i);
  static sim::SimTime jittered(Rng& rng, sim::SimTime mean);
  void actor_step(std::size_t i, std::size_t remaining,
                  std::source_location loc);
  void one_op(Shard& shard, sim::SimTime now);
  void maybe_commit(Shard& shard);

  ChurnParams params_;
  sim::ShardedSimulator& engine_;
  sim::ShardMap map_;
  std::vector<Shard> shards_;
};

}  // namespace spider::core
