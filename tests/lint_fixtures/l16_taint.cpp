// Fixture for spiderlint rule L16 (determinism taint). Linted with
// --treat-as=src: wall-clock / thread-id / ambient-randomness values must
// not flow into scheduled delays, hash inputs, or journal records —
// directly, through a local, or through a helper whose every definition
// returns taint. The clean-reassignment, non-sink, and suppressed calls
// are the engineered false positives.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>

namespace fixture {

struct Sim {
  void schedule_at(std::int64_t, int) {}
  void schedule_in(std::int64_t, int) {}
};

struct Journal {
  void append(std::uint64_t) {}
};

void display(std::int64_t) {}
std::uint64_t mix_hash(std::uint64_t a, std::uint64_t b) { return a ^ b; }

// Every return carries taint, so the *name* becomes taint-returning and
// callers inherit the finding.
std::int64_t wall_ms() {
  return static_cast<std::int64_t>(clock());
}

void bad_direct(Sim& sim) {
  sim.schedule_in(wall_ms(), 1);  // L16 (via wall_ms())
}

void bad_through_local(Sim& sim) {
  std::int64_t t = 0;
  t = clock();
  sim.schedule_at(t, 1);  // L16 (via local 't')
}

std::uint64_t bad_hash_input() {
  return mix_hash(1, static_cast<std::uint64_t>(rand()));  // L16
}

void bad_journal_record(Journal& journal_) {
  journal_.append(static_cast<std::uint64_t>(clock()));  // L16
}

// A clean reassignment clears the taint before the sink sees it. Must NOT
// be flagged.
void good_reassigned(Sim& sim) {
  std::int64_t u = 0;
  u = clock();
  u = 5;
  sim.schedule_at(u, 1);
}

// Taint flowing into a non-sink is not this rule's business. Must NOT be
// flagged.
void good_non_sink() {
  display(clock());
}

// Reviewed escape hatch at the sink line. Must NOT be flagged.
void good_suppressed(Sim& sim) {
  sim.schedule_in(wall_ms(), 1);  // spiderlint: taint-ok — startup-only path
}

}  // namespace fixture
