// Fixture for spiderlint rule L1 (unordered-iteration).
//
// Linted as if it lived in a sim-critical directory: the unordered_map
// member declaration fires, and so does the range-for over it.
#include <unordered_map>

namespace fixture {

struct FlowTable {
  std::unordered_map<int, double> flows_;

  double total() const {
    double sum = 0.0;
    for (const auto& [id, f] : flows_) sum += f;
    return sum;
  }
};

}  // namespace fixture
