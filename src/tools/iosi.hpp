// IOSI: I/O Signature Identifier (Section VI-B).
//
// "IOSI characterizes per-application I/O behavior from the server-side
// I/O throughput logs. We determined application I/O signatures by
// observing multiple runs and identifying the common I/O pattern across
// those runs. Note that most scientific applications have a bursty and
// periodic I/O pattern with a repetitive behavior across runs." Input is
// only what the servers already log (aggregate bandwidth per time bin) —
// zero client-side cost — and the output is the application's burst
// period, duration, and volume.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace spider::tools {

struct IosiSignature {
  bool found = false;
  double period_s = 0.0;
  double burst_duration_s = 0.0;
  /// Mean bytes moved per burst.
  ByteVolume burst_bytes = 0.0;
  /// Fraction of runs agreeing with the consensus period (within 10%).
  double confidence = 0.0;
  std::size_t bursts_seen = 0;
};

struct IosiConfig {
  /// Bandwidth threshold for burst detection, as a multiple of the
  /// median-absolute-deviation above the median.
  double mad_multiplier = 4.0;
  /// A burst must additionally clear this fraction of the log's peak;
  /// filters low-intensity background traffic that also crosses the MAD
  /// floor on a mostly-quiet log.
  double min_fraction_of_peak = 0.30;
  /// Minimum bins a burst must span.
  std::size_t min_burst_bins = 1;
};

/// Bursts detected in one log.
struct DetectedBurst {
  double start_s = 0.0;
  double duration_s = 0.0;
  ByteVolume bytes = 0.0;
};

/// Burst detection in a single server-side throughput log.
std::vector<DetectedBurst> detect_bursts(std::span<const double> log,
                                         double bin_s,
                                         const IosiConfig& cfg = {});

/// Extract the application signature common to multiple runs' logs.
IosiSignature extract_signature(
    std::span<const std::vector<double>> run_logs, double bin_s,
    const IosiConfig& cfg = {});

}  // namespace spider::tools
