// Automatic purge engine (Lesson 10).
//
// "Files that are not created, modified, or accessed within a contiguous
// 14 day range are deleted by an automated process. This mechanism allows
// for automatic capacity trimming" — keeping scratch fullness below the
// 70% severe-degradation point.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"
#include "fs/fs_namespace.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace spider::fs {

struct PurgePolicy {
  /// Files untouched (atime, mtime, and ctime) for this long are purged.
  double window_days = 14.0;
  /// Purge runs can exempt projects (e.g. under an active extension).
  std::uint32_t exempt_project = UINT32_MAX;
};

struct PurgeReport {
  std::uint64_t scanned = 0;
  std::uint64_t purged = 0;
  Bytes freed = 0;
  /// Weighted MDS ops the sweep itself cost (scan stats + unlinks).
  double mds_ops = 0.0;
  /// Age (now - last touch) of the youngest file this sweep deleted;
  /// +infinity when nothing was purged. The purge-age oracle asserts this
  /// never drops below the policy window.
  Seconds min_purged_age_s = std::numeric_limits<double>::infinity();
};

/// One purge sweep over a namespace at simulated time `now`.
PurgeReport run_purge(FsNamespace& ns, sim::SimTime now,
                      const PurgePolicy& policy = {});

/// Schedule the production cadence: one sweep per day at `hour_of_day`
/// (OLCF runs it off-hours), for `days` days starting from the
/// simulator's current day. Reports accumulate into `*reports` if given.
void schedule_daily_purge(sim::Simulator& sim, FsNamespace& ns,
                          const PurgePolicy& policy, int days,
                          double hour_of_day = 2.0,
                          std::vector<PurgeReport>* reports = nullptr);

}  // namespace spider::fs
