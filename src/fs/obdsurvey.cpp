#include "fs/obdsurvey.hpp"

#include <algorithm>
#include <cmath>

namespace spider::fs {

namespace {
double thread_scaling(unsigned threads, const ObdSurveyConfig& cfg) {
  if (threads == 0) return 0.0;
  const double sat = static_cast<double>(cfg.saturation_threads);
  const double t = static_cast<double>(threads);
  // Ramp to saturation, then a slow decline from contention.
  const double ramp = std::min(1.0, t / sat);
  const double over = t > sat ? 1.0 - cfg.oversubscribe_penalty * (t - sat) : 1.0;
  return ramp * std::max(0.5, over);
}
}  // namespace

std::vector<ObdSurveyRow> run_obdfilter_survey(const Ost& ost,
                                               const ObdSurveyConfig& cfg,
                                               Rng& rng) {
  std::vector<ObdSurveyRow> rows;
  rows.reserve(cfg.thread_counts.size());
  for (unsigned threads : cfg.thread_counts) {
    const double scale = thread_scaling(threads, cfg);
    ObdSurveyRow row;
    row.threads = threads;
    auto jitter = [&rng] { return 1.0 + 0.02 * (rng.uniform() - 0.5); };
    row.write_bw = ost.bandwidth(block::IoMode::kSequential, block::IoDir::kWrite,
                                 cfg.record_size) *
                   scale * jitter();
    // Rewrite skips allocation but pays the same journal cost; marginally
    // faster than first write.
    row.rewrite_bw = row.write_bw * 1.04 * jitter();
    row.read_bw = ost.bandwidth(block::IoMode::kSequential, block::IoDir::kRead,
                                cfg.record_size) *
                  scale * jitter();
    rows.push_back(row);
  }
  return rows;
}

double fs_overhead_fraction(const Ost& ost, block::IoDir dir, Bytes record_size) {
  const Bandwidth block_bw =
      ost.group().bandwidth(block::IoMode::kSequential, dir, record_size);
  if (block_bw <= 0.0) return 0.0;
  const Bandwidth fs_bw =
      ost.bandwidth(block::IoMode::kSequential, dir, record_size);
  return 1.0 - fs_bw / block_bw;
}

}  // namespace spider::fs
