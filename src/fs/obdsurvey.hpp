// obdfilter-survey driver (Section III-B).
//
// The real obdfilter-survey benchmarks the obdfilter layer of the Lustre
// stack — object write, rewrite, and read throughput as a function of
// concurrent threads and objects — isolating file-system overhead from raw
// block performance. Comparing its output with fair-lio's block numbers is
// how the paper measures per-layer loss (Lesson 12).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/ost.hpp"

namespace spider::fs {

struct ObdSurveyConfig {
  std::vector<unsigned> thread_counts{1, 2, 4, 8, 16};
  Bytes record_size = 1_MiB;
  /// Threads needed to saturate the OST pipeline.
  unsigned saturation_threads = 4;
  /// Per-extra-thread efficiency loss past saturation (lock contention).
  double oversubscribe_penalty = 0.01;
};

struct ObdSurveyRow {
  unsigned threads = 0;
  Bandwidth write_bw = 0.0;
  Bandwidth rewrite_bw = 0.0;
  Bandwidth read_bw = 0.0;
};

/// Run the survey against one OST.
std::vector<ObdSurveyRow> run_obdfilter_survey(const Ost& ost,
                                               const ObdSurveyConfig& cfg,
                                               Rng& rng);

/// File-system overhead vs the raw RAID group: 1 - (survey peak / block
/// peak) for the given direction.
double fs_overhead_fraction(const Ost& ost, block::IoDir dir,
                            Bytes record_size = 1_MiB);

}  // namespace spider::fs
