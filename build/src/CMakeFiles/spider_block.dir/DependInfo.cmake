
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/controller.cpp" "src/CMakeFiles/spider_block.dir/block/controller.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/controller.cpp.o.d"
  "/root/repo/src/block/disk.cpp" "src/CMakeFiles/spider_block.dir/block/disk.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/disk.cpp.o.d"
  "/root/repo/src/block/enclosure.cpp" "src/CMakeFiles/spider_block.dir/block/enclosure.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/enclosure.cpp.o.d"
  "/root/repo/src/block/failure.cpp" "src/CMakeFiles/spider_block.dir/block/failure.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/failure.cpp.o.d"
  "/root/repo/src/block/fairlio.cpp" "src/CMakeFiles/spider_block.dir/block/fairlio.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/fairlio.cpp.o.d"
  "/root/repo/src/block/raid.cpp" "src/CMakeFiles/spider_block.dir/block/raid.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/raid.cpp.o.d"
  "/root/repo/src/block/ssu.cpp" "src/CMakeFiles/spider_block.dir/block/ssu.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/ssu.cpp.o.d"
  "/root/repo/src/block/sweep.cpp" "src/CMakeFiles/spider_block.dir/block/sweep.cpp.o" "gcc" "src/CMakeFiles/spider_block.dir/block/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
