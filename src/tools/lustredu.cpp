#include "tools/lustredu.hpp"

#include <algorithm>

namespace spider::tools {

DuCost client_du(fs::FsNamespace& ns, std::uint32_t project,
                 double background_util) {
  DuCost cost;
  const double before = ns.mds().accounted_load();
  ns.for_each_file([&](const fs::FileRecord& rec) {
    if (rec.project != project) {
      // Directory traversal still pays a lookup to skip the entry.
      ns.mds().account(fs::MetaOp::kLookup);
      return;
    }
    ns.mds().account(fs::MetaOp::kLookup);
    ns.mds().account(fs::MetaOp::kStat, rec.stripe_count);
    cost.bytes_reported += rec.size;
  });
  cost.mds_ops = ns.mds().accounted_load() - before;
  const double usable =
      ns.mds().capacity_ops() * std::max(0.01, 1.0 - background_util);
  cost.wall_s = cost.mds_ops / usable;
  return cost;
}

void LustreDu::daily_scan(const fs::FsNamespace& ns, sim::SimTime now) {
  usage_ = ns.usage_by_project();
  last_scan_ = now;
  scanned_ = true;
}

void LustreDu::follow(const fs::OpLog& log, std::uint32_t shards) {
  Feed feed;
  feed.log = &log;
  feed.accounting = fs::ChangelogAccounting(shards);
  feeds_.push_back(std::move(feed));
}

fs::ConsumeResult LustreDu::poll() {
  fs::ConsumeResult merged;
  for (Feed& feed : feeds_) {
    const fs::ConsumeResult one = feed.accounting.consume(*feed.log);
    merged.applied += one.applied;
    merged.cursor_ahead = merged.cursor_ahead || one.cursor_ahead;
    if (one.gap && !merged.gap) {
      merged.gap = true;
      merged.first_gap_txid = one.first_gap_txid;
    }
    merged.cursor = one.cursor;  // meaningful when following one log
  }
  polled_ = true;
  return merged;
}

void LustreDu::rebuild_feeds() {
  for (Feed& feed : feeds_) feed.accounting.rebuild(*feed.log);
  polled_ = true;
}

void LustreDu::resync_feed(std::size_t i, const fs::FsNamespace& ns) {
  Feed& feed = feeds_.at(i);
  feed.accounting.rebuild_from_namespace(ns, *feed.log);
  polled_ = true;
}

DuCost LustreDu::usage(std::uint32_t project) const {
  DuCost cost;
  cost.mds_ops = 0.0;
  cost.wall_s = 10e-6;  // one indexed database lookup
  if (!feeds_.empty()) {
    if (!polled_) {
      cost.stale = true;  // followed but never polled: no basis to answer
      return cost;
    }
    for (const Feed& feed : feeds_) {
      cost.bytes_reported += feed.accounting.bytes_of(project);
    }
    return cost;
  }
  if (!scanned_) {
    // Cold tool: 0 bytes would be indistinguishable from a genuinely
    // empty project, which is exactly the bug the stale flag closes.
    cost.stale = true;
    return cost;
  }
  auto it = usage_.find(project);
  cost.bytes_reported = it == usage_.end() ? 0 : it->second;
  return cost;
}

}  // namespace spider::tools
