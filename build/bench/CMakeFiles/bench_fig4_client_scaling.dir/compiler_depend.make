# Empty compiler generated dependencies file for bench_fig4_client_scaling.
# This may be replaced when dependencies are built.
