#include "block/enclosure.hpp"

#include <stdexcept>

namespace spider::block {

EnclosureLayout::EnclosureLayout(std::size_t groups, std::size_t members_per_group,
                                 std::size_t enclosures)
    : groups_(groups), members_per_group_(members_per_group), enclosures_(enclosures) {
  if (groups == 0 || members_per_group == 0 || enclosures == 0) {
    throw std::invalid_argument("EnclosureLayout: all dimensions must be > 0");
  }
}

std::uint32_t EnclosureLayout::enclosure_of(std::size_t g, std::size_t m) const {
  if (g >= groups_ || m >= members_per_group_) {
    throw std::out_of_range("EnclosureLayout::enclosure_of");
  }
  // Rotate by group index so enclosure load is even across groups.
  return static_cast<std::uint32_t>((m + g) % enclosures_);
}

std::vector<std::size_t> EnclosureLayout::members_in(std::size_t g,
                                                     std::uint32_t e) const {
  std::vector<std::size_t> out;
  for (std::size_t m = 0; m < members_per_group_; ++m) {
    if (enclosure_of(g, m) == e) out.push_back(m);
  }
  return out;
}

std::size_t EnclosureLayout::max_members_per_enclosure() const {
  return (members_per_group_ + enclosures_ - 1) / enclosures_;
}

}  // namespace spider::block
