// Analytics/visualization workload: the latency-bound reader.
//
// Section II: "the data analytics I/O workloads, such as visualization and
// analysis, are latency constrained and read-heavy." Generated as a stream
// of read requests with Pareto-tailed think times from a modest client
// count (analysis clusters are much smaller than Titan); the interference
// bench (C16) measures their latency while checkpoints slam the same OSTs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/pattern.hpp"

namespace spider::workload {

struct AnalyticsParams {
  std::uint32_t clients = 64;
  /// Mean think time between a client's reads.
  double think_time_s = 0.05;
  /// Pareto tail on think time.
  double think_alpha = 1.4;
  /// Read sizes: mostly sub-MB chunks of reduced data.
  Bytes read_lo = 64_KiB;
  Bytes read_hi = 4_MiB;
};

class AnalyticsWorkload {
 public:
  explicit AnalyticsWorkload(const AnalyticsParams& params);

  const AnalyticsParams& params() const { return params_; }

  /// Request trace over `duration_s` (all reads).
  std::vector<IoRequest> generate(double duration_s, Rng& rng) const;

 private:
  AnalyticsParams params_;
};

}  // namespace spider::workload
