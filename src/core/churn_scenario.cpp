#include "core/churn_scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "block/disk.hpp"

namespace spider::core {

namespace {

/// Per-namespace seed derivation, same splitmix stride ScaleScenario uses.
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ull;

std::vector<block::Disk> healthy_members(std::size_t n = 10) {
  std::vector<block::Disk> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(block::DiskParams{}, static_cast<std::uint32_t>(i), 1.0,
                     1e-4);
  }
  return out;
}

}  // namespace

ChurnScenario::ChurnScenario(const ChurnParams& params,
                             sim::ShardedSimulator& engine,
                             const sim::ShardMap& map)
    : params_(params), engine_(engine), map_(map) {
  if (params_.namespaces == 0) {
    throw std::invalid_argument("ChurnScenario: namespaces must be >= 1");
  }
  if (map_.domains() < params_.namespaces) {
    throw std::invalid_argument(
        "ChurnScenario: shard map covers fewer domains than namespaces");
  }
  if (map_.shards() > engine_.shards()) {
    throw std::invalid_argument(
        "ChurnScenario: shard map targets more shards than the engine has");
  }
  shards_ = std::vector<Shard>(params_.namespaces);
  for (std::size_t i = 0; i < params_.namespaces; ++i) {
    Shard& shard = shards_[i];
    std::vector<fs::Ost*> ptrs;
    for (std::size_t o = 0; o < std::max<std::size_t>(1, params_.osts_per_namespace); ++o) {
      shard.groups.push_back(std::make_unique<block::Raid6Group>(
          block::RaidParams{}, healthy_members()));
      shard.osts.push_back(std::make_unique<fs::Ost>(
          static_cast<std::uint32_t>(o), shard.groups.back().get()));
      ptrs.push_back(shard.osts.back().get());
    }
    shard.ns = std::make_unique<fs::FsNamespace>(
        "mdt" + std::to_string(i), std::move(ptrs));
    // Default mask: no atime records, same as Lustre's stock changelog.
    shard.ns->attach_oplog(&shard.log, fs::kLogDefault);
    shard.rng = Rng(params_.seed ^ (kSeedStride * (i + 1)));
  }
}

sim::Simulator& ChurnScenario::shard_sim(std::size_t i) {
  return engine_.shard(map_.shard_of(i));
}

sim::SimTime ChurnScenario::jittered(Rng& rng, sim::SimTime mean) {
  const auto span = static_cast<std::uint64_t>(std::max<sim::SimTime>(1, mean));
  return mean / 2 + static_cast<sim::SimTime>(rng.uniform_index(span));
}

void ChurnScenario::seed_population() {
  for (Shard& shard : shards_) {
    for (std::size_t f = 0; f < params_.initial_files; ++f) {
      const std::uint32_t project = static_cast<std::uint32_t>(
          shard.rng.uniform_index(std::max<std::uint32_t>(1, params_.projects)));
      const fs::FileId id =
          shard.ns->create_file(project, params_.file_bytes, 0, shard.rng);
      if (id == fs::kNoFile) {
        ++shard.totals.refused;
        continue;
      }
      ++shard.totals.creates;
      shard.pool.push_back(id);
    }
    // The seeded population is one committed transaction: consumers may
    // start from a fully durable baseline.
    shard.log.commit(shard.log.last_txid());
    shard.ops_since_commit = 0;
  }
}

void ChurnScenario::start() {
  const std::source_location loc = std::source_location::current();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    for (std::size_t a = 0; a < params_.actors_per_namespace; ++a) {
      const sim::SimTime at = jittered(shard.rng, params_.think) / 2;
      shard_sim(i).schedule_at(
          at,
          [this, i, loc] { actor_step(i, params_.ops_per_actor, loc); }, loc);
    }
  }
}

void ChurnScenario::actor_step(std::size_t i, std::size_t remaining,
                               std::source_location loc) {
  if (remaining == 0) return;
  Shard& shard = shards_[i];
  one_op(shard, shard_sim(i).now());
  maybe_commit(shard);
  const sim::SimTime gap = jittered(shard.rng, params_.think);
  shard_sim(i).schedule_in(
      gap, [this, i, remaining, loc] { actor_step(i, remaining - 1, loc); },
      loc);
}

void ChurnScenario::one_op(Shard& shard, sim::SimTime now) {
  // Mix: 30% create, 20% unlink, 20% touch, 20% resize, 10% setproject.
  // With an empty pool everything degrades to create.
  const std::uint64_t roll = shard.rng.uniform_index(10);
  const bool have_files = !shard.pool.empty();
  if (roll < 3 || !have_files) {
    const std::uint32_t project = static_cast<std::uint32_t>(
        shard.rng.uniform_index(std::max<std::uint32_t>(1, params_.projects)));
    const fs::FileId id =
        shard.ns->create_file(project, params_.file_bytes, now, shard.rng);
    if (id == fs::kNoFile) {
      ++shard.totals.refused;
      return;
    }
    ++shard.totals.creates;
    shard.pool.push_back(id);
    return;
  }
  const std::size_t pick =
      static_cast<std::size_t>(shard.rng.uniform_index(shard.pool.size()));
  const fs::FileId victim = shard.pool[pick];
  if (!shard.ns->exists(victim)) {
    // An external consumer (the purge daemon) unlinked it since we last
    // looked — the client's op races the policy engine and loses.
    ++shard.totals.refused;
    shard.pool[pick] = shard.pool.back();
    shard.pool.pop_back();
    return;
  }
  if (roll < 5) {
    if (shard.ns->unlink(victim, now)) {
      ++shard.totals.unlinks;
      shard.pool[pick] = shard.pool.back();
      shard.pool.pop_back();
    } else {
      ++shard.totals.refused;
    }
  } else if (roll < 7) {
    shard.ns->touch_file(victim, now);
    ++shard.totals.touches;
  } else if (roll < 9) {
    // Resize within [1/2, 2) of the nominal size so the fleet never fills.
    const Bytes lo = params_.file_bytes / 2;
    const Bytes new_size =
        lo + static_cast<Bytes>(shard.rng.uniform_index(
                 std::max<Bytes>(1, params_.file_bytes + params_.file_bytes / 2)));
    if (shard.ns->resize_file(victim, new_size, now)) {
      ++shard.totals.resizes;
    } else {
      ++shard.totals.refused;
    }
  } else {
    const std::uint32_t project = static_cast<std::uint32_t>(
        shard.rng.uniform_index(std::max<std::uint32_t>(1, params_.projects)));
    if (shard.ns->set_project(victim, project, now)) {
      ++shard.totals.setprojects;
    } else {
      ++shard.totals.refused;
    }
  }
}

void ChurnScenario::maybe_commit(Shard& shard) {
  ++shard.ops_since_commit;
  if (shard.ops_since_commit < std::max<std::size_t>(1, params_.commit_every)) {
    return;
  }
  shard.log.commit(shard.log.last_txid());
  shard.ops_since_commit = 0;
}

void ChurnScenario::commit_all() {
  for (Shard& shard : shards_) {
    shard.log.commit(shard.log.last_txid());
    shard.ops_since_commit = 0;
  }
}

ChurnTotals ChurnScenario::totals() const {
  ChurnTotals sum;
  for (const Shard& shard : shards_) {
    sum.creates += shard.totals.creates;
    sum.unlinks += shard.totals.unlinks;
    sum.touches += shard.totals.touches;
    sum.resizes += shard.totals.resizes;
    sum.setprojects += shard.totals.setprojects;
    sum.refused += shard.totals.refused;
  }
  return sum;
}

std::uint64_t ChurnScenario::logical_files() const {
  std::uint64_t live = 0;
  for (const Shard& shard : shards_) live += shard.ns->live_files();
  return live * params_.cohort;
}

Bytes ChurnScenario::logical_bytes() const {
  Bytes physical = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [project, bytes] : shard.ns->usage_by_project()) {
      physical += bytes;
    }
  }
  return physical * static_cast<Bytes>(params_.cohort);
}

}  // namespace spider::core
