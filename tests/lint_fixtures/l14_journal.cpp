// Fixture for spiderlint rule L14 (journal-before-mutation). Linted with
// --treat-as=fs: the Ledger class exposes a repair mutator, so every one
// of its non-repair methods must either append to the op journal before
// touching member state or carry SPIDER_JOURNALED(why). The append-first
// method, the annotated method, and the suppressed line are the engineered
// false positives.
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"

namespace fixture {

struct Journal {
  void append(std::uint64_t v) { records_.push_back(v); }
  std::vector<std::uint64_t> records_;
};

class Ledger {
 public:
  // fsck can rewrite this class's state, so crashes mid-mutation must be
  // reconstructable: Ledger is a checked class.
  void fsck_set_total(std::uint64_t n) { total_ = n; }

  // Mutates before any journal append. Flagged.
  void add(std::uint64_t v) {
    total_ += v;  // L14
    journal_.append(v);
  }

  // Journal record lands first: the crash-recovery invariant holds. Must
  // NOT be flagged.
  void record(std::uint64_t v) {
    journal_.append(v);
    total_ += v;
  }

  // Declared state-only on purpose; the annotation carries the why. Must
  // NOT be flagged.
  void rebuild_cache() SPIDER_JOURNALED("derived value, recomputed on load") {
    cached_ = total_ * 2;
  }

  // Reviewed escape hatch at the mutation line. Must NOT be flagged.
  void adjust(std::uint64_t v) {
    total_ = v;  // spiderlint: journal-ok — caller owns the journal record
  }

 private:
  Journal journal_;
  std::uint64_t total_ = 0;
  std::uint64_t cached_ = 0;
};

}  // namespace fixture
