#include "fs/filesystem.hpp"

#include <stdexcept>

namespace spider::fs {

std::size_t FileSystem::add_namespace(std::unique_ptr<FsNamespace> ns) {
  namespaces_.push_back(std::move(ns));
  return namespaces_.size() - 1;
}

FsNamespace* FileSystem::find(const std::string& name) {
  for (auto& ns : namespaces_) {
    if (ns->name() == name) return ns.get();
  }
  return nullptr;
}

void FileSystem::assign_project(std::uint32_t project, std::size_t ns_index) {
  if (ns_index >= namespaces_.size()) {
    throw std::out_of_range("FileSystem::assign_project: bad namespace");
  }
  project_ns_[project] = ns_index;
}

std::size_t FileSystem::namespace_of(std::uint32_t project) const {
  if (namespaces_.empty()) throw std::logic_error("FileSystem: no namespaces");
  auto it = project_ns_.find(project);
  if (it != project_ns_.end()) return it->second;
  return project % namespaces_.size();
}

FileId FileSystem::create_file(std::uint32_t project, Bytes size,
                               sim::SimTime now, Rng& rng,
                               std::optional<StripePolicy> policy) {
  return namespaces_.at(namespace_of(project))
      ->create_file(project, size, now, rng, policy);
}

Bytes FileSystem::capacity() const {
  Bytes total = 0;
  for (const auto& ns : namespaces_) total += ns->capacity();
  return total;
}

Bytes FileSystem::used() const {
  Bytes total = 0;
  for (const auto& ns : namespaces_) total += ns->used();
  return total;
}

std::uint64_t FileSystem::live_files() const {
  std::uint64_t total = 0;
  for (const auto& ns : namespaces_) total += ns->live_files();
  return total;
}

}  // namespace spider::fs
