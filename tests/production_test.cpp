#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/production.hpp"
#include "core/spider_config.hpp"

namespace spider::core {
namespace {

struct MixFixture : ::testing::Test {
  Rng rng{1};
  CenterModel center{scaled_config(spider2_config(), 0.1), rng};
  sim::Simulator sim;

  void SetUp() override {
    center.set_client_placement(ClientPlacement::kRandom, rng);
  }
};

TEST_F(MixFixture, CheckpointAppsCompleteAllBursts) {
  ScenarioRunner runner(center, sim);
  workload::S3dParams app;
  app.ranks = 512;
  app.bytes_per_rank = 32_MiB;
  app.output_interval_s = 300.0;
  ProductionMix mix(1800.0);
  mix.add_checkpoint_app(app);
  const auto outcome = mix.deploy(runner, rng);
  sim.run();
  EXPECT_GE(outcome->bursts_completed, 5u);
  EXPECT_EQ(outcome->checkpoint_bytes,
            outcome->bursts_completed * 512ull * 32_MiB);
  EXPECT_EQ(outcome->burst_bandwidths.size(), outcome->bursts_completed);
  for (double bw : outcome->burst_bandwidths) EXPECT_GT(bw, 1.0 * kGBps);
}

TEST_F(MixFixture, AnalyticsLatenciesCollected) {
  ScenarioRunner runner(center, sim);
  workload::AnalyticsParams ap;
  ap.clients = 8;
  ap.think_time_s = 1.0;
  ProductionMix mix(120.0);
  mix.add_analytics(ap, 0, 16);
  const auto outcome = mix.deploy(runner, rng);
  sim.run();
  EXPECT_GT(outcome->analytics_latencies_s.size(), 400u);
  EXPECT_LT(mean_of(outcome->analytics_latencies_s), 0.5);
}

TEST_F(MixFixture, FullMixRunsTogether) {
  ScenarioRunner runner(center, sim);
  workload::S3dParams app;
  app.ranks = 512;
  app.bytes_per_rank = 32_MiB;
  app.output_interval_s = 240.0;
  workload::AnalyticsParams ap;
  ap.clients = 8;
  ap.think_time_s = 2.0;
  ProductionMix mix(900.0);
  mix.add_checkpoint_app(app, 0)
      .add_checkpoint_app(app, 37)
      .add_analytics(ap, 5, 32)
      .add_noise(64, 256_MiB, 120.0);
  EXPECT_EQ(mix.checkpoint_apps(), 2u);
  EXPECT_EQ(mix.analytics_streams(), 1u);
  const auto outcome = mix.deploy(runner, rng);
  sim.run();
  EXPECT_GE(outcome->bursts_completed, 6u);
  EXPECT_FALSE(outcome->analytics_latencies_s.empty());
}

TEST_F(MixFixture, DeterministicAcrossRuns) {
  auto run_once = [this](std::uint64_t seed) {
    Rng local(seed);
    sim::Simulator local_sim;
    ScenarioRunner runner(center, local_sim);
    workload::S3dParams app;
    app.ranks = 256;
    app.bytes_per_rank = 16_MiB;
    app.output_interval_s = 200.0;
    ProductionMix mix(600.0);
    mix.add_checkpoint_app(app);
    const auto outcome = mix.deploy(runner, local);
    local_sim.run();
    return outcome->burst_bandwidths;
  };
  const auto a = run_once(9);
  const auto b = run_once(9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace spider::core
