# Empty compiler generated dependencies file for bench_c1_peak_bandwidth.
# This may be replaced when dependencies are built.
