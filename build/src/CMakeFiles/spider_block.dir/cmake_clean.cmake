file(REMOVE_RECURSE
  "CMakeFiles/spider_block.dir/block/controller.cpp.o"
  "CMakeFiles/spider_block.dir/block/controller.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/disk.cpp.o"
  "CMakeFiles/spider_block.dir/block/disk.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/enclosure.cpp.o"
  "CMakeFiles/spider_block.dir/block/enclosure.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/failure.cpp.o"
  "CMakeFiles/spider_block.dir/block/failure.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/fairlio.cpp.o"
  "CMakeFiles/spider_block.dir/block/fairlio.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/raid.cpp.o"
  "CMakeFiles/spider_block.dir/block/raid.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/ssu.cpp.o"
  "CMakeFiles/spider_block.dir/block/ssu.cpp.o.d"
  "CMakeFiles/spider_block.dir/block/sweep.cpp.o"
  "CMakeFiles/spider_block.dir/block/sweep.cpp.o.d"
  "libspider_block.a"
  "libspider_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
