// Descriptive statistics helpers.
//
// Used everywhere a benchmark or tool summarizes measurements: RAID-group
// performance binning (Lesson 13 uses a 5%/7.5% variance envelope), latency
// percentiles for analytics workloads, and load-imbalance metrics for
// libPIO.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spider {

/// Online mean/variance via Welford's algorithm; O(1) space.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks; p in [0, 100]. Copies and sorts internally.
double percentile(std::span<const double> values, double p);

/// Several percentiles in one sort.
std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps);

/// Arithmetic mean; 0 for empty input.
double mean_of(std::span<const double> values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev_of(std::span<const double> values);

/// (max - min) / mean as a fraction; the paper's RAID-group "performance
/// variance" acceptance metric. Returns 0 for empty input or zero mean.
double spread_fraction(std::span<const double> values);

/// max / mean - 1 load-imbalance metric used by the placement tools.
double imbalance_of(std::span<const double> values);

}  // namespace spider
