#include "common/parallel.hpp"

#include <atomic>
#include <cassert>
#include <utility>

namespace spider {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      assert(in_flight_ > 0);  // accounting must balance or wait_idle hangs
      --in_flight_;
      if (err && !first_error_) first_error_ = std::move(err);
      notify_if_idle_locked();
    }
  }
}

void ThreadPool::notify_if_idle_locked() {
  if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t workers = std::min(threads, n);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard lock(err_mu);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace spider
