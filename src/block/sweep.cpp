#include "block/sweep.hpp"

#include <algorithm>
#include <string>

#include "common/parallel.hpp"
#include "common/units.hpp"
#include "common/rng.hpp"

namespace spider::block {

namespace {

std::vector<FairLioConfig> expand(const SweepConfig& cfg) {
  std::vector<FairLioConfig> points;
  for (Bytes size : cfg.request_sizes) {
    for (unsigned qd : cfg.queue_depths) {
      for (double wf : cfg.write_fractions) {
        for (IoMode mode : cfg.modes) {
          FairLioConfig p;
          p.request_size = size;
          p.queue_depth = qd;
          p.write_fraction = wf;
          p.mode = mode;
          p.duration_s = cfg.duration_s;
          points.push_back(p);
        }
      }
    }
  }
  return points;
}

template <typename Target>
std::vector<SweepPoint> run_impl(const Target& target, const SweepConfig& cfg) {
  const auto configs = expand(cfg);
  std::vector<SweepPoint> out(configs.size());
  parallel_for(
      configs.size(),
      [&](std::size_t i) {
        // Deterministic per-point stream: identical results at any thread
        // count.
        Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + i);
        out[i].config = configs[i];
        out[i].result = run_fairlio(target, configs[i], rng);
      },
      cfg.threads);
  return out;
}

}  // namespace

std::vector<SweepPoint> run_sweep(const Disk& disk, const SweepConfig& cfg) {
  return run_impl(disk, cfg);
}

std::vector<SweepPoint> run_sweep(const Raid6Group& group,
                                  const SweepConfig& cfg) {
  return run_impl(group, cfg);
}

Table sweep_table(const std::vector<SweepPoint>& points, std::string title) {
  Table table(std::move(title));
  table.set_columns({"request", "qd", "write frac", "mode", "MB/s", "IOPS",
                     "mean ms", "p99 ms"});
  for (const auto& p : points) {
    const Bytes size = p.config.request_size;
    std::string label = size >= 1_MiB ? std::to_string(size / 1_MiB) + " MiB"
                                      : std::to_string(size / 1_KiB) + " KiB";
    table.add_row({std::move(label),
                   static_cast<std::int64_t>(p.config.queue_depth),
                   p.config.write_fraction,
                   std::string(p.config.mode == IoMode::kSequential ? "seq"
                                                                    : "rand"),
                   to_mbps(p.result.bandwidth), p.result.iops,
                   p.result.mean_latency_s * kMillisPerSecond,
                   p.result.p99_latency_s * kMillisPerSecond});
  }
  return table;
}

SweepSummary summarize_sweep(const std::vector<SweepPoint>& points) {
  SweepSummary summary;
  double seq_1m_read = 0.0;
  double rand_1m_read = 0.0;
  for (const auto& p : points) {
    if (p.config.mode == IoMode::kSequential) {
      summary.best_sequential = std::max(summary.best_sequential,
                                         p.result.bandwidth);
    } else {
      summary.best_random = std::max(summary.best_random, p.result.bandwidth);
    }
    summary.worst_p99_s = std::max(summary.worst_p99_s, p.result.p99_latency_s);
    if (p.config.request_size == 1_MiB && p.config.queue_depth == 1 &&
        p.config.write_fraction == 0.0) {
      if (p.config.mode == IoMode::kSequential) {
        seq_1m_read = p.result.bandwidth;
      } else {
        rand_1m_read = p.result.bandwidth;
      }
    }
  }
  if (seq_1m_read > 0.0) {
    summary.random_fraction_1mb = rand_1m_read / seq_1m_read;
  }
  return summary;
}

}  // namespace spider::block
