// spiderfsck: parallel consistency checking and repair for one namespace.
//
// Lesson 5 / Section IV-D: at Spider scale an ldiskfs fsck of a single OST
// took "multiple days", and OLCF funded distributed metadata verification
// work precisely because serial checking cannot keep up with petabyte
// namespaces. This tool reproduces the structure of that answer, phased
// like pFSCK:
//
//   phase 1  scan     per-shard inode-table and journal scan, fanned over
//                     the process-wide shared_pool() via parallel_for;
//   phase 2  cross    serial cross-reference of the merged shard results:
//                     dangling stripe refs, orphaned/lost OST objects,
//                     namespace-vs-journal disagreement (fs/recovery
//                     replay), counter drift, DNE accounting drift;
//   phase 3  repair   serial, canonically ordered mutation of the
//                     namespace/journal/OSTs, then a journal-cursor replay
//                     (fs/recovery) to advance the committed cursor over
//                     any backfilled tail.
//
// Determinism bar: the findings list, report JSON, and post-repair state
// hash are byte-identical to the serial run at any worker count, shard
// count, or shard-assignment policy. Shards buffer their results and the
// merge step imposes one canonical order (the ShardedSimulator mailbox
// discipline, applied to checking) — parallelism never leaks into output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/dne.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/journal.hpp"
#include "fs/ost.hpp"

namespace spider::tools {

/// Everything one fsck pass operates on. `ns` is required; `journal` and
/// `dne` are optional facets (skipped when null). Pointers are non-owning.
struct FsckTarget {
  fs::FsNamespace* ns = nullptr;
  fs::OpLog* journal = nullptr;
  fs::DneNamespace* dne = nullptr;
  /// Project id damaged files are relinked to during repair (lost+found).
  std::uint32_t lost_found_project = 9999;
};

/// How phase-1 shards map onto inode-table slots. Findings are invariant
/// under this choice — it exists so tests can prove that.
enum class ShardAssignment : std::uint8_t {
  kContiguous,  ///< shard s owns one contiguous slot range
  kStrided,     ///< shard s owns slots where slot % shards == s
};

struct FsckOptions {
  /// parallel_for lanes for phase 1. 0 = auto (whole machine), 1 = serial.
  std::size_t jobs = 1;
  /// Phase-1 scan shards. 0 = default (8).
  std::size_t shards = 0;
  ShardAssignment assignment = ShardAssignment::kContiguous;
  /// False = detect only (dry run); true = phase 3 mutates the target.
  bool repair = false;
};

/// Finding kinds, declared in canonical repair order: the repair phase
/// applies findings sorted by (kind, file, ost, detail), so structural
/// repairs (record ids, stripe maps) land before the journal backfills
/// that read the repaired records, and counter reconciliation lands after
/// the journal is whole again.
enum class FindingKind : std::uint8_t {
  /// Record id does not encode the slot holding it (zombie/corrupt inode).
  kBadRecordId = 0,
  /// Stripe map names an unknown OST or overruns the stripe pool.
  kDanglingStripe,
  /// Table-live file absent from the journal's live set.
  kJournalMissingCreate,
  /// Journal-live file the table says is dead (lost unlink record).
  kJournalMissingUnlink,
  /// Journal unlinks a file it never created (corrupt record).
  kJournalGhostUnlink,
  /// live_files() counter disagrees with a ground-truth recount.
  kLiveCountDrift,
  /// total_created() disagrees with the journal replay (post-backfill).
  kCreateCountDrift,
  /// OST holds more bytes/objects than the live stripe maps reference.
  kOrphanObjects,
  /// OST holds fewer bytes/objects than the live stripe maps reference.
  kLostObjects,
  /// DNE per-MDT accounted load is negative or non-finite.
  kDneLoadDrift,
};

/// Stable lowercase-kebab name (JSON `kind` field, test assertions).
std::string_view finding_kind_name(FindingKind kind);

/// One detected inconsistency, plus what the repair phase did about it.
struct Finding {
  FindingKind kind = FindingKind::kBadRecordId;
  /// Canonical file id (what the record id *should* be), 0 if not
  /// file-scoped.
  std::uint64_t file = 0;
  /// OST index (kOrphanObjects/kLostObjects) or MDT index (kDneLoadDrift),
  /// -1 if not device-scoped.
  std::int64_t ost = -1;
  /// Kind-specific expectations captured at detection time (bytes/objects
  /// for OST drift; counter values for count drift).
  std::uint64_t expect_a = 0;
  std::uint64_t expect_b = 0;
  std::string detail;
  bool repaired = false;
  std::string repair;  ///< what phase 3 did (empty on dry runs)
};

struct FsckReport {
  std::vector<Finding> findings;  ///< canonical order (kind, file, ost, detail)
  std::uint64_t slots_scanned = 0;
  std::uint64_t live_files = 0;  ///< ground-truth recount from the scan
  std::uint64_t osts_scanned = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t repairs_applied = 0;
  /// Journal-cursor replay outcome (phase 3): records replayed past the
  /// committed cursor and the cursor after advancing it.
  std::uint64_t journal_replayed = 0;
  std::uint64_t journal_cursor = 0;
  /// FNV-1a over (kind, file, ost, detail) of every finding, in order.
  std::uint64_t findings_hash = 0;
  /// FNV-1a over the post-run target state (see fsck_state_hash).
  std::uint64_t state_hash = 0;
  bool repaired = false;  ///< phase 3 ran (options.repair)

  bool clean() const { return findings.empty(); }
};

/// Run the three phases over `target`. Phase 3 mutates the target only when
/// `options.repair` is set. A repaired target re-checks clean: repairs are
/// chosen so one pass converges (the breach-proof tests pin this).
FsckReport run_fsck(const FsckTarget& target, const FsckOptions& options = {});

/// Render a report as one JSON object: stable field order, hashes as hex,
/// findings in canonical order. Byte-identical at any jobs/shards setting.
std::string fsck_report_json(const FsckReport& report);

/// FNV-1a digest of the target's observable state: every inode slot, the
/// stripe pool, OST counters, journal records and cursor, DNE loads. Two
/// targets repaired through different worker counts must hash equal.
std::uint64_t fsck_state_hash(const FsckTarget& target);

// --- seeded corruption (tests, CLI --corrupt, property harness) -------------

/// Deterministically break `target` so a subsequent fsck detects `kind`.
/// Returns a description of what was damaged, or "" when the target lacks
/// the facet (no journal / no DNE / no live files to damage).
std::string inject_corruption(const FsckTarget& target, FindingKind kind,
                              Rng& rng);

// --- synthetic cluster (CLI, tests, bench share one builder) ----------------

struct SyntheticFsConfig {
  std::size_t raid_groups = 8;  ///< one OST per RAID group
  std::size_t files = 64;
  double churn = 0.25;  ///< per-file unlink probability after creation
  std::uint64_t seed = 2014;
  std::size_t mdts = 4;
};

/// A self-contained namespace + journal + DNE shard set, populated with a
/// deterministic create/unlink history (journaled, committed). Movable;
/// target() re-derives pointers so moves stay safe.
struct SyntheticFs {
  std::unique_ptr<block::Ssu> ssu;
  std::vector<fs::Ost> osts;
  std::unique_ptr<fs::FsNamespace> ns;
  std::unique_ptr<fs::OpLog> journal;
  std::unique_ptr<fs::DneNamespace> dne;

  FsckTarget target() {
    FsckTarget t;
    t.ns = ns.get();
    t.journal = journal.get();
    t.dne = dne.get();
    return t;
  }
};

SyntheticFs make_synthetic_fs(const SyntheticFsConfig& cfg = {});

}  // namespace spider::tools
